#!/bin/sh
# Distills target/bench-history.jsonl into per-revision BENCH_<rev>.json
# summaries (mean and p95 of each benchmark's recorded median_s, plus sample
# counts), so the perf trajectory is tracked in-repo alongside the code that
# produced it.
#
#   scripts/bench_export.sh           # export the current revision
#   scripts/bench_export.sh <rev>     # export one named revision
#   scripts/bench_export.sh --all     # export every revision in the history
#
# The current revision is $SDS_BENCH_REV when set (what ci.sh exports), else
# `git rev-parse --short HEAD`. Revisions named "test"/"unknown"/"pre-commit"
# (ad-hoc local runs) are skipped by --all. POSIX sh + awk only — no
# dependencies.
set -eu

cd "$(dirname "$0")/.."
HISTORY="${SDS_BENCH_HISTORY:-target/bench-history.jsonl}"

if [ ! -s "$HISTORY" ]; then
    echo "bench_export: no history at $HISTORY (run the benchmarks first)" >&2
    exit 1
fi

export_rev() {
    rev="$1"
    out="BENCH_${rev}.json"
    awk -v rev="$rev" '
        # Each history line is one flat JSON object; pull the three fields
        # this summary needs with string surgery (no JSON parser required).
        function field(line, name,    rest) {
            rest = line
            if (!sub(".*\"" name "\":", "", rest)) return ""
            sub("[,}].*", "", rest)
            gsub("\"", "", rest)
            return rest
        }
        field($0, "rev") != rev { next }
        {
            bench = field($0, "bench")
            value = field($0, "median_s") + 0
            if (bench == "") next
            n[bench]++
            sum[bench] += value
            vals[bench, n[bench]] = value
        }
        END {
            if (length(n) == 0) exit 3
            # Sort bench names (insertion sort; group counts are small).
            nb = 0
            for (b in n) names[++nb] = b
            for (i = 2; i <= nb; i++) {
                key = names[i]
                for (j = i - 1; j >= 1 && names[j] > key; j--) names[j+1] = names[j]
                names[j+1] = key
            }
            printf "{\n  \"rev\": \"%s\",\n  \"benches\": {\n", rev
            for (i = 1; i <= nb; i++) {
                b = names[i]
                # Sort this bench'\''s samples for the p95 (nearest-rank).
                m = n[b]
                for (j = 1; j <= m; j++) v[j] = vals[b, j]
                for (j = 2; j <= m; j++) {
                    key = v[j]
                    for (k = j - 1; k >= 1 && v[k] > key; k--) v[k+1] = v[k]
                    v[k+1] = key
                }
                rank = int((95 * m + 99) / 100); if (rank < 1) rank = 1
                printf "    \"%s\": {\"mean_s\": %.9g, \"p95_s\": %.9g, \"samples\": %d}%s\n", \
                    b, sum[b] / m, v[rank], m, (i < nb ? "," : "")
            }
            printf "  }\n}\n"
        }
    ' "$HISTORY" > "$out.tmp" || {
        rc=$?
        rm -f "$out.tmp"
        if [ "$rc" = 3 ]; then
            echo "bench_export: no history entries for rev '$rev'" >&2
            return 1
        fi
        return "$rc"
    }
    mv "$out.tmp" "$out"
    echo "bench_export: wrote $out ($(grep -c '"mean_s"' "$out") benches)"
}

case "${1:-}" in
--all)
    # Every real revision present in the history, in file order.
    revs=$(awk '{
        rest = $0
        if (!sub(".*\"rev\":\"", "", rest)) next
        sub("\".*", "", rest)
        if (rest != "test" && rest != "unknown" && rest != "pre-commit" && !seen[rest]++) print rest
    }' "$HISTORY")
    [ -n "$revs" ] || { echo "bench_export: no named revisions in $HISTORY" >&2; exit 1; }
    for rev in $revs; do export_rev "$rev"; done
    ;;
"")
    rev="${SDS_BENCH_REV:-$(git rev-parse --short HEAD)}"
    case "$rev" in
    test|unknown|pre-commit)
        # Ad-hoc local runs have no revision to attribute samples to; don't
        # write a BENCH_pre-commit.json that would never be tracked.
        echo "bench_export: skipping ad-hoc rev '$rev' (nothing exported)"
        ;;
    *)
        export_rev "$rev"
        ;;
    esac
    ;;
*)
    export_rev "$1"
    ;;
esac
