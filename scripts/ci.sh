#!/usr/bin/env bash
# Tier-1 gate, runnable with no network access and no crates.io registry.
# The zero-external-dependency policy (see DESIGN.md) is what makes the
# --offline flags below safe from a cold target directory; the
# zero_deps_guard integration test enforces it.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline

# Bounded chaos soak (quick mode): fixed 8-seed sweep of combined churn +
# fault injection with post-heal convergence invariants. Deterministic, so
# a red run here reproduces locally with the printed seed.
SDS_CHAOS_SEEDS=8 cargo test -q --offline -p sds-integration --test chaos_soak

# Rolling-chaos soak (quick mode): 2-seed sweep of repeated fault windows
# (asymmetric WAN loss, pair cuts, registry crashes) measuring per-window
# time-to-recovery. Fails if any self-healing window exceeds
# SDS_RECOVERY_BOUND ms or if healing is ever slower than the passive
# baseline. Deterministic per seed, like the soak above.
SDS_CHAOS_SEEDS=2 SDS_RECOVERY_BOUND=30000 \
  cargo test -q --offline -p sds-integration --test rolling_chaos

# Engine equivalence: the shared-payload timing-wheel event core must
# reproduce the pre-change engine bit-for-bit, and the partitioned engine
# must be worker-count invariant against its own pinned golden digests.
# The quick 2-seed tests run once per worker count (1, 2, 4) so a
# scheduling-dependent divergence is attributed to its worker count; the
# ignored tests release the full 8-seed sweeps (release profile) over all
# three counts at once.
for eq_workers in 1 2 4; do
  SDS_EQ_WORKERS="$eq_workers" \
    cargo test -q --offline --release -p sds-integration --test engine_equivalence
done
cargo test -q --offline --release -p sds-integration --test engine_equivalence \
  -- --include-ignored

# Microbenchmark smoke run: quick-mode wall clock, mostly to prove the
# benches still build and run. Every measurement appends to
# target/bench-history.jsonl, arming the 10x median regression flag for
# the next run; a missing history file afterwards means recording broke.
# SDS_BENCH_REV tags each sample with the revision under test so history
# lines are attributable after the fact.
# Respect a caller-pinned rev tag: pre-commit runs set SDS_BENCH_REV=pre-commit
# so work-in-progress samples never pollute the committed BENCH_<rev>.json of
# the revision HEAD still points at.
SDS_BENCH_REV="${SDS_BENCH_REV:-$(git rev-parse --short HEAD 2>/dev/null || echo unknown)}"
export SDS_BENCH_REV
SDS_BENCH_QUICK=1 cargo bench -q --offline -p sds-bench --bench microbench

# Engine-scaling smoke (quick mode: 10^2 and 10^3 nodes in both delivery
# modes, the sequential-vs-partitioned engine sweep, and a shortened-horizon
# million-node run): proves the S1 bin runs — including that 10^6 nodes
# build, run, and fit in memory — and keeps recording sec-per-event,
# clones-per-delivery, engine speedups, and rss-bytes-per-node into the
# history file.
SDS_BENCH_QUICK=1 cargo run -q --release --offline -p sds-bench --bin s1_engine_scaling

# Shard-equivalence sweep: the sharded data plane (1/2/4/8 shards), batched
# coalescing, and the lease-invalidated query cache must stay byte-identical
# to the unsharded engine on randomized taxonomies, stores, and lease
# schedules (seeded in-workspace property harness). Run once per data-plane
# worker count so a scheduling-dependent divergence in the parallel engine
# is attributed to its count (the parallel≡sequential property compares the
# pinned count against the 1-worker reference).
for dp_workers in 1 2 4; do
  SDS_REGISTRY_WORKERS="$dp_workers" \
    cargo test -q --offline -p sds-registry --test shard_props
done

# Multi-worker registry scenario: the full chaos soak with every registry on
# a 4-shard, multi-worker data plane must reproduce the default plane's
# metrics digest bit-for-bit — worker threads inside node handlers are an
# observable no-op end-to-end, not just at the engine boundary.
cargo test -q --offline -p sds-integration --test multiworker_registry

# Mixed-workload smoke (quick mode): proves the Q2 bin runs — sharded +
# batched + cached data-plane configurations plus the workers × shards
# parallel-batch matrix under sustained query bursts with publish churn —
# and records queries/s-derived mean and p99 latency into the history file.
# The >=2x parallel speedup assertion only arms in full mode on >=4 cores.
SDS_BENCH_QUICK=1 cargo run -q --release --offline -p sds-bench --bin q2_mixed_workload

# Overload soak (quick mode): 2-seed flash-crowd sweep against
# capacity-bounded registries with the full admission/backpressure layer
# on. Per seed: every Busy-nacked query is eventually answered, renewals
# are never shed, no lease expires, and the metrics fingerprint is
# byte-identical across reruns. Deterministic per seed.
SDS_CHAOS_SEEDS=2 cargo test -q --offline -p sds-integration --test overload_soak

# Overload-resilience smoke (quick mode: 12 LANs / ~600 nodes): proves the
# O1 bin runs a 10x flash crowd against both the layer-disabled baseline
# and the full overload ladder, asserts the >=2x storm-goodput win, the
# renewal-class no-shed guarantee, and post-storm recall 1.0, and records
# goodput/p95/recall into the history file. The metro-scale (10^5-node)
# run is the non-quick mode.
SDS_BENCH_QUICK=1 cargo run -q --release --offline -p sds-bench --bin o1_overload

# Federation convergence property: 8 seeds of loss + duplication + reorder
# plus a 20 s partial partition; every registry must end with the exact
# same live (advert id -> version) map within the documented bound, via
# the anti-entropy plane alone (zero legacy advert pushes).
cargo test -q --offline -p sds-integration --test federation_sync

# Federation-replication smoke (quick mode: 2 and 4 LANs, 60 s windows):
# proves the F1 bin runs both replication planes and keeps recording the
# WAN-bytes ratio and anti-entropy staleness into the history file. The
# full-size >=5x / bounded-staleness assertions run in non-quick mode.
SDS_BENCH_QUICK=1 cargo run -q --release --offline -p sds-bench --bin f1_federation_sync

test -s "${CARGO_TARGET_DIR:-target}/bench-history.jsonl" \
  || { echo "ci: bench-history.jsonl missing or empty after bench run" >&2; exit 1; }

# Distill this revision's history entries into BENCH_<rev>.json so the perf
# trajectory is tracked in-repo (mean/p95 per benchmark).
scripts/bench_export.sh
