//! Worker-thread execution of lookahead windows.
//!
//! A window is a set of independent jobs — one per domain — with no shared
//! mutable state: domains only read the [`World`] and write their own
//! fields (cross-domain messages go to per-destination outboxes, drained by
//! the coordinator *after* the window). So the scheduling here is the
//! simplest thing that works: an atomic cursor hands out domain indices,
//! scoped threads claim and run them, and the scope join is the barrier.
//! Which thread runs which domain — and in what order — cannot affect the
//! result, which is the worker-count-invariance guarantee the equivalence
//! tests pin.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::domain::{Domain, RunOutcome, World};
use crate::time::SimTime;

/// How a simulator's LANs are grouped into share-nothing execution domains.
///
/// More domains expose more parallelism but cost more barrier work (the
/// coordinator scans domains² outbox pairs per window); for big runs a
/// domain count near the worker-thread count is the sweet spot, which is
/// what [`PartitionPlan::Domains`] expresses. Plans that resolve to one
/// domain select the legacy sequential engine, bit-for-bit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PartitionPlan {
    /// One domain holding every LAN: the legacy sequential engine.
    Single,
    /// One domain per LAN: maximal partitioning. Right for topologies with
    /// at most a few hundred LANs; above that the per-domain fixed costs
    /// dominate (the domain count is capped at 1024 regardless).
    PerLan,
    /// A fixed number of domains; LAN `l` lands in domain `l mod n`.
    /// Clamped to `[1, lan_count]` (and the 1024 cap).
    Domains(usize),
}

/// Shares the domain slice across worker threads.
///
/// SAFETY: `Domain<P>` is not `Sync` and not auto-`Send` (it holds `Rc<P>`
/// payloads and `Rc`-free but thread-bound-looking state), but moving a
/// *whole* domain to another thread is sound when `P: Send`:
///
/// * every `Rc<P>` clone lives inside the domain that created it — payloads
///   enter a domain as owned `P` (local sends and outbox handoffs both
///   `Rc::new` domain-side), so no reference count is ever shared across
///   domains;
/// * handlers and corruptors are `Send` by bound;
/// * each index is claimed by exactly one worker (a single `fetch_add`
///   winner), so no `&mut Domain` aliases another.
struct DomainJobs<'a, P> {
    base: *mut Domain<P>,
    len: usize,
    cursor: AtomicUsize,
    world: &'a World<'a>,
    limit: SimTime,
}

unsafe impl<P: Send> Sync for DomainJobs<'_, P> {}

impl<P: Clone + Send + 'static> DomainJobs<'_, P> {
    /// Claims and runs domains until the cursor is exhausted.
    fn work(&self) {
        loop {
            let i = self.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= self.len {
                return;
            }
            // SAFETY: `i` was returned by fetch_add exactly once, so this
            // worker holds the only `&mut` to domain `i`; `base` outlives
            // the enclosing thread::scope.
            let domain = unsafe { &mut *self.base.add(i) };
            match domain.run_events(self.limit, self.world) {
                RunOutcome::Done => {}
                RunOutcome::Control(_) => {
                    unreachable!("partitioned mode never queues controls in the wheel")
                }
            }
        }
    }
}

/// Runs every domain up to `limit` (inclusive), using up to `workers`
/// threads. `workers <= 1` (or a single domain) runs inline on the calling
/// thread — no spawn cost, same result.
pub(crate) fn run_domains<P: Clone + Send + 'static>(
    domains: &mut [Domain<P>],
    world: &World<'_>,
    limit: SimTime,
    workers: usize,
) {
    let workers = workers.min(domains.len());
    if workers <= 1 {
        for d in domains.iter_mut() {
            match d.run_events(limit, world) {
                RunOutcome::Done => {}
                RunOutcome::Control(_) => {
                    unreachable!("partitioned mode never queues controls in the wheel")
                }
            }
        }
        return;
    }
    let jobs = DomainJobs {
        base: domains.as_mut_ptr(),
        len: domains.len(),
        cursor: AtomicUsize::new(0),
        world,
        limit,
    };
    std::thread::scope(|scope| {
        // The calling thread is worker 0; spawn the rest.
        for _ in 1..workers {
            scope.spawn(|| jobs.work());
        }
        jobs.work();
    });
}
