//! Simulated time. All times are milliseconds since simulation start.

/// A point in simulated time, in milliseconds since the start of the run.
pub type SimTime = u64;

/// Convenience constructor: `millis(n)` milliseconds.
#[inline]
pub const fn millis(n: u64) -> SimTime {
    n
}

/// Convenience constructor: `secs(n)` seconds expressed in [`SimTime`] units.
#[inline]
pub const fn secs(n: u64) -> SimTime {
    n * 1_000
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn secs_are_thousands_of_millis() {
        assert_eq!(secs(3), millis(3_000));
        assert_eq!(secs(0), 0);
    }
}
