//! The discrete-event engine.
//!
//! Performance model (DESIGN §11): the engine is allocation-lean on its hot
//! paths. Queued payloads are reference-counted — a multicast enqueues *one*
//! shared payload however many receivers it fans out to, and the inner
//! payload is cloned only when a corruptor actually mutates a frame or an
//! owning handler materializes a copy. The event queue is a calendar
//! timing wheel (`WHEEL_SPAN` one-time-unit buckets plus a far-heap for
//! beyond-horizon events), so push and pop are O(1) amortized while
//! preserving the old heap's exact `(at, seq)` dispatch order. Timer slots
//! are generation-stamped, so cancelled timers are reclaimed immediately
//! instead of leaving tombstones; per-node RNG streams materialize lazily
//! on first draw, so dead or never-drawing nodes cost nothing.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::rc::Rc;

use sds_rand::{Rng, Seed};

use crate::handler::{Action, Ctx, NodeHandler};
use crate::ids::{LanId, NodeId, TimerId};
use crate::message::{Destination, MsgKind};
use crate::stats::{NetStats, Scope};
use crate::time::SimTime;
use crate::topology::Topology;

/// Link-layer parameters. Defaults model a fast wired LAN and a slow WAN;
/// experiments override them to model wireless/tactical links.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Base one-way LAN latency.
    pub lan_latency: SimTime,
    /// Uniform extra LAN jitter in `[0, lan_jitter]`.
    pub lan_jitter: SimTime,
    /// Base one-way WAN latency.
    pub wan_latency: SimTime,
    /// Uniform extra WAN jitter in `[0, wan_jitter]`.
    pub wan_jitter: SimTime,
    /// Probability a LAN transmission is lost (per receiver for multicast).
    pub lan_loss: f64,
    /// Probability a WAN transmission is lost.
    pub wan_loss: f64,
    /// Shared LAN medium capacity in kilobits per second (0 = unlimited).
    /// Each LAN is one half-duplex broadcast channel: transmissions
    /// serialize, so big semantic advertisements delay everything behind
    /// them — the paper's "wireless connections with low network capacity".
    pub lan_rate_kbps: u32,
    /// Shared WAN uplink capacity in kilobits per second (0 = unlimited).
    /// Modeled as one shared pipe (a tactical reach-back link).
    pub wan_rate_kbps: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            lan_latency: 1,
            lan_jitter: 1,
            wan_latency: 20,
            wan_jitter: 5,
            lan_loss: 0.0,
            wan_loss: 0.0,
            lan_rate_kbps: 0,
            wan_rate_kbps: 0,
        }
    }
}

/// Per-scope fault-injection knobs, layered on top of the base link model.
///
/// A profile applies to every delivery crossing its scope (one LAN medium,
/// or the WAN). All knobs default to zero — a default profile injects
/// nothing and draws nothing from the fault RNG stream, so fault-free runs
/// are bit-identical with pre-fault-layer builds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultProfile {
    /// Extra loss probability, on top of the `SimConfig` loss.
    pub loss: f64,
    /// Probability a delivery is duplicated (a second copy is scheduled
    /// with independently sampled latency, so it may arrive first).
    pub duplicate: f64,
    /// Probability a delivery is corrupted: the payload is routed through
    /// the corruption hook (see [`Sim::set_corruptor`]); without a hook the
    /// frame is destroyed outright.
    pub corrupt: f64,
    /// Bound on extra, uniformly sampled delivery delay. This models
    /// reordering: any two messages whose delivery windows overlap can
    /// arrive in either order.
    pub reorder_jitter: SimTime,
}

impl FaultProfile {
    /// True when the profile injects nothing.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// A scheduled change to the world, for scripting scenarios
/// ("at t=60s LAN 2 loses its registry", "at t=120s the WAN partitions",
/// "LAN 2 lossy from 30 s to 60 s").
#[derive(Clone, Debug)]
pub enum ControlAction {
    /// Take a node down: it stops receiving messages and all its pending
    /// timers are discarded.
    Crash(NodeId),
    /// Bring a crashed node back; `on_start` runs again.
    Revive(NodeId),
    /// Partition the WAN into the given LAN groups (see
    /// [`Topology::partition`]).
    Partition(Vec<Vec<LanId>>),
    /// Heal all WAN partitions.
    HealPartition,
    /// Replace one LAN's fault profile (in effect until overwritten).
    SetLanFaults(LanId, FaultProfile),
    /// Replace the WAN fault profile (in effect until overwritten).
    SetWanFaults(FaultProfile),
    /// Replace the fault profile for one WAN *direction* `from → to`,
    /// overriding the symmetric WAN profile for deliveries that way only.
    /// Models asymmetric links: a request can arrive while its reply is
    /// lost.
    SetWanPairFaults(LanId, LanId, FaultProfile),
    /// Cut the WAN between one pair of LANs (both directions), leaving
    /// every other WAN route up (see [`Topology::cut_wan_pair`]).
    CutWanPair(LanId, LanId),
    /// Heal one previously cut WAN pair.
    HealWanPair(LanId, LanId),
    /// Reset every fault profile (per-LAN, WAN, per-direction overrides) to
    /// the fault-free default. Does not heal partitions or pair cuts.
    ClearFaults,
}

/// The payload corruption hook: given the fault RNG and the in-flight
/// payload, returns the corrupted payload to deliver, or `None` when the
/// corruption rendered the frame undecodable (it is then dropped and
/// counted). The discovery stack installs encode → byte-mutation → decode.
pub type Corruptor<P> = Box<dyn FnMut(&mut Rng, &P) -> Option<P>>;

/// Wheel span in time units (must be a power of two). Events scheduled
/// within `WHEEL_SPAN` of `now` — every delivery under realistic latencies,
/// and every short protocol timer — go straight into their time's bucket:
/// O(1) push, no comparisons. Only beyond-horizon events (long leases,
/// scripted scenario controls) pay for the far heap.
const WHEEL_SPAN: u64 = 1 << 12;
const WHEEL_MASK: usize = (WHEEL_SPAN - 1) as usize;

/// One queued event, stored inline in its time bucket. Within a bucket,
/// dispatch order is vector order, which by construction is push order —
/// exactly the `(at, seq)` order the old comparison-based heap produced.
enum Queued<P> {
    /// Payloads are queued behind `Rc`: every receiver of a multicast (and
    /// every duplicated copy) shares one allocation. Copy-on-write: only a
    /// corruptor mutation materializes a divergent payload.
    Deliver { to: NodeId, from: NodeId, payload: Rc<P> },
    /// Timers are the only cancellable events, so only they pay for an
    /// out-of-line, generation-stamped cell: cancelling bumps the cell's
    /// stamp, and a mismatched stamp here means "already cancelled — skip".
    /// No tombstone set, no memory held until the dead timer's fire time.
    Timer { slot: u32, gen: u64 },
    Control(ControlAction),
    /// Placeholder left behind while a bucket entry is being dispatched
    /// (buckets drain by index because a handler may append same-time
    /// events to the bucket currently draining).
    Consumed,
}

/// A beyond-horizon event, parked in the far heap until `now` comes within
/// `WHEEL_SPAN` of it; ordered by `(at, seq)` so same-time far events
/// migrate into their bucket in push order.
struct FarEvent<P> {
    at: SimTime,
    seq: u64,
    ev: Queued<P>,
}

impl<P> PartialEq for FarEvent<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for FarEvent<P> {}
impl<P> PartialOrd for FarEvent<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for FarEvent<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The out-of-line cell for one pending timer. `gen` stamps the current
/// occupancy: firing and cancelling both bump it, so a queued
/// `Queued::Timer` referencing an old stamp is dead. The payload fields are
/// simply left behind on vacate (no `Option` dance).
struct TimerSlot {
    gen: u64,
    node: NodeId,
    epoch: u32,
    id: TimerId,
    tag: u64,
}

/// The simulator: topology + node handlers + event queue + accounting.
///
/// `P` is the payload type carried by every message (the discovery stack
/// instantiates it with its wire message type). In-flight payloads are
/// shared (`Rc<P>`); `P: Clone` is needed only to materialize owned copies
/// for handlers that take delivery by value and for corruptor mutations.
pub struct Sim<P> {
    cfg: SimConfig,
    topo: Topology,
    now: SimTime,
    /// The calendar queue: one bucket per time unit, indexed `at mod
    /// WHEEL_SPAN`. Invariant: every bucketed event satisfies
    /// `at - now < WHEEL_SPAN`, so a bucket never mixes two times.
    buckets: Vec<Vec<Queued<P>>>,
    /// One bit per bucket, so finding the next occupied time skips empty
    /// stretches a word (64 buckets) at a stride.
    occupied: Vec<u64>,
    /// How far into `now`'s bucket dispatch has progressed (buckets drain
    /// by index so same-time appends during dispatch are picked up).
    drain_pos: usize,
    /// Beyond-horizon events, ordered `(at, seq)`; they migrate into
    /// buckets as `now` approaches (see [`Sim::migrate_until`]).
    far: BinaryHeap<Reverse<FarEvent<P>>>,
    far_seq: u64,
    /// Live queued events (deliveries + pending timers + controls):
    /// incremented on push, decremented on dispatch and on cancel.
    live_events: usize,
    handlers: Vec<Option<Box<dyn NodeHandler<P>>>>,
    alive: Vec<bool>,
    epoch: Vec<u32>,
    /// Lazily materialized per-node RNG streams: `None` until the node's
    /// first draw. The stream state is a pure function of the node's derived
    /// seed, so laziness is invisible to handlers — but a million-node sim
    /// whose nodes never draw seeds nothing.
    rngs: Vec<Option<Rng>>,
    /// Per-node derived seeds, handed to handlers through `Ctx` so they can
    /// derive private labelled sub-streams (retry jitter etc.) that never
    /// perturb the main per-node stream.
    node_seeds: Vec<Seed>,
    link_rng: Rng,
    /// Dedicated stream for fault injection so enabling faults never
    /// perturbs the link RNG draws of fault-free traffic.
    fault_rng: Rng,
    next_timer: u64,
    /// The timer cells (see [`TimerSlot`]) plus their free list.
    timer_table: Vec<TimerSlot>,
    timer_free: Vec<u32>,
    /// Pending (not yet fired, not cancelled) timers → the cell+generation
    /// of their queued event. Entries leave on fire *and* on cancel, so the
    /// map is bounded by the number of outstanding timers — cancelling an
    /// already-fired timer is a map miss, never a leak.
    timer_slots: HashMap<TimerId, (u32, u64)>,
    stats: NetStats,
    events_processed: u64,
    seed: u64,
    /// Per-LAN medium busy-until time (bandwidth model).
    lan_busy_until: Vec<SimTime>,
    /// Shared WAN pipe busy-until time.
    wan_busy_until: SimTime,
    /// Per-LAN fault profiles (indexed by LAN id).
    lan_faults: Vec<FaultProfile>,
    /// WAN fault profile.
    wan_faults: FaultProfile,
    /// Per-direction WAN overrides, keyed by `(from_lan, to_lan)`. A
    /// present entry replaces `wan_faults` for deliveries in that direction.
    wan_pair_faults: BTreeMap<(LanId, LanId), FaultProfile>,
    corruptor: Option<Corruptor<P>>,
    /// Reused membership buffer for multicast dispatch — no per-multicast
    /// `Vec` allocation.
    multicast_scratch: Vec<NodeId>,
    /// Reused action buffer handed to `Ctx` — no per-invoke allocation.
    actions_scratch: Vec<Action<P>>,
}

impl<P: Clone + 'static> Sim<P> {
    /// Creates a simulator over `topo`. `seed` fixes every random choice in
    /// the run (link loss, jitter, each node's private RNG).
    pub fn new(cfg: SimConfig, topo: Topology, seed: u64) -> Self {
        let lan_count = topo.lan_count();
        Self {
            cfg,
            topo,
            now: 0,
            buckets: (0..WHEEL_SPAN).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; WHEEL_SPAN as usize / 64],
            drain_pos: 0,
            far: BinaryHeap::new(),
            far_seq: 0,
            live_events: 0,
            handlers: Vec::new(),
            alive: Vec::new(),
            epoch: Vec::new(),
            rngs: Vec::new(),
            node_seeds: Vec::new(),
            link_rng: Seed(seed).derive("simnet.link").rng(),
            fault_rng: Seed(seed).derive("simnet.fault").rng(),
            next_timer: 0,
            timer_table: Vec::new(),
            timer_free: Vec::new(),
            timer_slots: HashMap::new(),
            stats: NetStats::default(),
            events_processed: 0,
            lan_busy_until: vec![0; lan_count],
            wan_busy_until: 0,
            lan_faults: vec![FaultProfile::default(); lan_count],
            wan_faults: FaultProfile::default(),
            wan_pair_faults: BTreeMap::new(),
            corruptor: None,
            multicast_scratch: Vec::new(),
            actions_scratch: Vec::new(),
            // Folded into each node's private RNG in `add_node`.
            seed,
        }
    }

    /// Adds a node on `lan` with the given behaviour; `on_start` runs at the
    /// current simulated time (time 0 for setup-phase adds).
    pub fn add_node(&mut self, lan: LanId, handler: Box<dyn NodeHandler<P>>) -> NodeId {
        let id = NodeId(self.handlers.len() as u32);
        self.topo.attach_node(id, lan);
        self.handlers.push(Some(handler));
        self.alive.push(true);
        self.epoch.push(0);
        let node_seed = Seed(self.seed).derive_idx("simnet.node", u64::from(id.0));
        self.rngs.push(None);
        self.node_seeds.push(node_seed);
        self.invoke(id, |h, ctx| h.on_start(ctx));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the traffic counters (useful to measure only the steady state
    /// after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Events dispatched so far (deliveries, timer fires, control actions;
    /// cancelled timers are reclaimed without dispatching and do not
    /// count). The engine-throughput denominator for scaling benches.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Timers set but not yet fired or cancelled. Bounded by construction:
    /// entries leave the pending map on fire and on cancel (the old
    /// tombstone design grew without bound when timers were cancelled after
    /// firing).
    pub fn pending_timer_count(&self) -> usize {
        self.timer_slots.len()
    }

    /// Events currently queued (deliveries in flight, pending timers,
    /// scheduled controls). Cancelled timers leave the count immediately,
    /// so this tracks live events only.
    pub fn queued_event_count(&self) -> usize {
        self.live_events
    }

    /// Whether a node is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Immediately crashes a node (see [`ControlAction::Crash`]).
    pub fn crash_node(&mut self, node: NodeId) {
        if self.alive[node.index()] {
            self.alive[node.index()] = false;
            self.epoch[node.index()] += 1;
        }
    }

    /// Immediately revives a crashed node and reruns its `on_start`.
    pub fn revive_node(&mut self, node: NodeId) {
        if !self.alive[node.index()] {
            self.alive[node.index()] = true;
            self.epoch[node.index()] += 1;
            self.invoke(node, |h, ctx| h.on_start(ctx));
        }
    }

    /// Schedules a control action at an absolute simulated time.
    pub fn schedule(&mut self, at: SimTime, action: ControlAction) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push_event(at, Queued::Control(action));
    }

    /// Replaces one LAN's fault profile, effective immediately.
    pub fn set_lan_faults(&mut self, lan: LanId, faults: FaultProfile) {
        assert!(lan.index() < self.lan_faults.len(), "unknown LAN {lan:?}");
        self.lan_faults[lan.index()] = faults;
    }

    /// Replaces the WAN fault profile, effective immediately.
    pub fn set_wan_faults(&mut self, faults: FaultProfile) {
        self.wan_faults = faults;
    }

    /// Replaces the fault profile for the WAN direction `from → to`,
    /// effective immediately. A quiet profile still overrides the symmetric
    /// WAN profile for that direction (use [`Sim::clear_faults`] or re-set
    /// the override to drop it).
    pub fn set_wan_pair_faults(&mut self, from: LanId, to: LanId, faults: FaultProfile) {
        assert!(from.index() < self.lan_faults.len(), "unknown LAN {from:?}");
        assert!(to.index() < self.lan_faults.len(), "unknown LAN {to:?}");
        self.wan_pair_faults.insert((from, to), faults);
    }

    /// The per-direction override for `from → to`, if one is set.
    pub fn wan_pair_faults(&self, from: LanId, to: LanId) -> Option<FaultProfile> {
        self.wan_pair_faults.get(&(from, to)).copied()
    }

    /// Cuts the WAN between one pair of LANs (see
    /// [`Topology::cut_wan_pair`]).
    pub fn cut_wan_pair(&mut self, a: LanId, b: LanId) {
        self.topo.cut_wan_pair(a, b);
    }

    /// Heals one previously cut WAN pair.
    pub fn heal_wan_pair(&mut self, a: LanId, b: LanId) {
        self.topo.heal_wan_pair(a, b);
    }

    /// Resets every fault profile (including per-direction overrides) to
    /// the fault-free default. Partitions and pair cuts are left alone.
    pub fn clear_faults(&mut self) {
        self.lan_faults.fill(FaultProfile::default());
        self.wan_faults = FaultProfile::default();
        self.wan_pair_faults.clear();
    }

    /// The fault profile currently applied to a LAN.
    pub fn lan_faults(&self, lan: LanId) -> FaultProfile {
        self.lan_faults[lan.index()]
    }

    /// The fault profile currently applied to the WAN.
    pub fn wan_faults(&self) -> FaultProfile {
        self.wan_faults
    }

    /// Installs the payload corruption hook used when a
    /// [`FaultProfile::corrupt`] roll fires. The discovery stack installs
    /// encode → seeded byte-mutation → decode here, so corruption exercises
    /// the real wire decoder; `None` means the frame no longer decodes and
    /// is dropped (counted in [`NetStats::corrupt_dropped_messages`]).
    pub fn set_corruptor(&mut self, hook: impl FnMut(&mut Rng, &P) -> Option<P> + 'static) {
        self.corruptor = Some(Box::new(hook));
    }

    /// Borrows a handler downcast to its concrete type, for inspection.
    /// Returns `None` for a wrong type or unknown node.
    pub fn handler<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.handlers
            .get(node.index())?
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable variant of [`Sim::handler`], for test instrumentation.
    pub fn handler_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.handlers
            .get_mut(node.index())?
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Runs the handler callback `f` on a live node right now, applying its
    /// queued actions. This is how experiments inject work ("client 3 issues
    /// a query at t=10s") without going through the network.
    pub fn with_node<T: 'static>(&mut self, node: NodeId, f: impl FnOnce(&mut T, &mut Ctx<'_, P>)) {
        if !self.alive[node.index()] {
            return;
        }
        self.invoke(node, move |h, ctx| {
            if let Some(t) = h.as_any_mut().downcast_mut::<T>() {
                f(t, ctx);
            } else {
                panic!("with_node: node {:?} is not the requested handler type", ctx.node());
            }
        });
    }

    /// Dispatches every event with `at <= limit`, in `(at, push-order)`
    /// order. Buckets drain front-to-back by index so a handler appending a
    /// same-time event (zero-delay timer, zero-latency link) sees it
    /// dispatched within the same time step, after everything already
    /// queued — exactly the old comparison-heap order. A bucket whose only
    /// entries were cancelled timers still advances the clock to its time,
    /// matching the old engine's handling of dead heap keys.
    fn run_events(&mut self, limit: SimTime) {
        loop {
            let bi = (self.now as usize) & WHEEL_MASK;
            if self.drain_pos < self.buckets[bi].len() {
                let pos = self.drain_pos;
                self.drain_pos += 1;
                let ev = std::mem::replace(&mut self.buckets[bi][pos], Queued::Consumed);
                if self.dispatch(ev) {
                    self.events_processed += 1;
                    self.live_events -= 1;
                }
                continue;
            }
            self.buckets[bi].clear();
            self.occupied[bi >> 6] &= !(1u64 << (bi & 63));
            self.drain_pos = 0;
            let Some(next) = self.next_event_time() else { return };
            if next > limit {
                return;
            }
            self.migrate_until(next);
            self.now = next;
        }
    }

    /// The earliest queued event time after `now`, if any. Bucketed events
    /// always precede far ones (the far heap holds only beyond-horizon
    /// times), so the wheel is scanned first.
    fn next_event_time(&self) -> Option<SimTime> {
        let span = WHEEL_SPAN as usize;
        let start = ((self.now + 1) as usize) & WHEEL_MASK;
        let mut o = 0usize;
        while o < span - 1 {
            let idx = (start + o) & WHEEL_MASK;
            if idx & 63 == 0 && span - 1 - o >= 64 && self.occupied[idx >> 6] == 0 {
                o += 64;
                continue;
            }
            if self.occupied[idx >> 6] & (1u64 << (idx & 63)) != 0 {
                return Some(self.now + 1 + o as u64);
            }
            o += 1;
        }
        self.far.peek().map(|Reverse(f)| f.at)
    }

    /// Pulls every far event that `new_now`'s horizon now covers into its
    /// bucket. Far events migrate in `(at, seq)` heap order, and always
    /// before any same-time near push can happen (near pushes at time `t`
    /// only occur once `now > t - WHEEL_SPAN`, and every advance of `now`
    /// migrates first) — so bucket order remains global push order.
    fn migrate_until(&mut self, new_now: SimTime) {
        while let Some(Reverse(top)) = self.far.peek() {
            if top.at - new_now >= WHEEL_SPAN {
                break;
            }
            let Reverse(fe) = self.far.pop().expect("peeked");
            self.bucket_insert(fe.at, fe.ev);
        }
    }

    /// Processes all events up to and including `until`, then advances the
    /// clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        self.run_events(until);
        if until > self.now {
            self.migrate_until(until);
            self.now = until;
        }
    }

    /// Runs until the event queue drains or `max` is reached; returns the
    /// final simulated time.
    pub fn run_to_quiescence(&mut self, max: SimTime) -> SimTime {
        self.run_events(max);
        self.now
    }

    /// Dispatches one queued event; returns `false` for stale entries
    /// (cancelled timers) that dispatch nothing.
    fn dispatch(&mut self, ev: Queued<P>) -> bool {
        match ev {
            Queued::Deliver { to, from, payload } => {
                if self.alive[to.index()] {
                    self.stats.record_delivery();
                    self.invoke(to, move |h, ctx| h.on_shared_message(ctx, from, payload));
                } else {
                    self.stats.record_drop();
                }
                true
            }
            Queued::Timer { slot, gen } => {
                let cell = &mut self.timer_table[slot as usize];
                if cell.gen != gen {
                    // Cancelled: its cell was vacated (and possibly reused)
                    // at cancel time.
                    return false;
                }
                cell.gen += 1;
                let (node, epoch, id, tag) = (cell.node, cell.epoch, cell.id, cell.tag);
                self.timer_free.push(slot);
                self.timer_slots.remove(&id);
                if self.alive[node.index()] && self.epoch[node.index()] == epoch {
                    self.invoke(node, move |h, ctx| h.on_timer(ctx, id, tag));
                }
                true
            }
            Queued::Consumed => unreachable!("consumed entries are never revisited"),
            Queued::Control(action) => {
                match action {
                ControlAction::Crash(n) => self.crash_node(n),
                ControlAction::Revive(n) => self.revive_node(n),
                ControlAction::Partition(groups) => {
                    let refs: Vec<&[LanId]> = groups.iter().map(|g| g.as_slice()).collect();
                    self.topo.partition(&refs);
                }
                ControlAction::HealPartition => self.topo.heal_partition(),
                ControlAction::SetLanFaults(lan, f) => self.set_lan_faults(lan, f),
                ControlAction::SetWanFaults(f) => self.set_wan_faults(f),
                ControlAction::SetWanPairFaults(from, to, f) => self.set_wan_pair_faults(from, to, f),
                ControlAction::CutWanPair(a, b) => self.cut_wan_pair(a, b),
                ControlAction::HealWanPair(a, b) => self.heal_wan_pair(a, b),
                ControlAction::ClearFaults => self.clear_faults(),
                }
                true
            }
        }
    }

    fn invoke(&mut self, node: NodeId, f: impl FnOnce(&mut dyn NodeHandler<P>, &mut Ctx<'_, P>)) {
        let mut handler = self.handlers[node.index()].take().expect("handler present");
        let mut actions = std::mem::take(&mut self.actions_scratch);
        actions.clear();
        let mut ctx = Ctx {
            now: self.now,
            node,
            lan: self.topo.lan_of(node),
            seed: self.node_seeds[node.index()],
            rng: &mut self.rngs[node.index()],
            next_timer: &mut self.next_timer,
            actions,
        };
        f(handler.as_mut(), &mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        self.handlers[node.index()] = Some(handler);
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, mut actions: Vec<Action<P>>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { dest, payload, bytes, kind } => self.transmit(node, dest, payload, bytes, kind),
                Action::SetTimer { id, fire_at, tag } => {
                    let epoch = self.epoch[node.index()];
                    let slot = match self.timer_free.pop() {
                        Some(s) => {
                            let cell = &mut self.timer_table[s as usize];
                            cell.node = node;
                            cell.epoch = epoch;
                            cell.id = id;
                            cell.tag = tag;
                            s
                        }
                        None => {
                            self.timer_table.push(TimerSlot { gen: 0, node, epoch, id, tag });
                            (self.timer_table.len() - 1) as u32
                        }
                    };
                    let gen = self.timer_table[slot as usize].gen;
                    self.timer_slots.insert(id, (slot, gen));
                    self.push_event(fire_at, Queued::Timer { slot, gen });
                }
                Action::CancelTimer(id) => {
                    if let Some((slot, gen)) = self.timer_slots.remove(&id) {
                        // The map only holds timers whose event is still
                        // queued, so the stamp always matches; the check
                        // guards the invariant rather than trusting it.
                        let cell = &mut self.timer_table[slot as usize];
                        if cell.gen == gen {
                            cell.gen += 1;
                            self.timer_free.push(slot);
                            self.live_events -= 1;
                        }
                    }
                }
            }
        }
        // Hand the (now empty) buffer back for the next invoke, keeping its
        // capacity. A nested invoke (none today) would merely allocate anew.
        if actions.capacity() > self.actions_scratch.capacity() {
            self.actions_scratch = actions;
        }
    }

    fn transmit(&mut self, from: NodeId, dest: Destination, payload: P, bytes: u32, kind: MsgKind) {
        match dest {
            Destination::Unicast(to) => {
                if to.index() >= self.handlers.len() {
                    // Corrupted frames can carry node ids that name nobody
                    // (e.g. a mutated RegistryList). Address a black hole
                    // instead of indexing the topology out of bounds.
                    self.stats.record_drop();
                    return;
                }
                if to == from {
                    // Loopback: free and instantaneous-ish.
                    let at = self.now + 1;
                    self.push_event(at, Queued::Deliver { to, from, payload: Rc::new(payload) });
                    return;
                }
                let from_lan = self.topo.lan_of(from);
                let to_lan = self.topo.lan_of(to);
                let scope = if from_lan == to_lan { Scope::Lan } else { Scope::Wan };
                // The sender transmits regardless of the receiver's fate, so
                // the bytes are always charged.
                self.stats.record(scope, kind, u64::from(bytes));
                if scope == Scope::Wan && !self.topo.wan_reachable(from_lan, to_lan) {
                    if self.topo.wan_pair_cut(from_lan, to_lan) {
                        self.stats.record_wan_cut_drop();
                    }
                    self.stats.record_drop();
                    return;
                }
                let faults = self.faults_for(scope, from_lan, to_lan);
                if self.sample_loss(scope) || self.sample_fault_loss(faults) {
                    self.stats.record_drop();
                    return;
                }
                let serialization = self.reserve_medium(scope, from_lan, bytes);
                self.deliver_faulty(faults, scope, serialization, to, from, Rc::new(payload));
            }
            Destination::Multicast(lan) => {
                assert_eq!(lan, self.topo.lan_of(from), "multicast is link-local: sender must be on the LAN");
                // One transmission on the broadcast medium.
                self.stats.record(Scope::Lan, kind, u64::from(bytes));
                self.stats.record_multicast();
                let serialization = self.reserve_medium(Scope::Lan, lan, bytes);
                let faults = self.lan_faults[lan.index()];
                // One shared payload for the whole fan-out; one reused
                // membership buffer instead of a fresh Vec per multicast.
                let payload = Rc::new(payload);
                let mut members = std::mem::take(&mut self.multicast_scratch);
                members.clear();
                members.extend(self.topo.members(lan).iter().copied().filter(|&m| m != from));
                for &to in &members {
                    if self.sample_loss(Scope::Lan) || self.sample_fault_loss(faults) {
                        self.stats.record_drop();
                        continue;
                    }
                    self.deliver_faulty(faults, Scope::Lan, serialization, to, from, Rc::clone(&payload));
                }
                members.clear();
                self.multicast_scratch = members;
            }
        }
    }

    /// Schedules one logical delivery, applying duplication, reordering and
    /// corruption from `faults`. A quiet profile draws nothing from the
    /// fault RNG, keeping fault-free runs bit-identical. The shared payload
    /// is copy-on-write: every scheduled copy holds a reference to the same
    /// allocation unless a corruptor mutation materializes a divergent one —
    /// receivers of the other copies still see the original bytes.
    fn deliver_faulty(
        &mut self,
        faults: FaultProfile,
        scope: Scope,
        serialization: SimTime,
        to: NodeId,
        from: NodeId,
        payload: Rc<P>,
    ) {
        let copies = if faults.duplicate > 0.0 && self.fault_rng.gen_bool(faults.duplicate) {
            self.stats.record_duplicate();
            2
        } else {
            1
        };
        for _copy in 0..copies {
            // Each copy samples its own latency and reorder delay, so a
            // duplicate can overtake the original.
            let reorder = if faults.reorder_jitter > 0 {
                let extra = self.fault_rng.gen_range(0..=faults.reorder_jitter);
                if extra > 0 {
                    self.stats.record_reorder_delay();
                }
                extra
            } else {
                0
            };
            let p = if faults.corrupt > 0.0 && self.fault_rng.gen_bool(faults.corrupt) {
                self.stats.record_corrupted();
                let mutated = match self.corruptor.as_mut() {
                    Some(hook) => hook(&mut self.fault_rng, &payload),
                    None => None,
                };
                match mutated {
                    Some(m) => Rc::new(m),
                    None => {
                        // The mutation destroyed the frame: the receiver's
                        // decoder would reject it, so it never reaches the
                        // handler.
                        self.stats.record_corrupt_drop();
                        continue;
                    }
                }
            } else {
                Rc::clone(&payload)
            };
            let at = self.now + serialization + self.sample_latency(scope) + reorder;
            self.push_event(at, Queued::Deliver { to, from, payload: p });
        }
    }

    fn faults_for(&self, scope: Scope, from_lan: LanId, to_lan: LanId) -> FaultProfile {
        match scope {
            Scope::Lan => self.lan_faults[from_lan.index()],
            Scope::Wan => self
                .wan_pair_faults
                .get(&(from_lan, to_lan))
                .copied()
                .unwrap_or(self.wan_faults),
        }
    }

    fn sample_fault_loss(&mut self, faults: FaultProfile) -> bool {
        faults.loss > 0.0 && self.fault_rng.gen_bool(faults.loss)
    }

    /// Reserves the shared medium for `bytes` and returns the serialization
    /// delay from `now` until the transmission has fully left the sender
    /// (queueing behind earlier transmissions included). Zero-rate = ideal.
    fn reserve_medium(&mut self, scope: Scope, lan: LanId, bytes: u32) -> SimTime {
        let rate_kbps = match scope {
            Scope::Lan => self.cfg.lan_rate_kbps,
            Scope::Wan => self.cfg.wan_rate_kbps,
        };
        if rate_kbps == 0 {
            return 0;
        }
        // ms = bits / (kbits/s) = bytes*8 / rate_kbps
        let tx_ms = (u64::from(bytes) * 8).div_ceil(u64::from(rate_kbps)).max(1);
        let busy = match scope {
            Scope::Lan => &mut self.lan_busy_until[lan.index()],
            Scope::Wan => &mut self.wan_busy_until,
        };
        let start = (*busy).max(self.now);
        *busy = start + tx_ms;
        *busy - self.now
    }

    fn sample_loss(&mut self, scope: Scope) -> bool {
        let p = match scope {
            Scope::Lan => self.cfg.lan_loss,
            Scope::Wan => self.cfg.wan_loss,
        };
        p > 0.0 && self.link_rng.gen_bool(p)
    }

    fn sample_latency(&mut self, scope: Scope) -> SimTime {
        let (base, jitter) = match scope {
            Scope::Lan => (self.cfg.lan_latency, self.cfg.lan_jitter),
            Scope::Wan => (self.cfg.wan_latency, self.cfg.wan_jitter),
        };
        base + if jitter > 0 { self.link_rng.gen_range(0..=jitter) } else { 0 }
    }

    /// Queues an event at `at` (≥ `now`): O(1) into its wheel bucket when
    /// within the horizon, else into the far heap with a sequence stamp
    /// that preserves push order among same-time far events.
    fn push_event(&mut self, at: SimTime, ev: Queued<P>) {
        debug_assert!(at >= self.now, "events are never scheduled in the past");
        self.live_events += 1;
        if at - self.now < WHEEL_SPAN {
            self.bucket_insert(at, ev);
        } else {
            let seq = self.far_seq;
            self.far_seq += 1;
            self.far.push(Reverse(FarEvent { at, seq, ev }));
        }
    }

    fn bucket_insert(&mut self, at: SimTime, ev: Queued<P>) {
        let bi = (at as usize) & WHEEL_MASK;
        self.buckets[bi].push(ev);
        self.occupied[bi >> 6] |= 1u64 << (bi & 63);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        messages: Vec<(NodeId, String)>,
        timers: Vec<u64>,
        starts: u32,
    }

    impl NodeHandler<String> for Recorder {
        fn on_start(&mut self, _ctx: &mut Ctx<'_, String>) {
            self.starts += 1;
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, String>, from: NodeId, msg: String) {
            self.messages.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, String>, _t: TimerId, tag: u64) {
            self.timers.push(tag);
        }
    }

    fn two_lan_sim() -> (Sim<String>, LanId, LanId) {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let l1 = topo.add_lan();
        (Sim::new(SimConfig::default(), topo, 7), l0, l1)
    }

    #[test]
    fn unicast_lan_delivery_and_accounting() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(NodeId(1)), "hi".into(), 10, "test");
        });
        sim.run_until(100);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert_eq!(rec.messages, vec![(a, "hi".to_string())]);
        assert_eq!(sim.stats().lan_bytes, 10);
        assert_eq!(sim.stats().wan_bytes, 0);
        assert_eq!(sim.stats().delivered_messages, 1);
        assert_eq!(sim.events_processed(), 1);
    }

    #[test]
    fn unicast_wan_crosses_lans() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "wan".into(), 64, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().wan_bytes, 64);
        assert_eq!(sim.stats().lan_bytes, 0);
    }

    #[test]
    fn multicast_reaches_lan_only_charged_once() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        let c = sim.add_node(l0, Box::<Recorder>::default());
        let d = sim.add_node(l1, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let lan = ctx.lan();
            ctx.send(Destination::Multicast(lan), "probe".into(), 40, "probe");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
        assert_eq!(sim.handler::<Recorder>(c).unwrap().messages.len(), 1);
        assert_eq!(sim.handler::<Recorder>(d).unwrap().messages.len(), 0);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().messages.len(), 0, "sender excluded");
        assert_eq!(sim.stats().lan_bytes, 40, "broadcast medium charges once");
        assert_eq!(sim.stats().multicast_transmissions, 1);
    }

    #[test]
    fn crashed_node_receives_nothing_and_timers_die() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.set_timer(50, 1);
        });
        sim.crash_node(b);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "lost".into(), 8, "test");
        });
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert!(rec.messages.is_empty());
        assert!(rec.timers.is_empty());
        assert_eq!(sim.stats().dropped_messages, 1);
        // Bytes still charged: the sender transmitted.
        assert_eq!(sim.stats().lan_bytes, 8);
    }

    #[test]
    fn revive_reruns_on_start_and_discards_stale_timers() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.set_timer(50, 9);
        });
        sim.crash_node(a);
        sim.revive_node(a);
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(a).unwrap();
        assert_eq!(rec.starts, 2);
        assert!(rec.timers.is_empty(), "pre-crash timer must not fire after revive");
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let t = ctx.set_timer(50, 1);
            ctx.set_timer(60, 2);
            ctx.cancel_timer(t);
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers, vec![2]);
    }

    #[test]
    fn cancelling_reclaims_the_event_immediately() {
        // A cancelled timer must vacate its queue slot at cancel time, not
        // at its would-have-fired time (the old design tombstoned it).
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let t = ctx.set_timer(1_000_000, 1);
            ctx.cancel_timer(t);
        });
        assert_eq!(sim.pending_timer_count(), 0, "cancelled timer is not pending");
        assert_eq!(sim.queued_event_count(), 0, "its event slot was reclaimed");
        sim.run_until(2_000_000);
        assert!(sim.handler::<Recorder>(a).unwrap().timers.is_empty());
    }

    #[test]
    fn timer_bookkeeping_stays_bounded_over_long_soaks() {
        // Regression for the unbounded tombstone set: cancelling timers
        // that already fired used to insert entries nothing ever removed.
        // Now every pattern — cancel-before-fire, cancel-after-fire,
        // double-cancel, fire-without-cancel — leaves the pending map and
        // the slot table empty once the queue drains.
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let mut stale: Vec<TimerId> = Vec::new();
        for round in 0..1_000u64 {
            let ids = {
                let mut ids = (TimerId(0), TimerId(0));
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ids.0 = ctx.set_timer(5, round);
                    ids.1 = ctx.set_timer(7, round);
                });
                ids
            };
            // Cancel one before it fires; let the other fire, then cancel
            // it (and re-cancel an older fired one) — the leak pattern.
            sim.with_node::<Recorder>(a, |_, ctx| ctx.cancel_timer(ids.0));
            sim.run_until(sim.now() + 20);
            sim.with_node::<Recorder>(a, |_, ctx| {
                ctx.cancel_timer(ids.1);
                if let Some(&old) = stale.first() {
                    ctx.cancel_timer(old);
                }
            });
            stale.push(ids.1);
            assert!(
                sim.pending_timer_count() <= 2,
                "round {round}: pending map grew to {}",
                sim.pending_timer_count()
            );
        }
        sim.run_until(sim.now() + 1_000);
        assert_eq!(sim.pending_timer_count(), 0, "all timers fired or cancelled");
        assert_eq!(sim.queued_event_count(), 0, "no events left queued");
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers.len(), 1_000);
    }

    #[test]
    fn partition_blocks_wan_until_heal() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        sim.schedule(10, ControlAction::Partition(vec![vec![l0], vec![l1]]));
        sim.schedule(100, ControlAction::HealPartition);
        sim.run_until(20);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "blocked".into(), 8, "test");
        });
        sim.run_until(90);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        sim.run_until(110);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "open".into(), 8, "test");
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, l0, l1) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l1, Box::<Recorder>::default());
            for i in 0..50 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 16, "test");
                });
                sim.run_until(sim.now() + 10);
            }
            sim.run_until(10_000);
            (
                sim.stats().total_bytes(),
                sim.handler::<Recorder>(b).unwrap().messages.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unicast_to_unknown_node_is_dropped_not_a_panic() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            // A corrupted frame could name a node that was never added.
            ctx.send(Destination::Unicast(NodeId(999)), "void".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.stats().dropped_messages, 1);
    }

    #[test]
    fn duplication_delivers_twice_and_counts() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_lan_faults(l0, FaultProfile { duplicate: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "dup".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 2);
        assert_eq!(sim.stats().duplicated_messages, 1);
        // One logical transmission on the wire.
        assert_eq!(sim.stats().lan_messages, 1);
    }

    #[test]
    fn corruption_without_hook_destroys_frames() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_lan_faults(l0, FaultProfile { corrupt: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "gone".into(), 8, "test");
        });
        sim.run_until(100);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        assert_eq!(sim.stats().corrupted_messages, 1);
        assert_eq!(sim.stats().corrupt_dropped_messages, 1);
    }

    #[test]
    fn corruption_hook_rewrites_payloads() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_corruptor(|_rng, p: &String| Some(format!("{p}?")));
        sim.set_lan_faults(l0, FaultProfile { corrupt: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "msg".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages, vec![(a, "msg?".to_string())]);
        assert_eq!(sim.stats().corrupted_messages, 1);
        assert_eq!(sim.stats().corrupt_dropped_messages, 0);
    }

    #[test]
    fn corruptor_mutation_is_copy_on_write() {
        // A corrupted copy must materialize its own payload: every receiver
        // whose copy was NOT corrupted sees the original bytes, however the
        // copies share the underlying allocation.
        let mut saw_mixed_multicast = false;
        for seed in 0..50 {
            let mut topo = Topology::new();
            let l0 = topo.add_lan();
            let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, seed);
            let sender = sim.add_node(l0, Box::<Recorder>::default());
            let receivers: Vec<NodeId> =
                (0..6).map(|_| sim.add_node(l0, Box::<Recorder>::default())).collect();
            sim.set_corruptor(|_rng, p: &String| Some(format!("{p}!")));
            sim.set_lan_faults(l0, FaultProfile { corrupt: 0.5, ..Default::default() });
            sim.with_node::<Recorder>(sender, |_, ctx| {
                let lan = ctx.lan();
                ctx.send(Destination::Multicast(lan), "original".into(), 16, "test");
            });
            sim.run_until(1_000);
            let mut got_original = 0;
            let mut got_mutated = 0;
            for &r in &receivers {
                for (_, m) in &sim.handler::<Recorder>(r).unwrap().messages {
                    match m.as_str() {
                        "original" => got_original += 1,
                        "original!" => got_mutated += 1,
                        other => panic!("seed {seed}: unexpected payload {other:?}"),
                    }
                }
            }
            if got_original > 0 && got_mutated > 0 {
                saw_mixed_multicast = true;
                break;
            }
        }
        assert!(
            saw_mixed_multicast,
            "no seed in 0..50 corrupted some copies of one multicast but not others"
        );
    }

    #[test]
    fn duplicated_copies_are_independently_corruptible() {
        // Duplicate + corrupt: the two copies of one delivery share the
        // payload until the corruptor forks one; the other copy must arrive
        // intact.
        let mut saw_split = false;
        for seed in 0..50 {
            let mut topo = Topology::new();
            let l0 = topo.add_lan();
            let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, seed);
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l0, Box::<Recorder>::default());
            sim.set_corruptor(|_rng, p: &String| Some(format!("{p}!")));
            sim.set_lan_faults(
                l0,
                FaultProfile { duplicate: 1.0, corrupt: 0.5, ..Default::default() },
            );
            sim.with_node::<Recorder>(a, |_, ctx| {
                ctx.send(Destination::Unicast(b), "frame".into(), 8, "test");
            });
            sim.run_until(1_000);
            let msgs: Vec<&str> = sim
                .handler::<Recorder>(b)
                .unwrap()
                .messages
                .iter()
                .map(|(_, m)| m.as_str())
                .collect();
            assert_eq!(msgs.len(), 2, "seed {seed}: duplicate delivers two copies");
            if msgs.contains(&"frame") && msgs.contains(&"frame!") {
                saw_split = true;
                break;
            }
        }
        assert!(saw_split, "no seed in 0..50 corrupted exactly one duplicate copy");
    }

    #[test]
    fn scheduled_fault_window_opens_and_clears() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        let lossy = FaultProfile { loss: 1.0, ..Default::default() };
        sim.schedule(10, ControlAction::SetLanFaults(l0, lossy));
        sim.schedule(100, ControlAction::ClearFaults);
        sim.run_until(20);
        assert_eq!(sim.lan_faults(l0), lossy, "window open");
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "in-window".into(), 8, "test");
        });
        sim.run_until(110);
        assert!(sim.lan_faults(l0).is_quiet(), "window cleared");
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "after".into(), 8, "test");
        });
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert_eq!(rec.messages.len(), 1, "only the post-window message arrives");
        assert_eq!(rec.messages[0].1, "after");
    }

    #[test]
    fn reorder_jitter_can_swap_deliveries() {
        // With a large reorder bound and zero base jitter, two back-to-back
        // messages eventually arrive swapped for some seed.
        let mut swapped = false;
        for seed in 0..20 {
            let mut topo = Topology::new();
            let l0 = topo.add_lan();
            let cfg = SimConfig { lan_jitter: 0, ..Default::default() };
            let mut sim: Sim<String> = Sim::new(cfg, topo, seed);
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l0, Box::<Recorder>::default());
            sim.set_lan_faults(l0, FaultProfile { reorder_jitter: 50, ..Default::default() });
            sim.with_node::<Recorder>(a, |_, ctx| {
                ctx.send(Destination::Unicast(b), "first".into(), 8, "test");
                ctx.send(Destination::Unicast(b), "second".into(), 8, "test");
            });
            sim.run_until(1_000);
            let rec = sim.handler::<Recorder>(b).unwrap();
            assert_eq!(rec.messages.len(), 2, "reordering never loses messages");
            if rec.messages[0].1 == "second" {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "no seed in 0..20 produced a swap");
    }

    #[test]
    fn fault_free_runs_unchanged_by_fault_layer_presence() {
        // A quiet profile must not consume fault RNG draws: a run with the
        // default profiles is byte-identical to one where a window opened
        // and closed before any traffic.
        let run = |pre_window: bool| {
            let (mut sim, l0, l1) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l1, Box::<Recorder>::default());
            if pre_window {
                sim.set_wan_faults(FaultProfile { duplicate: 0.9, ..Default::default() });
                sim.clear_faults();
            }
            for i in 0..50 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 16, "test");
                });
                sim.run_until(sim.now() + 10);
            }
            sim.run_until(10_000);
            sim.handler::<Recorder>(b).unwrap().messages.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn asymmetric_pair_faults_hit_one_direction_only() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        // Lose everything l1 → l0; the l0 → l1 direction stays clean.
        sim.set_wan_pair_faults(l1, l0, FaultProfile { loss: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "request".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1, "forward direction clean");
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.send(Destination::Unicast(a), "reply".into(), 8, "test");
        });
        sim.run_until(200);
        assert!(sim.handler::<Recorder>(a).unwrap().messages.is_empty(), "reply direction lossy");
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.clear_faults();
        assert!(sim.wan_pair_faults(l1, l0).is_none(), "clear_faults drops overrides");
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.send(Destination::Unicast(a), "reply2".into(), 8, "test");
        });
        sim.run_until(300);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().messages.len(), 1);
    }

    #[test]
    fn wan_pair_cut_blocks_only_that_pair() {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let l1 = topo.add_lan();
        let l2 = topo.add_lan();
        let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, 7);
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        let c = sim.add_node(l2, Box::<Recorder>::default());
        sim.schedule(10, ControlAction::CutWanPair(l0, l1));
        sim.run_until(20);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "cut".into(), 8, "test");
            ctx.send(Destination::Unicast(c), "open".into(), 8, "test");
        });
        sim.run_until(100);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        assert_eq!(sim.handler::<Recorder>(c).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().wan_cut_drops, 1);
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.schedule(110, ControlAction::HealWanPair(l0, l1));
        sim.run_until(120);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "healed".into(), 8, "test");
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn derived_ctx_streams_do_not_perturb_the_node_stream() {
        // Deriving (and draining) a labelled sub-stream must leave the
        // node's main RNG draws untouched, and the sub-stream must be
        // stable across runs.
        let run = |derive: bool| {
            let (mut sim, l0, _) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let mut side = Vec::new();
            let mut main = Vec::new();
            sim.with_node::<Recorder>(a, |_, ctx| {
                if derive {
                    let mut r = ctx.derive_rng("test.side");
                    side = (0..8).map(|_| r.next_u64()).collect();
                }
                main = (0..8).map(|_| ctx.rng().next_u64()).collect();
            });
            (main, side)
        };
        let (main_plain, _) = run(false);
        let (main_derived, side1) = run(true);
        let (_, side2) = run(true);
        assert_eq!(main_plain, main_derived, "derive_rng must not consume node draws");
        assert_eq!(side1, side2, "derived stream is deterministic");
        assert_ne!(main_plain, side1, "derived stream is a different stream");
    }

    #[test]
    fn lazy_node_rng_matches_eager_seeding_and_stays_unmaterialized() {
        // The lazily created stream must be exactly the stream eager
        // creation produced (it is a pure function of the derived seed) —
        // and a node that never draws must never materialize one.
        let (mut sim, l0, _) = two_lan_sim();
        let drawer = sim.add_node(l0, Box::<Recorder>::default());
        let idle = sim.add_node(l0, Box::<Recorder>::default());
        let mut drawn = Vec::new();
        sim.with_node::<Recorder>(drawer, |_, ctx| {
            drawn = (0..4).map(|_| ctx.rng().next_u64()).collect();
        });
        let expected: Vec<u64> = {
            let mut r = Seed(7).derive_idx("simnet.node", u64::from(drawer.0)).rng();
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(drawn, expected, "lazy stream == eagerly seeded stream");
        assert!(sim.rngs[drawer.index()].is_some(), "drawing node materialized");
        assert!(sim.rngs[idle.index()].is_none(), "idle node never materialized");
    }

    #[test]
    fn timers_across_the_wheel_horizon_fire_in_schedule_order() {
        // Delays straddling WHEEL_SPAN: near ones go straight to buckets,
        // far ones park in the heap and migrate as the clock approaches.
        // Same-delay pairs must fire in set order (FIFO within a time).
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let delays: &[u64] =
            &[10, WHEEL_SPAN - 1, WHEEL_SPAN, WHEEL_SPAN + 1, 3 * WHEEL_SPAN, 10 * WHEEL_SPAN, 10 * WHEEL_SPAN];
        sim.with_node::<Recorder>(a, |_, ctx| {
            // Tag = schedule index; set in shuffled order so fire order is
            // decided by (time, set-order), not by tag.
            for &(i, d) in &[(4u64, delays[4]), (0, delays[0]), (5, delays[5]), (2, delays[2]), (1, delays[1]), (6, delays[6]), (3, delays[3])] {
                ctx.set_timer(d, i);
            }
        });
        sim.run_until(20 * WHEEL_SPAN);
        // Sort schedule entries by (delay, set order): set order above was
        // 4,0,5,2,1,6,3 → expected fire order by time then set order.
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(sim.pending_timer_count(), 0);
        assert_eq!(sim.queued_event_count(), 0);
    }

    #[test]
    fn cancelling_a_far_timer_reclaims_it_immediately() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let t = ctx.set_timer(100 * WHEEL_SPAN, 1);
            ctx.cancel_timer(t);
            ctx.set_timer(2 * WHEEL_SPAN, 2);
        });
        assert_eq!(sim.pending_timer_count(), 1);
        assert_eq!(sim.queued_event_count(), 1);
        let end = sim.run_to_quiescence(SimTime::MAX);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers, vec![2]);
        // The cancelled far timer still advances the clock when its ghost
        // entry surfaces (same semantics as the old dead heap keys).
        assert_eq!(end, 100 * WHEEL_SPAN);
    }

    #[test]
    fn with_node_on_dead_node_is_noop() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.crash_node(a);
        let mut called = false;
        sim.with_node::<Recorder>(a, |_, _| called = true);
        assert!(!called);
    }

    /// A handler that reads deliveries through the shared reference without
    /// ever cloning the payload (the zero-copy fast path).
    #[derive(Default)]
    struct SharedReader {
        seen: Vec<String>,
    }

    impl NodeHandler<String> for SharedReader {
        fn on_shared_message(
            &mut self,
            _ctx: &mut Ctx<'_, String>,
            _from: NodeId,
            msg: Rc<String>,
        ) {
            self.seen.push((*msg).clone());
        }
    }

    #[test]
    fn shared_and_owning_handlers_observe_identical_payloads() {
        let (mut sim, l0, _) = two_lan_sim();
        let sender = sim.add_node(l0, Box::<Recorder>::default());
        let owning = sim.add_node(l0, Box::<Recorder>::default());
        let shared = sim.add_node(l0, Box::<SharedReader>::default());
        sim.with_node::<Recorder>(sender, |_, ctx| {
            let lan = ctx.lan();
            ctx.send(Destination::Multicast(lan), "announce".into(), 24, "test");
        });
        sim.run_until(100);
        let o = &sim.handler::<Recorder>(owning).unwrap().messages;
        let s = &sim.handler::<SharedReader>(shared).unwrap().seen;
        assert_eq!(o, &vec![(sender, "announce".to_string())]);
        assert_eq!(s, &vec!["announce".to_string()]);
    }
}
