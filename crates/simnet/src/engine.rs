//! The simulation coordinator.
//!
//! Performance model (DESIGN §11, §14): the engine is allocation-lean on its
//! hot paths and, since the parallel-engine work, partitionable. All event
//! dispatch lives in [`crate::domain::Domain`] — a share-nothing partition
//! holding a calendar timing wheel, struct-of-arrays node state, and its
//! LANs' RNG/fault/busy state. [`Sim`] owns the domains plus the shared
//! world (config, topology, global→local maps, WAN fault profiles) and
//! coordinates execution:
//!
//! * **Legacy mode** (one domain — the default): bit-for-bit the historical
//!   sequential engine, single `simnet.link`/`simnet.fault` RNG streams and
//!   all. The chaos-soak golden digests pin this path.
//! * **Partitioned mode** (≥2 domains, [`Sim::new_partitioned`]): domains
//!   advance concurrently under a conservative-lookahead barrier. The
//!   lookahead is the WAN latency floor: within a window `[T, T+L)` every
//!   cross-domain message generated at `τ ≥ T` arrives at `τ + L ≥ T + L`,
//!   i.e. beyond the window — so domains cannot affect each other inside a
//!   window and each window is safe to run in parallel. Cross messages are
//!   exchanged at barriers in fixed (source, destination, push) order, so
//!   the result is a pure function of the seed: worker count has zero
//!   observable effect.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::rc::Rc;

use sds_rand::{Rng, Seed};

use crate::domain::{CapCell, Domain, ExecMode, Queued, RunOutcome, World};
use crate::handler::{Ctx, NodeHandler};
use crate::ids::{LanId, NodeId};
use crate::par::{run_domains, PartitionPlan};
use crate::stats::NetStats;
use crate::time::SimTime;
use crate::topology::Topology;

/// A modeled per-node processing budget: how many deliveries the node can
/// absorb per simulated tick, and how many may wait in its bounded ingress
/// queue before further arrivals are dropped at the door. Attached per node
/// (see [`Sim::set_node_capacity`]) or as a world default
/// ([`SimConfig::node_capacity`]); `None` — the default everywhere — is the
/// historical unbounded model. Admission is pure arithmetic off the arrival
/// schedule (no RNG draws), so capped runs are exactly as deterministic as
/// uncapped ones.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NodeCapacity {
    /// Deliveries the node processes per simulated tick (≥ 1 is assumed;
    /// 0 is treated as 1).
    pub ops_per_tick: u32,
    /// Bound on deliveries waiting for a processing slot (queued work,
    /// including the current tick's in-progress ops). Arrivals beyond it
    /// are counted in [`crate::NetStats::capacity_dropped_messages`].
    pub queue_limit: u32,
}

/// Link-layer parameters. Defaults model a fast wired LAN and a slow WAN;
/// experiments override them to model wireless/tactical links.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Base one-way LAN latency.
    pub lan_latency: SimTime,
    /// Uniform extra LAN jitter in `[0, lan_jitter]`.
    pub lan_jitter: SimTime,
    /// Base one-way WAN latency. Also the parallel engine's lookahead
    /// horizon: partitioned execution requires it to be ≥ 1.
    pub wan_latency: SimTime,
    /// Uniform extra WAN jitter in `[0, wan_jitter]`.
    pub wan_jitter: SimTime,
    /// Probability a LAN transmission is lost (per receiver for multicast).
    pub lan_loss: f64,
    /// Probability a WAN transmission is lost.
    pub wan_loss: f64,
    /// Shared LAN medium capacity in kilobits per second (0 = unlimited).
    /// Each LAN is one half-duplex broadcast channel: transmissions
    /// serialize, so big semantic advertisements delay everything behind
    /// them — the paper's "wireless connections with low network capacity".
    pub lan_rate_kbps: u32,
    /// Shared WAN uplink capacity in kilobits per second (0 = unlimited).
    /// Modeled as one shared pipe (a tactical reach-back link) in legacy
    /// mode; partitioned mode gives each LAN its own uplink of this rate
    /// (a shared pipe would couple the domains).
    pub wan_rate_kbps: u32,
    /// Default processing budget applied to every node added after
    /// construction (`None` = unbounded, the historical model — the golden
    /// digests pin this default). Override per node with
    /// [`Sim::set_node_capacity`].
    pub node_capacity: Option<NodeCapacity>,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            lan_latency: 1,
            lan_jitter: 1,
            wan_latency: 20,
            wan_jitter: 5,
            lan_loss: 0.0,
            wan_loss: 0.0,
            lan_rate_kbps: 0,
            wan_rate_kbps: 0,
            node_capacity: None,
        }
    }
}

/// Per-scope fault-injection knobs, layered on top of the base link model.
///
/// A profile applies to every delivery crossing its scope (one LAN medium,
/// or the WAN). All knobs default to zero — a default profile injects
/// nothing and draws nothing from the fault RNG stream, so fault-free runs
/// are bit-identical with pre-fault-layer builds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultProfile {
    /// Extra loss probability, on top of the `SimConfig` loss.
    pub loss: f64,
    /// Probability a delivery is duplicated (a second copy is scheduled
    /// with independently sampled latency, so it may arrive first).
    pub duplicate: f64,
    /// Probability a delivery is corrupted: the payload is routed through
    /// the corruption hook (see [`Sim::set_corruptor`]); without a hook the
    /// frame is destroyed outright.
    pub corrupt: f64,
    /// Bound on extra, uniformly sampled delivery delay. This models
    /// reordering: any two messages whose delivery windows overlap can
    /// arrive in either order.
    pub reorder_jitter: SimTime,
}

impl FaultProfile {
    /// True when the profile injects nothing.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// A scheduled change to the world, for scripting scenarios
/// ("at t=60s LAN 2 loses its registry", "at t=120s the WAN partitions",
/// "LAN 2 lossy from 30 s to 60 s").
#[derive(Clone, Debug)]
pub enum ControlAction {
    /// Take a node down: it stops receiving messages and all its pending
    /// timers are discarded.
    Crash(NodeId),
    /// Bring a crashed node back; `on_start` runs again.
    Revive(NodeId),
    /// Partition the WAN into the given LAN groups (see
    /// [`Topology::partition`]).
    Partition(Vec<Vec<LanId>>),
    /// Heal all WAN partitions.
    HealPartition,
    /// Replace one LAN's fault profile (in effect until overwritten).
    SetLanFaults(LanId, FaultProfile),
    /// Replace the WAN fault profile (in effect until overwritten).
    SetWanFaults(FaultProfile),
    /// Replace the fault profile for one WAN *direction* `from → to`,
    /// overriding the symmetric WAN profile for deliveries that way only.
    /// Models asymmetric links: a request can arrive while its reply is
    /// lost.
    SetWanPairFaults(LanId, LanId, FaultProfile),
    /// Cut the WAN between one pair of LANs (both directions), leaving
    /// every other WAN route up (see [`Topology::cut_wan_pair`]).
    CutWanPair(LanId, LanId),
    /// Heal one previously cut WAN pair.
    HealWanPair(LanId, LanId),
    /// Reset every fault profile (per-LAN, WAN, per-direction overrides) to
    /// the fault-free default. Does not heal partitions or pair cuts.
    ClearFaults,
}

/// The payload corruption hook: given the fault RNG and the in-flight
/// payload, returns the corrupted payload to deliver, or `None` when the
/// corruption rendered the frame undecodable (it is then dropped and
/// counted). The discovery stack installs encode → byte-mutation → decode.
/// `Send` because the hook lives inside a domain, and domains migrate
/// across worker threads between lookahead windows.
pub type Corruptor<P> = Box<dyn FnMut(&mut Rng, &P) -> Option<P> + Send>;

/// A scheduled control action, held coordinator-side in partitioned mode
/// (controls mutate the shared world, so they can only apply at barriers).
/// Ordered by `(at, seq)` — schedule order breaks same-time ties.
struct CtlEvent {
    at: SimTime,
    seq: u64,
    action: ControlAction,
}

impl PartialEq for CtlEvent {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for CtlEvent {}
impl PartialOrd for CtlEvent {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for CtlEvent {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Borrows the coordinator's shared, read-only world for a domain run.
/// A macro (not a method) so the borrow is split per field: the domains
/// stay mutably borrowable alongside it.
macro_rules! world {
    ($s:expr) => {
        World {
            cfg: &$s.cfg,
            topo: &$s.topo,
            node_local: &$s.node_local,
            lan_domain: &$s.lan_domain,
            lan_local: &$s.lan_local,
            wan_faults: $s.wan_faults,
            wan_pair_faults: &$s.wan_pair_faults,
        }
    };
}

/// The simulator: topology + node handlers + event queue + accounting.
///
/// `P` is the payload type carried by every message (the discovery stack
/// instantiates it with its wire message type). In-flight payloads are
/// shared (`Rc<P>`) *within a domain*; `P: Clone` is needed only to
/// materialize owned copies for handlers that take delivery by value, for
/// corruptor mutations, and for duplicated cross-domain copies. `P: Send`
/// because payloads (inside their domain) migrate across worker threads
/// between lookahead windows.
pub struct Sim<P> {
    cfg: SimConfig,
    topo: Topology,
    seed: u64,
    mode: ExecMode,
    /// Worker-thread budget for partitioned windows (1 = run inline).
    workers: usize,
    pub(crate) domains: Vec<Domain<P>>,
    /// Global node id → owning domain / slot within it.
    node_domain: Vec<u16>,
    node_local: Vec<u32>,
    /// Global LAN id → owning domain / slot within it.
    lan_domain: Vec<u16>,
    lan_local: Vec<u32>,
    /// WAN fault profile (part of the shared world: every domain reads it).
    wan_faults: FaultProfile,
    /// Per-direction WAN overrides, keyed by `(from_lan, to_lan)`. A
    /// present entry replaces `wan_faults` for deliveries in that direction.
    wan_pair_faults: BTreeMap<(LanId, LanId), FaultProfile>,
    /// Partitioned mode: scheduled controls, applied at window barriers.
    /// (Legacy mode keeps controls in the wheel for historical dispatch
    /// interleaving.)
    controls: BinaryHeap<Reverse<CtlEvent>>,
    control_seq: u64,
    ctl_processed: u64,
    /// Run-wide traffic counters, merged from the per-domain books after
    /// every mutating call (see [`Sim::refresh_stats`]).
    stats_cache: NetStats,
}

impl<P: Clone + Send + 'static> Sim<P> {
    /// Creates a simulator over `topo`. `seed` fixes every random choice in
    /// the run (link loss, jitter, each node's private RNG). Single-domain
    /// legacy execution: bit-for-bit the historical sequential engine.
    pub fn new(cfg: SimConfig, topo: Topology, seed: u64) -> Self {
        Self::new_partitioned(cfg, topo, seed, PartitionPlan::Single)
    }

    /// Creates a simulator whose LANs are grouped into share-nothing
    /// domains per `plan`. With one resulting domain this is exactly
    /// [`Sim::new`]; with more, execution is partitioned (its own
    /// deterministic semantics — per-sender-LAN RNG streams, node-scoped
    /// timer ids, per-LAN WAN uplinks; see DESIGN §14) and
    /// [`Sim::set_workers`] controls how many threads run the windows.
    pub fn new_partitioned(cfg: SimConfig, topo: Topology, seed: u64, plan: PartitionPlan) -> Self {
        let lan_count = topo.lan_count();
        // Outbox storage is D² vectors and every barrier scans them, so
        // more domains than worker threads could ever use is pure overhead.
        let max_domains = lan_count.max(1).min(1024);
        let n = match plan {
            PartitionPlan::Single => 1,
            PartitionPlan::PerLan => max_domains,
            PartitionPlan::Domains(n) => n.clamp(1, max_domains),
        };
        let mode = if n == 1 { ExecMode::Legacy } else { ExecMode::Partitioned };
        if mode == ExecMode::Partitioned {
            assert!(
                cfg.wan_latency >= 1,
                "partitioned execution needs a nonzero WAN latency floor: it is the lookahead horizon"
            );
        }
        let mut lan_domain = Vec::with_capacity(lan_count);
        let mut lan_local = Vec::with_capacity(lan_count);
        let mut domain_lans: Vec<Vec<LanId>> = (0..n).map(|_| Vec::new()).collect();
        for l in 0..lan_count {
            let di = l % n;
            lan_domain.push(di as u16);
            lan_local.push(domain_lans[di].len() as u32);
            domain_lans[di].push(LanId(l as u16));
        }
        let domains = domain_lans
            .into_iter()
            .enumerate()
            .map(|(i, lans)| Domain::new(i as u16, mode, seed, lans, n))
            .collect();
        Self {
            cfg,
            topo,
            seed,
            mode,
            workers: 1,
            domains,
            node_domain: Vec::new(),
            node_local: Vec::new(),
            lan_domain,
            lan_local,
            wan_faults: FaultProfile::default(),
            wan_pair_faults: BTreeMap::new(),
            controls: BinaryHeap::new(),
            control_seq: 0,
            ctl_processed: 0,
            stats_cache: NetStats::default(),
        }
    }

    /// Sets the worker-thread budget for partitioned windows (clamped to at
    /// least 1; capped at the domain count when running). No observable
    /// effect on simulation results — only on wall-clock time.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// Adds a node on `lan` with the given behaviour; `on_start` runs at the
    /// current simulated time (time 0 for setup-phase adds).
    pub fn add_node(&mut self, lan: LanId, handler: Box<dyn NodeHandler<P>>) -> NodeId {
        let id = NodeId(self.node_domain.len() as u32);
        self.topo.attach_node(id, lan);
        let di = self.lan_domain[lan.index()];
        let node_seed = Seed(self.seed).derive_idx("simnet.node", u64::from(id.0));
        let li = self.domains[di as usize].nodes.push(id, handler, node_seed);
        self.node_domain.push(di);
        self.node_local.push(li);
        if let Some(cap) = self.cfg.node_capacity {
            self.domains[di as usize].nodes.caps[li as usize] =
                Some(Box::new(CapCell { cap, next_tick: 0, used: 0 }));
        }
        self.invoke_node(id, |h, ctx| h.on_start(ctx));
        self.flush_outboxes();
        self.refresh_stats();
        id
    }

    /// Replaces one node's processing budget (see [`NodeCapacity`]);
    /// `None` restores the unbounded model. Takes effect for deliveries
    /// dispatched after the call; already-admitted (deferred) deliveries
    /// keep their slots.
    pub fn set_node_capacity(&mut self, node: NodeId, cap: Option<NodeCapacity>) {
        let di = self.node_domain[node.index()] as usize;
        let li = self.node_local[node.index()] as usize;
        self.domains[di].nodes.caps[li] =
            cap.map(|cap| Box::new(CapCell { cap, next_tick: 0, used: 0 }));
    }

    /// Current simulated time. Domains share a clock at every public entry
    /// point (runs uniformize before returning), so the max is *the* time.
    pub fn now(&self) -> SimTime {
        self.domains.iter().map(|d| d.core.now).max().unwrap_or(0)
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Traffic counters accumulated so far (run-wide: merged across
    /// domains).
    pub fn stats(&self) -> &NetStats {
        &self.stats_cache
    }

    /// Resets the traffic counters (useful to measure only the steady state
    /// after a warm-up phase).
    pub fn reset_stats(&mut self) {
        for d in &mut self.domains {
            d.stats = NetStats::default();
        }
        self.stats_cache = NetStats::default();
    }

    /// Deliveries handed to one node's handler so far (the per-node column
    /// of the struct-of-arrays stats).
    pub fn node_deliveries(&self, node: NodeId) -> u64 {
        let di = self.node_domain[node.index()] as usize;
        self.domains[di].nodes.delivered[self.node_local[node.index()] as usize]
    }

    /// Events dispatched so far (deliveries, timer fires, control actions;
    /// cancelled timers are reclaimed without dispatching and do not
    /// count). The engine-throughput denominator for scaling benches.
    pub fn events_processed(&self) -> u64 {
        self.domains.iter().map(|d| d.events_processed).sum::<u64>() + self.ctl_processed
    }

    /// Timers set but not yet fired or cancelled. Bounded by construction:
    /// entries leave the pending map on fire and on cancel (the old
    /// tombstone design grew without bound when timers were cancelled after
    /// firing).
    pub fn pending_timer_count(&self) -> usize {
        self.domains.iter().map(|d| d.timer_slots.len()).sum()
    }

    /// Events currently queued (deliveries in flight, pending timers,
    /// scheduled controls). Cancelled timers leave the count immediately,
    /// so this tracks live events only.
    pub fn queued_event_count(&self) -> usize {
        self.domains.iter().map(|d| d.core.live_events).sum::<usize>() + self.controls.len()
    }

    /// Whether a node is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        let di = self.node_domain[node.index()] as usize;
        self.domains[di].nodes.alive[self.node_local[node.index()] as usize]
    }

    /// Immediately crashes a node (see [`ControlAction::Crash`]).
    pub fn crash_node(&mut self, node: NodeId) {
        let di = self.node_domain[node.index()] as usize;
        let li = self.node_local[node.index()] as usize;
        let d = &mut self.domains[di];
        if d.nodes.alive[li] {
            d.nodes.alive[li] = false;
            d.nodes.epoch[li] += 1;
        }
    }

    /// Immediately revives a crashed node and reruns its `on_start`.
    pub fn revive_node(&mut self, node: NodeId) {
        let di = self.node_domain[node.index()] as usize;
        let li = self.node_local[node.index()] as usize;
        if !self.domains[di].nodes.alive[li] {
            self.domains[di].nodes.alive[li] = true;
            self.domains[di].nodes.epoch[li] += 1;
            self.invoke_node(node, |h, ctx| h.on_start(ctx));
            self.flush_outboxes();
            self.refresh_stats();
        }
    }

    /// Schedules a control action at an absolute simulated time. Legacy
    /// mode queues it in the wheel (historical dispatch interleaving with
    /// same-time traffic, pinned by the golden digests); partitioned mode
    /// holds it coordinator-side and applies it at a window barrier,
    /// *before* same-time events.
    pub fn schedule(&mut self, at: SimTime, action: ControlAction) {
        assert!(at >= self.now(), "cannot schedule in the past");
        match self.mode {
            ExecMode::Legacy => self.domains[0].core.push_event(at, Queued::Control(action)),
            ExecMode::Partitioned => {
                let seq = self.control_seq;
                self.control_seq += 1;
                self.controls.push(Reverse(CtlEvent { at, seq, action }));
            }
        }
    }

    /// Replaces one LAN's fault profile, effective immediately.
    pub fn set_lan_faults(&mut self, lan: LanId, faults: FaultProfile) {
        assert!(lan.index() < self.lan_domain.len(), "unknown LAN {lan:?}");
        let di = self.lan_domain[lan.index()] as usize;
        let ll = self.lan_local[lan.index()] as usize;
        self.domains[di].lan_faults[ll] = faults;
    }

    /// Replaces the WAN fault profile, effective immediately.
    pub fn set_wan_faults(&mut self, faults: FaultProfile) {
        self.wan_faults = faults;
    }

    /// Replaces the fault profile for the WAN direction `from → to`,
    /// effective immediately. A quiet profile still overrides the symmetric
    /// WAN profile for that direction (use [`Sim::clear_faults`] or re-set
    /// the override to drop it).
    pub fn set_wan_pair_faults(&mut self, from: LanId, to: LanId, faults: FaultProfile) {
        assert!(from.index() < self.lan_domain.len(), "unknown LAN {from:?}");
        assert!(to.index() < self.lan_domain.len(), "unknown LAN {to:?}");
        self.wan_pair_faults.insert((from, to), faults);
    }

    /// The per-direction override for `from → to`, if one is set.
    pub fn wan_pair_faults(&self, from: LanId, to: LanId) -> Option<FaultProfile> {
        self.wan_pair_faults.get(&(from, to)).copied()
    }

    /// Cuts the WAN between one pair of LANs (see
    /// [`Topology::cut_wan_pair`]).
    pub fn cut_wan_pair(&mut self, a: LanId, b: LanId) {
        self.topo.cut_wan_pair(a, b);
    }

    /// Heals one previously cut WAN pair.
    pub fn heal_wan_pair(&mut self, a: LanId, b: LanId) {
        self.topo.heal_wan_pair(a, b);
    }

    /// Resets every fault profile (including per-direction overrides) to
    /// the fault-free default. Partitions and pair cuts are left alone.
    pub fn clear_faults(&mut self) {
        for d in &mut self.domains {
            d.lan_faults.fill(FaultProfile::default());
        }
        self.wan_faults = FaultProfile::default();
        self.wan_pair_faults.clear();
    }

    /// The fault profile currently applied to a LAN.
    pub fn lan_faults(&self, lan: LanId) -> FaultProfile {
        let di = self.lan_domain[lan.index()] as usize;
        self.domains[di].lan_faults[self.lan_local[lan.index()] as usize]
    }

    /// The fault profile currently applied to the WAN.
    pub fn wan_faults(&self) -> FaultProfile {
        self.wan_faults
    }

    /// Installs the payload corruption hook used when a
    /// [`FaultProfile::corrupt`] roll fires. The discovery stack installs
    /// encode → seeded byte-mutation → decode here, so corruption exercises
    /// the real wire decoder; `None` means the frame no longer decodes and
    /// is dropped (counted in [`NetStats::corrupt_dropped_messages`]).
    ///
    /// Single-domain only: a multi-domain sim needs one hook instance per
    /// domain — use [`Sim::set_corruptor_factory`].
    pub fn set_corruptor(&mut self, hook: impl FnMut(&mut Rng, &P) -> Option<P> + Send + 'static) {
        assert!(
            self.domains.len() == 1,
            "set_corruptor on a multi-domain sim: use set_corruptor_factory \
             (each share-nothing domain needs its own hook instance)"
        );
        self.domains[0].corruptor = Some(Box::new(hook));
    }

    /// Installs one corruption-hook instance *per domain*, built by
    /// `factory`. Equivalent to [`Sim::set_corruptor`] on a single-domain
    /// sim; required for partitioned sims (domains run concurrently, so the
    /// hook cannot be shared).
    pub fn set_corruptor_factory(&mut self, factory: impl Fn() -> Corruptor<P>) {
        for d in &mut self.domains {
            d.corruptor = Some(factory());
        }
    }

    /// Borrows a handler downcast to its concrete type, for inspection.
    /// Returns `None` for a wrong type or unknown node.
    pub fn handler<T: 'static>(&self, node: NodeId) -> Option<&T> {
        let di = *self.node_domain.get(node.index())? as usize;
        let li = *self.node_local.get(node.index())? as usize;
        self.domains[di].nodes.handlers[li]
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable variant of [`Sim::handler`], for test instrumentation.
    pub fn handler_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        let di = *self.node_domain.get(node.index())? as usize;
        let li = *self.node_local.get(node.index())? as usize;
        self.domains[di].nodes.handlers[li]
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Runs the handler callback `f` on a live node right now, applying its
    /// queued actions. This is how experiments inject work ("client 3 issues
    /// a query at t=10s") without going through the network.
    pub fn with_node<T: 'static>(&mut self, node: NodeId, f: impl FnOnce(&mut T, &mut Ctx<'_, P>)) {
        if !self.is_alive(node) {
            return;
        }
        self.invoke_node(node, move |h, ctx| {
            if let Some(t) = h.as_any_mut().downcast_mut::<T>() {
                f(t, ctx);
            } else {
                panic!("with_node: node {:?} is not the requested handler type", ctx.node());
            }
        });
        self.flush_outboxes();
        self.refresh_stats();
    }

    /// Processes all events up to and including `until`, then advances the
    /// clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        match self.mode {
            ExecMode::Legacy => self.run_events_legacy(until),
            ExecMode::Partitioned => self.run_partitioned(until),
        }
        for d in &mut self.domains {
            d.core.advance_to(until);
        }
        self.refresh_stats();
    }

    /// Runs until the event queue drains or `max` is reached; returns the
    /// final simulated time.
    pub fn run_to_quiescence(&mut self, max: SimTime) -> SimTime {
        match self.mode {
            ExecMode::Legacy => self.run_events_legacy(max),
            ExecMode::Partitioned => self.run_partitioned(max),
        }
        // Partitioned domains can drain at different times; uniformize so
        // the next injection (add_node, with_node) sees one clock.
        let end = self.now();
        for d in &mut self.domains {
            d.core.advance_to(end);
        }
        self.refresh_stats();
        end
    }

    /// Legacy single-domain run: the domain dispatches everything itself
    /// and *yields* each control event (controls mutate the shared world,
    /// which domains only read); the drain position survives the yield, so
    /// dispatch order is exactly the historical engine's.
    fn run_events_legacy(&mut self, limit: SimTime) {
        loop {
            let outcome = {
                let world = world!(self);
                self.domains[0].run_events(limit, &world)
            };
            match outcome {
                RunOutcome::Done => return,
                RunOutcome::Control(action) => self.apply_control(action),
            }
        }
    }

    /// Partitioned run: conservative-lookahead windows. Each iteration
    /// either applies due controls at a barrier (all domains advanced to
    /// the control time first) or runs one window `[T, end)` where
    /// `end = min(T + wan_latency, next control, limit + 1)` across all
    /// domains — concurrently when workers and domains allow. Safety: every
    /// cross-domain message generated in the window arrives at
    /// `≥ T + wan_latency ≥ end`, so no domain can observe another's
    /// window-work mid-window; outboxes are exchanged at the barrier in
    /// fixed (source, destination, push) order.
    fn run_partitioned(&mut self, limit: SimTime) {
        loop {
            let te = self.domains.iter().filter_map(|d| d.core.next_pending_time()).min();
            let tc = self.controls.peek().map(|Reverse(c)| c.at);
            let next = match (te, tc) {
                (None, None) => return,
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (Some(a), Some(b)) => a.min(b),
            };
            if next > limit {
                return;
            }
            if tc == Some(next) {
                // Control barrier: advance every domain to the control
                // time (legal: no event is pending earlier) and apply all
                // controls due at it, in schedule order, before any
                // same-time event runs.
                for d in &mut self.domains {
                    d.core.advance_to(next);
                }
                while self.controls.peek().is_some_and(|Reverse(c)| c.at == next) {
                    let Reverse(ctl) = self.controls.pop().expect("peeked");
                    self.apply_control(ctl.action);
                    self.ctl_processed += 1;
                }
                // A revive's on_start may have queued cross-domain sends.
                self.flush_outboxes();
                continue;
            }
            let mut end = next.saturating_add(self.cfg.wan_latency);
            if let Some(tc) = tc {
                end = end.min(tc);
            }
            end = end.min(limit.saturating_add(1));
            let window_limit = end - 1;
            let workers = self.workers.min(self.domains.len());
            {
                let world = world!(self);
                run_domains(&mut self.domains, &world, window_limit, workers);
            }
            self.flush_outboxes();
        }
    }

    /// Applies one control action against the shared world (and, for
    /// crash/revive/faults, the owning domain).
    fn apply_control(&mut self, action: ControlAction) {
        match action {
            ControlAction::Crash(n) => self.crash_node(n),
            ControlAction::Revive(n) => self.revive_node(n),
            ControlAction::Partition(groups) => {
                let refs: Vec<&[LanId]> = groups.iter().map(|g| g.as_slice()).collect();
                self.topo.partition(&refs);
            }
            ControlAction::HealPartition => self.topo.heal_partition(),
            ControlAction::SetLanFaults(lan, f) => self.set_lan_faults(lan, f),
            ControlAction::SetWanFaults(f) => self.set_wan_faults(f),
            ControlAction::SetWanPairFaults(from, to, f) => self.set_wan_pair_faults(from, to, f),
            ControlAction::CutWanPair(a, b) => self.cut_wan_pair(a, b),
            ControlAction::HealWanPair(a, b) => self.heal_wan_pair(a, b),
            ControlAction::ClearFaults => self.clear_faults(),
        }
    }

    /// Runs a handler callback through the node's owning domain.
    fn invoke_node(&mut self, node: NodeId, f: impl FnOnce(&mut dyn NodeHandler<P>, &mut Ctx<'_, P>)) {
        let di = self.node_domain[node.index()] as usize;
        let world = world!(self);
        self.domains[di].invoke(node, &world, f);
    }

    /// Drains every domain's cross-domain outbox into the destination
    /// domains' wheels, in fixed (source, destination, push) order — the
    /// total order that makes partitioned results independent of worker
    /// scheduling. Payload ownership converts to a fresh `Rc` here, so `Rc`
    /// clones never span domains.
    fn flush_outboxes(&mut self) {
        if self.mode != ExecMode::Partitioned {
            return;
        }
        let nd = self.domains.len();
        for s in 0..nd {
            for t in 0..nd {
                if self.domains[s].outboxes[t].is_empty() {
                    continue;
                }
                let mut msgs = std::mem::take(&mut self.domains[s].outboxes[t]);
                for m in msgs.drain(..) {
                    self.domains[t].core.push_event(
                        m.at,
                        Queued::Deliver {
                            to: m.to,
                            from: m.from,
                            payload: Rc::new(m.payload),
                            kind: m.kind,
                            admitted: false,
                        },
                    );
                }
                // Hand the emptied buffer back, keeping its capacity.
                let slot = &mut self.domains[s].outboxes[t];
                if msgs.capacity() > slot.capacity() {
                    *slot = msgs;
                }
            }
        }
    }

    /// Rebuilds the run-wide counter view from the per-domain books.
    fn refresh_stats(&mut self) {
        let mut s = NetStats::default();
        for d in &self.domains {
            s.merge(&d.stats);
        }
        self.stats_cache = s;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::WHEEL_SPAN;
    use crate::message::Destination;
    use crate::ids::TimerId;

    #[derive(Default)]
    struct Recorder {
        messages: Vec<(NodeId, String)>,
        timers: Vec<u64>,
        starts: u32,
    }

    impl NodeHandler<String> for Recorder {
        fn on_start(&mut self, _ctx: &mut Ctx<'_, String>) {
            self.starts += 1;
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, String>, from: NodeId, msg: String) {
            self.messages.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, String>, _t: TimerId, tag: u64) {
            self.timers.push(tag);
        }
    }

    fn two_lan_sim() -> (Sim<String>, LanId, LanId) {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let l1 = topo.add_lan();
        (Sim::new(SimConfig::default(), topo, 7), l0, l1)
    }

    #[test]
    fn unicast_lan_delivery_and_accounting() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(NodeId(1)), "hi".into(), 10, "test");
        });
        sim.run_until(100);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert_eq!(rec.messages, vec![(a, "hi".to_string())]);
        assert_eq!(sim.stats().lan_bytes, 10);
        assert_eq!(sim.stats().wan_bytes, 0);
        assert_eq!(sim.stats().delivered_messages, 1);
        assert_eq!(sim.events_processed(), 1);
        assert_eq!(sim.node_deliveries(b), 1);
        assert_eq!(sim.node_deliveries(a), 0);
    }

    #[test]
    fn unicast_wan_crosses_lans() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "wan".into(), 64, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().wan_bytes, 64);
        assert_eq!(sim.stats().lan_bytes, 0);
    }

    #[test]
    fn multicast_reaches_lan_only_charged_once() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        let c = sim.add_node(l0, Box::<Recorder>::default());
        let d = sim.add_node(l1, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let lan = ctx.lan();
            ctx.send(Destination::Multicast(lan), "probe".into(), 40, "probe");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
        assert_eq!(sim.handler::<Recorder>(c).unwrap().messages.len(), 1);
        assert_eq!(sim.handler::<Recorder>(d).unwrap().messages.len(), 0);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().messages.len(), 0, "sender excluded");
        assert_eq!(sim.stats().lan_bytes, 40, "broadcast medium charges once");
        assert_eq!(sim.stats().multicast_transmissions, 1);
    }

    #[test]
    fn crashed_node_receives_nothing_and_timers_die() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.set_timer(50, 1);
        });
        sim.crash_node(b);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "lost".into(), 8, "test");
        });
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert!(rec.messages.is_empty());
        assert!(rec.timers.is_empty());
        assert_eq!(sim.stats().dropped_messages, 1);
        // Bytes still charged: the sender transmitted.
        assert_eq!(sim.stats().lan_bytes, 8);
    }

    #[test]
    fn revive_reruns_on_start_and_discards_stale_timers() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.set_timer(50, 9);
        });
        sim.crash_node(a);
        sim.revive_node(a);
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(a).unwrap();
        assert_eq!(rec.starts, 2);
        assert!(rec.timers.is_empty(), "pre-crash timer must not fire after revive");
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let t = ctx.set_timer(50, 1);
            ctx.set_timer(60, 2);
            ctx.cancel_timer(t);
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers, vec![2]);
    }

    #[test]
    fn cancelling_reclaims_the_event_immediately() {
        // A cancelled timer must vacate its queue slot at cancel time, not
        // at its would-have-fired time (the old design tombstoned it).
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let t = ctx.set_timer(1_000_000, 1);
            ctx.cancel_timer(t);
        });
        assert_eq!(sim.pending_timer_count(), 0, "cancelled timer is not pending");
        assert_eq!(sim.queued_event_count(), 0, "its event slot was reclaimed");
        sim.run_until(2_000_000);
        assert!(sim.handler::<Recorder>(a).unwrap().timers.is_empty());
    }

    #[test]
    fn timer_bookkeeping_stays_bounded_over_long_soaks() {
        // Regression for the unbounded tombstone set: cancelling timers
        // that already fired used to insert entries nothing ever removed.
        // Now every pattern — cancel-before-fire, cancel-after-fire,
        // double-cancel, fire-without-cancel — leaves the pending map and
        // the slot table empty once the queue drains.
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let mut stale: Vec<TimerId> = Vec::new();
        for round in 0..1_000u64 {
            let ids = {
                let mut ids = (TimerId(0), TimerId(0));
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ids.0 = ctx.set_timer(5, round);
                    ids.1 = ctx.set_timer(7, round);
                });
                ids
            };
            // Cancel one before it fires; let the other fire, then cancel
            // it (and re-cancel an older fired one) — the leak pattern.
            sim.with_node::<Recorder>(a, |_, ctx| ctx.cancel_timer(ids.0));
            sim.run_until(sim.now() + 20);
            sim.with_node::<Recorder>(a, |_, ctx| {
                ctx.cancel_timer(ids.1);
                if let Some(&old) = stale.first() {
                    ctx.cancel_timer(old);
                }
            });
            stale.push(ids.1);
            assert!(
                sim.pending_timer_count() <= 2,
                "round {round}: pending map grew to {}",
                sim.pending_timer_count()
            );
        }
        sim.run_until(sim.now() + 1_000);
        assert_eq!(sim.pending_timer_count(), 0, "all timers fired or cancelled");
        assert_eq!(sim.queued_event_count(), 0, "no events left queued");
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers.len(), 1_000);
    }

    #[test]
    fn partition_blocks_wan_until_heal() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        sim.schedule(10, ControlAction::Partition(vec![vec![l0], vec![l1]]));
        sim.schedule(100, ControlAction::HealPartition);
        sim.run_until(20);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "blocked".into(), 8, "test");
        });
        sim.run_until(90);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        sim.run_until(110);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "open".into(), 8, "test");
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, l0, l1) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l1, Box::<Recorder>::default());
            for i in 0..50 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 16, "test");
                });
                sim.run_until(sim.now() + 10);
            }
            sim.run_until(10_000);
            (
                sim.stats().total_bytes(),
                sim.handler::<Recorder>(b).unwrap().messages.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unicast_to_unknown_node_is_dropped_not_a_panic() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            // A corrupted frame could name a node that was never added.
            ctx.send(Destination::Unicast(NodeId(999)), "void".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.stats().dropped_messages, 1);
    }

    #[test]
    fn duplication_delivers_twice_and_counts() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_lan_faults(l0, FaultProfile { duplicate: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "dup".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 2);
        assert_eq!(sim.stats().duplicated_messages, 1);
        // One logical transmission on the wire.
        assert_eq!(sim.stats().lan_messages, 1);
    }

    #[test]
    fn corruption_without_hook_destroys_frames() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_lan_faults(l0, FaultProfile { corrupt: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "gone".into(), 8, "test");
        });
        sim.run_until(100);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        assert_eq!(sim.stats().corrupted_messages, 1);
        assert_eq!(sim.stats().corrupt_dropped_messages, 1);
    }

    #[test]
    fn corruption_hook_rewrites_payloads() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_corruptor(|_rng, p: &String| Some(format!("{p}?")));
        sim.set_lan_faults(l0, FaultProfile { corrupt: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "msg".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages, vec![(a, "msg?".to_string())]);
        assert_eq!(sim.stats().corrupted_messages, 1);
        assert_eq!(sim.stats().corrupt_dropped_messages, 0);
    }

    #[test]
    fn corruptor_mutation_is_copy_on_write() {
        // A corrupted copy must materialize its own payload: every receiver
        // whose copy was NOT corrupted sees the original bytes, however the
        // copies share the underlying allocation.
        let mut saw_mixed_multicast = false;
        for seed in 0..50 {
            let mut topo = Topology::new();
            let l0 = topo.add_lan();
            let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, seed);
            let sender = sim.add_node(l0, Box::<Recorder>::default());
            let receivers: Vec<NodeId> =
                (0..6).map(|_| sim.add_node(l0, Box::<Recorder>::default())).collect();
            sim.set_corruptor(|_rng, p: &String| Some(format!("{p}!")));
            sim.set_lan_faults(l0, FaultProfile { corrupt: 0.5, ..Default::default() });
            sim.with_node::<Recorder>(sender, |_, ctx| {
                let lan = ctx.lan();
                ctx.send(Destination::Multicast(lan), "original".into(), 16, "test");
            });
            sim.run_until(1_000);
            let mut got_original = 0;
            let mut got_mutated = 0;
            for &r in &receivers {
                for (_, m) in &sim.handler::<Recorder>(r).unwrap().messages {
                    match m.as_str() {
                        "original" => got_original += 1,
                        "original!" => got_mutated += 1,
                        other => panic!("seed {seed}: unexpected payload {other:?}"),
                    }
                }
            }
            if got_original > 0 && got_mutated > 0 {
                saw_mixed_multicast = true;
                break;
            }
        }
        assert!(
            saw_mixed_multicast,
            "no seed in 0..50 corrupted some copies of one multicast but not others"
        );
    }

    #[test]
    fn duplicated_copies_are_independently_corruptible() {
        // Duplicate + corrupt: the two copies of one delivery share the
        // payload until the corruptor forks one; the other copy must arrive
        // intact.
        let mut saw_split = false;
        for seed in 0..50 {
            let mut topo = Topology::new();
            let l0 = topo.add_lan();
            let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, seed);
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l0, Box::<Recorder>::default());
            sim.set_corruptor(|_rng, p: &String| Some(format!("{p}!")));
            sim.set_lan_faults(
                l0,
                FaultProfile { duplicate: 1.0, corrupt: 0.5, ..Default::default() },
            );
            sim.with_node::<Recorder>(a, |_, ctx| {
                ctx.send(Destination::Unicast(b), "frame".into(), 8, "test");
            });
            sim.run_until(1_000);
            let msgs: Vec<&str> = sim
                .handler::<Recorder>(b)
                .unwrap()
                .messages
                .iter()
                .map(|(_, m)| m.as_str())
                .collect();
            assert_eq!(msgs.len(), 2, "seed {seed}: duplicate delivers two copies");
            if msgs.contains(&"frame") && msgs.contains(&"frame!") {
                saw_split = true;
                break;
            }
        }
        assert!(saw_split, "no seed in 0..50 corrupted exactly one duplicate copy");
    }

    #[test]
    fn scheduled_fault_window_opens_and_clears() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        let lossy = FaultProfile { loss: 1.0, ..Default::default() };
        sim.schedule(10, ControlAction::SetLanFaults(l0, lossy));
        sim.schedule(100, ControlAction::ClearFaults);
        sim.run_until(20);
        assert_eq!(sim.lan_faults(l0), lossy, "window open");
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "in-window".into(), 8, "test");
        });
        sim.run_until(110);
        assert!(sim.lan_faults(l0).is_quiet(), "window cleared");
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "after".into(), 8, "test");
        });
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert_eq!(rec.messages.len(), 1, "only the post-window message arrives");
        assert_eq!(rec.messages[0].1, "after");
    }

    #[test]
    fn reorder_jitter_can_swap_deliveries() {
        // With a large reorder bound and zero base jitter, two back-to-back
        // messages eventually arrive swapped for some seed.
        let mut swapped = false;
        for seed in 0..20 {
            let mut topo = Topology::new();
            let l0 = topo.add_lan();
            let cfg = SimConfig { lan_jitter: 0, ..Default::default() };
            let mut sim: Sim<String> = Sim::new(cfg, topo, seed);
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l0, Box::<Recorder>::default());
            sim.set_lan_faults(l0, FaultProfile { reorder_jitter: 50, ..Default::default() });
            sim.with_node::<Recorder>(a, |_, ctx| {
                ctx.send(Destination::Unicast(b), "first".into(), 8, "test");
                ctx.send(Destination::Unicast(b), "second".into(), 8, "test");
            });
            sim.run_until(1_000);
            let rec = sim.handler::<Recorder>(b).unwrap();
            assert_eq!(rec.messages.len(), 2, "reordering never loses messages");
            if rec.messages[0].1 == "second" {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "no seed in 0..20 produced a swap");
    }

    #[test]
    fn fault_free_runs_unchanged_by_fault_layer_presence() {
        // A quiet profile must not consume fault RNG draws: a run with the
        // default profiles is byte-identical to one where a window opened
        // and closed before any traffic.
        let run = |pre_window: bool| {
            let (mut sim, l0, l1) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l1, Box::<Recorder>::default());
            if pre_window {
                sim.set_wan_faults(FaultProfile { duplicate: 0.9, ..Default::default() });
                sim.clear_faults();
            }
            for i in 0..50 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 16, "test");
                });
                sim.run_until(sim.now() + 10);
            }
            sim.run_until(10_000);
            sim.handler::<Recorder>(b).unwrap().messages.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn asymmetric_pair_faults_hit_one_direction_only() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        // Lose everything l1 → l0; the l0 → l1 direction stays clean.
        sim.set_wan_pair_faults(l1, l0, FaultProfile { loss: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "request".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1, "forward direction clean");
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.send(Destination::Unicast(a), "reply".into(), 8, "test");
        });
        sim.run_until(200);
        assert!(sim.handler::<Recorder>(a).unwrap().messages.is_empty(), "reply direction lossy");
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.clear_faults();
        assert!(sim.wan_pair_faults(l1, l0).is_none(), "clear_faults drops overrides");
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.send(Destination::Unicast(a), "reply2".into(), 8, "test");
        });
        sim.run_until(300);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().messages.len(), 1);
    }

    #[test]
    fn wan_pair_cut_blocks_only_that_pair() {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let l1 = topo.add_lan();
        let l2 = topo.add_lan();
        let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, 7);
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        let c = sim.add_node(l2, Box::<Recorder>::default());
        sim.schedule(10, ControlAction::CutWanPair(l0, l1));
        sim.run_until(20);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "cut".into(), 8, "test");
            ctx.send(Destination::Unicast(c), "open".into(), 8, "test");
        });
        sim.run_until(100);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        assert_eq!(sim.handler::<Recorder>(c).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().wan_cut_drops, 1);
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.schedule(110, ControlAction::HealWanPair(l0, l1));
        sim.run_until(120);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "healed".into(), 8, "test");
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn derived_ctx_streams_do_not_perturb_the_node_stream() {
        // Deriving (and draining) a labelled sub-stream must leave the
        // node's main RNG draws untouched, and the sub-stream must be
        // stable across runs.
        let run = |derive: bool| {
            let (mut sim, l0, _) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let mut side = Vec::new();
            let mut main = Vec::new();
            sim.with_node::<Recorder>(a, |_, ctx| {
                if derive {
                    let mut r = ctx.derive_rng("test.side");
                    side = (0..8).map(|_| r.next_u64()).collect();
                }
                main = (0..8).map(|_| ctx.rng().next_u64()).collect();
            });
            (main, side)
        };
        let (main_plain, _) = run(false);
        let (main_derived, side1) = run(true);
        let (_, side2) = run(true);
        assert_eq!(main_plain, main_derived, "derive_rng must not consume node draws");
        assert_eq!(side1, side2, "derived stream is deterministic");
        assert_ne!(main_plain, side1, "derived stream is a different stream");
    }

    #[test]
    fn lazy_node_rng_matches_eager_seeding_and_stays_unmaterialized() {
        // The lazily created stream must be exactly the stream eager
        // creation produced (it is a pure function of the derived seed) —
        // and a node that never draws must never materialize one.
        let (mut sim, l0, _) = two_lan_sim();
        let drawer = sim.add_node(l0, Box::<Recorder>::default());
        let idle = sim.add_node(l0, Box::<Recorder>::default());
        let mut drawn = Vec::new();
        sim.with_node::<Recorder>(drawer, |_, ctx| {
            drawn = (0..4).map(|_| ctx.rng().next_u64()).collect();
        });
        let expected: Vec<u64> = {
            let mut r = Seed(7).derive_idx("simnet.node", u64::from(drawer.0)).rng();
            (0..4).map(|_| r.next_u64()).collect()
        };
        assert_eq!(drawn, expected, "lazy stream == eagerly seeded stream");
        // Single-domain sim: local slot == global index.
        assert!(sim.domains[0].nodes.rngs[drawer.index()].is_some(), "drawing node materialized");
        assert!(sim.domains[0].nodes.rngs[idle.index()].is_none(), "idle node never materialized");
    }

    #[test]
    fn timers_across_the_wheel_horizon_fire_in_schedule_order() {
        // Delays straddling WHEEL_SPAN: near ones go straight to buckets,
        // far ones park in the heap and migrate as the clock approaches.
        // Same-delay pairs must fire in set order (FIFO within a time).
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let delays: &[u64] =
            &[10, WHEEL_SPAN - 1, WHEEL_SPAN, WHEEL_SPAN + 1, 3 * WHEEL_SPAN, 10 * WHEEL_SPAN, 10 * WHEEL_SPAN];
        sim.with_node::<Recorder>(a, |_, ctx| {
            // Tag = schedule index; set in shuffled order so fire order is
            // decided by (time, set-order), not by tag.
            for &(i, d) in &[(4u64, delays[4]), (0, delays[0]), (5, delays[5]), (2, delays[2]), (1, delays[1]), (6, delays[6]), (3, delays[3])] {
                ctx.set_timer(d, i);
            }
        });
        sim.run_until(20 * WHEEL_SPAN);
        // Sort schedule entries by (delay, set order): set order above was
        // 4,0,5,2,1,6,3 → expected fire order by time then set order.
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers, vec![0, 1, 2, 3, 4, 5, 6]);
        assert_eq!(sim.pending_timer_count(), 0);
        assert_eq!(sim.queued_event_count(), 0);
    }

    #[test]
    fn cancelling_a_far_timer_reclaims_it_immediately() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let t = ctx.set_timer(100 * WHEEL_SPAN, 1);
            ctx.cancel_timer(t);
            ctx.set_timer(2 * WHEEL_SPAN, 2);
        });
        assert_eq!(sim.pending_timer_count(), 1);
        assert_eq!(sim.queued_event_count(), 1);
        let end = sim.run_to_quiescence(SimTime::MAX);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers, vec![2]);
        // The cancelled far timer still advances the clock when its ghost
        // entry surfaces (same semantics as the old dead heap keys).
        assert_eq!(end, 100 * WHEEL_SPAN);
    }

    #[test]
    fn with_node_on_dead_node_is_noop() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.crash_node(a);
        let mut called = false;
        sim.with_node::<Recorder>(a, |_, _| called = true);
        assert!(!called);
    }

    /// A handler that reads deliveries through the shared reference without
    /// ever cloning the payload (the zero-copy fast path).
    #[derive(Default)]
    struct SharedReader {
        seen: Vec<String>,
    }

    impl NodeHandler<String> for SharedReader {
        fn on_shared_message(
            &mut self,
            _ctx: &mut Ctx<'_, String>,
            _from: NodeId,
            msg: Rc<String>,
        ) {
            self.seen.push((*msg).clone());
        }
    }

    #[test]
    fn shared_and_owning_handlers_observe_identical_payloads() {
        let (mut sim, l0, _) = two_lan_sim();
        let sender = sim.add_node(l0, Box::<Recorder>::default());
        let owning = sim.add_node(l0, Box::<Recorder>::default());
        let shared = sim.add_node(l0, Box::<SharedReader>::default());
        sim.with_node::<Recorder>(sender, |_, ctx| {
            let lan = ctx.lan();
            ctx.send(Destination::Multicast(lan), "announce".into(), 24, "test");
        });
        sim.run_until(100);
        let o = &sim.handler::<Recorder>(owning).unwrap().messages;
        let s = &sim.handler::<SharedReader>(shared).unwrap().seen;
        assert_eq!(o, &vec![(sender, "announce".to_string())]);
        assert_eq!(s, &vec!["announce".to_string()]);
    }

    // ------------------------------------------------------------------
    // Partitioned-mode tests. The partitioned engine has its own
    // deterministic semantics (per-sender-LAN RNG streams, per-LAN WAN
    // uplinks, node-scoped timer ids); these tests pin behaviour and the
    // worker-count-invariance contract at the unit level — integration
    // digests live in tests/tests/engine_equivalence.rs.
    // ------------------------------------------------------------------

    fn partitioned_sim(lans: usize, plan: PartitionPlan, seed: u64) -> (Sim<String>, Vec<LanId>) {
        let mut topo = Topology::new();
        let ids: Vec<LanId> = (0..lans).map(|_| topo.add_lan()).collect();
        (Sim::new_partitioned(SimConfig::default(), topo, seed, plan), ids)
    }

    #[test]
    fn single_domain_plans_run_the_legacy_engine() {
        // PartitionPlan::Single (and any plan collapsing to one domain) is
        // the legacy engine — byte-identical regardless of worker count.
        let run = |plan: PartitionPlan, workers: usize| {
            let (mut sim, lans) = partitioned_sim(2, plan, 11);
            sim.set_workers(workers);
            let a = sim.add_node(lans[0], Box::<Recorder>::default());
            let b = sim.add_node(lans[1], Box::<Recorder>::default());
            for i in 0..30 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 16, "test");
                });
                sim.run_until(sim.now() + 7);
            }
            sim.run_until(5_000);
            sim.handler::<Recorder>(b).unwrap().messages.clone()
        };
        let base = run(PartitionPlan::Single, 1);
        assert_eq!(run(PartitionPlan::Single, 8), base);
        assert_eq!(run(PartitionPlan::Domains(1), 4), base);
    }

    #[test]
    fn partitioned_cross_lan_delivery_and_merged_stats() {
        let (mut sim, lans) = partitioned_sim(3, PartitionPlan::PerLan, 13);
        let a = sim.add_node(lans[0], Box::<Recorder>::default());
        let b = sim.add_node(lans[1], Box::<Recorder>::default());
        let c = sim.add_node(lans[2], Box::<Recorder>::default());
        let peer = sim.add_node(lans[0], Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "one".into(), 10, "test");
            ctx.send(Destination::Unicast(c), "two".into(), 10, "test");
            ctx.send(Destination::Unicast(peer), "local".into(), 5, "test");
        });
        sim.run_until(1_000);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages, vec![(a, "one".to_string())]);
        assert_eq!(sim.handler::<Recorder>(c).unwrap().messages, vec![(a, "two".to_string())]);
        assert_eq!(sim.handler::<Recorder>(peer).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().wan_bytes, 20, "stats merged across domains");
        assert_eq!(sim.stats().lan_bytes, 5);
        assert_eq!(sim.stats().delivered_messages, 3);
        assert_eq!(sim.events_processed(), 3);
    }

    #[test]
    fn partitioned_worker_count_has_zero_observable_effect() {
        // Ping-pong traffic + faults + a scheduled partition across 4 LANs:
        // every observable (messages with arrival order, stats, clock) must
        // be identical at 1, 2, and 5 workers.
        let run = |workers: usize| {
            let (mut sim, lans) = partitioned_sim(4, PartitionPlan::PerLan, 17);
            sim.set_workers(workers);
            let nodes: Vec<NodeId> =
                lans.iter().map(|&l| sim.add_node(l, Box::<Recorder>::default())).collect();
            sim.set_wan_faults(FaultProfile {
                loss: 0.1,
                duplicate: 0.2,
                reorder_jitter: 9,
                ..Default::default()
            });
            sim.schedule(200, ControlAction::Partition(vec![vec![lans[0], lans[1]], vec![lans[2], lans[3]]]));
            sim.schedule(400, ControlAction::HealPartition);
            for round in 0..20u64 {
                for (i, &n) in nodes.iter().enumerate() {
                    let to = nodes[(i + 1) % nodes.len()];
                    sim.with_node::<Recorder>(n, |_, ctx| {
                        ctx.send(Destination::Unicast(to), format!("r{round}"), 32, "test");
                    });
                }
                sim.run_until(sim.now() + 30);
            }
            sim.run_until(3_000);
            let transcripts: Vec<Vec<(NodeId, String)>> = nodes
                .iter()
                .map(|&n| sim.handler::<Recorder>(n).unwrap().messages.clone())
                .collect();
            (
                transcripts,
                sim.stats().total_bytes(),
                sim.stats().delivered_messages,
                sim.stats().dropped_messages,
                sim.stats().fault_injections(),
                sim.events_processed(),
                sim.now(),
            )
        };
        let base = run(1);
        assert!(base.4 > 0, "faults must actually fire for this to prove anything");
        assert_eq!(run(2), base, "workers=2 diverged");
        assert_eq!(run(5), base, "workers=5 diverged");
    }

    #[test]
    fn partitioned_controls_apply_at_barriers_before_same_time_events() {
        // A loss window scheduled at t must affect a message whose send is
        // injected at t via a control (controls apply before events).
        let (mut sim, lans) = partitioned_sim(2, PartitionPlan::PerLan, 19);
        let a = sim.add_node(lans[0], Box::<Recorder>::default());
        let b = sim.add_node(lans[1], Box::<Recorder>::default());
        sim.schedule(50, ControlAction::SetWanFaults(FaultProfile { loss: 1.0, ..Default::default() }));
        sim.run_until(50);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "lost".into(), 8, "test");
        });
        sim.run_until(500);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.schedule(600, ControlAction::ClearFaults);
        sim.run_until(700);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "through".into(), 8, "test");
        });
        sim.run_until(1_000);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn partitioned_crash_revive_and_timers_work_across_domains() {
        let (mut sim, lans) = partitioned_sim(2, PartitionPlan::PerLan, 23);
        let a = sim.add_node(lans[0], Box::<Recorder>::default());
        let b = sim.add_node(lans[1], Box::<Recorder>::default());
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.set_timer(40, 7);
        });
        sim.schedule(10, ControlAction::Crash(b));
        sim.schedule(100, ControlAction::Revive(b));
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "while-down".into(), 8, "test");
        });
        sim.run_until(1_000);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert_eq!(rec.starts, 2, "revive reran on_start");
        assert!(rec.timers.is_empty(), "pre-crash timer discarded");
        assert!(rec.messages.is_empty(), "delivery while down dropped");
        assert_eq!(sim.stats().dropped_messages, 1);
        assert_eq!(sim.pending_timer_count(), 0);
    }

    // ------------------------------------------------------------------
    // NodeCapacity: the modeled per-node processing budget.
    // ------------------------------------------------------------------

    fn quiet_lan_sim() -> (Sim<String>, LanId) {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let cfg = SimConfig { lan_jitter: 0, ..Default::default() };
        (Sim::new(cfg, topo, 7), l0)
    }

    #[test]
    fn capacity_defers_deliveries_past_the_per_tick_budget() {
        let (mut sim, l0) = quiet_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_node_capacity(b, Some(NodeCapacity { ops_per_tick: 1, queue_limit: 100 }));
        sim.with_node::<Recorder>(a, |_, ctx| {
            for i in 0..3 {
                ctx.send(Destination::Unicast(b), format!("m{i}"), 8, "test");
            }
        });
        sim.run_until(1_000);
        // All three arrive at the same tick; the budget admits one per tick,
        // so two are deferred but nothing is lost.
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 3);
        assert_eq!(sim.stats().capacity_deferred_messages, 2);
        assert_eq!(sim.stats().capacity_dropped_messages, 0);
        assert_eq!(sim.stats().delivered_messages, 3);
    }

    #[test]
    fn capacity_queue_limit_drops_overflow_and_counts_by_kind() {
        let (mut sim, l0) = quiet_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_node_capacity(b, Some(NodeCapacity { ops_per_tick: 1, queue_limit: 2 }));
        sim.with_node::<Recorder>(a, |_, ctx| {
            for i in 0..5 {
                ctx.send(Destination::Unicast(b), format!("m{i}"), 8, "query");
            }
        });
        sim.run_until(1_000);
        // Budget 1/tick with 2 queueable ops: of 5 simultaneous arrivals,
        // two make it through and three bounce off the full ingress queue.
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 2);
        assert_eq!(sim.stats().capacity_dropped_messages, 3);
        assert_eq!(sim.stats().capacity_dropped("query"), 3);
        assert_eq!(sim.stats().capacity_dropped("renew"), 0);
        // Capacity drops are a separate ledger from link-level losses.
        assert_eq!(sim.stats().dropped_messages, 0);
    }

    #[test]
    fn capacity_with_headroom_matches_the_uncapped_run() {
        let run = |cap: Option<NodeCapacity>| {
            let (mut sim, l0) = quiet_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l0, Box::<Recorder>::default());
            sim.set_node_capacity(b, cap);
            for i in 0..20 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 8, "test");
                });
                sim.run_until(sim.now() + 5);
            }
            sim.run_until(5_000);
            (
                sim.handler::<Recorder>(b).unwrap().messages.clone(),
                sim.stats().delivered_messages,
                sim.stats().capacity_deferred_messages,
            )
        };
        let uncapped = run(None);
        let roomy = run(Some(NodeCapacity { ops_per_tick: 1_000, queue_limit: 1_000_000 }));
        assert_eq!(roomy, uncapped, "an unsaturated budget must be invisible");
        assert_eq!(uncapped.2, 0);
    }

    #[test]
    fn capacity_config_default_applies_to_every_node() {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let cfg = SimConfig {
            lan_jitter: 0,
            node_capacity: Some(NodeCapacity { ops_per_tick: 1, queue_limit: 1 }),
            ..Default::default()
        };
        let mut sim: Sim<String> = Sim::new(cfg, topo, 7);
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            for i in 0..4 {
                ctx.send(Destination::Unicast(b), format!("m{i}"), 8, "test");
            }
        });
        sim.run_until(1_000);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().capacity_dropped_messages, 3);
    }

    #[test]
    fn capacity_is_worker_count_invariant_in_partitioned_mode() {
        let run = |workers: usize| {
            let (mut sim, lans) = partitioned_sim(4, PartitionPlan::PerLan, 31);
            sim.set_workers(workers);
            let nodes: Vec<NodeId> =
                lans.iter().map(|&l| sim.add_node(l, Box::<Recorder>::default())).collect();
            // Every node capacity-limited; cross-domain storms must defer
            // and drop identically at any worker count.
            for &n in &nodes {
                sim.set_node_capacity(n, Some(NodeCapacity { ops_per_tick: 1, queue_limit: 3 }));
            }
            for round in 0..15u64 {
                for (i, &n) in nodes.iter().enumerate() {
                    sim.with_node::<Recorder>(n, |_, ctx| {
                        for o in 1..nodes.len() {
                            let to = NodeId(((i + o) % 4) as u32);
                            for c in 0..4 {
                                ctx.send(Destination::Unicast(to), format!("r{round}c{c}"), 16, "test");
                            }
                        }
                    });
                }
                sim.run_until(sim.now() + 25);
            }
            sim.run_until(3_000);
            let transcripts: Vec<Vec<(NodeId, String)>> = nodes
                .iter()
                .map(|&n| sim.handler::<Recorder>(n).unwrap().messages.clone())
                .collect();
            (
                transcripts,
                sim.stats().capacity_deferred_messages,
                sim.stats().capacity_dropped_messages,
                sim.stats().delivered_messages,
                sim.events_processed(),
            )
        };
        let base = run(1);
        assert!(base.1 > 0, "storm must actually defer for this to prove anything");
        assert!(base.2 > 0, "storm must actually drop for this to prove anything");
        assert_eq!(run(2), base, "workers=2 diverged");
        assert_eq!(run(4), base, "workers=4 diverged");
    }

    #[test]
    fn partitioned_determinism_across_runs() {
        let run = || {
            let (mut sim, lans) = partitioned_sim(5, PartitionPlan::Domains(3), 29);
            sim.set_workers(3);
            let nodes: Vec<NodeId> =
                lans.iter().map(|&l| sim.add_node(l, Box::<Recorder>::default())).collect();
            sim.set_wan_faults(FaultProfile { duplicate: 0.3, reorder_jitter: 5, ..Default::default() });
            for i in 0..15u64 {
                let from = nodes[(i % 5) as usize];
                let to = nodes[((i + 2) % 5) as usize];
                sim.with_node::<Recorder>(from, |_, ctx| {
                    ctx.send(Destination::Unicast(to), format!("x{i}"), 24, "test");
                });
                sim.run_until(sim.now() + 11);
            }
            sim.run_until(2_000);
            let t: Vec<_> = nodes.iter().map(|&n| sim.handler::<Recorder>(n).unwrap().messages.clone()).collect();
            (t, sim.stats().total_bytes(), sim.events_processed())
        };
        assert_eq!(run(), run());
    }
}
