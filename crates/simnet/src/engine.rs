//! The discrete-event engine.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashSet};

use sds_rand::{Rng, Seed};

use crate::handler::{Action, Ctx, NodeHandler};
use crate::ids::{LanId, NodeId, TimerId};
use crate::message::{Destination, MsgKind};
use crate::stats::{NetStats, Scope};
use crate::time::SimTime;
use crate::topology::Topology;

/// Link-layer parameters. Defaults model a fast wired LAN and a slow WAN;
/// experiments override them to model wireless/tactical links.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Base one-way LAN latency.
    pub lan_latency: SimTime,
    /// Uniform extra LAN jitter in `[0, lan_jitter]`.
    pub lan_jitter: SimTime,
    /// Base one-way WAN latency.
    pub wan_latency: SimTime,
    /// Uniform extra WAN jitter in `[0, wan_jitter]`.
    pub wan_jitter: SimTime,
    /// Probability a LAN transmission is lost (per receiver for multicast).
    pub lan_loss: f64,
    /// Probability a WAN transmission is lost.
    pub wan_loss: f64,
    /// Shared LAN medium capacity in kilobits per second (0 = unlimited).
    /// Each LAN is one half-duplex broadcast channel: transmissions
    /// serialize, so big semantic advertisements delay everything behind
    /// them — the paper's "wireless connections with low network capacity".
    pub lan_rate_kbps: u32,
    /// Shared WAN uplink capacity in kilobits per second (0 = unlimited).
    /// Modeled as one shared pipe (a tactical reach-back link).
    pub wan_rate_kbps: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            lan_latency: 1,
            lan_jitter: 1,
            wan_latency: 20,
            wan_jitter: 5,
            lan_loss: 0.0,
            wan_loss: 0.0,
            lan_rate_kbps: 0,
            wan_rate_kbps: 0,
        }
    }
}

/// Per-scope fault-injection knobs, layered on top of the base link model.
///
/// A profile applies to every delivery crossing its scope (one LAN medium,
/// or the WAN). All knobs default to zero — a default profile injects
/// nothing and draws nothing from the fault RNG stream, so fault-free runs
/// are bit-identical with pre-fault-layer builds.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultProfile {
    /// Extra loss probability, on top of the `SimConfig` loss.
    pub loss: f64,
    /// Probability a delivery is duplicated (a second copy is scheduled
    /// with independently sampled latency, so it may arrive first).
    pub duplicate: f64,
    /// Probability a delivery is corrupted: the payload is routed through
    /// the corruption hook (see [`Sim::set_corruptor`]); without a hook the
    /// frame is destroyed outright.
    pub corrupt: f64,
    /// Bound on extra, uniformly sampled delivery delay. This models
    /// reordering: any two messages whose delivery windows overlap can
    /// arrive in either order.
    pub reorder_jitter: SimTime,
}

impl FaultProfile {
    /// True when the profile injects nothing.
    pub fn is_quiet(&self) -> bool {
        *self == Self::default()
    }
}

/// A scheduled change to the world, for scripting scenarios
/// ("at t=60s LAN 2 loses its registry", "at t=120s the WAN partitions",
/// "LAN 2 lossy from 30 s to 60 s").
#[derive(Clone, Debug)]
pub enum ControlAction {
    /// Take a node down: it stops receiving messages and all its pending
    /// timers are discarded.
    Crash(NodeId),
    /// Bring a crashed node back; `on_start` runs again.
    Revive(NodeId),
    /// Partition the WAN into the given LAN groups (see
    /// [`Topology::partition`]).
    Partition(Vec<Vec<LanId>>),
    /// Heal all WAN partitions.
    HealPartition,
    /// Replace one LAN's fault profile (in effect until overwritten).
    SetLanFaults(LanId, FaultProfile),
    /// Replace the WAN fault profile (in effect until overwritten).
    SetWanFaults(FaultProfile),
    /// Replace the fault profile for one WAN *direction* `from → to`,
    /// overriding the symmetric WAN profile for deliveries that way only.
    /// Models asymmetric links: a request can arrive while its reply is
    /// lost.
    SetWanPairFaults(LanId, LanId, FaultProfile),
    /// Cut the WAN between one pair of LANs (both directions), leaving
    /// every other WAN route up (see [`Topology::cut_wan_pair`]).
    CutWanPair(LanId, LanId),
    /// Heal one previously cut WAN pair.
    HealWanPair(LanId, LanId),
    /// Reset every fault profile (per-LAN, WAN, per-direction overrides) to
    /// the fault-free default. Does not heal partitions or pair cuts.
    ClearFaults,
}

/// The payload corruption hook: given the fault RNG and the in-flight
/// payload, returns the corrupted payload to deliver, or `None` when the
/// corruption rendered the frame undecodable (it is then dropped and
/// counted). The discovery stack installs encode → byte-mutation → decode.
pub type Corruptor<P> = Box<dyn FnMut(&mut Rng, &P) -> Option<P>>;

enum EventKind<P> {
    Deliver { to: NodeId, from: NodeId, payload: P, bytes: u32, kind: MsgKind },
    Timer { node: NodeId, epoch: u32, id: TimerId, tag: u64 },
    Control(ControlAction),
}

struct Event<P> {
    at: SimTime,
    kind: EventKind<P>,
}

/// The simulator: topology + node handlers + event queue + accounting.
///
/// `P` is the payload type carried by every message (the discovery stack
/// instantiates it with its wire message type). Multicast clones the payload
/// per receiver, hence `P: Clone`.
pub struct Sim<P> {
    cfg: SimConfig,
    topo: Topology,
    now: SimTime,
    seq: u64,
    queue: BinaryHeap<Reverse<EventKey>>,
    // Events are stored out-of-line so the heap's ordering never looks at `P`.
    slots: Vec<Option<Event<P>>>,
    free_slots: Vec<usize>,
    handlers: Vec<Option<Box<dyn NodeHandler<P>>>>,
    alive: Vec<bool>,
    epoch: Vec<u32>,
    rngs: Vec<Rng>,
    /// Per-node derived seeds, handed to handlers through `Ctx` so they can
    /// derive private labelled sub-streams (retry jitter etc.) that never
    /// perturb the main per-node stream.
    node_seeds: Vec<Seed>,
    link_rng: Rng,
    /// Dedicated stream for fault injection so enabling faults never
    /// perturbs the link RNG draws of fault-free traffic.
    fault_rng: Rng,
    next_timer: u64,
    cancelled: HashSet<TimerId>,
    stats: NetStats,
    seed: u64,
    /// Per-LAN medium busy-until time (bandwidth model).
    lan_busy_until: Vec<SimTime>,
    /// Shared WAN pipe busy-until time.
    wan_busy_until: SimTime,
    /// Per-LAN fault profiles (indexed by LAN id).
    lan_faults: Vec<FaultProfile>,
    /// WAN fault profile.
    wan_faults: FaultProfile,
    /// Per-direction WAN overrides, keyed by `(from_lan, to_lan)`. A
    /// present entry replaces `wan_faults` for deliveries in that direction.
    wan_pair_faults: BTreeMap<(LanId, LanId), FaultProfile>,
    corruptor: Option<Corruptor<P>>,
}

#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct EventKey {
    at: SimTime,
    seq: u64,
    slot: usize,
}

impl<P: Clone + 'static> Sim<P> {
    /// Creates a simulator over `topo`. `seed` fixes every random choice in
    /// the run (link loss, jitter, each node's private RNG).
    pub fn new(cfg: SimConfig, topo: Topology, seed: u64) -> Self {
        let lan_count = topo.lan_count();
        Self {
            cfg,
            topo,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            slots: Vec::new(),
            free_slots: Vec::new(),
            handlers: Vec::new(),
            alive: Vec::new(),
            epoch: Vec::new(),
            rngs: Vec::new(),
            node_seeds: Vec::new(),
            link_rng: Seed(seed).derive("simnet.link").rng(),
            fault_rng: Seed(seed).derive("simnet.fault").rng(),
            next_timer: 0,
            cancelled: HashSet::new(),
            stats: NetStats::default(),
            lan_busy_until: vec![0; lan_count],
            wan_busy_until: 0,
            lan_faults: vec![FaultProfile::default(); lan_count],
            wan_faults: FaultProfile::default(),
            wan_pair_faults: BTreeMap::new(),
            corruptor: None,
            // Folded into each node's private RNG in `add_node`.
            seed,
        }
    }

    /// Adds a node on `lan` with the given behaviour; `on_start` runs at the
    /// current simulated time (time 0 for setup-phase adds).
    pub fn add_node(&mut self, lan: LanId, handler: Box<dyn NodeHandler<P>>) -> NodeId {
        let id = NodeId(self.handlers.len() as u32);
        self.topo.attach_node(id, lan);
        self.handlers.push(Some(handler));
        self.alive.push(true);
        self.epoch.push(0);
        let node_seed = Seed(self.seed).derive_idx("simnet.node", u64::from(id.0));
        self.rngs.push(node_seed.rng());
        self.node_seeds.push(node_seed);
        self.invoke(id, |h, ctx| h.on_start(ctx));
        id
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the topology.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Traffic counters accumulated so far.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// Resets the traffic counters (useful to measure only the steady state
    /// after a warm-up phase).
    pub fn reset_stats(&mut self) {
        self.stats = NetStats::default();
    }

    /// Whether a node is currently up.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.alive[node.index()]
    }

    /// Immediately crashes a node (see [`ControlAction::Crash`]).
    pub fn crash_node(&mut self, node: NodeId) {
        if self.alive[node.index()] {
            self.alive[node.index()] = false;
            self.epoch[node.index()] += 1;
        }
    }

    /// Immediately revives a crashed node and reruns its `on_start`.
    pub fn revive_node(&mut self, node: NodeId) {
        if !self.alive[node.index()] {
            self.alive[node.index()] = true;
            self.epoch[node.index()] += 1;
            self.invoke(node, |h, ctx| h.on_start(ctx));
        }
    }

    /// Schedules a control action at an absolute simulated time.
    pub fn schedule(&mut self, at: SimTime, action: ControlAction) {
        assert!(at >= self.now, "cannot schedule in the past");
        self.push_event(at, EventKind::Control(action));
    }

    /// Replaces one LAN's fault profile, effective immediately.
    pub fn set_lan_faults(&mut self, lan: LanId, faults: FaultProfile) {
        assert!(lan.index() < self.lan_faults.len(), "unknown LAN {lan:?}");
        self.lan_faults[lan.index()] = faults;
    }

    /// Replaces the WAN fault profile, effective immediately.
    pub fn set_wan_faults(&mut self, faults: FaultProfile) {
        self.wan_faults = faults;
    }

    /// Replaces the fault profile for the WAN direction `from → to`,
    /// effective immediately. A quiet profile still overrides the symmetric
    /// WAN profile for that direction (use [`Sim::clear_faults`] or re-set
    /// the override to drop it).
    pub fn set_wan_pair_faults(&mut self, from: LanId, to: LanId, faults: FaultProfile) {
        assert!(from.index() < self.lan_faults.len(), "unknown LAN {from:?}");
        assert!(to.index() < self.lan_faults.len(), "unknown LAN {to:?}");
        self.wan_pair_faults.insert((from, to), faults);
    }

    /// The per-direction override for `from → to`, if one is set.
    pub fn wan_pair_faults(&self, from: LanId, to: LanId) -> Option<FaultProfile> {
        self.wan_pair_faults.get(&(from, to)).copied()
    }

    /// Cuts the WAN between one pair of LANs (see
    /// [`Topology::cut_wan_pair`]).
    pub fn cut_wan_pair(&mut self, a: LanId, b: LanId) {
        self.topo.cut_wan_pair(a, b);
    }

    /// Heals one previously cut WAN pair.
    pub fn heal_wan_pair(&mut self, a: LanId, b: LanId) {
        self.topo.heal_wan_pair(a, b);
    }

    /// Resets every fault profile (including per-direction overrides) to
    /// the fault-free default. Partitions and pair cuts are left alone.
    pub fn clear_faults(&mut self) {
        self.lan_faults.fill(FaultProfile::default());
        self.wan_faults = FaultProfile::default();
        self.wan_pair_faults.clear();
    }

    /// The fault profile currently applied to a LAN.
    pub fn lan_faults(&self, lan: LanId) -> FaultProfile {
        self.lan_faults[lan.index()]
    }

    /// The fault profile currently applied to the WAN.
    pub fn wan_faults(&self) -> FaultProfile {
        self.wan_faults
    }

    /// Installs the payload corruption hook used when a
    /// [`FaultProfile::corrupt`] roll fires. The discovery stack installs
    /// encode → seeded byte-mutation → decode here, so corruption exercises
    /// the real wire decoder; `None` means the frame no longer decodes and
    /// is dropped (counted in [`NetStats::corrupt_dropped_messages`]).
    pub fn set_corruptor(&mut self, hook: impl FnMut(&mut Rng, &P) -> Option<P> + 'static) {
        self.corruptor = Some(Box::new(hook));
    }

    /// Borrows a handler downcast to its concrete type, for inspection.
    /// Returns `None` for a wrong type or unknown node.
    pub fn handler<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.handlers
            .get(node.index())?
            .as_deref()?
            .as_any()
            .downcast_ref::<T>()
    }

    /// Mutable variant of [`Sim::handler`], for test instrumentation.
    pub fn handler_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.handlers
            .get_mut(node.index())?
            .as_deref_mut()?
            .as_any_mut()
            .downcast_mut::<T>()
    }

    /// Runs the handler callback `f` on a live node right now, applying its
    /// queued actions. This is how experiments inject work ("client 3 issues
    /// a query at t=10s") without going through the network.
    pub fn with_node<T: 'static>(&mut self, node: NodeId, f: impl FnOnce(&mut T, &mut Ctx<'_, P>)) {
        if !self.alive[node.index()] {
            return;
        }
        self.invoke(node, move |h, ctx| {
            if let Some(t) = h.as_any_mut().downcast_mut::<T>() {
                f(t, ctx);
            } else {
                panic!("with_node: node {:?} is not the requested handler type", ctx.node());
            }
        });
    }

    /// Processes all events up to and including `until`, then advances the
    /// clock to `until`.
    pub fn run_until(&mut self, until: SimTime) {
        while let Some(Reverse(key)) = self.queue.peek() {
            if key.at > until {
                break;
            }
            let Reverse(key) = self.queue.pop().expect("peeked");
            let ev = self.slots[key.slot].take().expect("event slot occupied");
            self.free_slots.push(key.slot);
            self.now = ev.at;
            self.dispatch(ev.kind);
        }
        self.now = until;
    }

    /// Runs until the event queue drains or `max` is reached; returns the
    /// final simulated time.
    pub fn run_to_quiescence(&mut self, max: SimTime) -> SimTime {
        while let Some(Reverse(key)) = self.queue.peek() {
            if key.at > max {
                break;
            }
            let Reverse(key) = self.queue.pop().expect("peeked");
            let ev = self.slots[key.slot].take().expect("event slot occupied");
            self.free_slots.push(key.slot);
            self.now = ev.at;
            self.dispatch(ev.kind);
        }
        self.now
    }

    fn dispatch(&mut self, kind: EventKind<P>) {
        match kind {
            EventKind::Deliver { to, from, payload, bytes, kind } => {
                let _ = (bytes, kind);
                if self.alive[to.index()] {
                    self.invoke(to, move |h, ctx| h.on_message(ctx, from, payload));
                } else {
                    self.stats.record_drop();
                }
            }
            EventKind::Timer { node, epoch, id, tag } => {
                if self.cancelled.remove(&id) {
                    return;
                }
                if self.alive[node.index()] && self.epoch[node.index()] == epoch {
                    self.invoke(node, move |h, ctx| h.on_timer(ctx, id, tag));
                }
            }
            EventKind::Control(action) => match action {
                ControlAction::Crash(n) => self.crash_node(n),
                ControlAction::Revive(n) => self.revive_node(n),
                ControlAction::Partition(groups) => {
                    let refs: Vec<&[LanId]> = groups.iter().map(|g| g.as_slice()).collect();
                    self.topo.partition(&refs);
                }
                ControlAction::HealPartition => self.topo.heal_partition(),
                ControlAction::SetLanFaults(lan, f) => self.set_lan_faults(lan, f),
                ControlAction::SetWanFaults(f) => self.set_wan_faults(f),
                ControlAction::SetWanPairFaults(from, to, f) => self.set_wan_pair_faults(from, to, f),
                ControlAction::CutWanPair(a, b) => self.cut_wan_pair(a, b),
                ControlAction::HealWanPair(a, b) => self.heal_wan_pair(a, b),
                ControlAction::ClearFaults => self.clear_faults(),
            },
        }
    }

    fn invoke(&mut self, node: NodeId, f: impl FnOnce(&mut dyn NodeHandler<P>, &mut Ctx<'_, P>)) {
        let mut handler = self.handlers[node.index()].take().expect("handler present");
        let mut ctx = Ctx {
            now: self.now,
            node,
            lan: self.topo.lan_of(node),
            seed: self.node_seeds[node.index()],
            rng: &mut self.rngs[node.index()],
            next_timer: &mut self.next_timer,
            actions: Vec::new(),
        };
        f(handler.as_mut(), &mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        self.handlers[node.index()] = Some(handler);
        self.apply_actions(node, actions);
    }

    fn apply_actions(&mut self, node: NodeId, actions: Vec<Action<P>>) {
        for action in actions {
            match action {
                Action::Send { dest, payload, bytes, kind } => self.transmit(node, dest, payload, bytes, kind),
                Action::SetTimer { id, fire_at, tag } => {
                    let epoch = self.epoch[node.index()];
                    self.push_event(fire_at, EventKind::Timer { node, epoch, id, tag });
                }
                Action::CancelTimer(id) => {
                    self.cancelled.insert(id);
                }
            }
        }
    }

    fn transmit(&mut self, from: NodeId, dest: Destination, payload: P, bytes: u32, kind: MsgKind) {
        match dest {
            Destination::Unicast(to) => {
                if to.index() >= self.handlers.len() {
                    // Corrupted frames can carry node ids that name nobody
                    // (e.g. a mutated RegistryList). Address a black hole
                    // instead of indexing the topology out of bounds.
                    self.stats.record_drop();
                    return;
                }
                if to == from {
                    // Loopback: free and instantaneous-ish.
                    let at = self.now + 1;
                    self.push_event(at, EventKind::Deliver { to, from, payload, bytes, kind });
                    return;
                }
                let from_lan = self.topo.lan_of(from);
                let to_lan = self.topo.lan_of(to);
                let scope = if from_lan == to_lan { Scope::Lan } else { Scope::Wan };
                // The sender transmits regardless of the receiver's fate, so
                // the bytes are always charged.
                self.stats.record(scope, kind, u64::from(bytes));
                if scope == Scope::Wan && !self.topo.wan_reachable(from_lan, to_lan) {
                    if self.topo.wan_pair_cut(from_lan, to_lan) {
                        self.stats.record_wan_cut_drop();
                    }
                    self.stats.record_drop();
                    return;
                }
                let faults = self.faults_for(scope, from_lan, to_lan);
                if self.sample_loss(scope) || self.sample_fault_loss(faults) {
                    self.stats.record_drop();
                    return;
                }
                let serialization = self.reserve_medium(scope, from_lan, bytes);
                self.deliver_faulty(faults, scope, serialization, to, from, payload, bytes, kind);
            }
            Destination::Multicast(lan) => {
                assert_eq!(lan, self.topo.lan_of(from), "multicast is link-local: sender must be on the LAN");
                // One transmission on the broadcast medium.
                self.stats.record(Scope::Lan, kind, u64::from(bytes));
                self.stats.record_multicast();
                let serialization = self.reserve_medium(Scope::Lan, lan, bytes);
                let faults = self.lan_faults[lan.index()];
                let members: Vec<NodeId> =
                    self.topo.members(lan).iter().copied().filter(|&m| m != from).collect();
                for to in members {
                    if self.sample_loss(Scope::Lan) || self.sample_fault_loss(faults) {
                        self.stats.record_drop();
                        continue;
                    }
                    self.deliver_faulty(
                        faults, Scope::Lan, serialization, to, from, payload.clone(), bytes, kind,
                    );
                }
            }
        }
    }

    /// Schedules one logical delivery, applying duplication, reordering and
    /// corruption from `faults`. A quiet profile draws nothing from the
    /// fault RNG, keeping fault-free runs bit-identical.
    #[allow(clippy::too_many_arguments)]
    fn deliver_faulty(
        &mut self,
        faults: FaultProfile,
        scope: Scope,
        serialization: SimTime,
        to: NodeId,
        from: NodeId,
        payload: P,
        bytes: u32,
        kind: MsgKind,
    ) {
        let copies = if faults.duplicate > 0.0 && self.fault_rng.gen_bool(faults.duplicate) {
            self.stats.record_duplicate();
            2
        } else {
            1
        };
        let mut payload = Some(payload);
        for copy in 0..copies {
            // Each copy samples its own latency and reorder delay, so a
            // duplicate can overtake the original.
            let reorder = if faults.reorder_jitter > 0 {
                let extra = self.fault_rng.gen_range(0..=faults.reorder_jitter);
                if extra > 0 {
                    self.stats.record_reorder_delay();
                }
                extra
            } else {
                0
            };
            let p = if copy + 1 == copies {
                payload.take().expect("last copy takes the payload")
            } else {
                payload.as_ref().cloned().expect("payload present until last copy")
            };
            let p = if faults.corrupt > 0.0 && self.fault_rng.gen_bool(faults.corrupt) {
                self.stats.record_corrupted();
                let mutated = match self.corruptor.as_mut() {
                    Some(hook) => hook(&mut self.fault_rng, &p),
                    None => None,
                };
                match mutated {
                    Some(m) => m,
                    None => {
                        // The mutation destroyed the frame: the receiver's
                        // decoder would reject it, so it never reaches the
                        // handler.
                        self.stats.record_corrupt_drop();
                        continue;
                    }
                }
            } else {
                p
            };
            let at = self.now + serialization + self.sample_latency(scope) + reorder;
            self.push_event(at, EventKind::Deliver { to, from, payload: p, bytes, kind });
        }
    }

    fn faults_for(&self, scope: Scope, from_lan: LanId, to_lan: LanId) -> FaultProfile {
        match scope {
            Scope::Lan => self.lan_faults[from_lan.index()],
            Scope::Wan => self
                .wan_pair_faults
                .get(&(from_lan, to_lan))
                .copied()
                .unwrap_or(self.wan_faults),
        }
    }

    fn sample_fault_loss(&mut self, faults: FaultProfile) -> bool {
        faults.loss > 0.0 && self.fault_rng.gen_bool(faults.loss)
    }

    /// Reserves the shared medium for `bytes` and returns the serialization
    /// delay from `now` until the transmission has fully left the sender
    /// (queueing behind earlier transmissions included). Zero-rate = ideal.
    fn reserve_medium(&mut self, scope: Scope, lan: LanId, bytes: u32) -> SimTime {
        let rate_kbps = match scope {
            Scope::Lan => self.cfg.lan_rate_kbps,
            Scope::Wan => self.cfg.wan_rate_kbps,
        };
        if rate_kbps == 0 {
            return 0;
        }
        // ms = bits / (kbits/s) = bytes*8 / rate_kbps
        let tx_ms = (u64::from(bytes) * 8).div_ceil(u64::from(rate_kbps)).max(1);
        let busy = match scope {
            Scope::Lan => &mut self.lan_busy_until[lan.index()],
            Scope::Wan => &mut self.wan_busy_until,
        };
        let start = (*busy).max(self.now);
        *busy = start + tx_ms;
        *busy - self.now
    }

    fn sample_loss(&mut self, scope: Scope) -> bool {
        let p = match scope {
            Scope::Lan => self.cfg.lan_loss,
            Scope::Wan => self.cfg.wan_loss,
        };
        p > 0.0 && self.link_rng.gen_bool(p)
    }

    fn sample_latency(&mut self, scope: Scope) -> SimTime {
        let (base, jitter) = match scope {
            Scope::Lan => (self.cfg.lan_latency, self.cfg.lan_jitter),
            Scope::Wan => (self.cfg.wan_latency, self.cfg.wan_jitter),
        };
        base + if jitter > 0 { self.link_rng.gen_range(0..=jitter) } else { 0 }
    }

    fn push_event(&mut self, at: SimTime, kind: EventKind<P>) {
        let seq = self.seq;
        self.seq += 1;
        let ev = Event { at, kind };
        let slot = match self.free_slots.pop() {
            Some(s) => {
                self.slots[s] = Some(ev);
                s
            }
            None => {
                self.slots.push(Some(ev));
                self.slots.len() - 1
            }
        };
        self.queue.push(Reverse(EventKey { at, seq, slot }));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Recorder {
        messages: Vec<(NodeId, String)>,
        timers: Vec<u64>,
        starts: u32,
    }

    impl NodeHandler<String> for Recorder {
        fn on_start(&mut self, _ctx: &mut Ctx<'_, String>) {
            self.starts += 1;
        }
        fn on_message(&mut self, _ctx: &mut Ctx<'_, String>, from: NodeId, msg: String) {
            self.messages.push((from, msg));
        }
        fn on_timer(&mut self, _ctx: &mut Ctx<'_, String>, _t: TimerId, tag: u64) {
            self.timers.push(tag);
        }
    }

    fn two_lan_sim() -> (Sim<String>, LanId, LanId) {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let l1 = topo.add_lan();
        (Sim::new(SimConfig::default(), topo, 7), l0, l1)
    }

    #[test]
    fn unicast_lan_delivery_and_accounting() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(NodeId(1)), "hi".into(), 10, "test");
        });
        sim.run_until(100);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert_eq!(rec.messages, vec![(a, "hi".to_string())]);
        assert_eq!(sim.stats().lan_bytes, 10);
        assert_eq!(sim.stats().wan_bytes, 0);
    }

    #[test]
    fn unicast_wan_crosses_lans() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "wan".into(), 64, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().wan_bytes, 64);
        assert_eq!(sim.stats().lan_bytes, 0);
    }

    #[test]
    fn multicast_reaches_lan_only_charged_once() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        let c = sim.add_node(l0, Box::<Recorder>::default());
        let d = sim.add_node(l1, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let lan = ctx.lan();
            ctx.send(Destination::Multicast(lan), "probe".into(), 40, "probe");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
        assert_eq!(sim.handler::<Recorder>(c).unwrap().messages.len(), 1);
        assert_eq!(sim.handler::<Recorder>(d).unwrap().messages.len(), 0);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().messages.len(), 0, "sender excluded");
        assert_eq!(sim.stats().lan_bytes, 40, "broadcast medium charges once");
        assert_eq!(sim.stats().multicast_transmissions, 1);
    }

    #[test]
    fn crashed_node_receives_nothing_and_timers_die() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.set_timer(50, 1);
        });
        sim.crash_node(b);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "lost".into(), 8, "test");
        });
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert!(rec.messages.is_empty());
        assert!(rec.timers.is_empty());
        assert_eq!(sim.stats().dropped_messages, 1);
        // Bytes still charged: the sender transmitted.
        assert_eq!(sim.stats().lan_bytes, 8);
    }

    #[test]
    fn revive_reruns_on_start_and_discards_stale_timers() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.set_timer(50, 9);
        });
        sim.crash_node(a);
        sim.revive_node(a);
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(a).unwrap();
        assert_eq!(rec.starts, 2);
        assert!(rec.timers.is_empty(), "pre-crash timer must not fire after revive");
    }

    #[test]
    fn cancelled_timer_does_not_fire() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            let t = ctx.set_timer(50, 1);
            ctx.set_timer(60, 2);
            ctx.cancel_timer(t);
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().timers, vec![2]);
    }

    #[test]
    fn partition_blocks_wan_until_heal() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        sim.schedule(10, ControlAction::Partition(vec![vec![l0], vec![l1]]));
        sim.schedule(100, ControlAction::HealPartition);
        sim.run_until(20);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "blocked".into(), 8, "test");
        });
        sim.run_until(90);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        sim.run_until(110);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "open".into(), 8, "test");
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn deterministic_across_runs() {
        let run = || {
            let (mut sim, l0, l1) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l1, Box::<Recorder>::default());
            for i in 0..50 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 16, "test");
                });
                sim.run_until(sim.now() + 10);
            }
            sim.run_until(10_000);
            (
                sim.stats().total_bytes(),
                sim.handler::<Recorder>(b).unwrap().messages.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn unicast_to_unknown_node_is_dropped_not_a_panic() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.with_node::<Recorder>(a, |_, ctx| {
            // A corrupted frame could name a node that was never added.
            ctx.send(Destination::Unicast(NodeId(999)), "void".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.stats().dropped_messages, 1);
    }

    #[test]
    fn duplication_delivers_twice_and_counts() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_lan_faults(l0, FaultProfile { duplicate: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "dup".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 2);
        assert_eq!(sim.stats().duplicated_messages, 1);
        // One logical transmission on the wire.
        assert_eq!(sim.stats().lan_messages, 1);
    }

    #[test]
    fn corruption_without_hook_destroys_frames() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_lan_faults(l0, FaultProfile { corrupt: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "gone".into(), 8, "test");
        });
        sim.run_until(100);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        assert_eq!(sim.stats().corrupted_messages, 1);
        assert_eq!(sim.stats().corrupt_dropped_messages, 1);
    }

    #[test]
    fn corruption_hook_rewrites_payloads() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        sim.set_corruptor(|_rng, p: &String| Some(format!("{p}?")));
        sim.set_lan_faults(l0, FaultProfile { corrupt: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "msg".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages, vec![(a, "msg?".to_string())]);
        assert_eq!(sim.stats().corrupted_messages, 1);
        assert_eq!(sim.stats().corrupt_dropped_messages, 0);
    }

    #[test]
    fn scheduled_fault_window_opens_and_clears() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l0, Box::<Recorder>::default());
        let lossy = FaultProfile { loss: 1.0, ..Default::default() };
        sim.schedule(10, ControlAction::SetLanFaults(l0, lossy));
        sim.schedule(100, ControlAction::ClearFaults);
        sim.run_until(20);
        assert_eq!(sim.lan_faults(l0), lossy, "window open");
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "in-window".into(), 8, "test");
        });
        sim.run_until(110);
        assert!(sim.lan_faults(l0).is_quiet(), "window cleared");
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "after".into(), 8, "test");
        });
        sim.run_until(200);
        let rec = sim.handler::<Recorder>(b).unwrap();
        assert_eq!(rec.messages.len(), 1, "only the post-window message arrives");
        assert_eq!(rec.messages[0].1, "after");
    }

    #[test]
    fn reorder_jitter_can_swap_deliveries() {
        // With a large reorder bound and zero base jitter, two back-to-back
        // messages eventually arrive swapped for some seed.
        let mut swapped = false;
        for seed in 0..20 {
            let mut topo = Topology::new();
            let l0 = topo.add_lan();
            let cfg = SimConfig { lan_jitter: 0, ..Default::default() };
            let mut sim: Sim<String> = Sim::new(cfg, topo, seed);
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l0, Box::<Recorder>::default());
            sim.set_lan_faults(l0, FaultProfile { reorder_jitter: 50, ..Default::default() });
            sim.with_node::<Recorder>(a, |_, ctx| {
                ctx.send(Destination::Unicast(b), "first".into(), 8, "test");
                ctx.send(Destination::Unicast(b), "second".into(), 8, "test");
            });
            sim.run_until(1_000);
            let rec = sim.handler::<Recorder>(b).unwrap();
            assert_eq!(rec.messages.len(), 2, "reordering never loses messages");
            if rec.messages[0].1 == "second" {
                swapped = true;
                break;
            }
        }
        assert!(swapped, "no seed in 0..20 produced a swap");
    }

    #[test]
    fn fault_free_runs_unchanged_by_fault_layer_presence() {
        // A quiet profile must not consume fault RNG draws: a run with the
        // default profiles is byte-identical to one where a window opened
        // and closed before any traffic.
        let run = |pre_window: bool| {
            let (mut sim, l0, l1) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let b = sim.add_node(l1, Box::<Recorder>::default());
            if pre_window {
                sim.set_wan_faults(FaultProfile { duplicate: 0.9, ..Default::default() });
                sim.clear_faults();
            }
            for i in 0..50 {
                sim.with_node::<Recorder>(a, |_, ctx| {
                    ctx.send(Destination::Unicast(b), format!("m{i}"), 16, "test");
                });
                sim.run_until(sim.now() + 10);
            }
            sim.run_until(10_000);
            sim.handler::<Recorder>(b).unwrap().messages.clone()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn asymmetric_pair_faults_hit_one_direction_only() {
        let (mut sim, l0, l1) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        // Lose everything l1 → l0; the l0 → l1 direction stays clean.
        sim.set_wan_pair_faults(l1, l0, FaultProfile { loss: 1.0, ..Default::default() });
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "request".into(), 8, "test");
        });
        sim.run_until(100);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1, "forward direction clean");
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.send(Destination::Unicast(a), "reply".into(), 8, "test");
        });
        sim.run_until(200);
        assert!(sim.handler::<Recorder>(a).unwrap().messages.is_empty(), "reply direction lossy");
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.clear_faults();
        assert!(sim.wan_pair_faults(l1, l0).is_none(), "clear_faults drops overrides");
        sim.with_node::<Recorder>(b, |_, ctx| {
            ctx.send(Destination::Unicast(a), "reply2".into(), 8, "test");
        });
        sim.run_until(300);
        assert_eq!(sim.handler::<Recorder>(a).unwrap().messages.len(), 1);
    }

    #[test]
    fn wan_pair_cut_blocks_only_that_pair() {
        let mut topo = Topology::new();
        let l0 = topo.add_lan();
        let l1 = topo.add_lan();
        let l2 = topo.add_lan();
        let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, 7);
        let a = sim.add_node(l0, Box::<Recorder>::default());
        let b = sim.add_node(l1, Box::<Recorder>::default());
        let c = sim.add_node(l2, Box::<Recorder>::default());
        sim.schedule(10, ControlAction::CutWanPair(l0, l1));
        sim.run_until(20);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "cut".into(), 8, "test");
            ctx.send(Destination::Unicast(c), "open".into(), 8, "test");
        });
        sim.run_until(100);
        assert!(sim.handler::<Recorder>(b).unwrap().messages.is_empty());
        assert_eq!(sim.handler::<Recorder>(c).unwrap().messages.len(), 1);
        assert_eq!(sim.stats().wan_cut_drops, 1);
        assert_eq!(sim.stats().dropped_messages, 1);
        sim.schedule(110, ControlAction::HealWanPair(l0, l1));
        sim.run_until(120);
        sim.with_node::<Recorder>(a, |_, ctx| {
            ctx.send(Destination::Unicast(b), "healed".into(), 8, "test");
        });
        sim.run_until(200);
        assert_eq!(sim.handler::<Recorder>(b).unwrap().messages.len(), 1);
    }

    #[test]
    fn derived_ctx_streams_do_not_perturb_the_node_stream() {
        // Deriving (and draining) a labelled sub-stream must leave the
        // node's main RNG draws untouched, and the sub-stream must be
        // stable across runs.
        let run = |derive: bool| {
            let (mut sim, l0, _) = two_lan_sim();
            let a = sim.add_node(l0, Box::<Recorder>::default());
            let mut side = Vec::new();
            let mut main = Vec::new();
            sim.with_node::<Recorder>(a, |_, ctx| {
                if derive {
                    let mut r = ctx.derive_rng("test.side");
                    side = (0..8).map(|_| r.next_u64()).collect();
                }
                main = (0..8).map(|_| ctx.rng().next_u64()).collect();
            });
            (main, side)
        };
        let (main_plain, _) = run(false);
        let (main_derived, side1) = run(true);
        let (_, side2) = run(true);
        assert_eq!(main_plain, main_derived, "derive_rng must not consume node draws");
        assert_eq!(side1, side2, "derived stream is deterministic");
        assert_ne!(main_plain, side1, "derived stream is a different stream");
    }

    #[test]
    fn with_node_on_dead_node_is_noop() {
        let (mut sim, l0, _) = two_lan_sim();
        let a = sim.add_node(l0, Box::<Recorder>::default());
        sim.crash_node(a);
        let mut called = false;
        sim.with_node::<Recorder>(a, |_, _| called = true);
        assert!(!called);
    }
}
