//! Identifiers for simulation entities.

use std::fmt;

/// Identifies a node in the simulation. Assigned densely from zero by
/// [`crate::Sim::add_node`], so it doubles as an index into per-node tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifies a LAN (one multicast domain). Assigned densely from zero by
/// [`crate::Topology::add_lan`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LanId(pub u16);

impl LanId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lan{}", self.0)
    }
}

impl fmt::Display for LanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lan{}", self.0)
    }
}

/// Handle for a scheduled timer, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TimerId(pub u64);
