//! Network accounting: bytes and message counts, per scope and per kind.
//!
//! Most of the paper's claims are about bandwidth ("massive overhead",
//! "bandwidth efficient", "a too heavy burden on the network"), so the
//! simulator keeps careful books. Charging rules:
//!
//! * LAN unicast: message size charged once to [`Scope::Lan`].
//! * LAN multicast: broadcast medium — one transmission reaches every
//!   listener, so the size is charged once to [`Scope::Lan`] regardless of
//!   the receiver count.
//! * WAN unicast (cross-LAN): charged once to [`Scope::Wan`] (the WAN link is
//!   the scarce resource; the two LAN hops at each end are ignored, which
//!   only makes the comparison conservative).

use std::collections::BTreeMap;

use crate::message::MsgKind;

/// Which part of the network carried a message.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scope {
    Lan,
    Wan,
}

/// Counters for one message kind.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct KindStats {
    pub messages: u64,
    pub bytes: u64,
}

/// Aggregated traffic counters for a run.
#[derive(Clone, Default, Debug)]
pub struct NetStats {
    pub lan_messages: u64,
    pub lan_bytes: u64,
    pub wan_messages: u64,
    pub wan_bytes: u64,
    /// Payload copies actually handed to a live handler (multicast counts
    /// once per receiver, duplicates count each copy). The denominator for
    /// per-delivery allocation accounting.
    pub delivered_messages: u64,
    /// Messages abandoned because the destination was down, unreachable
    /// (partition), nonexistent (corrupted address), or lost to the
    /// configured loss probability (base or fault-injected).
    pub dropped_messages: u64,
    /// Multicast transmissions (also counted in `lan_messages`).
    pub multicast_transmissions: u64,
    /// Deliveries duplicated by fault injection (each adds one extra copy).
    pub duplicated_messages: u64,
    /// Deliveries routed through the corruption hook.
    pub corrupted_messages: u64,
    /// Corrupted deliveries that no longer decoded and were dropped
    /// (subset of `corrupted_messages`; *not* counted in
    /// `dropped_messages`, which tracks link-level losses).
    pub corrupt_dropped_messages: u64,
    /// Deliveries delayed by fault-injected reorder jitter.
    pub reorder_delayed_messages: u64,
    /// Unicasts dropped because their specific WAN pair was cut (partial
    /// partition; also counted in `dropped_messages`).
    pub wan_cut_drops: u64,
    /// Deliveries that arrived at a capacity-limited node with its
    /// processing budget for the current tick exhausted and were re-queued
    /// to a later tick (modeled ingress queueing, not a loss).
    pub capacity_deferred_messages: u64,
    /// Deliveries discarded at a capacity-limited node because its bounded
    /// ingress queue was full (*not* counted in `dropped_messages`, which
    /// tracks link-level losses).
    pub capacity_dropped_messages: u64,
    by_kind: BTreeMap<MsgKind, KindStats>,
    /// Per-kind breakdown of `capacity_dropped_messages` — the counter the
    /// priority-shedding invariants read ("zero renewal-class drops while
    /// query-class shedding is active").
    capacity_dropped_by_kind: BTreeMap<MsgKind, u64>,
}

impl NetStats {
    pub fn record(&mut self, scope: Scope, kind: MsgKind, bytes: u64) {
        match scope {
            Scope::Lan => {
                self.lan_messages += 1;
                self.lan_bytes += bytes;
            }
            Scope::Wan => {
                self.wan_messages += 1;
                self.wan_bytes += bytes;
            }
        }
        let e = self.by_kind.entry(kind).or_default();
        e.messages += 1;
        e.bytes += bytes;
    }

    pub fn record_multicast(&mut self) {
        self.multicast_transmissions += 1;
    }

    pub fn record_delivery(&mut self) {
        self.delivered_messages += 1;
    }

    pub fn record_drop(&mut self) {
        self.dropped_messages += 1;
    }

    pub fn record_duplicate(&mut self) {
        self.duplicated_messages += 1;
    }

    pub fn record_corrupted(&mut self) {
        self.corrupted_messages += 1;
    }

    pub fn record_corrupt_drop(&mut self) {
        self.corrupt_dropped_messages += 1;
    }

    pub fn record_reorder_delay(&mut self) {
        self.reorder_delayed_messages += 1;
    }

    pub fn record_wan_cut_drop(&mut self) {
        self.wan_cut_drops += 1;
    }

    pub fn record_capacity_deferral(&mut self) {
        self.capacity_deferred_messages += 1;
    }

    pub fn record_capacity_drop(&mut self, kind: MsgKind) {
        self.capacity_dropped_messages += 1;
        *self.capacity_dropped_by_kind.entry(kind).or_default() += 1;
    }

    /// Folds another counter set into this one. The parallel engine keeps
    /// per-domain books (no shared counters across worker threads) and the
    /// coordinator merges them into the run-wide view on demand.
    pub fn merge(&mut self, other: &NetStats) {
        self.lan_messages += other.lan_messages;
        self.lan_bytes += other.lan_bytes;
        self.wan_messages += other.wan_messages;
        self.wan_bytes += other.wan_bytes;
        self.delivered_messages += other.delivered_messages;
        self.dropped_messages += other.dropped_messages;
        self.multicast_transmissions += other.multicast_transmissions;
        self.duplicated_messages += other.duplicated_messages;
        self.corrupted_messages += other.corrupted_messages;
        self.corrupt_dropped_messages += other.corrupt_dropped_messages;
        self.reorder_delayed_messages += other.reorder_delayed_messages;
        self.wan_cut_drops += other.wan_cut_drops;
        self.capacity_deferred_messages += other.capacity_deferred_messages;
        self.capacity_dropped_messages += other.capacity_dropped_messages;
        for (&kind, ks) in &other.by_kind {
            let e = self.by_kind.entry(kind).or_default();
            e.messages += ks.messages;
            e.bytes += ks.bytes;
        }
        for (&kind, &n) in &other.capacity_dropped_by_kind {
            *self.capacity_dropped_by_kind.entry(kind).or_default() += n;
        }
    }

    /// Total fault-injection interventions (diagnostic: asserts a chaos run
    /// actually injected something).
    pub fn fault_injections(&self) -> u64 {
        self.duplicated_messages + self.corrupted_messages + self.reorder_delayed_messages
    }

    /// Total bytes across both scopes.
    pub fn total_bytes(&self) -> u64 {
        self.lan_bytes + self.wan_bytes
    }

    /// Total delivered-or-transmitted messages across both scopes.
    pub fn total_messages(&self) -> u64 {
        self.lan_messages + self.wan_messages
    }

    /// Counters for one message kind (zero if never seen).
    pub fn kind(&self, kind: MsgKind) -> KindStats {
        self.by_kind.get(kind).copied().unwrap_or_default()
    }

    /// All kinds seen, in label order.
    pub fn kinds(&self) -> impl Iterator<Item = (MsgKind, KindStats)> + '_ {
        self.by_kind.iter().map(|(k, v)| (*k, *v))
    }

    /// Capacity drops charged to one message kind (zero if never seen).
    pub fn capacity_dropped(&self, kind: MsgKind) -> u64 {
        self.capacity_dropped_by_kind.get(kind).copied().unwrap_or_default()
    }

    /// Per-kind capacity drops, in label order.
    pub fn capacity_drops_by_kind(&self) -> impl Iterator<Item = (MsgKind, u64)> + '_ {
        self.capacity_dropped_by_kind.iter().map(|(k, v)| (*k, *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_by_scope_and_kind() {
        let mut s = NetStats::default();
        s.record(Scope::Lan, "query", 100);
        s.record(Scope::Wan, "query", 200);
        s.record(Scope::Wan, "advert", 300);
        assert_eq!(s.lan_bytes, 100);
        assert_eq!(s.wan_bytes, 500);
        assert_eq!(s.total_bytes(), 600);
        assert_eq!(s.total_messages(), 3);
        assert_eq!(s.kind("query"), KindStats { messages: 2, bytes: 300 });
        assert_eq!(s.kind("nothing"), KindStats::default());
        assert_eq!(s.kinds().count(), 2);
    }
}
