//! Message addressing and classification.

use crate::ids::{LanId, NodeId};

/// Where a message is sent.
///
/// The paper's protocol stack (its Fig. 3) requires both unicast and multicast
/// bindings: multicast for registry discovery and decentralized LAN fallback,
/// unicast for everything else.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Destination {
    /// Point-to-point delivery. Crosses the WAN when the peer is on another
    /// LAN (and is then subject to WAN latency/loss/partitions).
    Unicast(NodeId),
    /// Link-local multicast: delivered to every other live node on the given
    /// LAN. On a broadcast medium one transmission reaches all listeners, so
    /// the sender is charged the message size once.
    Multicast(LanId),
}

/// A short static label classifying a message for per-kind accounting
/// (e.g. `"query"`, `"advert"`, `"beacon"`). Purely diagnostic; protocol
/// logic must not depend on it.
pub type MsgKind = &'static str;
