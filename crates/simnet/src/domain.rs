//! The share-nothing execution partition: one timing-wheel event core plus
//! the struct-of-arrays node state it drives.
//!
//! A [`Domain`] owns everything needed to dispatch its nodes' events without
//! touching any other domain: the calendar wheel and far heap, the node
//! table (handlers, liveness, epochs, lazily boxed RNG slots, per-node timer
//! counters and delivery counters — parallel `Vec`s indexed by the node's
//! *local* slot), its LANs' link/fault RNG streams, fault profiles, medium
//! busy-until clocks, timer cells, and traffic counters. The coordinator
//! ([`crate::Sim`]) owns the read-only world (config, topology, global→local
//! maps, WAN fault profiles) and hands it in by reference for each run.
//!
//! In legacy mode there is exactly one domain and its behaviour is
//! bit-for-bit the PR 5 sequential engine (single `simnet.link` /
//! `simnet.fault` RNG streams, one global timer-id counter, one shared WAN
//! pipe, controls dispatched in-wheel). In partitioned mode every
//! transmit-time draw is attributable to the *sender's LAN* (per-LAN
//! `simnet.lan.link` / `simnet.lan.fault` streams), timer ids are
//! node-scoped, and cross-domain deliveries are fully sampled sender-side
//! and handed off through per-destination outboxes — which is what makes a
//! domain's execution a pure function of its inputs, independent of worker
//! scheduling.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap, HashMap};
use std::rc::Rc;

use sds_rand::{Rng, Seed};

use crate::engine::{ControlAction, Corruptor, FaultProfile, NodeCapacity, SimConfig};
use crate::handler::{Action, Ctx, NodeHandler, TimerAlloc};
use crate::ids::{LanId, NodeId, TimerId};
use crate::message::{Destination, MsgKind};
use crate::stats::{NetStats, Scope};
use crate::time::SimTime;
use crate::topology::Topology;

/// Wheel span in time units (must be a power of two). Events scheduled
/// within `WHEEL_SPAN` of `now` — every delivery under realistic latencies,
/// and every short protocol timer — go straight into their time's bucket:
/// O(1) push, no comparisons. Only beyond-horizon events (long leases,
/// scripted scenario controls) pay for the far heap.
pub(crate) const WHEEL_SPAN: u64 = 1 << 12;
pub(crate) const WHEEL_MASK: usize = (WHEEL_SPAN - 1) as usize;

/// One queued event, stored inline in its time bucket. Within a bucket,
/// dispatch order is vector order, which by construction is push order —
/// exactly the `(at, seq)` order the old comparison-based heap produced.
pub(crate) enum Queued<P> {
    /// Payloads are queued behind `Rc`: every receiver of a multicast (and
    /// every duplicated copy) shares one allocation. Copy-on-write: only a
    /// corruptor mutation materializes a divergent payload. `kind` rides
    /// along for capacity accounting; `admitted` marks a delivery that
    /// already consumed a slot of the receiver's processing budget (a
    /// deferred delivery must not be re-billed when it surfaces again).
    Deliver { to: NodeId, from: NodeId, payload: Rc<P>, kind: MsgKind, admitted: bool },
    /// Timers are the only cancellable events, so only they pay for an
    /// out-of-line, generation-stamped cell: cancelling bumps the cell's
    /// stamp, and a mismatched stamp here means "already cancelled — skip".
    /// No tombstone set, no memory held until the dead timer's fire time.
    Timer { slot: u32, gen: u64 },
    /// Legacy mode only: scheduled world mutations ride the wheel so their
    /// dispatch order interleaves with traffic exactly as it always did.
    /// They need `&mut` access to the shared world, which a domain does not
    /// have — the run loop *yields* them to the coordinator and resumes.
    Control(ControlAction),
    /// Placeholder left behind while a bucket entry is being dispatched
    /// (buckets drain by index because a handler may append same-time
    /// events to the bucket currently draining).
    Consumed,
}

/// A beyond-horizon event, parked in the far heap until `now` comes within
/// `WHEEL_SPAN` of it; ordered by `(at, seq)` so same-time far events
/// migrate into their bucket in push order.
pub(crate) struct FarEvent<P> {
    pub(crate) at: SimTime,
    pub(crate) seq: u64,
    pub(crate) ev: Queued<P>,
}

impl<P> PartialEq for FarEvent<P> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<P> Eq for FarEvent<P> {}
impl<P> PartialOrd for FarEvent<P> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<P> Ord for FarEvent<P> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The out-of-line cell for one pending timer. `gen` stamps the current
/// occupancy: firing and cancelling both bump it, so a queued
/// `Queued::Timer` referencing an old stamp is dead. The payload fields are
/// simply left behind on vacate (no `Option` dance).
pub(crate) struct TimerSlot {
    pub(crate) gen: u64,
    pub(crate) node: NodeId,
    pub(crate) epoch: u32,
    pub(crate) id: TimerId,
    pub(crate) tag: u64,
}

/// The timing-wheel event queue: clock, calendar buckets, occupancy bitmap,
/// and the far heap. Split out of [`Domain`] so hot-path code can hold a
/// mutable borrow of an RNG stream (a sibling field) while pushing events.
pub(crate) struct EventCore<P> {
    pub(crate) now: SimTime,
    /// The calendar queue: one bucket per time unit, indexed `at mod
    /// WHEEL_SPAN`. Invariant: every bucketed event satisfies
    /// `at - now < WHEEL_SPAN`, so a bucket never mixes two times.
    pub(crate) buckets: Vec<Vec<Queued<P>>>,
    /// One bit per bucket, so finding the next occupied time skips empty
    /// stretches a word (64 buckets) at a stride.
    pub(crate) occupied: Vec<u64>,
    /// How far into `now`'s bucket dispatch has progressed (buckets drain
    /// by index so same-time appends during dispatch are picked up).
    pub(crate) drain_pos: usize,
    /// Beyond-horizon events, ordered `(at, seq)`; they migrate into
    /// buckets as `now` approaches (see [`EventCore::migrate_until`]).
    pub(crate) far: BinaryHeap<Reverse<FarEvent<P>>>,
    pub(crate) far_seq: u64,
    /// Live queued events (deliveries + pending timers + controls):
    /// incremented on push, decremented on dispatch and on cancel.
    pub(crate) live_events: usize,
}

impl<P> EventCore<P> {
    pub(crate) fn new() -> Self {
        Self {
            now: 0,
            buckets: (0..WHEEL_SPAN).map(|_| Vec::new()).collect(),
            occupied: vec![0u64; WHEEL_SPAN as usize / 64],
            drain_pos: 0,
            far: BinaryHeap::new(),
            far_seq: 0,
            live_events: 0,
        }
    }

    /// Queues an event at `at` (≥ `now`): O(1) into its wheel bucket when
    /// within the horizon, else into the far heap with a sequence stamp
    /// that preserves push order among same-time far events.
    pub(crate) fn push_event(&mut self, at: SimTime, ev: Queued<P>) {
        debug_assert!(at >= self.now, "events are never scheduled in the past");
        self.live_events += 1;
        if at - self.now < WHEEL_SPAN {
            self.bucket_insert(at, ev);
        } else {
            let seq = self.far_seq;
            self.far_seq += 1;
            self.far.push(Reverse(FarEvent { at, seq, ev }));
        }
    }

    pub(crate) fn bucket_insert(&mut self, at: SimTime, ev: Queued<P>) {
        let bi = (at as usize) & WHEEL_MASK;
        self.buckets[bi].push(ev);
        self.occupied[bi >> 6] |= 1u64 << (bi & 63);
    }

    /// The earliest queued event time after `now`, if any. Bucketed events
    /// always precede far ones (the far heap holds only beyond-horizon
    /// times), so the wheel is scanned first.
    pub(crate) fn next_event_time(&self) -> Option<SimTime> {
        let span = WHEEL_SPAN as usize;
        let start = ((self.now + 1) as usize) & WHEEL_MASK;
        let mut o = 0usize;
        while o < span - 1 {
            let idx = (start + o) & WHEEL_MASK;
            if idx & 63 == 0 && span - 1 - o >= 64 && self.occupied[idx >> 6] == 0 {
                o += 64;
                continue;
            }
            if self.occupied[idx >> 6] & (1u64 << (idx & 63)) != 0 {
                return Some(self.now + 1 + o as u64);
            }
            o += 1;
        }
        self.far.peek().map(|Reverse(f)| f.at)
    }

    /// The earliest time at which this core still has work: `now` itself
    /// while the current bucket has undrained entries (same-time pushes,
    /// resumed drains), else the next occupied time. The window coordinator
    /// plans lookahead horizons off this, so it must see *pending* events at
    /// `now`, which [`EventCore::next_event_time`] (a strict "after `now`"
    /// scan) would miss.
    pub(crate) fn next_pending_time(&self) -> Option<SimTime> {
        let bi = (self.now as usize) & WHEEL_MASK;
        if self.drain_pos < self.buckets[bi].len() {
            return Some(self.now);
        }
        self.next_event_time()
    }

    /// Pulls every far event that `new_now`'s horizon now covers into its
    /// bucket. Far events migrate in `(at, seq)` heap order, and always
    /// before any same-time near push can happen (near pushes at time `t`
    /// only occur once `now > t - WHEEL_SPAN`, and every advance of `now`
    /// migrates first) — so bucket order remains global push order.
    pub(crate) fn migrate_until(&mut self, new_now: SimTime) {
        while let Some(Reverse(top)) = self.far.peek() {
            if top.at - new_now >= WHEEL_SPAN {
                break;
            }
            let Reverse(fe) = self.far.pop().expect("peeked");
            self.bucket_insert(fe.at, fe.ev);
        }
    }

    /// Advances the clock to `t` without dispatching anything. Only legal
    /// when no event earlier than `t` is queued (the coordinator advances
    /// idle domains to a barrier time); events *at* `t` stay in their bucket
    /// and are picked up by the next run.
    pub(crate) fn advance_to(&mut self, t: SimTime) {
        if t > self.now {
            self.migrate_until(t);
            self.now = t;
        }
    }
}

/// Per-node state, flattened struct-of-arrays style: parallel `Vec`s indexed
/// by the node's local slot in its domain. One cache-friendly table instead
/// of a struct-per-node heap graph — at 10⁶ nodes the fixed cost is a few
/// words per node, and the lazily *boxed* RNG slot keeps the never-drawing
/// common case at 8 bytes instead of an inline 40-byte generator state.
/// Per-node processing-budget state for one capacity-limited node: the
/// configured budget plus the rolling admission clock. `next_tick` is the
/// earliest tick with spare budget and `used` how many of its
/// `ops_per_tick` slots are already claimed — together they encode the
/// whole ingress queue in two words, with no per-message queue storage.
pub(crate) struct CapCell {
    pub(crate) cap: NodeCapacity,
    pub(crate) next_tick: SimTime,
    pub(crate) used: u32,
}

pub(crate) struct NodeTable<P> {
    pub(crate) handlers: Vec<Option<Box<dyn NodeHandler<P>>>>,
    pub(crate) alive: Vec<bool>,
    pub(crate) epoch: Vec<u32>,
    /// Lazily materialized per-node RNG streams: `None` until the node's
    /// first draw. The stream state is a pure function of the node's derived
    /// seed, so laziness is invisible to handlers — but a million-node sim
    /// whose nodes never draw seeds nothing (and pays one pointer, not an
    /// inline generator, per idle slot).
    pub(crate) rngs: Vec<Option<Box<Rng>>>,
    /// Per-node derived seeds, handed to handlers through `Ctx` so they can
    /// derive private labelled sub-streams (retry jitter etc.) that never
    /// perturb the main per-node stream.
    pub(crate) seeds: Vec<Seed>,
    /// Partitioned-mode timer-id allocators: ids are `(node << 32) | ctr`,
    /// so allocation is domain-local yet globally unique.
    pub(crate) timer_ctrs: Vec<u32>,
    /// Deliveries handed to each node's handler — the per-node stats column
    /// of the SoA table (cheap enough to keep always-on at 10⁶ nodes).
    pub(crate) delivered: Vec<u64>,
    /// Lazily boxed capacity cells: `None` (the default) means unbounded
    /// processing — the historical model, zero cost per idle slot. Boxed so
    /// a million uncapped nodes pay one pointer each, like the RNG slots.
    pub(crate) caps: Vec<Option<Box<CapCell>>>,
    /// Local slot → global node id.
    pub(crate) global: Vec<NodeId>,
}

impl<P> NodeTable<P> {
    pub(crate) fn new() -> Self {
        Self {
            handlers: Vec::new(),
            alive: Vec::new(),
            epoch: Vec::new(),
            rngs: Vec::new(),
            seeds: Vec::new(),
            timer_ctrs: Vec::new(),
            delivered: Vec::new(),
            caps: Vec::new(),
            global: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, id: NodeId, handler: Box<dyn NodeHandler<P>>, seed: Seed) -> u32 {
        let li = self.handlers.len() as u32;
        self.handlers.push(Some(handler));
        self.alive.push(true);
        self.epoch.push(0);
        self.rngs.push(None);
        self.seeds.push(seed);
        self.timer_ctrs.push(0);
        self.delivered.push(0);
        self.caps.push(None);
        self.global.push(id);
        li
    }
}

/// Which RNG streams feed transmit-time draws (loss, latency jitter,
/// duplication, reordering, corruption).
pub(crate) enum RngAttr {
    /// Legacy: the historical single `simnet.link` / `simnet.fault` streams,
    /// drawn in global dispatch order. Only possible with one domain.
    Shared { link: Rng, fault: Rng },
    /// Partitioned: one stream pair per *sender LAN* (indexed by the
    /// domain-local LAN slot). Every transmit-time draw is attributable to
    /// the sending LAN, hence partition-local — the property that lets
    /// domains run concurrently without serializing a global stream.
    PerLan { link: Vec<Rng>, fault: Vec<Rng> },
}

impl RngAttr {
    pub(crate) fn link_mut(&mut self, lan_slot: usize) -> &mut Rng {
        match self {
            RngAttr::Shared { link, .. } => link,
            RngAttr::PerLan { link, .. } => &mut link[lan_slot],
        }
    }

    pub(crate) fn fault_mut(&mut self, lan_slot: usize) -> &mut Rng {
        match self {
            RngAttr::Shared { fault, .. } => fault,
            RngAttr::PerLan { fault, .. } => &mut fault[lan_slot],
        }
    }
}

/// WAN serialization state. Legacy keeps the single shared reach-back pipe;
/// partitioned mode gives each LAN its own uplink (a shared mutable pipe
/// would serialize the domains).
pub(crate) enum WanBusy {
    Shared(SimTime),
    PerLan(Vec<SimTime>),
}

/// One cross-domain delivery, fully sampled sender-side (loss, serialization,
/// latency, duplication fan-out, reordering, corruption all already applied)
/// and carrying an owned payload — `Rc` clones never cross a domain
/// boundary, which is what makes moving a whole domain across worker
/// threads sound.
pub(crate) struct CrossMsg<P> {
    pub(crate) at: SimTime,
    pub(crate) to: NodeId,
    pub(crate) from: NodeId,
    pub(crate) payload: P,
    pub(crate) kind: MsgKind,
}

/// How the engine executes: see the module docs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ExecMode {
    Legacy,
    Partitioned,
}

/// The read-only world a domain runs against: simulation config, topology,
/// global→local id maps, and the WAN fault profiles. Controls mutate these
/// only between runs (legacy: between yields; partitioned: at window
/// barriers), so sharing them immutably across worker threads is safe.
pub(crate) struct World<'a> {
    pub(crate) cfg: &'a SimConfig,
    pub(crate) topo: &'a Topology,
    pub(crate) node_local: &'a [u32],
    pub(crate) lan_domain: &'a [u16],
    pub(crate) lan_local: &'a [u32],
    pub(crate) wan_faults: FaultProfile,
    pub(crate) wan_pair_faults: &'a BTreeMap<(LanId, LanId), FaultProfile>,
}

/// What stopped a [`Domain::run_events`] call.
pub(crate) enum RunOutcome {
    /// Drained everything at or before the limit.
    Done,
    /// Legacy mode: a control event surfaced. The domain cannot apply it
    /// (controls mutate the shared world), so it is yielded to the
    /// coordinator; the drain position is preserved and the next
    /// `run_events` call resumes exactly where this one stopped.
    Control(ControlAction),
}

/// One share-nothing execution partition. See the module docs.
pub(crate) struct Domain<P> {
    pub(crate) index: u16,
    pub(crate) mode: ExecMode,
    pub(crate) core: EventCore<P>,
    pub(crate) nodes: NodeTable<P>,
    pub(crate) rng_attr: RngAttr,
    /// Legacy-mode global timer-id counter (unused in partitioned mode).
    pub(crate) next_timer: u64,
    /// The timer cells (see [`TimerSlot`]) plus their free list.
    pub(crate) timer_table: Vec<TimerSlot>,
    pub(crate) timer_free: Vec<u32>,
    /// Pending (not yet fired, not cancelled) timers → the cell+generation
    /// of their queued event. Entries leave on fire *and* on cancel, so the
    /// map is bounded by the number of outstanding timers — cancelling an
    /// already-fired timer is a map miss, never a leak.
    pub(crate) timer_slots: HashMap<TimerId, (u32, u64)>,
    pub(crate) stats: NetStats,
    pub(crate) events_processed: u64,
    /// Per-local-LAN medium busy-until time (bandwidth model).
    pub(crate) lan_busy_until: Vec<SimTime>,
    pub(crate) wan_busy: WanBusy,
    /// Per-local-LAN fault profiles.
    pub(crate) lan_faults: Vec<FaultProfile>,
    pub(crate) corruptor: Option<Corruptor<P>>,
    /// Reused membership buffer for multicast dispatch — no per-multicast
    /// `Vec` allocation.
    pub(crate) multicast_scratch: Vec<NodeId>,
    /// Reused action buffer handed to `Ctx` — no per-invoke allocation.
    pub(crate) actions_scratch: Vec<Action<P>>,
    /// Partitioned mode: per-destination-domain outboxes, drained by the
    /// coordinator at every barrier in fixed (source, destination) order.
    pub(crate) outboxes: Vec<Vec<CrossMsg<P>>>,
}

impl<P: Clone + Send + 'static> Domain<P> {
    pub(crate) fn new(index: u16, mode: ExecMode, seed: u64, lans: Vec<LanId>, n_domains: usize) -> Self {
        let nl = lans.len();
        let rng_attr = match mode {
            ExecMode::Legacy => RngAttr::Shared {
                link: Seed(seed).derive("simnet.link").rng(),
                fault: Seed(seed).derive("simnet.fault").rng(),
            },
            ExecMode::Partitioned => RngAttr::PerLan {
                link: lans
                    .iter()
                    .map(|l| Seed(seed).derive_idx("simnet.lan.link", u64::from(l.0)).rng())
                    .collect(),
                fault: lans
                    .iter()
                    .map(|l| Seed(seed).derive_idx("simnet.lan.fault", u64::from(l.0)).rng())
                    .collect(),
            },
        };
        let wan_busy = match mode {
            ExecMode::Legacy => WanBusy::Shared(0),
            ExecMode::Partitioned => WanBusy::PerLan(vec![0; nl]),
        };
        let outboxes = match mode {
            ExecMode::Legacy => Vec::new(),
            ExecMode::Partitioned => (0..n_domains).map(|_| Vec::new()).collect(),
        };
        Self {
            index,
            mode,
            core: EventCore::new(),
            nodes: NodeTable::new(),
            rng_attr,
            next_timer: 0,
            timer_table: Vec::new(),
            timer_free: Vec::new(),
            timer_slots: HashMap::new(),
            stats: NetStats::default(),
            events_processed: 0,
            lan_busy_until: vec![0; nl],
            wan_busy: WanBusy::Shared(0),
            lan_faults: vec![FaultProfile::default(); nl],
            corruptor: None,
            multicast_scratch: Vec::new(),
            actions_scratch: Vec::new(),
            outboxes,
        }
        .with_wan_busy(wan_busy)
    }

    fn with_wan_busy(mut self, wan_busy: WanBusy) -> Self {
        self.wan_busy = wan_busy;
        self
    }

    /// Dispatches every event with `at <= limit`, in `(at, push-order)`
    /// order. Buckets drain front-to-back by index so a handler appending a
    /// same-time event (zero-delay timer, zero-latency link) sees it
    /// dispatched within the same time step, after everything already
    /// queued — exactly the old comparison-heap order. A bucket whose only
    /// entries were cancelled timers still advances the clock to its time,
    /// matching the old engine's handling of dead heap keys.
    pub(crate) fn run_events(&mut self, limit: SimTime, world: &World<'_>) -> RunOutcome {
        loop {
            let bi = (self.core.now as usize) & WHEEL_MASK;
            if self.core.drain_pos < self.core.buckets[bi].len() {
                let pos = self.core.drain_pos;
                self.core.drain_pos += 1;
                let ev = std::mem::replace(&mut self.core.buckets[bi][pos], Queued::Consumed);
                if let Queued::Control(action) = ev {
                    // Counted as dispatched *before* the yield, so the
                    // resume cannot double-count it.
                    self.events_processed += 1;
                    self.core.live_events -= 1;
                    return RunOutcome::Control(action);
                }
                if self.dispatch(ev, world) {
                    self.events_processed += 1;
                    self.core.live_events -= 1;
                }
                continue;
            }
            self.core.buckets[bi].clear();
            self.core.occupied[bi >> 6] &= !(1u64 << (bi & 63));
            self.core.drain_pos = 0;
            let Some(next) = self.core.next_event_time() else { return RunOutcome::Done };
            if next > limit {
                return RunOutcome::Done;
            }
            self.core.migrate_until(next);
            self.core.now = next;
        }
    }

    /// Dispatches one queued event; returns `false` for stale entries
    /// (cancelled timers) that dispatch nothing.
    fn dispatch(&mut self, ev: Queued<P>, world: &World<'_>) -> bool {
        match ev {
            Queued::Deliver { to, from, payload, kind, admitted } => {
                let li = world.node_local[to.index()] as usize;
                if !self.nodes.alive[li] {
                    self.stats.record_drop();
                    return true;
                }
                // Modeled processing budget: a capacity-limited node admits
                // at most `ops_per_tick` deliveries per tick; excess arrivals
                // queue (are re-scheduled to the first tick with spare
                // budget) up to `queue_limit` pending ops, beyond which they
                // are dropped at the door. Purely arithmetic — no RNG draws —
                // so capped runs stay deterministic, and a deferral only ever
                // *delays* a delivery, which keeps the conservative-lookahead
                // barrier sound. `None` (the default) skips all of this.
                if !admitted {
                    if let Some(cell) = self.nodes.caps[li].as_deref_mut() {
                        let t = self.core.now;
                        if cell.next_tick < t {
                            cell.next_tick = t;
                            cell.used = 0;
                        }
                        let ops = u64::from(cell.cap.ops_per_tick.max(1));
                        let backlog = (cell.next_tick - t)
                            .saturating_mul(ops)
                            .saturating_add(u64::from(cell.used));
                        if backlog >= u64::from(cell.cap.queue_limit) {
                            self.stats.record_capacity_drop(kind);
                            return true;
                        }
                        let slot = cell.next_tick;
                        cell.used += 1;
                        if u64::from(cell.used) >= ops {
                            cell.next_tick += 1;
                            cell.used = 0;
                        }
                        if slot > t {
                            self.stats.record_capacity_deferral();
                            self.core.push_event(
                                slot,
                                Queued::Deliver { to, from, payload, kind, admitted: true },
                            );
                            return true;
                        }
                    }
                }
                self.stats.record_delivery();
                self.nodes.delivered[li] += 1;
                self.invoke(to, world, move |h, ctx| h.on_shared_message(ctx, from, payload));
                true
            }
            Queued::Timer { slot, gen } => {
                let cell = &mut self.timer_table[slot as usize];
                if cell.gen != gen {
                    // Cancelled: its cell was vacated (and possibly reused)
                    // at cancel time.
                    return false;
                }
                cell.gen += 1;
                let (node, epoch, id, tag) = (cell.node, cell.epoch, cell.id, cell.tag);
                self.timer_free.push(slot);
                self.timer_slots.remove(&id);
                let li = world.node_local[node.index()] as usize;
                if self.nodes.alive[li] && self.nodes.epoch[li] == epoch {
                    self.invoke(node, world, move |h, ctx| h.on_timer(ctx, id, tag));
                }
                true
            }
            Queued::Consumed => unreachable!("consumed entries are never revisited"),
            Queued::Control(_) => unreachable!("controls are yielded before dispatch"),
        }
    }

    pub(crate) fn invoke(
        &mut self,
        node: NodeId,
        world: &World<'_>,
        f: impl FnOnce(&mut dyn NodeHandler<P>, &mut Ctx<'_, P>),
    ) {
        let li = world.node_local[node.index()] as usize;
        let mut handler = self.nodes.handlers[li].take().expect("handler present");
        let mut actions = std::mem::take(&mut self.actions_scratch);
        actions.clear();
        let timer_alloc = match self.mode {
            ExecMode::Legacy => TimerAlloc::Global(&mut self.next_timer),
            ExecMode::Partitioned => {
                TimerAlloc::PerNode { node: node.0, ctr: &mut self.nodes.timer_ctrs[li] }
            }
        };
        let mut ctx = Ctx {
            now: self.core.now,
            node,
            lan: world.topo.lan_of(node),
            seed: self.nodes.seeds[li],
            rng: &mut self.nodes.rngs[li],
            timer_alloc,
            actions,
        };
        f(handler.as_mut(), &mut ctx);
        let actions = std::mem::take(&mut ctx.actions);
        self.nodes.handlers[li] = Some(handler);
        self.apply_actions(node, li, actions, world);
    }

    fn apply_actions(&mut self, node: NodeId, li: usize, mut actions: Vec<Action<P>>, world: &World<'_>) {
        for action in actions.drain(..) {
            match action {
                Action::Send { dest, payload, bytes, kind } => {
                    self.transmit(node, dest, payload, bytes, kind, world)
                }
                Action::SetTimer { id, fire_at, tag } => {
                    let epoch = self.nodes.epoch[li];
                    let slot = match self.timer_free.pop() {
                        Some(s) => {
                            let cell = &mut self.timer_table[s as usize];
                            cell.node = node;
                            cell.epoch = epoch;
                            cell.id = id;
                            cell.tag = tag;
                            s
                        }
                        None => {
                            self.timer_table.push(TimerSlot { gen: 0, node, epoch, id, tag });
                            (self.timer_table.len() - 1) as u32
                        }
                    };
                    let gen = self.timer_table[slot as usize].gen;
                    self.timer_slots.insert(id, (slot, gen));
                    self.core.push_event(fire_at, Queued::Timer { slot, gen });
                }
                Action::CancelTimer(id) => {
                    if let Some((slot, gen)) = self.timer_slots.remove(&id) {
                        // The map only holds timers whose event is still
                        // queued, so the stamp always matches; the check
                        // guards the invariant rather than trusting it.
                        let cell = &mut self.timer_table[slot as usize];
                        if cell.gen == gen {
                            cell.gen += 1;
                            self.timer_free.push(slot);
                            self.core.live_events -= 1;
                        }
                    }
                }
            }
        }
        // Hand the (now empty) buffer back for the next invoke, keeping its
        // capacity. A nested invoke (none today) would merely allocate anew.
        if actions.capacity() > self.actions_scratch.capacity() {
            self.actions_scratch = actions;
        }
    }

    fn transmit(
        &mut self,
        from: NodeId,
        dest: Destination,
        payload: P,
        bytes: u32,
        kind: MsgKind,
        world: &World<'_>,
    ) {
        match dest {
            Destination::Unicast(to) => {
                if to.index() >= world.node_local.len() {
                    // Corrupted frames can carry node ids that name nobody
                    // (e.g. a mutated RegistryList). Address a black hole
                    // instead of indexing the topology out of bounds.
                    self.stats.record_drop();
                    return;
                }
                if to == from {
                    // Loopback: free and instantaneous-ish.
                    let at = self.core.now + 1;
                    self.core.push_event(
                        at,
                        Queued::Deliver { to, from, payload: Rc::new(payload), kind, admitted: false },
                    );
                    return;
                }
                let from_lan = world.topo.lan_of(from);
                let to_lan = world.topo.lan_of(to);
                let scope = if from_lan == to_lan { Scope::Lan } else { Scope::Wan };
                // The sender transmits regardless of the receiver's fate, so
                // the bytes are always charged.
                self.stats.record(scope, kind, u64::from(bytes));
                if scope == Scope::Wan && !world.topo.wan_reachable(from_lan, to_lan) {
                    if world.topo.wan_pair_cut(from_lan, to_lan) {
                        self.stats.record_wan_cut_drop();
                    }
                    self.stats.record_drop();
                    return;
                }
                // The sender's LAN is always one of this domain's LANs.
                let fl = world.lan_local[from_lan.index()] as usize;
                let faults = self.faults_for(scope, fl, from_lan, to_lan, world);
                if self.sample_loss(scope, fl, world) || self.sample_fault_loss(fl, faults) {
                    self.stats.record_drop();
                    return;
                }
                let serialization = self.reserve_medium(scope, fl, bytes, world);
                if self.mode == ExecMode::Partitioned
                    && world.lan_domain[to_lan.index()] != self.index
                {
                    let dst = world.lan_domain[to_lan.index()] as usize;
                    self.deliver_faulty_cross(faults, serialization, to, from, payload, kind, fl, dst, world);
                } else {
                    self.deliver_faulty(faults, scope, serialization, to, from, Rc::new(payload), kind, fl, world);
                }
            }
            Destination::Multicast(lan) => {
                assert_eq!(
                    lan,
                    world.topo.lan_of(from),
                    "multicast is link-local: sender must be on the LAN"
                );
                // One transmission on the broadcast medium.
                self.stats.record(Scope::Lan, kind, u64::from(bytes));
                self.stats.record_multicast();
                let fl = world.lan_local[lan.index()] as usize;
                let serialization = self.reserve_medium(Scope::Lan, fl, bytes, world);
                let faults = self.lan_faults[fl];
                // One shared payload for the whole fan-out; one reused
                // membership buffer instead of a fresh Vec per multicast.
                let payload = Rc::new(payload);
                let mut members = std::mem::take(&mut self.multicast_scratch);
                members.clear();
                members.extend(world.topo.members(lan).iter().copied().filter(|&m| m != from));
                for &to in &members {
                    if self.sample_loss(Scope::Lan, fl, world) || self.sample_fault_loss(fl, faults) {
                        self.stats.record_drop();
                        continue;
                    }
                    self.deliver_faulty(faults, Scope::Lan, serialization, to, from, Rc::clone(&payload), kind, fl, world);
                }
                members.clear();
                self.multicast_scratch = members;
            }
        }
    }

    /// Schedules one logical delivery, applying duplication, reordering and
    /// corruption from `faults`. A quiet profile draws nothing from the
    /// fault RNG, keeping fault-free runs bit-identical. The shared payload
    /// is copy-on-write: every scheduled copy holds a reference to the same
    /// allocation unless a corruptor mutation materializes a divergent one —
    /// receivers of the other copies still see the original bytes.
    #[allow(clippy::too_many_arguments)]
    fn deliver_faulty(
        &mut self,
        faults: FaultProfile,
        scope: Scope,
        serialization: SimTime,
        to: NodeId,
        from: NodeId,
        payload: Rc<P>,
        kind: MsgKind,
        fl: usize,
        world: &World<'_>,
    ) {
        let copies = if faults.duplicate > 0.0 && self.rng_attr.fault_mut(fl).gen_bool(faults.duplicate)
        {
            self.stats.record_duplicate();
            2
        } else {
            1
        };
        for _copy in 0..copies {
            // Each copy samples its own latency and reorder delay, so a
            // duplicate can overtake the original.
            let reorder = if faults.reorder_jitter > 0 {
                let extra = self.rng_attr.fault_mut(fl).gen_range(0..=faults.reorder_jitter);
                if extra > 0 {
                    self.stats.record_reorder_delay();
                }
                extra
            } else {
                0
            };
            let p = if faults.corrupt > 0.0 && self.rng_attr.fault_mut(fl).gen_bool(faults.corrupt) {
                self.stats.record_corrupted();
                let mutated = match self.corruptor.as_mut() {
                    Some(hook) => hook(self.rng_attr.fault_mut(fl), &payload),
                    None => None,
                };
                match mutated {
                    Some(m) => Rc::new(m),
                    None => {
                        // The mutation destroyed the frame: the receiver's
                        // decoder would reject it, so it never reaches the
                        // handler.
                        self.stats.record_corrupt_drop();
                        continue;
                    }
                }
            } else {
                Rc::clone(&payload)
            };
            let at = self.core.now + serialization + self.sample_latency(scope, fl, world) + reorder;
            self.core.push_event(at, Queued::Deliver { to, from, payload: p, kind, admitted: false });
        }
    }

    /// The cross-domain variant of [`Domain::deliver_faulty`]: identical
    /// draw sequence on the sender LAN's streams, but the scheduled copies
    /// carry *owned* payloads into the destination domain's outbox. Every
    /// arrival time is at least `wan_latency` past `now`, which is the
    /// conservative-lookahead safety bound the window coordinator relies on.
    #[allow(clippy::too_many_arguments)]
    fn deliver_faulty_cross(
        &mut self,
        faults: FaultProfile,
        serialization: SimTime,
        to: NodeId,
        from: NodeId,
        payload: P,
        kind: MsgKind,
        fl: usize,
        dst: usize,
        world: &World<'_>,
    ) {
        let copies = if faults.duplicate > 0.0 && self.rng_attr.fault_mut(fl).gen_bool(faults.duplicate)
        {
            self.stats.record_duplicate();
            2
        } else {
            1
        };
        let mut remaining = Some(payload);
        for copy in 0..copies {
            let reorder = if faults.reorder_jitter > 0 {
                let extra = self.rng_attr.fault_mut(fl).gen_range(0..=faults.reorder_jitter);
                if extra > 0 {
                    self.stats.record_reorder_delay();
                }
                extra
            } else {
                0
            };
            let original = remaining.as_ref().expect("payload present until last copy");
            let p = if faults.corrupt > 0.0 && self.rng_attr.fault_mut(fl).gen_bool(faults.corrupt) {
                self.stats.record_corrupted();
                let mutated = match self.corruptor.as_mut() {
                    Some(hook) => hook(self.rng_attr.fault_mut(fl), original),
                    None => None,
                };
                match mutated {
                    Some(m) => m,
                    None => {
                        self.stats.record_corrupt_drop();
                        continue;
                    }
                }
            } else if copy + 1 == copies {
                remaining.take().expect("last copy moves the payload")
            } else {
                original.clone()
            };
            let at = self.core.now + serialization + self.sample_latency(Scope::Wan, fl, world) + reorder;
            debug_assert!(
                at >= self.core.now + world.cfg.wan_latency,
                "cross-domain arrival inside the lookahead horizon"
            );
            self.outboxes[dst].push(CrossMsg { at, to, from, payload: p, kind });
        }
    }

    fn faults_for(
        &self,
        scope: Scope,
        fl: usize,
        from_lan: LanId,
        to_lan: LanId,
        world: &World<'_>,
    ) -> FaultProfile {
        match scope {
            Scope::Lan => self.lan_faults[fl],
            Scope::Wan => world
                .wan_pair_faults
                .get(&(from_lan, to_lan))
                .copied()
                .unwrap_or(world.wan_faults),
        }
    }

    fn sample_fault_loss(&mut self, fl: usize, faults: FaultProfile) -> bool {
        faults.loss > 0.0 && self.rng_attr.fault_mut(fl).gen_bool(faults.loss)
    }

    /// Reserves the shared medium for `bytes` and returns the serialization
    /// delay from `now` until the transmission has fully left the sender
    /// (queueing behind earlier transmissions included). Zero-rate = ideal.
    fn reserve_medium(&mut self, scope: Scope, fl: usize, bytes: u32, world: &World<'_>) -> SimTime {
        let rate_kbps = match scope {
            Scope::Lan => world.cfg.lan_rate_kbps,
            Scope::Wan => world.cfg.wan_rate_kbps,
        };
        if rate_kbps == 0 {
            return 0;
        }
        // ms = bits / (kbits/s) = bytes*8 / rate_kbps
        let tx_ms = (u64::from(bytes) * 8).div_ceil(u64::from(rate_kbps)).max(1);
        let busy = match scope {
            Scope::Lan => &mut self.lan_busy_until[fl],
            Scope::Wan => match &mut self.wan_busy {
                WanBusy::Shared(t) => t,
                WanBusy::PerLan(v) => &mut v[fl],
            },
        };
        let start = (*busy).max(self.core.now);
        *busy = start + tx_ms;
        *busy - self.core.now
    }

    fn sample_loss(&mut self, scope: Scope, fl: usize, world: &World<'_>) -> bool {
        let p = match scope {
            Scope::Lan => world.cfg.lan_loss,
            Scope::Wan => world.cfg.wan_loss,
        };
        p > 0.0 && self.rng_attr.link_mut(fl).gen_bool(p)
    }

    fn sample_latency(&mut self, scope: Scope, fl: usize, world: &World<'_>) -> SimTime {
        let (base, jitter) = match scope {
            Scope::Lan => (world.cfg.lan_latency, world.cfg.lan_jitter),
            Scope::Wan => (world.cfg.wan_latency, world.cfg.wan_jitter),
        };
        base + if jitter > 0 { self.rng_attr.link_mut(fl).gen_range(0..=jitter) } else { 0 }
    }
}
