//! The node-side API: the [`NodeHandler`] trait protocol roles implement and
//! the [`Ctx`] through which they act on the network.

use std::any::Any;
use std::rc::Rc;

use sds_rand::{Rng, Seed};

use crate::ids::{LanId, NodeId, TimerId};
use crate::message::{Destination, MsgKind};
use crate::time::SimTime;

/// Blanket upcast to [`Any`] so tests and metric collectors can downcast a
/// boxed handler back to its concrete role type.
pub trait AsAny {
    fn as_any(&self) -> &dyn Any;
    fn as_any_mut(&mut self) -> &mut dyn Any;
}

impl<T: Any> AsAny for T {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Materializes an owned payload from a shared in-flight delivery: free
/// (a move) when this was the last queued copy, one clone otherwise.
pub fn take_payload<P: Clone>(msg: Rc<P>) -> P {
    Rc::try_unwrap(msg).unwrap_or_else(|rc| (*rc).clone())
}

/// Behaviour of one node. A node may play any of the paper's three roles
/// (client, service, registry) — or several at once, in which case the
/// handler composes them.
///
/// Handlers are driven entirely by the engine: `on_start` when the node
/// (re)boots, `on_shared_message` for each delivered payload, `on_timer` for
/// each timer that fires. All side effects go through the [`Ctx`]; they are
/// applied by the engine after the callback returns.
///
/// Payloads travel the network reference-counted: one multicast enqueues a
/// single shared payload for every receiver. Handlers that only *read* a
/// delivery override [`NodeHandler::on_shared_message`] and never pay a
/// clone; handlers that want ownership implement the plain
/// [`NodeHandler::on_message`], which the default `on_shared_message`
/// forwards to after materializing an owned copy (free when this was the
/// last in-flight copy).
///
/// Handlers must be `Send`: the parallel engine moves whole LAN domains —
/// handlers included — across worker threads between lookahead windows.
/// (Within a window a handler is only ever touched by the one thread
/// running its domain, so `Sync` is not required.)
pub trait NodeHandler<P>: AsAny + Send + 'static {
    /// Called once when the node is added, and again each time it is revived
    /// after a crash. A revived node keeps its Rust state; handlers that
    /// should lose soft state on crash must reset themselves here.
    fn on_start(&mut self, ctx: &mut Ctx<'_, P>) {
        let _ = ctx;
    }

    /// A message addressed to (or multicast past) this node arrived.
    fn on_message(&mut self, ctx: &mut Ctx<'_, P>, from: NodeId, msg: P) {
        let _ = (ctx, from, msg);
    }

    /// The delivery entry point the engine calls: the payload arrives behind
    /// a shared `Rc` (other receivers of the same multicast, or duplicated
    /// copies, may still hold references). The default materializes an owned
    /// copy via [`take_payload`] and forwards to
    /// [`NodeHandler::on_message`]; override this to read the payload
    /// without cloning it.
    fn on_shared_message(&mut self, ctx: &mut Ctx<'_, P>, from: NodeId, msg: Rc<P>)
    where
        P: Clone,
    {
        self.on_message(ctx, from, take_payload(msg));
    }

    /// A timer set through [`Ctx::set_timer`] fired. `tag` is the caller's
    /// discriminator.
    fn on_timer(&mut self, ctx: &mut Ctx<'_, P>, timer: TimerId, tag: u64) {
        let _ = (ctx, timer, tag);
    }
}

/// Action queued by a handler, applied by the engine afterwards.
pub(crate) enum Action<P> {
    Send {
        dest: Destination,
        payload: P,
        bytes: u32,
        kind: MsgKind,
    },
    SetTimer {
        id: TimerId,
        fire_at: SimTime,
        tag: u64,
    },
    CancelTimer(TimerId),
}

/// How [`Ctx::set_timer`] allocates timer ids. The legacy engine hands out
/// ids from one global counter (pinned by the golden digests); the
/// partitioned engine scopes the counter to the node — `(node << 32) | ctr`
/// — so allocation is domain-local (no shared counter to serialize on) yet
/// ids stay globally unique.
pub(crate) enum TimerAlloc<'a> {
    Global(&'a mut u64),
    PerNode { node: u32, ctr: &'a mut u32 },
}

/// Execution context handed to a handler callback. Collects the handler's
/// outgoing messages and timer operations and exposes the node's identity,
/// the simulated clock, and the node's private deterministic RNG.
pub struct Ctx<'a, P> {
    pub(crate) now: SimTime,
    pub(crate) node: NodeId,
    pub(crate) lan: LanId,
    pub(crate) seed: Seed,
    /// Lazily materialized *and boxed*: a node that never draws never seeds
    /// a stream, and its slot in the struct-of-arrays node table costs one
    /// pointer instead of an inline generator state (see [`Ctx::rng`]).
    pub(crate) rng: &'a mut Option<Box<Rng>>,
    pub(crate) timer_alloc: TimerAlloc<'a>,
    pub(crate) actions: Vec<Action<P>>,
}

impl<P> Ctx<'_, P> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// This node's id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The LAN this node is attached to. (A node knows its own link — it does
    /// not get topology-wide knowledge.)
    pub fn lan(&self) -> LanId {
        self.lan
    }

    /// This node's deterministic private RNG. Each node's stream is derived
    /// independently from the simulation seed, so one handler drawing more
    /// (or fewer) values never perturbs another node's behaviour. The stream
    /// is materialized on first draw — the stream state is a pure function
    /// of the derived seed, so lazy creation yields exactly the values eager
    /// creation did, and nodes that never draw cost nothing.
    pub fn rng(&mut self) -> &mut Rng {
        let seed = self.seed;
        &mut *self.rng.get_or_insert_with(|| Box::new(seed.rng()))
    }

    /// Derives a fresh deterministic RNG stream for this node, keyed by
    /// `label`. Streams are independent of the node's main [`Ctx::rng`]
    /// stream and of each other, so optional machinery (retry jitter,
    /// probation backoff) can draw freely without perturbing the draws —
    /// and hence the behaviour — of code that does not use it.
    pub fn derive_rng(&self, label: &str) -> Rng {
        self.seed.derive(label).rng()
    }

    /// Queues a message. `bytes` is the on-the-wire size used for bandwidth
    /// accounting; `kind` is a diagnostic label.
    pub fn send(&mut self, dest: Destination, payload: P, bytes: u32, kind: MsgKind) {
        self.actions.push(Action::Send { dest, payload, bytes, kind });
    }

    /// Schedules `on_timer` to fire after `delay` with the given tag and
    /// returns a handle that can cancel it.
    pub fn set_timer(&mut self, delay: SimTime, tag: u64) -> TimerId {
        let id = match &mut self.timer_alloc {
            TimerAlloc::Global(ctr) => {
                let id = TimerId(**ctr);
                **ctr += 1;
                id
            }
            TimerAlloc::PerNode { node, ctr } => {
                let id = TimerId((u64::from(*node) << 32) | u64::from(**ctr));
                **ctr += 1;
                id
            }
        };
        self.actions.push(Action::SetTimer { id, fire_at: self.now.saturating_add(delay), tag });
        id
    }

    /// Cancels a previously set timer. Cancelling an already-fired or unknown
    /// timer is a no-op.
    pub fn cancel_timer(&mut self, id: TimerId) {
        self.actions.push(Action::CancelTimer(id));
    }
}
