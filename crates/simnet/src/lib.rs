//! # sds-simnet — deterministic discrete-event network simulator
//!
//! The paper targets "dynamic environments": wireless LANs and WAN links where
//! nodes (services, clients, registries) are transient. This crate provides
//! the substrate those environments are simulated on:
//!
//! * a single-threaded, seeded, discrete-event engine ([`Sim`]) — every run is
//!   reproducible bit-for-bit;
//! * a network model ([`Topology`]) of LAN multicast domains connected by a
//!   WAN, with per-scope latency, loss, and partitions;
//! * per-scope byte/message accounting ([`NetStats`]) — the currency most of
//!   the paper's bandwidth claims are stated in;
//! * node churn: crash, revive, scheduled control actions.
//!
//! Protocol logic lives in node handlers implementing [`NodeHandler`]; the
//! engine delivers messages and timer events to them and applies the actions
//! they queue on their [`Ctx`].
//!
//! ```
//! use sds_simnet::{Sim, SimConfig, Topology, NodeHandler, Ctx, Destination};
//!
//! struct Echo;
//! impl NodeHandler<String> for Echo {
//!     fn on_message(&mut self, ctx: &mut Ctx<'_, String>, from: sds_simnet::NodeId, msg: String) {
//!         if msg == "ping" {
//!             ctx.send(Destination::Unicast(from), "pong".to_string(), 4, "pong");
//!         }
//!     }
//! }
//! struct Pinger { got: bool }
//! impl NodeHandler<String> for Pinger {
//!     fn on_start(&mut self, ctx: &mut Ctx<'_, String>) {
//!         ctx.send(Destination::Unicast(sds_simnet::NodeId(0)), "ping".to_string(), 4, "ping");
//!     }
//!     fn on_message(&mut self, _ctx: &mut Ctx<'_, String>, _from: sds_simnet::NodeId, msg: String) {
//!         assert_eq!(msg, "pong");
//!         self.got = true;
//!     }
//! }
//!
//! let mut topo = Topology::new();
//! let lan = topo.add_lan();
//! let mut sim: Sim<String> = Sim::new(SimConfig::default(), topo, 42);
//! let echo = sim.add_node(lan, Box::new(Echo));
//! assert_eq!(echo.0, 0);
//! let pinger = sim.add_node(lan, Box::new(Pinger { got: false }));
//! sim.run_until(1_000);
//! assert!(sim.handler::<Pinger>(pinger).unwrap().got);
//! ```

mod domain;
mod engine;
mod handler;
mod ids;
mod message;
mod par;
mod stats;
mod time;
mod topology;

pub use engine::{ControlAction, Corruptor, FaultProfile, NodeCapacity, Sim, SimConfig};
pub use par::PartitionPlan;
// Handlers receive a `&mut Rng` through `Ctx::rng`; re-exported so roles can
// name the type without depending on sds-rand directly.
pub use sds_rand::{Rng, Seed};
pub use handler::{take_payload, Ctx, NodeHandler};
pub use ids::{LanId, NodeId, TimerId};
pub use message::{Destination, MsgKind};
pub use stats::{KindStats, NetStats, Scope};
pub use time::{millis, secs, SimTime};
pub use topology::Topology;
