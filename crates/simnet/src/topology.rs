//! Network topology: LAN membership and WAN partitions.

use std::collections::BTreeSet;

use crate::ids::{LanId, NodeId};

/// The static shape of the network: which LAN each node sits on, plus the
/// current WAN partition state.
///
/// LANs are broadcast domains (multicast works inside a LAN only, matching
/// the paper's "local-scoped multicast"). All LANs are mutually reachable
/// over the WAN unless a partition separates them.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    lan_count: u16,
    /// Indexed by node id: the LAN the node is attached to.
    node_lan: Vec<LanId>,
    /// Indexed by LAN id: the nodes on that LAN.
    lan_members: Vec<Vec<NodeId>>,
    /// Partition group per LAN. LANs in different groups cannot exchange WAN
    /// traffic. All zero (one group) means a fully connected WAN.
    lan_group: Vec<u32>,
    /// Individually cut WAN pairs (partial partitions), stored normalized
    /// (smaller id first). A cut blocks both directions of that one pair
    /// while every other WAN route stays up.
    cut_pairs: BTreeSet<(LanId, LanId)>,
}

fn ordered(a: LanId, b: LanId) -> (LanId, LanId) {
    if a <= b { (a, b) } else { (b, a) }
}

impl Topology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a new LAN (multicast domain) and returns its id.
    pub fn add_lan(&mut self) -> LanId {
        let id = LanId(self.lan_count);
        self.lan_count += 1;
        self.lan_members.push(Vec::new());
        self.lan_group.push(0);
        id
    }

    /// Registers a node on a LAN. Called by the engine; node ids must be
    /// added densely in order.
    pub(crate) fn attach_node(&mut self, node: NodeId, lan: LanId) {
        assert_eq!(node.index(), self.node_lan.len(), "nodes must be added in id order");
        assert!(lan.index() < self.lan_members.len(), "unknown LAN {lan:?}");
        self.node_lan.push(lan);
        self.lan_members[lan.index()].push(node);
    }

    pub fn lan_count(&self) -> usize {
        self.lan_count as usize
    }

    pub fn node_count(&self) -> usize {
        self.node_lan.len()
    }

    /// The LAN a node is attached to.
    pub fn lan_of(&self, node: NodeId) -> LanId {
        self.node_lan[node.index()]
    }

    /// All nodes attached to a LAN (live or not — liveness is the engine's
    /// concern).
    pub fn members(&self, lan: LanId) -> &[NodeId] {
        &self.lan_members[lan.index()]
    }

    /// True when the two nodes share a broadcast domain.
    pub fn same_lan(&self, a: NodeId, b: NodeId) -> bool {
        self.lan_of(a) == self.lan_of(b)
    }

    /// Splits the WAN: each entry of `groups` lists the LANs of one side.
    /// LANs not mentioned keep group 0. Cross-group WAN traffic is dropped
    /// until [`Topology::heal_partition`].
    pub fn partition(&mut self, groups: &[&[LanId]]) {
        for g in self.lan_group.iter_mut() {
            *g = 0;
        }
        for (i, group) in groups.iter().enumerate() {
            for lan in group.iter() {
                self.lan_group[lan.index()] = (i + 1) as u32;
            }
        }
    }

    /// Restores full WAN connectivity: heals group partitions *and* all
    /// individually cut pairs.
    pub fn heal_partition(&mut self) {
        for g in self.lan_group.iter_mut() {
            *g = 0;
        }
        self.cut_pairs.clear();
    }

    /// Cuts the WAN between one pair of LANs (both directions). All other
    /// WAN routes are unaffected — a *partial* partition, unlike the
    /// group-based [`Topology::partition`]. Cutting a pair twice, or a LAN
    /// against itself, is a no-op.
    pub fn cut_wan_pair(&mut self, a: LanId, b: LanId) {
        if a != b {
            self.cut_pairs.insert(ordered(a, b));
        }
    }

    /// Heals one previously cut WAN pair (no-op if not cut).
    pub fn heal_wan_pair(&mut self, a: LanId, b: LanId) {
        self.cut_pairs.remove(&ordered(a, b));
    }

    /// True when this specific pair is individually cut.
    pub fn wan_pair_cut(&self, a: LanId, b: LanId) -> bool {
        self.cut_pairs.contains(&ordered(a, b))
    }

    /// True when WAN traffic can flow between the two LANs.
    pub fn wan_reachable(&self, a: LanId, b: LanId) -> bool {
        a == b
            || (self.lan_group[a.index()] == self.lan_group[b.index()]
                && !self.wan_pair_cut(a, b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attach_and_lookup() {
        let mut t = Topology::new();
        let l0 = t.add_lan();
        let l1 = t.add_lan();
        t.attach_node(NodeId(0), l0);
        t.attach_node(NodeId(1), l1);
        t.attach_node(NodeId(2), l0);
        assert_eq!(t.lan_of(NodeId(0)), l0);
        assert_eq!(t.lan_of(NodeId(1)), l1);
        assert_eq!(t.members(l0), &[NodeId(0), NodeId(2)]);
        assert!(t.same_lan(NodeId(0), NodeId(2)));
        assert!(!t.same_lan(NodeId(0), NodeId(1)));
    }

    #[test]
    #[should_panic(expected = "id order")]
    fn out_of_order_attach_panics() {
        let mut t = Topology::new();
        let l0 = t.add_lan();
        t.attach_node(NodeId(1), l0);
    }

    #[test]
    fn partitions_block_and_heal() {
        let mut t = Topology::new();
        let l0 = t.add_lan();
        let l1 = t.add_lan();
        let l2 = t.add_lan();
        assert!(t.wan_reachable(l0, l2));
        t.partition(&[&[l0], &[l1, l2]]);
        assert!(!t.wan_reachable(l0, l1));
        assert!(t.wan_reachable(l1, l2));
        // Intra-LAN always reachable regardless of grouping.
        assert!(t.wan_reachable(l0, l0));
        t.heal_partition();
        assert!(t.wan_reachable(l0, l1));
    }

    #[test]
    fn pair_cuts_block_one_pair_only() {
        let mut t = Topology::new();
        let l0 = t.add_lan();
        let l1 = t.add_lan();
        let l2 = t.add_lan();
        t.cut_wan_pair(l1, l0); // order must not matter
        assert!(!t.wan_reachable(l0, l1));
        assert!(!t.wan_reachable(l1, l0));
        assert!(t.wan_reachable(l0, l2));
        assert!(t.wan_reachable(l1, l2));
        assert!(t.wan_pair_cut(l0, l1));
        t.heal_wan_pair(l0, l1);
        assert!(t.wan_reachable(l0, l1));
    }

    #[test]
    fn heal_partition_heals_pair_cuts_too() {
        let mut t = Topology::new();
        let l0 = t.add_lan();
        let l1 = t.add_lan();
        t.cut_wan_pair(l0, l1);
        t.partition(&[&[l0], &[l1]]);
        t.heal_partition();
        assert!(t.wan_reachable(l0, l1));
        assert!(!t.wan_pair_cut(l0, l1));
    }

    #[test]
    fn self_cut_is_a_noop() {
        let mut t = Topology::new();
        let l0 = t.add_lan();
        t.cut_wan_pair(l0, l0);
        assert!(t.wan_reachable(l0, l0));
    }
}
