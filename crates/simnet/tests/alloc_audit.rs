//! Allocation audit for the engine's hot loop.
//!
//! A million-node run is memory-bound, so the steady-state event loop must
//! not allocate: wheel buckets, timer tables, and action scratch all reach
//! their high-water capacity during warmup and are reused forever after.
//! This binary installs a counting global allocator and pins that contract:
//!
//! * a timer-only steady state (the idle heartbeat of a big simulation)
//!   performs **zero** allocations per event once warm;
//! * a unicast ping-pong storm allocates at most the one `Rc` payload box
//!   per send (plus a small per-`run_until` constant for the stats
//!   refresh) — delivery, dispatch, and timer bookkeeping add nothing.
//!
//! Both phases live in one `#[test]` because the counter is process-global
//! and the libtest harness runs separate tests on concurrent threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, Sim, SimConfig, TimerId, Topology};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Re-arms a fixed-period timer forever; never touches its RNG or sends.
/// The first arming is staggered so the tickers spread across wheel slots.
struct Ticker {
    offset: u64,
    period: u64,
    fired: u64,
}

impl NodeHandler<u64> for Ticker {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.set_timer(self.offset + 1, 0);
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _t: TimerId, _tag: u64) {
        self.fired += 1;
        ctx.set_timer(self.period, 0);
    }
}

/// Returns every received message to its sender, forever.
struct Echo {
    bounces: u64,
}

impl NodeHandler<u64> for Echo {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        self.bounces += 1;
        ctx.send(Destination::Unicast(from), msg + 1, 64, "pong");
    }
}

/// Kicks off one ping; thereafter traffic is self-sustaining Echo↔Echo.
struct Kick {
    peer: NodeId,
}

impl NodeHandler<u64> for Kick {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u64>) {
        ctx.send(Destination::Unicast(self.peer), 0, 64, "ping");
    }
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        ctx.send(Destination::Unicast(from), msg + 1, 64, "ping");
    }
}

fn quiet_net() -> SimConfig {
    // Deterministic, lossless, unthrottled: every event is pure bookkeeping.
    SimConfig {
        lan_latency: 1,
        lan_jitter: 0,
        wan_latency: 1,
        wan_jitter: 0,
        lan_loss: 0.0,
        wan_loss: 0.0,
        lan_rate_kbps: 0,
        wan_rate_kbps: 0,
        node_capacity: None,
    }
}

#[test]
fn steady_state_hot_loop_does_not_allocate() {
    // ---- Phase 1: timer-only steady state must be allocation-free. ----
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<u64> = Sim::new(quiet_net(), topo, 42);
    const TICKERS: u64 = 64;
    let ids: Vec<NodeId> = (0..TICKERS)
        // A power-of-two period divides the 4096-slot wheel span evenly, so
        // each timer revisits the same bucket set forever: after one wrap
        // every bucket the steady state will ever touch is warm. (A period
        // that does not divide the span keeps drifting into cold buckets,
        // whose first push allocates — that is warmup, not steady state.)
        .map(|i| sim.add_node(lan, Box::new(Ticker { offset: i, period: 64, fired: 0 })))
        .collect();

    // Warmup: several full wheel wraps (span 4096) so bucket vectors, the
    // timer-slot table, and scratch buffers all hit steady capacity.
    sim.run_until(40_000);
    let fired_before: u64 = ids.iter().map(|&id| sim.handler::<Ticker>(id).unwrap().fired).sum();
    let before = allocations();
    sim.run_until(60_000);
    let timer_allocs = allocations() - before;
    let fired_during: u64 =
        ids.iter().map(|&id| sim.handler::<Ticker>(id).unwrap().fired).sum::<u64>() - fired_before;
    assert!(fired_during > 15_000, "workload is real: {fired_during} timer events measured");
    assert_eq!(
        timer_allocs, 0,
        "timer steady state allocated {timer_allocs} times over {fired_during} events"
    );

    // ---- Phase 2: unicast storm allocates ≤ 1 Rc box per send. ----
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<u64> = Sim::new(quiet_net(), topo, 43);
    const PAIRS: u64 = 16;
    let mut echoes = Vec::new();
    for _ in 0..PAIRS {
        let echo = sim.add_node(lan, Box::new(Echo { bounces: 0 }));
        sim.add_node(lan, Box::new(Kick { peer: echo }));
        echoes.push(echo);
    }
    sim.run_until(20_000);
    let sent_before = sim.stats().total_messages();
    let before = allocations();
    sim.run_until(30_000);
    let storm_allocs = allocations() - before;
    let sent = sim.stats().total_messages() - sent_before;
    assert!(sent > 10_000, "workload is real: {sent} sends measured");
    // One allocation per send (the shared-payload Rc box) plus a small
    // constant for the per-call stats refresh (one by_kind entry per kind).
    assert!(
        storm_allocs <= sent + 16,
        "storm allocated {storm_allocs} times over {sent} sends (> 1/send + slack)"
    );
}
