//! Tests for the shared-medium bandwidth model.

use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, Sim, SimConfig, Topology};

#[derive(Default)]
struct Recorder {
    arrivals: Vec<(u64, u32)>, // (time, marker)
}

impl NodeHandler<u32> for Recorder {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: NodeId, msg: u32) {
        self.arrivals.push((ctx.now(), msg));
    }
}

struct Blaster {
    target: NodeId,
    count: u32,
    bytes: u32,
}

impl NodeHandler<u32> for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
        for i in 0..self.count {
            ctx.send(Destination::Unicast(self.target), i, self.bytes, "blast");
        }
    }
}

fn cfg(lan_rate_kbps: u32, wan_rate_kbps: u32) -> SimConfig {
    SimConfig {
        lan_latency: 1,
        lan_jitter: 0,
        wan_latency: 20,
        wan_jitter: 0,
        lan_rate_kbps,
        wan_rate_kbps,
        ..SimConfig::default()
    }
}

#[test]
fn zero_rate_means_no_serialization_delay() {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<u32> = Sim::new(cfg(0, 0), topo, 1);
    let rx = sim.add_node(lan, Box::<Recorder>::default());
    let _tx = sim.add_node(lan, Box::new(Blaster { target: rx, count: 10, bytes: 10_000 }));
    sim.run_until(1_000);
    let arrivals = &sim.handler::<Recorder>(rx).unwrap().arrivals;
    assert_eq!(arrivals.len(), 10);
    assert!(arrivals.iter().all(|&(t, _)| t == 1), "all delivered after pure latency: {arrivals:?}");
}

#[test]
fn lan_transmissions_serialize_at_the_configured_rate() {
    // 80 kbps; 1 000-byte messages → 8 000 bits / 80 kbps = 100 ms each.
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<u32> = Sim::new(cfg(80, 0), topo, 2);
    let rx = sim.add_node(lan, Box::<Recorder>::default());
    let _tx = sim.add_node(lan, Box::new(Blaster { target: rx, count: 5, bytes: 1_000 }));
    sim.run_until(10_000);
    let arrivals = &sim.handler::<Recorder>(rx).unwrap().arrivals;
    assert_eq!(arrivals.len(), 5);
    // i-th message leaves the medium at (i+1)*100 ms, +1 ms latency.
    for (i, &(t, _)) in arrivals.iter().enumerate() {
        assert_eq!(t, (i as u64 + 1) * 100 + 1, "arrival {i}: {arrivals:?}");
    }
}

#[test]
fn lans_have_independent_mediums_but_share_the_wan_pipe() {
    let mut topo = Topology::new();
    let lan_a = topo.add_lan();
    let lan_b = topo.add_lan();
    // WAN: 80 kbps shared; LAN unlimited.
    let mut sim: Sim<u32> = Sim::new(cfg(0, 80), topo, 3);
    let rx_a = sim.add_node(lan_a, Box::<Recorder>::default());
    let rx_b = sim.add_node(lan_b, Box::<Recorder>::default());
    // Two senders on different LANs each push one 1 000-byte message across
    // the WAN; the second queues behind the first on the shared pipe.
    let _tx_b = sim.add_node(lan_b, Box::new(Blaster { target: rx_a, count: 1, bytes: 1_000 }));
    let _tx_a = sim.add_node(lan_a, Box::new(Blaster { target: rx_b, count: 1, bytes: 1_000 }));
    sim.run_until(10_000);
    let t_a = sim.handler::<Recorder>(rx_a).unwrap().arrivals[0].0;
    let t_b = sim.handler::<Recorder>(rx_b).unwrap().arrivals[0].0;
    let (first, second) = if t_a < t_b { (t_a, t_b) } else { (t_b, t_a) };
    assert_eq!(first, 120, "first transfer: 100 ms serialization + 20 ms latency");
    assert_eq!(second, 220, "second queues behind the first on the shared pipe");
}

#[test]
fn multicast_charges_the_medium_once() {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<u32> = Sim::new(cfg(80, 0), topo, 4);
    let rx1 = sim.add_node(lan, Box::<Recorder>::default());
    let rx2 = sim.add_node(lan, Box::<Recorder>::default());

    struct Caster;
    impl NodeHandler<u32> for Caster {
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            let lan = ctx.lan();
            ctx.send(Destination::Multicast(lan), 7, 1_000, "mc");
        }
    }
    let _tx = sim.add_node(lan, Box::new(Caster));
    sim.run_until(1_000);
    // Both receivers get it after ONE serialization interval (broadcast).
    for rx in [rx1, rx2] {
        let arrivals = &sim.handler::<Recorder>(rx).unwrap().arrivals;
        assert_eq!(arrivals.len(), 1);
        assert_eq!(arrivals[0].0, 101);
    }
}

#[test]
fn congestion_does_not_reorder_single_flow() {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<u32> = Sim::new(cfg(64, 0), topo, 5);
    let rx = sim.add_node(lan, Box::<Recorder>::default());
    let _tx = sim.add_node(lan, Box::new(Blaster { target: rx, count: 20, bytes: 400 }));
    sim.run_until(60_000);
    let markers: Vec<u32> =
        sim.handler::<Recorder>(rx).unwrap().arrivals.iter().map(|&(_, m)| m).collect();
    assert_eq!(markers, (0..20).collect::<Vec<_>>(), "FIFO within one sender's burst");
}
