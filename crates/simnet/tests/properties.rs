//! Property-based tests for the simulator: delivery conservation,
//! determinism under arbitrary scripts, timer correctness, crash semantics.

use proptest::prelude::*;

use sds_simnet::{
    Ctx, Destination, LanId, NodeHandler, NodeId, Sim, SimConfig, TimerId, Topology,
};

#[derive(Default)]
struct Probe {
    received: Vec<(NodeId, u32)>,
    timers_fired: Vec<u64>,
}

impl NodeHandler<u32> for Probe {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
        self.received.push((from, msg));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _t: TimerId, tag: u64) {
        self.timers_fired.push(tag);
    }
}

/// One scripted action against the sim.
#[derive(Clone, Debug)]
enum Op {
    Send { from: usize, to: usize, marker: u32 },
    Multicast { from: usize, marker: u32 },
    Timer { node: usize, delay: u64, tag: u64 },
    Advance { ms: u64 },
    Crash { node: usize },
    Revive { node: usize },
}

fn arb_op(nodes: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..nodes, 0..nodes, any::<u32>())
            .prop_map(|(from, to, marker)| Op::Send { from, to, marker }),
        (0..nodes, any::<u32>()).prop_map(|(from, marker)| Op::Multicast { from, marker }),
        (0..nodes, 1u64..500, any::<u64>()).prop_map(|(node, delay, tag)| Op::Timer {
            node,
            delay,
            tag
        }),
        (1u64..200).prop_map(|ms| Op::Advance { ms }),
        (0..nodes).prop_map(|node| Op::Crash { node }),
        (0..nodes).prop_map(|node| Op::Revive { node }),
    ]
}

const NODES: usize = 6;

fn build(seed: u64) -> (Sim<u32>, Vec<NodeId>) {
    let mut topo = Topology::new();
    let lan_a = topo.add_lan();
    let lan_b = topo.add_lan();
    let mut sim: Sim<u32> = Sim::new(SimConfig::default(), topo, seed);
    let ids: Vec<NodeId> = (0..NODES)
        .map(|i| sim.add_node(if i % 2 == 0 { lan_a } else { lan_b }, Box::<Probe>::default()))
        .collect();
    (sim, ids)
}

type WorldState = (u64, u64, u64, Vec<Vec<(NodeId, u32)>>);

fn run_script(script: &[Op], seed: u64) -> WorldState {
    let (mut sim, ids) = build(seed);
    for op in script {
        match *op {
            Op::Send { from, to, marker } => {
                let target = ids[to];
                sim.with_node::<Probe>(ids[from], |_, ctx| {
                    ctx.send(Destination::Unicast(target), marker, 64, "m");
                });
            }
            Op::Multicast { from, marker } => {
                sim.with_node::<Probe>(ids[from], |_, ctx| {
                    let lan = ctx.lan();
                    ctx.send(Destination::Multicast(lan), marker, 64, "m");
                });
            }
            Op::Timer { node, delay, tag } => {
                sim.with_node::<Probe>(ids[node], |_, ctx| {
                    ctx.set_timer(delay, tag);
                });
            }
            Op::Advance { ms } => {
                let until = sim.now() + ms;
                sim.run_until(until);
            }
            Op::Crash { node } => sim.crash_node(ids[node]),
            Op::Revive { node } => sim.revive_node(ids[node]),
        }
    }
    sim.run_until(sim.now() + 10_000);
    let received: Vec<Vec<(NodeId, u32)>> = ids
        .iter()
        .map(|&id| sim.handler::<Probe>(id).unwrap().received.clone())
        .collect();
    (sim.stats().total_messages(), sim.stats().total_bytes(), sim.stats().dropped_messages, received)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn identical_scripts_produce_identical_worlds(
        script in prop::collection::vec(arb_op(NODES), 0..60),
        seed in any::<u64>(),
    ) {
        prop_assert_eq!(run_script(&script, seed), run_script(&script, seed));
    }

    #[test]
    fn without_crashes_every_unicast_is_delivered(
        sends in prop::collection::vec((0usize..NODES, 0usize..NODES, any::<u32>()), 1..40),
    ) {
        let script: Vec<Op> = sends
            .iter()
            .map(|&(from, to, marker)| Op::Send { from, to, marker })
            .collect();
        let (_, _, dropped, received) = run_script(&script, 7);
        prop_assert_eq!(dropped, 0, "no loss configured, nobody crashed");
        // Every non-self send arrives exactly once (self-sends loop back too).
        let total_received: usize = received.iter().map(Vec::len).sum();
        prop_assert_eq!(total_received, sends.len());
    }

    #[test]
    fn bytes_equal_message_count_times_size(
        sends in prop::collection::vec((0usize..NODES, 0usize..NODES), 1..40),
    ) {
        let script: Vec<Op> = sends
            .iter()
            .enumerate()
            .filter(|&(_, &(from, to))| from != to)
            .map(|(i, &(from, to))| Op::Send { from, to, marker: i as u32 })
            .collect();
        let (msgs, bytes, _, _) = run_script(&script, 9);
        prop_assert_eq!(bytes, msgs * 64, "uniform 64-byte messages");
    }

    #[test]
    fn crashed_nodes_receive_nothing(
        sends in prop::collection::vec((0usize..NODES, 0usize..NODES, any::<u32>()), 1..30),
        victim in 0usize..NODES,
    ) {
        let mut script = vec![Op::Crash { node: victim }];
        script.extend(
            sends.iter().map(|&(from, to, marker)| Op::Send { from, to, marker }),
        );
        let (_, _, _, received) = run_script(&script, 11);
        prop_assert!(received[victim].is_empty());
    }

    #[test]
    fn timers_on_live_nodes_all_fire(
        timers in prop::collection::vec((0usize..NODES, 1u64..2_000, any::<u64>()), 1..30),
    ) {
        let script: Vec<Op> =
            timers.iter().map(|&(node, delay, tag)| Op::Timer { node, delay, tag }).collect();
        let (mut sim, ids) = build(13);
        for op in &script {
            if let Op::Timer { node, delay, tag } = *op {
                sim.with_node::<Probe>(ids[node], |_, ctx| {
                    ctx.set_timer(delay, tag);
                });
            }
        }
        sim.run_until(10_000);
        let fired: usize =
            ids.iter().map(|&id| sim.handler::<Probe>(id).unwrap().timers_fired.len()).sum();
        prop_assert_eq!(fired, timers.len());
    }

    #[test]
    fn multicast_reaches_exactly_the_lan_peers(
        from in 0usize..NODES,
        marker in any::<u32>(),
    ) {
        let script = vec![Op::Multicast { from, marker }];
        let (_, _, _, received) = run_script(&script, 17);
        // Node i is on LAN (i % 2); peers share parity, sender excluded.
        for (i, inbox) in received.iter().enumerate() {
            let same_lan = i % 2 == from % 2;
            let expected = usize::from(same_lan && i != from);
            prop_assert_eq!(inbox.len(), expected, "node {}", i);
        }
    }
}

#[test]
fn lan_ids_are_stable() {
    // Guard for the parity assumption used above.
    let (sim, ids) = build(1);
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(sim.topology().lan_of(id), LanId((i % 2) as u16));
    }
}
