//! Property-based tests for the simulator: delivery conservation,
//! determinism under arbitrary scripts, timer correctness, crash semantics.
//! Run under the in-workspace seeded harness (`sds_rand::check`).

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;
use sds_simnet::{
    Ctx, Destination, LanId, NodeHandler, NodeId, Sim, SimConfig, TimerId, Topology,
};

#[derive(Default)]
struct Probe {
    received: Vec<(NodeId, u32)>,
    timers_fired: Vec<u64>,
}

impl NodeHandler<u32> for Probe {
    fn on_message(&mut self, _ctx: &mut Ctx<'_, u32>, from: NodeId, msg: u32) {
        self.received.push((from, msg));
    }
    fn on_timer(&mut self, _ctx: &mut Ctx<'_, u32>, _t: TimerId, tag: u64) {
        self.timers_fired.push(tag);
    }
}

/// One scripted action against the sim.
#[derive(Clone, Debug)]
enum Op {
    Send { from: usize, to: usize, marker: u32 },
    Multicast { from: usize, marker: u32 },
    Timer { node: usize, delay: u64, tag: u64 },
    Advance { ms: u64 },
    Crash { node: usize },
    Revive { node: usize },
}

fn arb_op(rng: &mut Rng, nodes: usize) -> Op {
    match rng.gen_range(0..6u32) {
        0 => Op::Send {
            from: rng.gen_range(0..nodes),
            to: rng.gen_range(0..nodes),
            marker: rng.next_u32(),
        },
        1 => Op::Multicast { from: rng.gen_range(0..nodes), marker: rng.next_u32() },
        2 => Op::Timer {
            node: rng.gen_range(0..nodes),
            delay: rng.gen_range(1..500u64),
            tag: rng.next_u64(),
        },
        3 => Op::Advance { ms: rng.gen_range(1..200u64) },
        4 => Op::Crash { node: rng.gen_range(0..nodes) },
        _ => Op::Revive { node: rng.gen_range(0..nodes) },
    }
}

const NODES: usize = 6;

fn build(seed: u64) -> (Sim<u32>, Vec<NodeId>) {
    let mut topo = Topology::new();
    let lan_a = topo.add_lan();
    let lan_b = topo.add_lan();
    let mut sim: Sim<u32> = Sim::new(SimConfig::default(), topo, seed);
    let ids: Vec<NodeId> = (0..NODES)
        .map(|i| sim.add_node(if i % 2 == 0 { lan_a } else { lan_b }, Box::<Probe>::default()))
        .collect();
    (sim, ids)
}

type WorldState = (u64, u64, u64, Vec<Vec<(NodeId, u32)>>);

fn run_script(script: &[Op], seed: u64) -> WorldState {
    let (mut sim, ids) = build(seed);
    for op in script {
        match *op {
            Op::Send { from, to, marker } => {
                let target = ids[to];
                sim.with_node::<Probe>(ids[from], |_, ctx| {
                    ctx.send(Destination::Unicast(target), marker, 64, "m");
                });
            }
            Op::Multicast { from, marker } => {
                sim.with_node::<Probe>(ids[from], |_, ctx| {
                    let lan = ctx.lan();
                    ctx.send(Destination::Multicast(lan), marker, 64, "m");
                });
            }
            Op::Timer { node, delay, tag } => {
                sim.with_node::<Probe>(ids[node], |_, ctx| {
                    ctx.set_timer(delay, tag);
                });
            }
            Op::Advance { ms } => {
                let until = sim.now() + ms;
                sim.run_until(until);
            }
            Op::Crash { node } => sim.crash_node(ids[node]),
            Op::Revive { node } => sim.revive_node(ids[node]),
        }
    }
    sim.run_until(sim.now() + 10_000);
    let received: Vec<Vec<(NodeId, u32)>> = ids
        .iter()
        .map(|&id| sim.handler::<Probe>(id).unwrap().received.clone())
        .collect();
    (sim.stats().total_messages(), sim.stats().total_bytes(), sim.stats().dropped_messages, received)
}

#[test]
fn identical_scripts_produce_identical_worlds() {
    Checker::new("identical_scripts_produce_identical_worlds").cases(64).run(|rng| {
        let script = gen::vec_of(rng, 0, 60, |r| arb_op(r, NODES));
        let seed = rng.next_u64();
        assert_eq!(run_script(&script, seed), run_script(&script, seed));
    });
}

#[test]
fn without_crashes_every_unicast_is_delivered() {
    Checker::new("without_crashes_every_unicast_is_delivered").cases(64).run(|rng| {
        let sends = gen::vec_of(rng, 1, 40, |r| {
            (r.gen_range(0..NODES), r.gen_range(0..NODES), r.next_u32())
        });
        let script: Vec<Op> = sends
            .iter()
            .map(|&(from, to, marker)| Op::Send { from, to, marker })
            .collect();
        let (_, _, dropped, received) = run_script(&script, 7);
        assert_eq!(dropped, 0, "no loss configured, nobody crashed");
        // Every non-self send arrives exactly once (self-sends loop back too).
        let total_received: usize = received.iter().map(Vec::len).sum();
        assert_eq!(total_received, sends.len());
    });
}

#[test]
fn bytes_equal_message_count_times_size() {
    Checker::new("bytes_equal_message_count_times_size").cases(64).run(|rng| {
        let sends = gen::vec_of(rng, 1, 40, |r| (r.gen_range(0..NODES), r.gen_range(0..NODES)));
        let script: Vec<Op> = sends
            .iter()
            .enumerate()
            .filter(|&(_, &(from, to))| from != to)
            .map(|(i, &(from, to))| Op::Send { from, to, marker: i as u32 })
            .collect();
        let (msgs, bytes, _, _) = run_script(&script, 9);
        assert_eq!(bytes, msgs * 64, "uniform 64-byte messages");
    });
}

#[test]
fn crashed_nodes_receive_nothing() {
    Checker::new("crashed_nodes_receive_nothing").cases(64).run(|rng| {
        let sends = gen::vec_of(rng, 1, 30, |r| {
            (r.gen_range(0..NODES), r.gen_range(0..NODES), r.next_u32())
        });
        let victim = rng.gen_range(0..NODES);
        let mut script = vec![Op::Crash { node: victim }];
        script.extend(
            sends.iter().map(|&(from, to, marker)| Op::Send { from, to, marker }),
        );
        let (_, _, _, received) = run_script(&script, 11);
        assert!(received[victim].is_empty());
    });
}

#[test]
fn timers_on_live_nodes_all_fire() {
    Checker::new("timers_on_live_nodes_all_fire").cases(64).run(|rng| {
        let timers = gen::vec_of(rng, 1, 30, |r| {
            (r.gen_range(0..NODES), r.gen_range(1..2_000u64), r.next_u64())
        });
        let (mut sim, ids) = build(13);
        for &(node, delay, tag) in &timers {
            sim.with_node::<Probe>(ids[node], |_, ctx| {
                ctx.set_timer(delay, tag);
            });
        }
        sim.run_until(10_000);
        let fired: usize =
            ids.iter().map(|&id| sim.handler::<Probe>(id).unwrap().timers_fired.len()).sum();
        assert_eq!(fired, timers.len());
    });
}

#[test]
fn multicast_reaches_exactly_the_lan_peers() {
    Checker::new("multicast_reaches_exactly_the_lan_peers").cases(64).run(|rng| {
        let from = rng.gen_range(0..NODES);
        let marker = rng.next_u32();
        let script = vec![Op::Multicast { from, marker }];
        let (_, _, _, received) = run_script(&script, 17);
        // Node i is on LAN (i % 2); peers share parity, sender excluded.
        for (i, inbox) in received.iter().enumerate() {
            let same_lan = i % 2 == from % 2;
            let expected = usize::from(same_lan && i != from);
            assert_eq!(inbox.len(), expected, "node {i}");
        }
    });
}

#[test]
fn lan_ids_are_stable() {
    // Guard for the parity assumption used above.
    let (sim, ids) = build(1);
    for (i, &id) in ids.iter().enumerate() {
        assert_eq!(sim.topology().lan_of(id), LanId((i % 2) as u16));
    }
}
