//! Property tests for the partitioned (parallel) engine, under the
//! in-workspace seeded harness (`sds_rand::check`).
//!
//! Two guarantees are pinned over *randomized* topologies and traffic:
//!
//! * **Worker-count invariance** — the full observable world (every node's
//!   receive log with timestamps, the merged stats, final clock, event
//!   count) is a pure function of the seed and the partition plan; thread
//!   count and scheduling must not leak in. This is exercised with faults,
//!   jitter, churn, and rate limits on, because those are the paths where a
//!   stray shared RNG or racing counter would show up.
//! * **Cross-LAN handoff order** — with deterministic latency (no jitter,
//!   no faults), two messages from one sender to one receiver can never
//!   overtake each other, even when the delivery crosses a domain boundary
//!   through the outbox/mailbox handoff: the merged dispatch order is the
//!   `(at, seq)` order the sends were stamped with. Receive logs must also
//!   be globally time-nondecreasing per node.

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;
use sds_simnet::{
    ControlAction, Ctx, Destination, FaultProfile, LanId, NodeHandler, NodeId, PartitionPlan,
    Sim, SimConfig, TimerId, Topology,
};

/// Records every delivery with its arrival time; replies to `Ping` markers
/// so traffic keeps crossing LAN boundaries without external driving.
#[derive(Default)]
struct Probe {
    received: Vec<(u64, NodeId, u64)>,
    timers: Vec<(u64, u64)>,
}

/// Payload: high 32 bits sender-chosen marker, low 32 bits a per-sender
/// sequence number (the observable stand-in for the engine's `(at, seq)`
/// stamp).
impl NodeHandler<u64> for Probe {
    fn on_message(&mut self, ctx: &mut Ctx<'_, u64>, from: NodeId, msg: u64) {
        self.received.push((ctx.now(), from, msg));
        // Echo every 4th message back, so runs contain handler-originated
        // cross-domain traffic, not just externally scripted sends.
        if msg % 4 == 0 {
            ctx.send(Destination::Unicast(from), msg | 1, 48, "echo");
        }
    }
    fn on_timer(&mut self, ctx: &mut Ctx<'_, u64>, _t: TimerId, tag: u64) {
        self.timers.push((ctx.now(), tag));
    }
}

struct ArbWorld {
    cfg: SimConfig,
    lans: usize,
    nodes_per_lan: usize,
    plan: PartitionPlan,
}

fn arb_world(rng: &mut Rng, faulty: bool) -> ArbWorld {
    let lans = rng.gen_range(2..6usize);
    ArbWorld {
        cfg: SimConfig {
            lan_latency: rng.gen_range(1..4u64),
            lan_jitter: if faulty { rng.gen_range(0..3u64) } else { 0 },
            wan_latency: rng.gen_range(1..30u64),
            wan_jitter: if faulty { rng.gen_range(0..10u64) } else { 0 },
            lan_loss: if faulty { 0.05 } else { 0.0 },
            wan_loss: if faulty { 0.05 } else { 0.0 },
            lan_rate_kbps: if faulty { 256 } else { 0 },
            wan_rate_kbps: if faulty { 64 } else { 0 },
            node_capacity: None,
        },
        lans,
        nodes_per_lan: rng.gen_range(1..4usize),
        plan: if rng.gen_bool(0.5) {
            PartitionPlan::PerLan
        } else {
            PartitionPlan::Domains(rng.gen_range(1..=lans))
        },
    }
}

struct Built {
    sim: Sim<u64>,
    ids: Vec<NodeId>,
    lans: Vec<LanId>,
}

fn build(w: &ArbWorld, seed: u64, workers: usize) -> Built {
    let mut topo = Topology::new();
    let lans: Vec<LanId> = (0..w.lans).map(|_| topo.add_lan()).collect();
    let mut sim: Sim<u64> = Sim::new_partitioned(w.cfg.clone(), topo, seed, w.plan);
    sim.set_workers(workers);
    let ids: Vec<NodeId> = (0..w.lans * w.nodes_per_lan)
        .map(|i| sim.add_node(lans[i % w.lans], Box::<Probe>::default()))
        .collect();
    Built { sim, ids, lans }
}

/// One scripted burst: `from` unicasts `count` consecutively numbered
/// messages to `to` at time `at`.
#[derive(Clone)]
struct Burst {
    at: u64,
    from: usize,
    to: usize,
    count: u32,
    marker: u32,
}

fn arb_burst(rng: &mut Rng, nodes: usize) -> Burst {
    Burst {
        at: rng.gen_range(0..2_000u64),
        from: rng.gen_range(0..nodes),
        to: rng.gen_range(0..nodes),
        count: rng.gen_range(1..6u32),
        marker: rng.gen_range(0..1_000u32),
    }
}

/// Everything observable about a finished run.
type WorldState = (u64, u64, Vec<Vec<(u64, NodeId, u64)>>, Vec<Vec<(u64, u64)>>, Vec<u64>);

fn run_world(w: &ArbWorld, bursts: &[Burst], faulty: bool, seed: u64, workers: usize) -> WorldState {
    let mut b = build(w, seed, workers);
    if faulty {
        // Fault windows on two LANs plus a mid-run crash/revive of node 0,
        // scheduled through the control plane (applied at barriers).
        let prof = FaultProfile { loss: 0.1, duplicate: 0.15, corrupt: 0.0, reorder_jitter: 7 };
        b.sim.schedule(100, ControlAction::SetLanFaults(b.lans[0], prof));
        b.sim.schedule(150, ControlAction::SetWanFaults(prof));
        b.sim.schedule(900, ControlAction::Crash(b.ids[0]));
        b.sim.schedule(1_400, ControlAction::Revive(b.ids[0]));
        b.sim.schedule(1_700, ControlAction::SetLanFaults(b.lans[0], FaultProfile::default()));
    }
    let mut sorted: Vec<Burst> = bursts.to_vec();
    sorted.sort_by_key(|x| x.at);
    for burst in &sorted {
        if b.sim.now() < burst.at {
            b.sim.run_until(burst.at);
        }
        let target = b.ids[burst.to];
        b.sim.with_node::<Probe>(b.ids[burst.from], |_, ctx| {
            for i in 0..burst.count {
                let payload = (u64::from(burst.marker) << 32) | u64::from(i << 2);
                ctx.send(Destination::Unicast(target), payload, 64, "burst");
            }
            ctx.set_timer(u64::from(burst.count) * 3 + 1, u64::from(burst.marker));
        });
    }
    let end = b.sim.run_to_quiescence(1_000_000);
    let received =
        b.ids.iter().map(|&id| b.sim.handler::<Probe>(id).unwrap().received.clone()).collect();
    let timers =
        b.ids.iter().map(|&id| b.sim.handler::<Probe>(id).unwrap().timers.clone()).collect();
    let st = b.sim.stats();
    (
        end,
        b.sim.events_processed(),
        received,
        timers,
        vec![
            st.total_messages(),
            st.total_bytes(),
            st.delivered_messages,
            st.dropped_messages,
            st.duplicated_messages,
            st.reorder_delayed_messages,
        ],
    )
}

/// Worker-count invariance over randomized faulty worlds: 1, 2, and 5
/// workers must produce byte-identical observable state.
#[test]
fn randomized_worlds_are_worker_count_invariant() {
    Checker::new("randomized_worlds_are_worker_count_invariant").cases(24).run(|rng| {
        let w = arb_world(rng, true);
        let nodes = w.lans * w.nodes_per_lan;
        let bursts = gen::vec_of(rng, 1, 20, |r| arb_burst(r, nodes));
        let seed = rng.next_u64();
        let base = run_world(&w, &bursts, true, seed, 1);
        for workers in [2, 5] {
            let got = run_world(&w, &bursts, true, seed, workers);
            assert_eq!(got, base, "workers={workers} diverged from workers=1");
        }
    });
}

/// With deterministic latency, the cross-LAN mailbox handoff preserves
/// `(at, seq)` dispatch order: per (sender → receiver) pair the bursts'
/// sequence numbers arrive in send order, and each node's receive log is
/// time-nondecreasing.
#[test]
fn cross_lan_handoff_preserves_send_order() {
    Checker::new("cross_lan_handoff_preserves_send_order").cases(32).run(|rng| {
        let w = arb_world(rng, false);
        let nodes = w.lans * w.nodes_per_lan;
        let bursts = gen::vec_of(rng, 1, 16, |r| arb_burst(r, nodes));
        let (_, _, received, _, stats) = run_world(&w, &bursts, false, rng.next_u64(), 3);
        assert_eq!(stats[3], 0, "no loss configured: nothing may drop");
        for (node, log) in received.iter().enumerate() {
            // Global per-node dispatch order is time-nondecreasing.
            for pair in log.windows(2) {
                assert!(
                    pair[0].0 <= pair[1].0,
                    "node {node}: dispatch went backwards: {pair:?}"
                );
            }
            // Per sender and marker, burst sequence numbers appear in send
            // order (fixed latency ⇒ FIFO per pair, even across domains).
            for &(_, from, _) in log {
                let mut last: Option<(u64, u64)> = None;
                for &(_, f, payload) in log.iter().filter(|&&(_, f, _)| f == from) {
                    let (marker, seq) = (payload >> 32, (payload & 0xFFFF_FFFF) >> 2);
                    if payload & 1 == 0 {
                        if let Some((lm, ls)) = last {
                            if lm == marker {
                                assert!(
                                    ls <= seq,
                                    "sender {f} marker {marker}: seq {seq} overtook {ls}"
                                );
                            }
                        }
                        last = Some((marker, seq));
                    }
                }
            }
        }
    });
}

/// A plan that resolves to one domain must equal the legacy engine exactly —
/// same receive logs, same stats — because it *is* the legacy engine.
#[test]
fn single_domain_plan_equals_legacy_engine() {
    Checker::new("single_domain_plan_equals_legacy_engine").cases(16).run(|rng| {
        let mut w = arb_world(rng, true);
        w.plan = PartitionPlan::Domains(1);
        let nodes = w.lans * w.nodes_per_lan;
        let bursts = gen::vec_of(rng, 1, 12, |r| arb_burst(r, nodes));
        let seed = rng.next_u64();
        let partitioned = run_world(&w, &bursts, true, seed, 4);
        w.plan = PartitionPlan::Single;
        let legacy = run_world(&w, &bursts, true, seed, 1);
        assert_eq!(partitioned, legacy);
    });
}
