//! Subsumption reasoning over a class taxonomy.
//!
//! "In semantics-enabled registries, inference mechanisms can be used to find
//! matches based on a subtype hierarchy (e.g. a Radar is a kind of Sensor)."
//! The index precomputes the reflexive-transitive closure of `subClassOf` as
//! one bitset per class, so every subsumption test during matchmaking is a
//! single bit probe, and also records minimal up-distances for ranking.

use crate::bitset::BitSet;
use crate::ontology::{ClassId, Ontology};

/// Precomputed subsumption closure for one ontology.
#[derive(Debug)]
pub struct SubsumptionIndex {
    /// Per class: the set of its ancestors, itself included.
    ancestors: Vec<BitSet>,
    /// Per class: the set of its descendants, itself included.
    descendants: Vec<BitSet>,
    /// Per class: depth = length of the longest parent chain to a root.
    depth: Vec<u32>,
    n: usize,
}

impl SubsumptionIndex {
    /// Builds the closure. Classes are ordered parents-before-children by
    /// [`Ontology`] construction, so one forward pass suffices.
    pub fn build(ontology: &Ontology) -> Self {
        let n = ontology.len();
        let mut ancestors: Vec<BitSet> = Vec::with_capacity(n);
        let mut depth = vec![0u32; n];
        for id in ontology.classes() {
            let mut set = BitSet::with_capacity(n);
            set.insert(id.index());
            let mut d = 0;
            for &p in ontology.parents(id) {
                debug_assert!(p.index() < id.index(), "parents precede children");
                let parent_set = ancestors[p.index()].clone();
                set.union_with(&parent_set);
                d = d.max(depth[p.index()] + 1);
            }
            depth[id.index()] = d;
            ancestors.push(set);
        }
        // Descendant closures: the dual reverse pass. Children always have
        // larger indices than their parents, so walking ids in descending
        // order sees every child's full closure before its parents need it.
        let mut descendants: Vec<BitSet> = (0..n)
            .map(|i| {
                let mut set = BitSet::with_capacity(n);
                set.insert(i);
                set
            })
            .collect();
        for i in (0..n).rev() {
            for &c in ontology.children(ClassId(i as u32)) {
                debug_assert!(c.index() > i, "children follow parents");
                let child_set = descendants[c.index()].clone();
                descendants[i].union_with(&child_set);
            }
        }
        Self { ancestors, descendants, depth, n }
    }

    /// Number of classes covered.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// True when the id names a class of this ontology. Wire input can carry
    /// any `u32`; registries use this to reject adverts referencing unknown
    /// concepts at publish time instead of storing them silently unmatched.
    #[inline]
    pub fn contains(&self, c: ClassId) -> bool {
        c.index() < self.n
    }

    /// Reflexive subsumption: true when `sub` ⊑ `sup` (every `sub` is a
    /// `sup`), including `sub == sup`.
    ///
    /// Total over all of `ClassId`: ids outside this ontology (they arrive
    /// from the wire, where any `u32` decodes) subsume nothing and are
    /// subsumed by nothing except themselves.
    #[inline]
    pub fn is_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        match self.ancestors.get(sub.index()) {
            Some(set) => set.contains(sup.index()),
            None => sub == sup,
        }
    }

    /// Strict subsumption: `sub` ⊏ `sup`.
    #[inline]
    pub fn is_strict_subclass(&self, sub: ClassId, sup: ClassId) -> bool {
        sub != sup && self.is_subclass(sub, sup)
    }

    /// All ancestors of `c`, itself included. A class outside this ontology
    /// is its own sole ancestor, matching [`SubsumptionIndex::is_subclass`].
    pub fn ancestors(&self, c: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        let known = self.ancestors.get(c.index());
        let unknown = known.is_none().then_some(c);
        known
            .into_iter()
            .flat_map(|set| set.iter().map(|i| ClassId(i as u32)))
            .chain(unknown)
    }

    /// All descendants of `c`, itself included — the dual of
    /// [`SubsumptionIndex::ancestors`]. A class outside this ontology is its
    /// own sole descendant.
    pub fn descendants(&self, c: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        let known = self.descendants.get(c.index());
        let unknown = known.is_none().then_some(c);
        known
            .into_iter()
            .flat_map(|set| set.iter().map(|i| ClassId(i as u32)))
            .chain(unknown)
    }

    /// Every class related to `c` in either direction: ancestors ∪
    /// descendants, `c` included, in ascending id order. This is the complete
    /// set of classes `x` with `related(x, c)`, which candidate-generation
    /// indexes rely on: any concept that can subsume or be subsumed by `c`
    /// appears here. Classes outside this ontology relate only to themselves.
    pub fn related_concepts(&self, c: ClassId) -> impl Iterator<Item = ClassId> + '_ {
        let known = self
            .ancestors
            .get(c.index())
            .zip(self.descendants.get(c.index()));
        let unknown = known.is_none().then_some(c);
        known
            .into_iter()
            .flat_map(|(anc, desc)| anc.union_iter(desc).map(|i| ClassId(i as u32)))
            .chain(unknown)
    }

    /// Depth of `c` (longest chain to a root; roots have depth 0). Classes
    /// outside this ontology count as roots of their own trivial hierarchy.
    pub fn depth(&self, c: ClassId) -> u32 {
        self.depth.get(c.index()).copied().unwrap_or(0)
    }

    /// True when the classes are related in either direction.
    pub fn related(&self, a: ClassId, b: ClassId) -> bool {
        self.is_subclass(a, b) || self.is_subclass(b, a)
    }

    /// A coarse semantic distance for ranking: 0 for equal classes, else
    /// `|depth(a) - depth(b)|` when related (chain length between them along
    /// the longest-chain depth metric), else `None`.
    pub fn up_distance(&self, a: ClassId, b: ClassId) -> Option<u32> {
        if self.related(a, b) {
            Some(self.depth(a).abs_diff(self.depth(b)))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (Ontology, [ClassId; 5]) {
        // Thing
        //  ├─ Sensor ── Radar ─┐
        //  └─ Weapon ──────────┴─ RadarGuidedWeapon (multiple inheritance)
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        let radar = o.class("Radar", &[sensor]);
        let weapon = o.class("Weapon", &[thing]);
        let rgw = o.class("RadarGuidedWeapon", &[radar, weapon]);
        (o, [thing, sensor, radar, weapon, rgw])
    }

    #[test]
    fn reflexive_and_transitive() {
        let (o, [thing, sensor, radar, weapon, rgw]) = diamond();
        let idx = SubsumptionIndex::build(&o);
        assert!(idx.is_subclass(radar, radar), "reflexive");
        assert!(idx.is_subclass(radar, sensor));
        assert!(idx.is_subclass(radar, thing), "transitive");
        assert!(!idx.is_subclass(sensor, radar), "not symmetric");
        assert!(!idx.is_subclass(weapon, sensor));
        assert!(idx.is_subclass(rgw, sensor) && idx.is_subclass(rgw, weapon), "diamond");
        assert!(idx.is_strict_subclass(radar, sensor));
        assert!(!idx.is_strict_subclass(radar, radar));
    }

    #[test]
    fn depths_and_distance() {
        let (o, [thing, sensor, radar, _weapon, rgw]) = diamond();
        let idx = SubsumptionIndex::build(&o);
        assert_eq!(idx.depth(thing), 0);
        assert_eq!(idx.depth(sensor), 1);
        assert_eq!(idx.depth(radar), 2);
        assert_eq!(idx.depth(rgw), 3);
        assert_eq!(idx.up_distance(radar, radar), Some(0));
        assert_eq!(idx.up_distance(radar, thing), Some(2));
        assert_eq!(idx.up_distance(thing, radar), Some(2), "symmetric");
    }

    #[test]
    fn unrelated_classes_have_no_distance() {
        let (o, [_, sensor, _, weapon, _]) = diamond();
        let idx = SubsumptionIndex::build(&o);
        assert!(!idx.related(sensor, weapon));
        assert_eq!(idx.up_distance(sensor, weapon), None);
    }

    #[test]
    fn ancestors_iteration() {
        let (o, [thing, sensor, radar, _, _]) = diamond();
        let idx = SubsumptionIndex::build(&o);
        let anc: Vec<ClassId> = idx.ancestors(radar).collect();
        assert_eq!(anc, vec![thing, sensor, radar]);
    }

    #[test]
    fn descendants_iteration() {
        let (o, [thing, sensor, radar, weapon, rgw]) = diamond();
        let idx = SubsumptionIndex::build(&o);
        let desc: Vec<ClassId> = idx.descendants(sensor).collect();
        assert_eq!(desc, vec![sensor, radar, rgw]);
        let desc: Vec<ClassId> = idx.descendants(thing).collect();
        assert_eq!(desc, vec![thing, sensor, radar, weapon, rgw]);
        assert_eq!(idx.descendants(rgw).collect::<Vec<_>>(), vec![rgw], "leaf");
    }

    #[test]
    fn descendants_dual_to_ancestors() {
        let (o, _) = diamond();
        let idx = SubsumptionIndex::build(&o);
        for a in o.classes() {
            for b in o.classes() {
                assert_eq!(
                    idx.ancestors(a).any(|x| x == b),
                    idx.descendants(b).any(|x| x == a),
                    "b ∈ ancestors(a) ⇔ a ∈ descendants(b) for {a:?},{b:?}"
                );
            }
        }
    }

    #[test]
    fn related_concepts_is_exactly_the_related_set() {
        let (o, [_, sensor, radar, weapon, _]) = diamond();
        let idx = SubsumptionIndex::build(&o);
        for c in o.classes() {
            let rel: Vec<ClassId> = idx.related_concepts(c).collect();
            let expect: Vec<ClassId> =
                o.classes().filter(|&x| idx.related(x, c)).collect();
            assert_eq!(rel, expect, "related_concepts({c:?}) in ascending order");
        }
        assert!(idx.related_concepts(radar).any(|x| x == sensor));
        assert!(!idx.related_concepts(radar).any(|x| x == weapon));
    }

    #[test]
    fn empty_ontology() {
        let idx = SubsumptionIndex::build(&Ontology::new());
        assert!(idx.is_empty());
    }

    #[test]
    fn out_of_ontology_ids_are_isolated_not_panics() {
        // Wire messages may carry any u32 as a ClassId; the index must stay
        // total. (Latent seed bug: indexing panicked, so one malformed
        // advert could crash a registry node.)
        let (o, [thing, ..]) = diamond();
        let idx = SubsumptionIndex::build(&o);
        let ghost = ClassId(o.len() as u32);
        let ghost2 = ClassId(o.len() as u32 + 7);
        assert!(idx.is_subclass(ghost, ghost), "reflexivity holds everywhere");
        assert!(!idx.is_subclass(ghost, thing));
        assert!(!idx.is_subclass(thing, ghost));
        assert!(!idx.is_subclass(ghost, ghost2));
        assert_eq!(idx.ancestors(ghost).collect::<Vec<_>>(), vec![ghost]);
        assert_eq!(idx.descendants(ghost).collect::<Vec<_>>(), vec![ghost]);
        assert_eq!(idx.related_concepts(ghost).collect::<Vec<_>>(), vec![ghost]);
        assert_eq!(idx.depth(ghost), 0);
        assert_eq!(idx.up_distance(ghost, thing), None);
        assert_eq!(idx.up_distance(ghost, ghost), Some(0));
    }
}
