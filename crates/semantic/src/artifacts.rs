//! Artifact hosting (paper §4.6 "Registry Support").
//!
//! "Service discovery should work in environments disconnected from the
//! Internet … additional artifacts needed by clients to evaluate or use
//! services (e.g. XML schema, ontologies) must be obtained from elsewhere.
//! Such functionality could be provided by the discovery service." Registries
//! therefore host named artifacts that clients can fetch in-band.

use std::collections::HashMap;

/// Identifies an artifact by name and version.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ArtifactId {
    pub name: String,
    pub version: u32,
}

impl ArtifactId {
    pub fn new(name: impl Into<String>, version: u32) -> Self {
        Self { name: name.into(), version }
    }
}

/// What kind of supporting artifact this is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ArtifactKind {
    /// A serialized ontology/taxonomy.
    Ontology,
    /// An ontology mapping between vocabularies (mediation support).
    OntologyMapping,
    /// An XML-schema-like payload description.
    Schema,
    /// A transformation (XSLT/XQuery analogue).
    Transformation,
}

/// One hosted artifact. `body` stands in for the serialized bytes; its length
/// is the wire size when shipped.
#[derive(Clone, PartialEq, Debug)]
pub struct Artifact {
    pub id: ArtifactId,
    pub kind: ArtifactKind,
    pub body: Vec<u8>,
}

/// A registry-local artifact store with latest-version lookup.
#[derive(Default, Debug)]
pub struct ArtifactRepository {
    by_id: HashMap<ArtifactId, Artifact>,
    latest: HashMap<String, u32>,
}

impl ArtifactRepository {
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores an artifact; replaces any artifact with the same id. Returns
    /// `true` when this became the newest version of its name.
    pub fn put(&mut self, artifact: Artifact) -> bool {
        let name = artifact.id.name.clone();
        let version = artifact.id.version;
        self.by_id.insert(artifact.id.clone(), artifact);
        let newest = self.latest.entry(name).or_insert(version);
        if version >= *newest {
            *newest = version;
            true
        } else {
            false
        }
    }

    /// Fetches an exact version.
    pub fn get(&self, id: &ArtifactId) -> Option<&Artifact> {
        self.by_id.get(id)
    }

    /// Fetches the newest version of a name.
    pub fn get_latest(&self, name: &str) -> Option<&Artifact> {
        let version = *self.latest.get(name)?;
        self.by_id.get(&ArtifactId::new(name, version))
    }

    /// Number of stored artifacts (all versions).
    pub fn len(&self) -> usize {
        self.by_id.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_id.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn art(name: &str, version: u32, size: usize) -> Artifact {
        Artifact { id: ArtifactId::new(name, version), kind: ArtifactKind::Ontology, body: vec![0; size] }
    }

    #[test]
    fn put_get_latest() {
        let mut repo = ArtifactRepository::new();
        assert!(repo.put(art("nato-sensors", 1, 100)));
        assert!(repo.put(art("nato-sensors", 3, 120)));
        assert!(!repo.put(art("nato-sensors", 2, 110)), "older version is not newest");
        assert_eq!(repo.len(), 3);
        assert_eq!(repo.get_latest("nato-sensors").unwrap().id.version, 3);
        assert_eq!(repo.get(&ArtifactId::new("nato-sensors", 2)).unwrap().body.len(), 110);
        assert!(repo.get_latest("missing").is_none());
    }
}
