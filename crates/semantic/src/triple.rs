//! An indexed triple store with pattern queries.
//!
//! Registries in the architecture host semantic artifacts — ontologies,
//! service descriptions — as triples. The store keeps three orderings
//! (SPO, POS, OSP) so any single- or double-bound pattern is a range scan.

use std::collections::BTreeSet;
use std::ops::Bound;

use crate::interner::TermId;

/// One subject–predicate–object statement over interned terms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Triple {
    pub s: TermId,
    pub p: TermId,
    pub o: TermId,
}

impl Triple {
    pub fn new(s: TermId, p: TermId, o: TermId) -> Self {
        Self { s, p, o }
    }
}

/// A query pattern: `None` positions are wildcards.
#[derive(Clone, Copy, Default, Debug)]
pub struct TriplePattern {
    pub s: Option<TermId>,
    pub p: Option<TermId>,
    pub o: Option<TermId>,
}

impl TriplePattern {
    pub fn any() -> Self {
        Self::default()
    }

    pub fn with_s(mut self, s: TermId) -> Self {
        self.s = Some(s);
        self
    }

    pub fn with_p(mut self, p: TermId) -> Self {
        self.p = Some(p);
        self
    }

    pub fn with_o(mut self, o: TermId) -> Self {
        self.o = Some(o);
        self
    }

    /// True when `t` matches every bound position.
    pub fn matches(&self, t: &Triple) -> bool {
        self.s.is_none_or(|s| s == t.s)
            && self.p.is_none_or(|p| p == t.p)
            && self.o.is_none_or(|o| o == t.o)
    }
}

const MIN: TermId = TermId(0);
const MAX: TermId = TermId(u32::MAX);

/// Triple store with SPO/POS/OSP orderings.
#[derive(Default, Debug)]
pub struct TripleStore {
    spo: BTreeSet<(TermId, TermId, TermId)>,
    pos: BTreeSet<(TermId, TermId, TermId)>,
    osp: BTreeSet<(TermId, TermId, TermId)>,
}

impl TripleStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts a triple; returns `false` if it was already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        let fresh = self.spo.insert((t.s, t.p, t.o));
        if fresh {
            self.pos.insert((t.p, t.o, t.s));
            self.osp.insert((t.o, t.s, t.p));
        }
        fresh
    }

    /// Removes a triple; returns `true` if it was present.
    pub fn remove(&mut self, t: Triple) -> bool {
        let had = self.spo.remove(&(t.s, t.p, t.o));
        if had {
            self.pos.remove(&(t.p, t.o, t.s));
            self.osp.remove(&(t.o, t.s, t.p));
        }
        had
    }

    pub fn contains(&self, t: Triple) -> bool {
        self.spo.contains(&(t.s, t.p, t.o))
    }

    pub fn len(&self) -> usize {
        self.spo.len()
    }

    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// All triples matching `pattern`, using the best index for the bound
    /// positions (a full scan only for the all-wildcard pattern).
    pub fn query<'a>(&'a self, pattern: TriplePattern) -> Box<dyn Iterator<Item = Triple> + 'a> {
        match (pattern.s, pattern.p, pattern.o) {
            (Some(s), Some(p), Some(o)) => {
                let t = Triple::new(s, p, o);
                Box::new(self.contains(t).then_some(t).into_iter())
            }
            (Some(s), p, _) => {
                let lo = (s, p.unwrap_or(MIN), MIN);
                let hi = (s, p.unwrap_or(MAX), MAX);
                Box::new(
                    self.spo
                        .range((Bound::Included(lo), Bound::Included(hi)))
                        .map(|&(s, p, o)| Triple::new(s, p, o))
                        .filter(move |t| pattern.matches(t)),
                )
            }
            (None, Some(p), o) => {
                let lo = (p, o.unwrap_or(MIN), MIN);
                let hi = (p, o.unwrap_or(MAX), MAX);
                Box::new(
                    self.pos
                        .range((Bound::Included(lo), Bound::Included(hi)))
                        .map(|&(p, o, s)| Triple::new(s, p, o)),
                )
            }
            (None, None, Some(o)) => {
                let lo = (o, MIN, MIN);
                let hi = (o, MAX, MAX);
                Box::new(
                    self.osp
                        .range((Bound::Included(lo), Bound::Included(hi)))
                        .map(|&(o, s, p)| Triple::new(s, p, o)),
                )
            }
            (None, None, None) => Box::new(self.spo.iter().map(|&(s, p, o)| Triple::new(s, p, o))),
        }
    }

    /// Count of triples matching `pattern`.
    pub fn count(&self, pattern: TriplePattern) -> usize {
        self.query(pattern).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u32, p: u32, o: u32) -> Triple {
        Triple::new(TermId(s), TermId(p), TermId(o))
    }

    fn store() -> TripleStore {
        let mut st = TripleStore::new();
        st.insert(t(1, 10, 100));
        st.insert(t(1, 10, 101));
        st.insert(t(1, 11, 100));
        st.insert(t(2, 10, 100));
        st.insert(t(3, 12, 102));
        st
    }

    #[test]
    fn insert_is_set_semantics() {
        let mut st = TripleStore::new();
        assert!(st.insert(t(1, 2, 3)));
        assert!(!st.insert(t(1, 2, 3)));
        assert_eq!(st.len(), 1);
        assert!(st.remove(t(1, 2, 3)));
        assert!(!st.remove(t(1, 2, 3)));
        assert!(st.is_empty());
    }

    #[test]
    fn query_by_subject() {
        let st = store();
        let got: Vec<_> = st.query(TriplePattern::any().with_s(TermId(1))).collect();
        assert_eq!(got.len(), 3);
        assert!(got.iter().all(|tr| tr.s == TermId(1)));
    }

    #[test]
    fn query_by_subject_predicate() {
        let st = store();
        let got: Vec<_> = st
            .query(TriplePattern::any().with_s(TermId(1)).with_p(TermId(10)))
            .collect();
        assert_eq!(got, vec![t(1, 10, 100), t(1, 10, 101)]);
    }

    #[test]
    fn query_by_predicate_and_object() {
        let st = store();
        assert_eq!(st.count(TriplePattern::any().with_p(TermId(10))), 3);
        assert_eq!(
            st.count(TriplePattern::any().with_p(TermId(10)).with_o(TermId(100))),
            2
        );
        assert_eq!(st.count(TriplePattern::any().with_o(TermId(100))), 3);
    }

    #[test]
    fn query_subject_object_filters_on_scan() {
        let st = store();
        let got: Vec<_> = st
            .query(TriplePattern::any().with_s(TermId(1)).with_o(TermId(100)))
            .collect();
        assert_eq!(got, vec![t(1, 10, 100), t(1, 11, 100)]);
    }

    #[test]
    fn fully_bound_and_wildcard() {
        let st = store();
        assert_eq!(st.count(TriplePattern::any()), 5);
        assert_eq!(
            st.query(TriplePattern { s: Some(TermId(3)), p: Some(TermId(12)), o: Some(TermId(102)) })
                .count(),
            1
        );
        assert_eq!(
            st.query(TriplePattern { s: Some(TermId(3)), p: Some(TermId(12)), o: Some(TermId(999)) })
                .count(),
            0
        );
    }
}
