//! Class-taxonomy ontologies.
//!
//! The shared semantic model the paper's scenarios standardize ("upper-level
//! ontologies and service taxonomies could be standardized") is modelled as a
//! DAG of named classes. Acyclicity holds by construction: a class may only
//! name already-registered classes as superclasses.

use std::collections::HashMap;
use std::fmt;

use crate::interner::Interner;
use crate::triple::{Triple, TriplePattern, TripleStore};

/// Identifies a class within one [`Ontology`]. Dense from zero.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ClassId(pub u32);

impl ClassId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Errors from ontology construction and import.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OntologyError {
    DuplicateClass(String),
    UnknownParent(String),
    /// Import found subclass edges that do not form a DAG.
    CyclicImport,
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DuplicateClass(n) => write!(f, "class {n:?} already defined"),
            Self::UnknownParent(n) => write!(f, "parent class {n:?} not defined"),
            Self::CyclicImport => write!(f, "imported subclass edges contain a cycle"),
        }
    }
}

impl std::error::Error for OntologyError {}

/// The predicate IRI used when exporting taxonomies to triples.
pub const SUBCLASS_OF: &str = "rdfs:subClassOf";
/// The predicate IRI marking class declarations in the triple export.
pub const IS_CLASS: &str = "rdf:type";
/// The object IRI marking class declarations in the triple export.
pub const CLASS: &str = "rdfs:Class";

/// A named class taxonomy (DAG, possibly multiple roots, multiple
/// inheritance allowed).
#[derive(Default, Debug)]
pub struct Ontology {
    names: Vec<String>,
    by_name: HashMap<String, ClassId>,
    parents: Vec<Vec<ClassId>>,
    children: Vec<Vec<ClassId>>,
}

impl Ontology {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a class under the given (already-registered) superclasses.
    /// An empty `parents` slice makes it a root.
    pub fn add_class(&mut self, name: &str, parents: &[ClassId]) -> Result<ClassId, OntologyError> {
        if self.by_name.contains_key(name) {
            return Err(OntologyError::DuplicateClass(name.to_string()));
        }
        for p in parents {
            if p.index() >= self.names.len() {
                return Err(OntologyError::UnknownParent(format!("#{}", p.0)));
            }
        }
        let id = ClassId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.by_name.insert(name.to_string(), id);
        self.parents.push(parents.to_vec());
        self.children.push(Vec::new());
        for p in parents {
            self.children[p.index()].push(id);
        }
        Ok(id)
    }

    /// Convenience: add a class, panicking on error. For hand-built test and
    /// example taxonomies where errors are bugs.
    pub fn class(&mut self, name: &str, parents: &[ClassId]) -> ClassId {
        self.add_class(name, parents).expect("valid class definition")
    }

    pub fn lookup(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    pub fn name(&self, id: ClassId) -> &str {
        &self.names[id.index()]
    }

    pub fn parents(&self, id: ClassId) -> &[ClassId] {
        &self.parents[id.index()]
    }

    pub fn children(&self, id: ClassId) -> &[ClassId] {
        &self.children[id.index()]
    }

    pub fn len(&self) -> usize {
        self.names.len()
    }

    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All class ids, in definition order.
    pub fn classes(&self) -> impl Iterator<Item = ClassId> {
        (0..self.names.len() as u32).map(ClassId)
    }

    /// Exports the taxonomy as triples (`rdf:type rdfs:Class` declarations
    /// plus `rdfs:subClassOf` edges) — this is what a registry physically
    /// hosts and ships to disconnected clients.
    pub fn to_triples(&self, interner: &mut Interner, store: &mut TripleStore) {
        let p_sub = interner.intern(SUBCLASS_OF);
        let p_type = interner.intern(IS_CLASS);
        let o_class = interner.intern(CLASS);
        for id in self.classes() {
            let s = interner.intern(self.name(id));
            store.insert(Triple::new(s, p_type, o_class));
            for parent in self.parents(id) {
                let o = interner.intern(self.name(*parent));
                store.insert(Triple::new(s, p_sub, o));
            }
        }
    }

    /// Rebuilds an ontology from a triple export. Classes come back in
    /// topological order (parents before children); ids are NOT preserved,
    /// names are. Fails if the edges are cyclic.
    pub fn from_triples(interner: &Interner, store: &TripleStore) -> Result<Self, OntologyError> {
        let (Some(p_sub), Some(p_type), Some(o_class)) =
            (interner.get(SUBCLASS_OF), interner.get(IS_CLASS), interner.get(CLASS))
        else {
            return Ok(Self::new());
        };
        let decls: Vec<&str> = store
            .query(TriplePattern::any().with_p(p_type).with_o(o_class))
            .map(|t| interner.resolve(t.s))
            .collect();
        let mut edges: HashMap<&str, Vec<&str>> = HashMap::new();
        for t in store.query(TriplePattern::any().with_p(p_sub)) {
            edges
                .entry(interner.resolve(t.s))
                .or_default()
                .push(interner.resolve(t.o));
        }
        // Kahn's algorithm over the declared classes.
        let mut indegree: HashMap<&str, usize> =
            decls.iter().map(|&n| (n, edges.get(n).map_or(0, Vec::len))).collect();
        let mut dependents: HashMap<&str, Vec<&str>> = HashMap::new();
        for (&child, parents) in &edges {
            for &parent in parents {
                dependents.entry(parent).or_default().push(child);
            }
        }
        let mut ready: Vec<&str> = {
            let mut r: Vec<&str> =
                indegree.iter().filter(|&(_, &d)| d == 0).map(|(&n, _)| n).collect();
            r.sort_unstable();
            r
        };
        let mut ont = Self::new();
        let mut placed = 0usize;
        while let Some(name) = ready.pop() {
            let parent_ids: Vec<ClassId> = edges
                .get(name)
                .map(|ps| ps.iter().filter_map(|p| ont.lookup(p)).collect())
                .unwrap_or_default();
            ont.add_class(name, &parent_ids)?;
            placed += 1;
            if let Some(deps) = dependents.get(name) {
                let mut newly: Vec<&str> = Vec::new();
                for &d in deps {
                    if let Some(cnt) = indegree.get_mut(d) {
                        *cnt -= 1;
                        if *cnt == 0 {
                            newly.push(d);
                        }
                    }
                }
                newly.sort_unstable();
                ready.extend(newly);
            }
        }
        if placed != decls.len() {
            return Err(OntologyError::CyclicImport);
        }
        Ok(ont)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sensors() -> Ontology {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        o.class("Radar", &[sensor]);
        o.class("Sonar", &[sensor]);
        o
    }

    #[test]
    fn basic_structure() {
        let o = sensors();
        let sensor = o.lookup("Sensor").unwrap();
        let radar = o.lookup("Radar").unwrap();
        assert_eq!(o.name(radar), "Radar");
        assert_eq!(o.parents(radar), &[sensor]);
        assert_eq!(o.children(sensor).len(), 2);
        assert_eq!(o.len(), 4);
    }

    #[test]
    fn duplicate_and_unknown_parent_errors() {
        let mut o = sensors();
        assert!(matches!(o.add_class("Radar", &[]), Err(OntologyError::DuplicateClass(_))));
        assert!(matches!(
            o.add_class("X", &[ClassId(99)]),
            Err(OntologyError::UnknownParent(_))
        ));
    }

    #[test]
    fn multiple_inheritance() {
        let mut o = Ontology::new();
        let a = o.class("A", &[]);
        let b = o.class("B", &[]);
        let c = o.class("C", &[a, b]);
        assert_eq!(o.parents(c), &[a, b]);
    }

    #[test]
    fn triple_round_trip_preserves_structure() {
        let o = sensors();
        let mut interner = Interner::new();
        let mut store = TripleStore::new();
        o.to_triples(&mut interner, &mut store);
        // 4 type declarations + 3 subclass edges.
        assert_eq!(store.len(), 7);

        let back = Ontology::from_triples(&interner, &store).unwrap();
        assert_eq!(back.len(), 4);
        let radar = back.lookup("Radar").unwrap();
        let sensor = back.lookup("Sensor").unwrap();
        assert_eq!(back.parents(radar), &[sensor]);
        let thing = back.lookup("Thing").unwrap();
        assert_eq!(back.parents(sensor), &[thing]);
    }

    #[test]
    fn cyclic_import_rejected() {
        let mut interner = Interner::new();
        let mut store = TripleStore::new();
        let p_sub = interner.intern(SUBCLASS_OF);
        let p_type = interner.intern(IS_CLASS);
        let o_class = interner.intern(CLASS);
        let a = interner.intern("A");
        let b = interner.intern("B");
        store.insert(Triple::new(a, p_type, o_class));
        store.insert(Triple::new(b, p_type, o_class));
        store.insert(Triple::new(a, p_sub, b));
        store.insert(Triple::new(b, p_sub, a));
        assert!(matches!(
            Ontology::from_triples(&interner, &store),
            Err(OntologyError::CyclicImport)
        ));
    }

    #[test]
    fn empty_store_imports_empty_ontology() {
        let interner = Interner::new();
        let store = TripleStore::new();
        assert!(Ontology::from_triples(&interner, &store).unwrap().is_empty());
    }
}
