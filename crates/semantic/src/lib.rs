//! # sds-semantic — the Semantic Web Services substrate
//!
//! The paper assumes "Semantic Web Services allow clients to engage newly
//! encountered services, given a shared semantic model, or ontology". Rust
//! has no mature OWL reasoner, so this crate implements the closest synthetic
//! equivalent exercising the same code paths the architecture needs:
//!
//! * a string [`Interner`] and an indexed [`TripleStore`] (SPO/POS/OSP) with
//!   pattern queries — the RDF-ish storage layer registries keep ontologies
//!   and descriptions in;
//! * an [`Ontology`]: a class taxonomy (DAG of named classes) that can be
//!   round-tripped through the triple store, standing in for shared
//!   "upper-level ontologies and service taxonomies";
//! * a [`SubsumptionIndex`]: precomputed reflexive-transitive subsumption
//!   closure (bitsets), answering "a Radar is a kind of Sensor" queries in
//!   O(1) — the inference the paper expects semantics-enabled registries to
//!   perform;
//! * OWL-S-profile-like [`ServiceProfile`]s / [`ServiceRequest`]s (category,
//!   inputs, outputs, QoS attributes);
//! * a Paolucci-style [`Matchmaker`] with degrees of match
//!   (Exact ≻ PlugIn ≻ Subsumes ≻ Fail) and ranked selection, used by
//!   registries for fine-grained service matching and query response control;
//! * an [`ArtifactRepository`] hosting ontologies/schemas for clients cut off
//!   from the Internet (paper §4.6 "Registry Support").

mod artifacts;
mod bitset;
mod composition;
mod interner;
mod matchmaker;
mod mediation;
mod ontology;
mod profile;
mod reasoner;
mod triple;

pub use artifacts::{Artifact, ArtifactId, ArtifactKind, ArtifactRepository};
pub use bitset::BitSet;
pub use interner::{Interner, TermId};
pub use composition::{compose, CompositionPlan};
pub use matchmaker::{match_concept, match_request, Degree, MatchResult, Matchmaker};
pub use mediation::{ClassMapping, Mediator};
pub use ontology::{ClassId, Ontology, OntologyError};
pub use profile::{QosConstraint, QosKey, QosValue, ServiceProfile, ServiceRequest};
pub use reasoner::SubsumptionIndex;
pub use triple::{Triple, TriplePattern, TripleStore};
