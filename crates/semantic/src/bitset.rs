//! A compact fixed-capacity bit set used for subsumption closures.

/// Fixed-capacity bit set over `u64` words. Grows only via
/// [`BitSet::with_capacity`]; out-of-range reads return `false`.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates a set able to hold bits `0..capacity`, all clear.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { words: vec![0; capacity.div_ceil(64)] }
    }

    /// Sets bit `i`. Panics if `i` is beyond the capacity.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    /// True when bit `i` is set. Out-of-range bits read as clear.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.words.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
    }

    /// Unions `other` into `self`; returns `true` when any new bit was set.
    /// The sets must have the same capacity.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        debug_assert_eq!(self.words.len(), other.words.len());
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of set bits.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterates the indices of set bits in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| iter_word(wi, w))
    }

    /// Iterates the indices set in `self` OR `other` in ascending order,
    /// without materializing the union. The sets must have the same capacity.
    pub fn union_iter<'a>(&'a self, other: &'a BitSet) -> impl Iterator<Item = usize> + 'a {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words
            .iter()
            .zip(other.words.iter())
            .enumerate()
            .flat_map(|(wi, (&a, &b))| iter_word(wi, a | b))
    }
}

/// Iterates the set bits of one word at word index `wi`.
fn iter_word(wi: usize, w: u64) -> impl Iterator<Item = usize> {
    let mut bits = w;
    std::iter::from_fn(move || {
        if bits == 0 {
            None
        } else {
            let tz = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(wi * 64 + tz)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_len() {
        let mut s = BitSet::with_capacity(130);
        assert!(s.is_empty());
        s.insert(0);
        s.insert(63);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(63) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1) && !s.contains(128));
        assert!(!s.contains(100_000), "out of range reads as clear");
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
    }

    #[test]
    fn union_reports_change() {
        let mut a = BitSet::with_capacity(80);
        let mut b = BitSet::with_capacity(80);
        b.insert(70);
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b), "second union adds nothing");
        assert!(a.contains(70));
    }
}
