//! Service composition planning.
//!
//! "To reduce the load on limited devices, service selection, mediator
//! selection, **composition** and reasoning support in registries may be
//! needed" (paper §4.3). When no single service satisfies a request, a
//! registry can propose a *chain*: service A's outputs feed service B's
//! inputs until the requested outputs are producible.
//!
//! The planner is forward chaining over the subsumption index (a relaxed
//! planning-graph reachability pass) followed by a backward extraction of
//! the steps actually needed. Concept satisfaction is deliverability: an
//! available concept `A` satisfies a needed concept `N` when `A ⊑ N`
//! (what you hold *is a* N).

use crate::matchmaker::Degree;
use crate::ontology::ClassId;
use crate::profile::{QosConstraint, ServiceProfile, ServiceRequest};
use crate::reasoner::SubsumptionIndex;

/// A proposed chain of services, in execution order, with the level at
/// which each became applicable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CompositionPlan {
    /// Indices into the candidate profile slice, in execution order.
    pub steps: Vec<usize>,
}

impl CompositionPlan {
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

fn satisfies(idx: &SubsumptionIndex, available: &[ClassId], needed: ClassId) -> bool {
    available.iter().any(|&a| idx.is_subclass(a, needed))
}

fn qos_ok(profile: &ServiceProfile, constraints: &[QosConstraint]) -> bool {
    constraints.iter().all(|c| profile.qos_value(c.key).is_some_and(|v| c.accepts(v)))
}

/// Finds a service chain answering `request` from `profiles`, or `None`.
///
/// Semantics:
/// * the chain may use each profile at most once and at most `max_depth`
///   chaining levels;
/// * a profile is applicable at a level when all its inputs are satisfied by
///   the request's `provided_inputs` plus outputs of earlier levels;
/// * the goal is reached when every requested output is satisfied;
/// * the request's category (if any) must subsume the category of at least
///   one step — the chain as a whole must "be" the kind of service asked
///   for;
/// * QoS constraints apply to every step (weakest-link, like matching).
///
/// A single-service plan is returned when one profile suffices, so this
/// strictly generalizes plain matching on the I/O level.
///
/// ```
/// use sds_semantic::{compose, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
///
/// let mut o = Ontology::new();
/// let aoi = o.class("AreaOfInterest", &[]);
/// let raw = o.class("RawData", &[]);
/// let track = o.class("Track", &[]);
/// let svc = o.class("Service", &[]);
/// let idx = SubsumptionIndex::build(&o);
///
/// let profiles = vec![
///     ServiceProfile::new("sensor", svc).with_inputs(&[aoi]).with_outputs(&[raw]),
///     ServiceProfile::new("fusion", svc).with_inputs(&[raw]).with_outputs(&[track]),
/// ];
/// let req = ServiceRequest::default().with_outputs(&[track]).with_provided_inputs(&[aoi]);
/// let plan = compose(&idx, &req, &profiles, 4).expect("two-step chain");
/// assert_eq!(plan.steps, vec![0, 1]);
/// ```
pub fn compose(
    idx: &SubsumptionIndex,
    request: &ServiceRequest,
    profiles: &[ServiceProfile],
    max_depth: usize,
) -> Option<CompositionPlan> {
    // Forward reachability: which profiles fire, at which level, and what
    // concepts become available.
    let mut available: Vec<ClassId> = request.provided_inputs.clone();
    let mut fired: Vec<Option<usize>> = vec![None; profiles.len()]; // level fired
    let mut level = 0usize;
    loop {
        if request.outputs.iter().all(|&o| satisfies(idx, &available, o)) && level > 0 {
            break;
        }
        if level >= max_depth {
            // Also allow goal-check before any firing for output-less
            // requests (handled below).
            break;
        }
        let mut fired_any = false;
        for (i, p) in profiles.iter().enumerate() {
            if fired[i].is_some() || !qos_ok(p, &request.qos) {
                continue;
            }
            let applicable = p.inputs.iter().all(|&inp| satisfies(idx, &available, inp));
            if applicable {
                fired[i] = Some(level);
                fired_any = true;
            }
        }
        if !fired_any {
            break;
        }
        for (i, p) in profiles.iter().enumerate() {
            if fired[i] == Some(level) {
                available.extend_from_slice(&p.outputs);
            }
        }
        level += 1;
    }

    // Goal reachable?
    if !request.outputs.iter().all(|&o| satisfies(idx, &available, o)) {
        return None;
    }

    // Backward extraction: start from the concepts needed for the goal and
    // pull in producers level by level.
    let mut needed: Vec<ClassId> = request.outputs.clone();
    let mut chosen: Vec<usize> = Vec::new();
    let provided = &request.provided_inputs;
    for lvl in (0..level).rev() {
        // Which needed concepts are not already satisfied by raw inputs or
        // by outputs of strictly earlier levels?
        let earlier_available: Vec<ClassId> = provided
            .iter()
            .copied()
            .chain(
                profiles
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| fired[*i].is_some_and(|l| l < lvl))
                    .flat_map(|(_, p)| p.outputs.iter().copied()),
            )
            .collect();
        let missing: Vec<ClassId> = needed
            .iter()
            .copied()
            .filter(|&n| !satisfies(idx, &earlier_available, n))
            .collect();
        if missing.is_empty() {
            continue;
        }
        // Choose level-`lvl` producers covering the missing concepts.
        for &m in &missing {
            let producer = profiles.iter().enumerate().find(|(i, p)| {
                fired[*i] == Some(lvl)
                    && !chosen.contains(i)
                    && p.outputs.iter().any(|&o| idx.is_subclass(o, m))
            });
            if let Some((i, p)) = producer {
                chosen.push(i);
                needed.extend_from_slice(&p.inputs);
            } else if !chosen.iter().any(|&c| {
                fired[c] == Some(lvl) && profiles[c].outputs.iter().any(|&o| idx.is_subclass(o, m))
            }) {
                // No producer at this level; an earlier level covers it.
                continue;
            }
        }
    }
    chosen.sort_by_key(|&i| fired[i]);

    // Category constraint: some step must be of the requested kind.
    if let Some(cat) = request.category {
        let is_kind =
            |i: usize| crate::matchmaker::match_concept(idx, cat, profiles[i].category) != Degree::Fail;
        if chosen.is_empty() {
            // Category-only request (or outputs already in hand): pick one
            // applicable profile of the right kind.
            let i = (0..profiles.len()).find(|&i| fired[i].is_some() && is_kind(i))?;
            chosen.push(i);
        } else if !chosen.iter().any(|&i| is_kind(i)) {
            return None;
        }
    }

    if chosen.is_empty() && !request.outputs.is_empty() {
        // Outputs were satisfiable directly from provided inputs — an empty
        // plan; report it as such.
        return Some(CompositionPlan { steps: Vec::new() });
    }
    Some(CompositionPlan { steps: chosen })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Ontology;
    use crate::profile::QosKey;

    struct World {
        idx: SubsumptionIndex,
        aoi: ClassId,
        raw: ClassId,
        radar_raw: ClassId,
        track: ClassId,
        threat: ClassId,
        svc: ClassId,
        sensor_svc: ClassId,
        fusion_svc: ClassId,
        assess_svc: ClassId,
    }

    fn world() -> World {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let aoi = o.class("AreaOfInterest", &[thing]);
        let raw = o.class("RawSensorData", &[thing]);
        let radar_raw = o.class("RadarRaw", &[raw]);
        let track = o.class("Track", &[thing]);
        let threat = o.class("ThreatAssessment", &[thing]);
        let svc = o.class("Service", &[thing]);
        let sensor_svc = o.class("SensorService", &[svc]);
        let fusion_svc = o.class("FusionService", &[svc]);
        let assess_svc = o.class("AssessmentService", &[svc]);
        World {
            idx: SubsumptionIndex::build(&o),
            aoi,
            raw,
            radar_raw,
            track,
            threat,
            svc,
            sensor_svc,
            fusion_svc,
            assess_svc,
        }
    }

    fn chainable_profiles(w: &World) -> Vec<ServiceProfile> {
        vec![
            // 0: radar produces RadarRaw from an AOI.
            ServiceProfile::new("radar", w.sensor_svc)
                .with_inputs(&[w.aoi])
                .with_outputs(&[w.radar_raw]),
            // 1: fusion turns raw sensor data into tracks.
            ServiceProfile::new("fusion", w.fusion_svc)
                .with_inputs(&[w.raw])
                .with_outputs(&[w.track]),
            // 2: assessment turns tracks into threat assessments.
            ServiceProfile::new("assess", w.assess_svc)
                .with_inputs(&[w.track])
                .with_outputs(&[w.threat]),
            // 3: unrelated chat service.
            ServiceProfile::new("chat", w.svc),
        ]
    }

    #[test]
    fn three_step_chain_is_found_in_order() {
        let w = world();
        let profiles = chainable_profiles(&w);
        // Client holds only an AOI and wants a ThreatAssessment — no single
        // service does that.
        let req = ServiceRequest::default()
            .with_outputs(&[w.threat])
            .with_provided_inputs(&[w.aoi]);
        let plan = compose(&w.idx, &req, &profiles, 5).expect("chain exists");
        assert_eq!(plan.steps, vec![0, 1, 2], "radar → fusion → assess");
    }

    #[test]
    fn chaining_uses_subsumption_between_steps() {
        // fusion needs RawSensorData; radar supplies RadarRaw ⊑ RawSensorData.
        let w = world();
        let profiles = chainable_profiles(&w);
        let req = ServiceRequest::default()
            .with_outputs(&[w.track])
            .with_provided_inputs(&[w.aoi]);
        let plan = compose(&w.idx, &req, &profiles, 5).unwrap();
        assert_eq!(plan.steps, vec![0, 1]);
    }

    #[test]
    fn single_service_plan_when_one_suffices() {
        let w = world();
        let profiles = chainable_profiles(&w);
        let req = ServiceRequest::default()
            .with_outputs(&[w.track])
            .with_provided_inputs(&[w.radar_raw]);
        let plan = compose(&w.idx, &req, &profiles, 5).unwrap();
        assert_eq!(plan.steps, vec![1], "fusion alone");
    }

    #[test]
    fn unreachable_goal_returns_none() {
        let w = world();
        let profiles = chainable_profiles(&w);
        // No AOI provided: the radar can never fire.
        let req = ServiceRequest::default().with_outputs(&[w.threat]);
        assert_eq!(compose(&w.idx, &req, &profiles, 5), None);
    }

    #[test]
    fn depth_limit_is_respected() {
        let w = world();
        let profiles = chainable_profiles(&w);
        let req = ServiceRequest::default()
            .with_outputs(&[w.threat])
            .with_provided_inputs(&[w.aoi]);
        assert_eq!(compose(&w.idx, &req, &profiles, 2), None, "needs 3 levels");
        assert!(compose(&w.idx, &req, &profiles, 3).is_some());
    }

    #[test]
    fn category_constraint_applies_to_the_chain() {
        let w = world();
        let profiles = chainable_profiles(&w);
        let req = ServiceRequest::for_category(w.assess_svc)
            .with_outputs(&[w.threat])
            .with_provided_inputs(&[w.aoi]);
        assert!(compose(&w.idx, &req, &profiles, 5).is_some());
        // Asking for a SensorService that produces threats: no step chain
        // can claim that category AND the goal is produced by assess — the
        // chain still contains the radar (a SensorService), so it passes;
        // but a category absent from every fired profile fails.
        let mut o2 = Ontology::new();
        let alien = o2.class("Alien", &[]);
        let _ = alien;
        let req_bad = ServiceRequest::for_category(ClassId(9_999));
        // Out-of-range category would panic in is_subclass; use an unrelated
        // in-range one instead: Track is not a service category.
        let req_bad = ServiceRequest { category: Some(w.track), ..req_bad };
        let req_bad = ServiceRequest {
            outputs: vec![w.threat],
            provided_inputs: vec![w.aoi],
            ..req_bad
        };
        assert_eq!(compose(&w.idx, &req_bad, &profiles, 5), None);
    }

    #[test]
    fn qos_constraints_filter_steps() {
        let w = world();
        let mut profiles = chainable_profiles(&w);
        profiles[1] = profiles[1].clone().with_qos(QosKey::Accuracy, 0.6);
        let req = ServiceRequest::default()
            .with_outputs(&[w.track])
            .with_provided_inputs(&[w.aoi])
            .with_qos(QosKey::Accuracy, 0.9);
        // Fusion declares 0.6 < 0.9 and radar declares nothing: both fail
        // the QoS floor, so no chain.
        assert_eq!(compose(&w.idx, &req, &profiles, 5), None);
        // Relax the floor below fusion's declared accuracy, and declare
        // accuracy on the radar too.
        profiles[0] = profiles[0].clone().with_qos(QosKey::Accuracy, 0.7);
        let req_ok = ServiceRequest::default()
            .with_outputs(&[w.track])
            .with_provided_inputs(&[w.aoi])
            .with_qos(QosKey::Accuracy, 0.5);
        assert!(compose(&w.idx, &req_ok, &profiles, 5).is_some());
    }

    #[test]
    fn goal_satisfied_by_inputs_gives_empty_plan() {
        let w = world();
        let profiles = chainable_profiles(&w);
        let req = ServiceRequest::default()
            .with_outputs(&[w.raw])
            .with_provided_inputs(&[w.radar_raw]);
        let plan = compose(&w.idx, &req, &profiles, 5).unwrap();
        assert!(plan.is_empty(), "RadarRaw ⊑ RawSensorData already in hand");
    }
}
