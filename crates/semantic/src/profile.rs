//! Service descriptions and requests, modelled on the OWL-S service profile.
//!
//! A [`ServiceProfile`] is what a service node publishes; a
//! [`ServiceRequest`] is the partial template a client submits ("querying for
//! a service is most often accomplished by filling out a partial template").
//! Concepts reference classes of a shared ontology by [`ClassId`]; both sides
//! must use the same ontology (the paper's "shared semantic model").

use crate::ontology::ClassId;

/// A quality-of-service attribute value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct QosValue {
    pub key: QosKey,
    pub value: f64,
}

/// Known QoS attribute keys. A closed set keeps descriptions compact on the
/// wire; extend as scenarios require.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum QosKey {
    /// Nominal latency in milliseconds (lower is better).
    LatencyMs,
    /// Data freshness/update period in seconds (lower is better).
    UpdatePeriodS,
    /// Coverage radius in meters (higher is better).
    CoverageM,
    /// Accuracy as a fraction in \[0,1\] (higher is better).
    Accuracy,
}

impl QosKey {
    /// True for attributes where larger values are better.
    pub fn higher_is_better(self) -> bool {
        matches!(self, QosKey::CoverageM | QosKey::Accuracy)
    }
}

/// A constraint a request places on one QoS attribute of a candidate.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct QosConstraint {
    pub key: QosKey,
    /// Interpreted according to [`QosKey::higher_is_better`]: a minimum for
    /// higher-is-better attributes, a maximum otherwise.
    pub bound: f64,
}

impl QosConstraint {
    /// Whether `value` satisfies this constraint.
    pub fn accepts(&self, value: f64) -> bool {
        if self.key.higher_is_better() {
            value >= self.bound
        } else {
            value <= self.bound
        }
    }
}

/// A semantic service description (the OWL-S-profile analogue).
#[derive(Clone, PartialEq, Debug)]
pub struct ServiceProfile {
    /// Human-readable service name (also the "simple description" for the
    /// URI-based model: `urn:<name>`).
    pub name: String,
    /// The service-category concept (e.g. `SurveillanceService`).
    pub category: ClassId,
    /// Concepts the service consumes.
    pub inputs: Vec<ClassId>,
    /// Concepts the service produces.
    pub outputs: Vec<ClassId>,
    /// QoS attributes.
    pub qos: Vec<QosValue>,
}

impl ServiceProfile {
    pub fn new(name: impl Into<String>, category: ClassId) -> Self {
        Self { name: name.into(), category, inputs: Vec::new(), outputs: Vec::new(), qos: Vec::new() }
    }

    pub fn with_inputs(mut self, inputs: &[ClassId]) -> Self {
        self.inputs = inputs.to_vec();
        self
    }

    pub fn with_outputs(mut self, outputs: &[ClassId]) -> Self {
        self.outputs = outputs.to_vec();
        self
    }

    pub fn with_qos(mut self, key: QosKey, value: f64) -> Self {
        self.qos.push(QosValue { key, value });
        self
    }

    /// The value of a QoS attribute, if declared.
    pub fn qos_value(&self, key: QosKey) -> Option<f64> {
        self.qos.iter().find(|q| q.key == key).map(|q| q.value)
    }

    /// A rough complexity measure used by the wire-size model: number of
    /// concept references plus QoS attributes.
    pub fn complexity(&self) -> usize {
        1 + self.inputs.len() + self.outputs.len() + self.qos.len()
    }
}

/// A client's partial template: what it wants, what it can supply, and the
/// QoS floor it will accept.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ServiceRequest {
    /// Desired service-category concept, if constrained.
    pub category: Option<ClassId>,
    /// Concepts the requested service must produce.
    pub outputs: Vec<ClassId>,
    /// Concepts the client can supply as inputs.
    pub provided_inputs: Vec<ClassId>,
    /// QoS constraints, all of which must hold.
    pub qos: Vec<QosConstraint>,
}

impl ServiceRequest {
    pub fn for_category(category: ClassId) -> Self {
        Self { category: Some(category), ..Self::default() }
    }

    pub fn with_outputs(mut self, outputs: &[ClassId]) -> Self {
        self.outputs = outputs.to_vec();
        self
    }

    pub fn with_provided_inputs(mut self, inputs: &[ClassId]) -> Self {
        self.provided_inputs = inputs.to_vec();
        self
    }

    pub fn with_qos(mut self, key: QosKey, bound: f64) -> Self {
        self.qos.push(QosConstraint { key, bound });
        self
    }

    /// Complexity measure for the wire-size model.
    pub fn complexity(&self) -> usize {
        usize::from(self.category.is_some())
            + self.outputs.len()
            + self.provided_inputs.len()
            + self.qos.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qos_constraint_direction() {
        let max_latency = QosConstraint { key: QosKey::LatencyMs, bound: 100.0 };
        assert!(max_latency.accepts(50.0));
        assert!(max_latency.accepts(100.0));
        assert!(!max_latency.accepts(101.0));

        let min_coverage = QosConstraint { key: QosKey::CoverageM, bound: 500.0 };
        assert!(min_coverage.accepts(600.0));
        assert!(!min_coverage.accepts(400.0));
    }

    #[test]
    fn profile_builder_and_complexity() {
        let p = ServiceProfile::new("track-feed", ClassId(0))
            .with_inputs(&[ClassId(1)])
            .with_outputs(&[ClassId(2), ClassId(3)])
            .with_qos(QosKey::Accuracy, 0.9);
        assert_eq!(p.complexity(), 5);
        assert_eq!(p.qos_value(QosKey::Accuracy), Some(0.9));
        assert_eq!(p.qos_value(QosKey::LatencyMs), None);
    }

    #[test]
    fn request_builder_and_complexity() {
        let r = ServiceRequest::for_category(ClassId(0))
            .with_outputs(&[ClassId(2)])
            .with_qos(QosKey::LatencyMs, 200.0);
        assert_eq!(r.complexity(), 3);
        assert!(r.category.is_some());
    }
}
