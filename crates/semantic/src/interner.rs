//! String interning for RDF-ish terms (IRIs, literals).

use std::collections::HashMap;

/// Identifies an interned term. Dense from zero, so it can index side tables.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(pub u32);

impl TermId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Bidirectional string ↔ [`TermId`] map. Triples are stored as id triples;
/// the interner recovers the text form for display and export.
#[derive(Default, Debug)]
pub struct Interner {
    strings: Vec<Box<str>>,
    ids: HashMap<Box<str>, TermId>,
}

impl Interner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (existing or fresh).
    pub fn intern(&mut self, s: &str) -> TermId {
        if let Some(&id) = self.ids.get(s) {
            return id;
        }
        let id = TermId(self.strings.len() as u32);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.ids.insert(boxed, id);
        id
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<TermId> {
        self.ids.get(s).copied()
    }

    /// The text of an interned term.
    pub fn resolve(&self, id: TermId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct interned terms.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("urn:sensor:Radar");
        let b = i.intern("urn:sensor:Radar");
        let c = i.intern("urn:sensor:Sonar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), "urn:sensor:Radar");
        assert_eq!(i.get("urn:sensor:Sonar"), Some(c));
        assert_eq!(i.get("nope"), None);
        assert_eq!(i.len(), 2);
    }
}
