//! The matchmaker: degree-of-match semantics and ranked selection.
//!
//! Follows the classic OWL-S matchmaking scheme (Paolucci et al.), which the
//! paper's "semantic service selection" presumes. Our convention, stated from
//! the requester's point of view for an *output* concept R against an
//! advertised output A:
//!
//! * **Exact** — A = R: the service produces precisely what was asked.
//! * **PlugIn** — A ⊏ R: the service produces something more specific, which
//!   *is a* R, so it plugs into the request (asked for `Sensor` data, offered
//!   `Radar` data).
//! * **Subsumes** — R ⊏ A: the service produces something more general that
//!   only partially satisfies the request (asked for `Radar`, offered
//!   `Sensor`) — useful, but weaker.
//! * **Fail** — unrelated concepts.
//!
//! Inputs go the other way around: the provider's expected input must be
//! satisfiable by what the requester can supply, so for a provided concept P
//! against an advertised input I, Exact is P = I and PlugIn is P ⊑ I (the
//! provider accepts anything subsumed by its declared input).
//!
//! The overall degree of a candidate is the *minimum* over all requested
//! parts (weakest-link), and candidates are ranked by (degree, semantic
//! distance, name) so selection — and therefore query response control — is
//! deterministic.

use std::cmp::Ordering;

use crate::ontology::ClassId;
use crate::profile::{ServiceProfile, ServiceRequest};
use crate::reasoner::SubsumptionIndex;

/// Degree of match, ordered worst to best so `max`/`min` read naturally.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Degree {
    Fail,
    Subsumes,
    PlugIn,
    Exact,
}

impl Degree {
    /// True for any non-[`Degree::Fail`] degree.
    pub fn is_match(self) -> bool {
        self != Degree::Fail
    }
}

/// Outcome of matching one request against one profile.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct MatchResult {
    pub degree: Degree,
    /// Sum of up-distances across matched concepts; lower = semantically
    /// closer. Only meaningful when `degree.is_match()`.
    pub distance: u32,
}

impl MatchResult {
    pub const FAIL: MatchResult = MatchResult { degree: Degree::Fail, distance: u32::MAX };

    /// Ranking order: better degree first, then smaller distance.
    pub fn ranking_cmp(&self, other: &MatchResult) -> Ordering {
        other
            .degree
            .cmp(&self.degree)
            .then(self.distance.cmp(&other.distance))
    }
}

/// Degree of match for a requested concept against an advertised one
/// (output direction: see module docs).
pub fn match_concept(idx: &SubsumptionIndex, requested: ClassId, advertised: ClassId) -> Degree {
    if requested == advertised {
        Degree::Exact
    } else if idx.is_strict_subclass(advertised, requested) {
        Degree::PlugIn
    } else if idx.is_strict_subclass(requested, advertised) {
        Degree::Subsumes
    } else {
        Degree::Fail
    }
}

/// Matches a full request against a full profile (degrees, QoS filtering,
/// distance accumulation).
pub fn match_request(idx: &SubsumptionIndex, request: &ServiceRequest, profile: &ServiceProfile) -> MatchResult {
    let mut overall = Degree::Exact;
    let mut distance = 0u32;

    // Category: requested category vs advertised category, output direction.
    if let Some(cat) = request.category {
        let d = match_concept(idx, cat, profile.category);
        if d == Degree::Fail {
            return MatchResult::FAIL;
        }
        distance += idx.up_distance(cat, profile.category).unwrap_or(0);
        overall = overall.min(d);
    }

    // Outputs: every requested output must be covered by the best advertised
    // output.
    for &req_out in &request.outputs {
        let mut best = Degree::Fail;
        let mut best_dist = u32::MAX;
        for &adv_out in &profile.outputs {
            let d = match_concept(idx, req_out, adv_out);
            let dist = idx.up_distance(req_out, adv_out).unwrap_or(u32::MAX);
            if d > best || (d == best && dist < best_dist) {
                best = d;
                best_dist = dist;
            }
        }
        if best == Degree::Fail {
            return MatchResult::FAIL;
        }
        distance += best_dist;
        overall = overall.min(best);
    }

    // Inputs: every input the service expects must be suppliable from what
    // the requester offers (provided P ⊑ expected I). A service with no
    // inputs is trivially satisfiable.
    for &adv_in in &profile.inputs {
        let mut best = Degree::Fail;
        let mut best_dist = u32::MAX;
        for &prov in &request.provided_inputs {
            let d = if prov == adv_in {
                Degree::Exact
            } else if idx.is_strict_subclass(prov, adv_in) {
                Degree::PlugIn
            } else {
                Degree::Fail
            };
            let dist = idx.up_distance(prov, adv_in).unwrap_or(u32::MAX);
            if d > best || (d == best && dist < best_dist) {
                best = d;
                best_dist = dist;
            }
        }
        if best == Degree::Fail {
            return MatchResult::FAIL;
        }
        distance += best_dist;
        overall = overall.min(best);
    }

    // QoS constraints are hard filters; an undeclared attribute fails the
    // constraint (no grounds to assume compliance).
    for c in &request.qos {
        match profile.qos_value(c.key) {
            Some(v) if c.accepts(v) => {}
            _ => return MatchResult::FAIL,
        }
    }

    MatchResult { degree: overall, distance }
}

/// Convenience wrapper binding a subsumption index, with ranked selection —
/// the registry-side "service selection support" that relieves constrained
/// clients.
///
/// ```
/// use sds_semantic::{Matchmaker, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex, Degree};
///
/// let mut o = Ontology::new();
/// let thing = o.class("Thing", &[]);
/// let sensor = o.class("Sensor", &[thing]);
/// let radar = o.class("Radar", &[sensor]);
/// let idx = SubsumptionIndex::build(&o);
/// let mm = Matchmaker::new(&idx);
///
/// let profiles = vec![ServiceProfile::new("radar-feed", thing).with_outputs(&[radar])];
/// // Ask for Sensor data: the Radar producer plugs in by subsumption.
/// let req = ServiceRequest::default().with_outputs(&[sensor]);
/// let ranked = mm.rank(&req, &profiles, None);
/// assert_eq!(ranked.len(), 1);
/// assert_eq!(ranked[0].1.degree, Degree::PlugIn);
/// ```
pub struct Matchmaker<'a> {
    idx: &'a SubsumptionIndex,
}

impl<'a> Matchmaker<'a> {
    pub fn new(idx: &'a SubsumptionIndex) -> Self {
        Self { idx }
    }

    pub fn matches(&self, request: &ServiceRequest, profile: &ServiceProfile) -> MatchResult {
        match_request(self.idx, request, profile)
    }

    /// Evaluates `request` over `candidates` and returns the indices of
    /// matches, best first (ties broken by profile name for determinism),
    /// truncated to `limit` if given — this implements query response
    /// control.
    pub fn rank(
        &self,
        request: &ServiceRequest,
        candidates: &[ServiceProfile],
        limit: Option<usize>,
    ) -> Vec<(usize, MatchResult)> {
        let mut hits: Vec<(usize, MatchResult)> = candidates
            .iter()
            .enumerate()
            .filter_map(|(i, p)| {
                let r = self.matches(request, p);
                r.degree.is_match().then_some((i, r))
            })
            .collect();
        hits.sort_by(|a, b| {
            a.1.ranking_cmp(&b.1)
                .then_with(|| candidates[a.0].name.cmp(&candidates[b.0].name))
        });
        if let Some(k) = limit {
            hits.truncate(k);
        }
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ontology::Ontology;
    use crate::profile::QosKey;

    struct Fixture {
        idx: SubsumptionIndex,
        #[allow(dead_code)]
        thing: ClassId,
        sensor: ClassId,
        radar: ClassId,
        sonar: ClassId,
        image: ClassId,
        track: ClassId,
        air_track: ClassId,
        surveil: ClassId,
        radar_service: ClassId,
    }

    fn fixture() -> Fixture {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        let radar = o.class("Radar", &[sensor]);
        let sonar = o.class("Sonar", &[sensor]);
        let image = o.class("Image", &[thing]);
        let track = o.class("Track", &[thing]);
        let air_track = o.class("AirTrack", &[track]);
        let surveil = o.class("SurveillanceService", &[thing]);
        let radar_service = o.class("RadarService", &[surveil]);
        let idx = SubsumptionIndex::build(&o);
        Fixture { idx, thing, sensor, radar, sonar, image, track, air_track, surveil, radar_service }
    }

    #[test]
    fn concept_degrees() {
        let f = fixture();
        assert_eq!(match_concept(&f.idx, f.radar, f.radar), Degree::Exact);
        // Asked for Sensor, offered Radar: Radar is-a Sensor → PlugIn.
        assert_eq!(match_concept(&f.idx, f.sensor, f.radar), Degree::PlugIn);
        // Asked for Radar, offered Sensor: more general → Subsumes.
        assert_eq!(match_concept(&f.idx, f.radar, f.sensor), Degree::Subsumes);
        assert_eq!(match_concept(&f.idx, f.radar, f.sonar), Degree::Fail);
        assert_eq!(match_concept(&f.idx, f.image, f.track), Degree::Fail);
    }

    #[test]
    fn output_match_is_weakest_link() {
        let f = fixture();
        let profile = ServiceProfile::new("s", f.radar_service).with_outputs(&[f.air_track, f.image]);
        // Track requested: AirTrack offered → PlugIn. Image requested: Exact.
        let req = ServiceRequest::default().with_outputs(&[f.track, f.image]);
        let r = match_request(&f.idx, &req, &profile);
        assert_eq!(r.degree, Degree::PlugIn);

        // Unmatched requested output fails the whole candidate.
        let req2 = ServiceRequest::default().with_outputs(&[f.track, f.sonar]);
        assert_eq!(match_request(&f.idx, &req2, &profile).degree, Degree::Fail);
    }

    #[test]
    fn category_matching() {
        let f = fixture();
        let profile = ServiceProfile::new("s", f.radar_service);
        let req = ServiceRequest::for_category(f.surveil);
        assert_eq!(match_request(&f.idx, &req, &profile).degree, Degree::PlugIn);
        let req_exact = ServiceRequest::for_category(f.radar_service);
        assert_eq!(match_request(&f.idx, &req_exact, &profile).degree, Degree::Exact);
        let req_fail = ServiceRequest::for_category(f.sensor);
        assert_eq!(match_request(&f.idx, &req_fail, &profile).degree, Degree::Fail);
    }

    #[test]
    fn input_direction_is_contravariant() {
        let f = fixture();
        // Service expects Sensor input; client supplies Radar (⊑ Sensor): OK.
        let profile = ServiceProfile::new("s", f.surveil).with_inputs(&[f.sensor]);
        let req = ServiceRequest::default().with_provided_inputs(&[f.radar]);
        assert_eq!(match_request(&f.idx, &req, &profile).degree, Degree::PlugIn);

        // Service expects Radar input; client supplies Sensor: NOT acceptable
        // (a generic Sensor reference is not necessarily a Radar).
        let profile2 = ServiceProfile::new("s", f.surveil).with_inputs(&[f.radar]);
        let req2 = ServiceRequest::default().with_provided_inputs(&[f.sensor]);
        assert_eq!(match_request(&f.idx, &req2, &profile2).degree, Degree::Fail);

        // Client with nothing to supply fails a service that needs input.
        let req3 = ServiceRequest::default();
        assert_eq!(match_request(&f.idx, &req3, &profile2).degree, Degree::Fail);
    }

    #[test]
    fn qos_is_a_hard_filter() {
        let f = fixture();
        let profile = ServiceProfile::new("s", f.surveil).with_qos(QosKey::Accuracy, 0.8);
        let ok = ServiceRequest::for_category(f.surveil).with_qos(QosKey::Accuracy, 0.7);
        assert!(match_request(&f.idx, &ok, &profile).degree.is_match());
        let too_strict = ServiceRequest::for_category(f.surveil).with_qos(QosKey::Accuracy, 0.9);
        assert_eq!(match_request(&f.idx, &too_strict, &profile).degree, Degree::Fail);
        // Undeclared attribute → fail.
        let undeclared = ServiceRequest::for_category(f.surveil).with_qos(QosKey::LatencyMs, 10.0);
        assert_eq!(match_request(&f.idx, &undeclared, &profile).degree, Degree::Fail);
    }

    #[test]
    fn ranking_orders_by_degree_then_distance_then_name() {
        let f = fixture();
        let candidates = vec![
            ServiceProfile::new("general", f.surveil).with_outputs(&[f.track]),
            ServiceProfile::new("exact", f.surveil).with_outputs(&[f.air_track]),
            ServiceProfile::new("unrelated", f.surveil).with_outputs(&[f.image]),
            ServiceProfile::new("also-exact", f.surveil).with_outputs(&[f.air_track]),
        ];
        let req = ServiceRequest::default().with_outputs(&[f.air_track]);
        let mm = Matchmaker::new(&f.idx);
        let ranked = mm.rank(&req, &candidates, None);
        let names: Vec<&str> = ranked.iter().map(|&(i, _)| candidates[i].name.as_str()).collect();
        assert_eq!(names, vec!["also-exact", "exact", "general"]);
        assert_eq!(ranked[0].1.degree, Degree::Exact);
        assert_eq!(ranked[2].1.degree, Degree::Subsumes);

        // Query response control: limit truncates after ranking.
        let top1 = mm.rank(&req, &candidates, Some(1));
        assert_eq!(top1.len(), 1);
        assert_eq!(candidates[top1[0].0].name, "also-exact");
    }

    #[test]
    fn empty_request_matches_everything_exactly() {
        let f = fixture();
        let p = ServiceProfile::new("s", f.surveil);
        let r = match_request(&f.idx, &ServiceRequest::default(), &p);
        assert_eq!(r.degree, Degree::Exact);
        assert_eq!(r.distance, 0);
    }

    #[test]
    fn degree_ordering() {
        assert!(Degree::Exact > Degree::PlugIn);
        assert!(Degree::PlugIn > Degree::Subsumes);
        assert!(Degree::Subsumes > Degree::Fail);
        assert!(Degree::PlugIn.is_match() && !Degree::Fail.is_match());
    }
}
