//! Vocabulary mediation between ontologies.
//!
//! The paper anticipates multi-vocabulary deployments: "new functionality
//! such as mediation between different vocabularies may introduce additional
//! queries or hints by the discovery service. This could be the case when an
//! interesting service is found, but an additional translation or mediation
//! service may be needed to use it" (§2), and lists "mediator selection" as
//! registry support (§4.3). Ontology mappings are also among the artifacts a
//! registry hosts (§4.6: "ontologies and ontology mappings").
//!
//! A [`ClassMapping`] aligns classes of a *source* ontology with classes of
//! a *target* ontology; a [`Mediator`] uses it to match a request expressed
//! in the source vocabulary against profiles described in the target
//! vocabulary (translate, then subsumption-match as usual).

use std::collections::HashMap;

use crate::matchmaker::{match_request, MatchResult};
use crate::ontology::ClassId;
use crate::profile::{ServiceProfile, ServiceRequest};
use crate::reasoner::SubsumptionIndex;

/// A (partial) alignment from one ontology's classes to another's.
///
/// ```
/// use sds_semantic::{ClassId, ClassMapping};
///
/// let m = ClassMapping::new().with(ClassId(1), ClassId(10)).with(ClassId(2), ClassId(20));
/// assert_eq!(m.translate_class(ClassId(1)), Some(ClassId(10)));
/// assert_eq!(m.translate_class(ClassId(9)), None);
/// let back = m.inverse().unwrap();
/// assert_eq!(back.translate_class(ClassId(20)), Some(ClassId(2)));
/// ```
#[derive(Clone, Default, Debug)]
pub struct ClassMapping {
    pairs: HashMap<ClassId, ClassId>,
}

impl ClassMapping {
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares `src` (source vocabulary) equivalent to `dst` (target
    /// vocabulary). Later declarations override earlier ones.
    pub fn map(&mut self, src: ClassId, dst: ClassId) -> &mut Self {
        self.pairs.insert(src, dst);
        self
    }

    /// Builder form of [`ClassMapping::map`].
    pub fn with(mut self, src: ClassId, dst: ClassId) -> Self {
        self.pairs.insert(src, dst);
        self
    }

    pub fn translate_class(&self, src: ClassId) -> Option<ClassId> {
        self.pairs.get(&src).copied()
    }

    /// Number of aligned classes.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Translates a whole request into the target vocabulary. `None` when
    /// any referenced concept is unmapped — a partial translation would
    /// silently change the request's meaning.
    pub fn translate_request(&self, request: &ServiceRequest) -> Option<ServiceRequest> {
        let category = match request.category {
            Some(c) => Some(self.translate_class(c)?),
            None => None,
        };
        let outputs = request
            .outputs
            .iter()
            .map(|&c| self.translate_class(c))
            .collect::<Option<Vec<_>>>()?;
        let provided_inputs = request
            .provided_inputs
            .iter()
            .map(|&c| self.translate_class(c))
            .collect::<Option<Vec<_>>>()?;
        Some(ServiceRequest { category, outputs, provided_inputs, qos: request.qos.clone() })
    }

    /// Translates a profile (used when shipping descriptions into a foreign
    /// registry). Same all-or-nothing rule.
    pub fn translate_profile(&self, profile: &ServiceProfile) -> Option<ServiceProfile> {
        let category = self.translate_class(profile.category)?;
        let inputs = profile
            .inputs
            .iter()
            .map(|&c| self.translate_class(c))
            .collect::<Option<Vec<_>>>()?;
        let outputs = profile
            .outputs
            .iter()
            .map(|&c| self.translate_class(c))
            .collect::<Option<Vec<_>>>()?;
        Some(ServiceProfile { name: profile.name.clone(), category, inputs, outputs, qos: profile.qos.clone() })
    }

    /// Chains two alignments: `self` (A→B) then `other` (B→C) gives A→C for
    /// every class whose image is mapped by `other`.
    pub fn compose(&self, other: &ClassMapping) -> ClassMapping {
        let mut out = ClassMapping::new();
        for (&src, &mid) in &self.pairs {
            if let Some(dst) = other.translate_class(mid) {
                out.map(src, dst);
            }
        }
        out
    }

    /// The reverse alignment, if this one is injective (no two source
    /// classes share a target).
    pub fn inverse(&self) -> Option<ClassMapping> {
        let mut out = ClassMapping::new();
        for (&src, &dst) in &self.pairs {
            if out.pairs.insert(dst, src).is_some() {
                return None;
            }
        }
        Some(out)
    }
}

/// Matches requests written in a foreign vocabulary against local profiles:
/// translate with the alignment, then run the ordinary matchmaker over the
/// local subsumption index.
pub struct Mediator<'a> {
    mapping: &'a ClassMapping,
    local_index: &'a SubsumptionIndex,
}

impl<'a> Mediator<'a> {
    pub fn new(mapping: &'a ClassMapping, local_index: &'a SubsumptionIndex) -> Self {
        Self { mapping, local_index }
    }

    /// Translate-then-match. `None` when the request cannot be fully
    /// translated (the "additional mediation service needed" signal the
    /// paper describes).
    pub fn mediated_match(
        &self,
        foreign_request: &ServiceRequest,
        local_profile: &ServiceProfile,
    ) -> Option<MatchResult> {
        let translated = self.mapping.translate_request(foreign_request)?;
        Some(match_request(self.local_index, &translated, local_profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matchmaker::Degree;
    use crate::ontology::Ontology;

    /// Two agencies model the same domain with different taxonomies.
    fn two_vocabularies() -> (Ontology, Ontology, ClassMapping) {
        // Agency A (source): "UAV" terminology.
        let mut a = Ontology::new();
        let a_thing = a.class("A:Thing", &[]);
        let a_uav = a.class("A:UAVService", &[a_thing]);
        let a_recon = a.class("A:ReconUAV", &[a_uav]);
        let a_imagery = a.class("A:Imagery", &[a_thing]);

        // Agency B (target): "Drone" terminology, deeper.
        let mut b = Ontology::new();
        let b_thing = b.class("B:Thing", &[]);
        let b_svc = b.class("B:Service", &[b_thing]);
        let b_drone = b.class("B:DroneService", &[b_svc]);
        let b_survey = b.class("B:SurveyDrone", &[b_drone]);
        let b_photo = b.class("B:Photo", &[b_thing]);

        let mapping = ClassMapping::new()
            .with(a_uav, b_drone)
            .with(a_recon, b_survey)
            .with(a_imagery, b_photo);
        let _ = (a_thing, b_thing);
        (a, b, mapping)
    }

    #[test]
    fn translated_request_matches_foreign_profiles() {
        let (a, b, mapping) = two_vocabularies();
        let idx_b = SubsumptionIndex::build(&b);
        let mediator = Mediator::new(&mapping, &idx_b);

        // Agency B's local profile.
        let profile = ServiceProfile::new("survey-drone", b.lookup("B:SurveyDrone").unwrap())
            .with_outputs(&[b.lookup("B:Photo").unwrap()]);

        // Agency A asks, in ITS vocabulary, for any UAV service with imagery.
        let request = ServiceRequest::for_category(a.lookup("A:UAVService").unwrap())
            .with_outputs(&[a.lookup("A:Imagery").unwrap()]);

        let result = mediator.mediated_match(&request, &profile).expect("fully mapped");
        assert_eq!(result.degree, Degree::PlugIn, "SurveyDrone ⊑ DroneService after translation");
    }

    #[test]
    fn unmapped_concept_yields_none_not_garbage() {
        let (a, b, mapping) = two_vocabularies();
        let idx_b = SubsumptionIndex::build(&b);
        let mediator = Mediator::new(&mapping, &idx_b);
        let profile = ServiceProfile::new("x", b.lookup("B:DroneService").unwrap());
        // A:Thing is deliberately unmapped.
        let request = ServiceRequest::for_category(a.lookup("A:Thing").unwrap());
        assert!(mediator.mediated_match(&request, &profile).is_none());
    }

    #[test]
    fn profile_translation_round_trips_through_inverse() {
        let (a, b, mapping) = two_vocabularies();
        let profile = ServiceProfile::new("recon", a.lookup("A:ReconUAV").unwrap())
            .with_outputs(&[a.lookup("A:Imagery").unwrap()]);
        let to_b = mapping.translate_profile(&profile).unwrap();
        assert_eq!(to_b.category, b.lookup("B:SurveyDrone").unwrap());
        let back = mapping.inverse().unwrap().translate_profile(&to_b).unwrap();
        assert_eq!(back.category, profile.category);
        assert_eq!(back.outputs, profile.outputs);
    }

    #[test]
    fn composition_chains_alignments() {
        let (_a, _b, ab) = two_vocabularies();
        // B → C relabels everything by +100.
        let mut bc = ClassMapping::new();
        for (&_src, &dst) in &ab.pairs {
            bc.map(dst, ClassId(dst.0 + 100));
        }
        let ac = ab.compose(&bc);
        assert_eq!(ac.len(), ab.len());
        for (&src, &dst) in &ab.pairs {
            assert_eq!(ac.translate_class(src), Some(ClassId(dst.0 + 100)));
        }
    }

    #[test]
    fn inverse_rejects_non_injective_mappings() {
        let m = ClassMapping::new().with(ClassId(1), ClassId(9)).with(ClassId(2), ClassId(9));
        assert!(m.inverse().is_none());
    }
}
