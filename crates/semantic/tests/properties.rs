//! Property-based tests for the semantic substrate: the subsumption closure
//! against naive graph reachability, triple-store pattern queries against a
//! brute-force filter, matchmaker ranking invariants, and ontology
//! round-tripping through the triple store.

use proptest::prelude::*;

use sds_semantic::{
    match_request, BitSet, ClassId, Degree, Interner, Matchmaker, Ontology, ServiceProfile,
    ServiceRequest, SubsumptionIndex, Triple, TriplePattern, TripleStore,
};

/// A random DAG as parent lists: class i may only have parents among 0..i,
/// which is exactly the invariant `Ontology` enforces.
fn arb_dag(max_classes: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(any::<prop::sample::Index>(), 0..3), 1..max_classes)
        .prop_map(|raw| {
            raw.into_iter()
                .enumerate()
                .map(|(i, parents)| {
                    let mut ps: Vec<usize> =
                        parents.into_iter().filter(|_| i > 0).map(|ix| ix.index(i)).collect();
                    ps.sort_unstable();
                    ps.dedup();
                    ps
                })
                .collect()
        })
}

fn build_ontology(dag: &[Vec<usize>]) -> Ontology {
    let mut o = Ontology::new();
    for (i, parents) in dag.iter().enumerate() {
        let ps: Vec<ClassId> = parents.iter().map(|&p| ClassId(p as u32)).collect();
        o.class(&format!("C{i}"), &ps);
    }
    o
}

/// Naive reflexive-transitive reachability by DFS.
fn naive_is_subclass(dag: &[Vec<usize>], sub: usize, sup: usize) -> bool {
    if sub == sup {
        return true;
    }
    let mut stack = vec![sub];
    let mut seen = vec![false; dag.len()];
    while let Some(v) = stack.pop() {
        if v == sup {
            return true;
        }
        if std::mem::replace(&mut seen[v], true) {
            continue;
        }
        stack.extend(dag[v].iter().copied());
    }
    false
}

proptest! {
    #[test]
    fn closure_matches_naive_reachability(dag in arb_dag(24)) {
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        for sub in 0..dag.len() {
            for sup in 0..dag.len() {
                prop_assert_eq!(
                    idx.is_subclass(ClassId(sub as u32), ClassId(sup as u32)),
                    naive_is_subclass(&dag, sub, sup),
                    "sub={} sup={}", sub, sup
                );
            }
        }
    }

    #[test]
    fn ancestors_iter_agrees_with_is_subclass(dag in arb_dag(20)) {
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        for c in ont.classes() {
            let via_iter: Vec<ClassId> = idx.ancestors(c).collect();
            for sup in ont.classes() {
                prop_assert_eq!(via_iter.contains(&sup), idx.is_subclass(c, sup));
            }
        }
    }

    #[test]
    fn ontology_round_trips_through_triples(dag in arb_dag(16)) {
        let ont = build_ontology(&dag);
        let mut interner = Interner::new();
        let mut store = TripleStore::new();
        ont.to_triples(&mut interner, &mut store);
        let back = Ontology::from_triples(&interner, &store).expect("acyclic by construction");
        prop_assert_eq!(back.len(), ont.len());
        // Same subsumption semantics, though ids may be permuted.
        let idx = SubsumptionIndex::build(&ont);
        let idx_back = SubsumptionIndex::build(&back);
        for a in 0..dag.len() {
            for b in 0..dag.len() {
                let (oa, ob) = (ClassId(a as u32), ClassId(b as u32));
                let ba = back.lookup(ont.name(oa)).unwrap();
                let bb = back.lookup(ont.name(ob)).unwrap();
                prop_assert_eq!(idx.is_subclass(oa, ob), idx_back.is_subclass(ba, bb));
            }
        }
    }

    #[test]
    fn triple_store_pattern_query_equals_filter(
        triples in prop::collection::vec((0u32..12, 0u32..4, 0u32..12), 0..80),
        s in prop::option::of(0u32..12),
        p in prop::option::of(0u32..4),
        o in prop::option::of(0u32..12),
    ) {
        let mut store = TripleStore::new();
        let mut all: Vec<Triple> = Vec::new();
        for (ts, tp, to) in triples {
            let t = Triple::new(
                sds_semantic::TermId(ts),
                sds_semantic::TermId(tp + 100),
                sds_semantic::TermId(to + 200),
            );
            store.insert(t);
            if !all.contains(&t) {
                all.push(t);
            }
        }
        let pattern = TriplePattern {
            s: s.map(sds_semantic::TermId),
            p: p.map(|x| sds_semantic::TermId(x + 100)),
            o: o.map(|x| sds_semantic::TermId(x + 200)),
        };
        let mut got: Vec<Triple> = store.query(pattern).collect();
        let mut want: Vec<Triple> = all.iter().copied().filter(|t| pattern.matches(t)).collect();
        got.sort();
        want.sort();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn store_len_tracks_inserts_and_removes(
        ops in prop::collection::vec((any::<bool>(), 0u32..6, 0u32..3, 0u32..6), 0..60)
    ) {
        let mut store = TripleStore::new();
        let mut model: std::collections::BTreeSet<(u32, u32, u32)> = Default::default();
        for (insert, s, p, o) in ops {
            let t = Triple::new(
                sds_semantic::TermId(s),
                sds_semantic::TermId(p),
                sds_semantic::TermId(o),
            );
            if insert {
                prop_assert_eq!(store.insert(t), model.insert((s, p, o)));
            } else {
                prop_assert_eq!(store.remove(t), model.remove(&(s, p, o)));
            }
            prop_assert_eq!(store.len(), model.len());
        }
    }

    #[test]
    fn ranking_is_sorted_and_truncated(
        dag in arb_dag(12),
        cats in prop::collection::vec(any::<prop::sample::Index>(), 1..20),
        req_cat in any::<prop::sample::Index>(),
        limit in prop::option::of(0usize..8),
    ) {
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        let profiles: Vec<ServiceProfile> = cats
            .iter()
            .enumerate()
            .map(|(i, ix)| {
                ServiceProfile::new(format!("s{i}"), ClassId(ix.index(dag.len()) as u32))
            })
            .collect();
        let request = ServiceRequest::for_category(ClassId(req_cat.index(dag.len()) as u32));
        let mm = Matchmaker::new(&idx);
        let ranked = mm.rank(&request, &profiles, limit);

        if let Some(k) = limit {
            prop_assert!(ranked.len() <= k);
        }
        // No Fail results, ordering is non-increasing in degree.
        for w in ranked.windows(2) {
            prop_assert!(w[0].1.degree >= w[1].1.degree);
        }
        for (i, r) in &ranked {
            prop_assert!(r.degree.is_match());
            // Ranked results agree with direct matching.
            let direct = match_request(&idx, &request, &profiles[*i]);
            prop_assert_eq!(direct.degree, r.degree);
        }
        // Completeness (when unlimited): every matching profile is ranked.
        if limit.is_none() {
            let matching = profiles
                .iter()
                .filter(|p| match_request(&idx, &request, p).degree.is_match())
                .count();
            prop_assert_eq!(ranked.len(), matching);
        }
    }

    #[test]
    fn concept_match_degrees_are_antisymmetric(dag in arb_dag(16)) {
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        for a in ont.classes() {
            for b in ont.classes() {
                let ab = sds_semantic::match_concept(&idx, a, b);
                let ba = sds_semantic::match_concept(&idx, b, a);
                match ab {
                    Degree::Exact => prop_assert_eq!(ba, Degree::Exact),
                    Degree::PlugIn => prop_assert_eq!(ba, Degree::Subsumes),
                    Degree::Subsumes => prop_assert_eq!(ba, Degree::PlugIn),
                    Degree::Fail => prop_assert_eq!(ba, Degree::Fail),
                }
            }
        }
    }

    #[test]
    fn bitset_behaves_like_hashset(
        bits in prop::collection::vec(0usize..200, 0..64),
        probe in prop::collection::vec(0usize..220, 0..32),
    ) {
        let mut bs = BitSet::with_capacity(200);
        let mut hs = std::collections::HashSet::new();
        for b in bits {
            bs.insert(b);
            hs.insert(b);
        }
        prop_assert_eq!(bs.len(), hs.len());
        for p in probe {
            prop_assert_eq!(bs.contains(p), hs.contains(&p));
        }
        let via_iter: Vec<usize> = bs.iter().collect();
        let mut sorted: Vec<usize> = hs.into_iter().collect();
        sorted.sort_unstable();
        prop_assert_eq!(via_iter, sorted);
    }
}
