//! Property-based tests for the semantic substrate: the subsumption closure
//! against naive graph reachability, triple-store pattern queries against a
//! brute-force filter, matchmaker ranking invariants, and ontology
//! round-tripping through the triple store. Run under the in-workspace
//! seeded harness (`sds_rand::check`).

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;

use sds_semantic::{
    match_request, BitSet, ClassId, Degree, Interner, Matchmaker, Ontology, ServiceProfile,
    ServiceRequest, SubsumptionIndex, Triple, TriplePattern, TripleStore,
};

/// A random DAG as parent lists: class i may only have parents among 0..i,
/// which is exactly the invariant `Ontology` enforces.
fn arb_dag(rng: &mut Rng, max_classes: usize) -> Vec<Vec<usize>> {
    let len = rng.gen_range(1..max_classes);
    (0..len)
        .map(|i| {
            if i == 0 {
                return Vec::new();
            }
            let mut ps = gen::vec_of(rng, 0, 3, |r| r.gen_index(i));
            ps.sort_unstable();
            ps.dedup();
            ps
        })
        .collect()
}

fn build_ontology(dag: &[Vec<usize>]) -> Ontology {
    let mut o = Ontology::new();
    for (i, parents) in dag.iter().enumerate() {
        let ps: Vec<ClassId> = parents.iter().map(|&p| ClassId(p as u32)).collect();
        o.class(&format!("C{i}"), &ps);
    }
    o
}

/// Naive reflexive-transitive reachability by DFS.
fn naive_is_subclass(dag: &[Vec<usize>], sub: usize, sup: usize) -> bool {
    if sub == sup {
        return true;
    }
    let mut stack = vec![sub];
    let mut seen = vec![false; dag.len()];
    while let Some(v) = stack.pop() {
        if v == sup {
            return true;
        }
        if std::mem::replace(&mut seen[v], true) {
            continue;
        }
        stack.extend(dag[v].iter().copied());
    }
    false
}

#[test]
fn closure_matches_naive_reachability() {
    Checker::new("closure_matches_naive_reachability").run(|rng| {
        let dag = arb_dag(rng, 24);
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        for sub in 0..dag.len() {
            for sup in 0..dag.len() {
                assert_eq!(
                    idx.is_subclass(ClassId(sub as u32), ClassId(sup as u32)),
                    naive_is_subclass(&dag, sub, sup),
                    "sub={sub} sup={sup}"
                );
            }
        }
    });
}

#[test]
fn ancestors_iter_agrees_with_is_subclass() {
    Checker::new("ancestors_iter_agrees_with_is_subclass").run(|rng| {
        let dag = arb_dag(rng, 20);
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        for c in ont.classes() {
            let via_iter: Vec<ClassId> = idx.ancestors(c).collect();
            for sup in ont.classes() {
                assert_eq!(via_iter.contains(&sup), idx.is_subclass(c, sup));
            }
        }
    });
}

#[test]
fn ontology_round_trips_through_triples() {
    Checker::new("ontology_round_trips_through_triples").run(|rng| {
        let dag = arb_dag(rng, 16);
        let ont = build_ontology(&dag);
        let mut interner = Interner::new();
        let mut store = TripleStore::new();
        ont.to_triples(&mut interner, &mut store);
        let back = Ontology::from_triples(&interner, &store).expect("acyclic by construction");
        assert_eq!(back.len(), ont.len());
        // Same subsumption semantics, though ids may be permuted.
        let idx = SubsumptionIndex::build(&ont);
        let idx_back = SubsumptionIndex::build(&back);
        for a in 0..dag.len() {
            for b in 0..dag.len() {
                let (oa, ob) = (ClassId(a as u32), ClassId(b as u32));
                let ba = back.lookup(ont.name(oa)).unwrap();
                let bb = back.lookup(ont.name(ob)).unwrap();
                assert_eq!(idx.is_subclass(oa, ob), idx_back.is_subclass(ba, bb));
            }
        }
    });
}

#[test]
fn triple_store_pattern_query_equals_filter() {
    Checker::new("triple_store_pattern_query_equals_filter").run(|rng| {
        let triples = gen::vec_of(rng, 0, 80, |r| {
            (r.gen_range(0..12u32), r.gen_range(0..4u32), r.gen_range(0..12u32))
        });
        let s = gen::option_of(rng, |r| r.gen_range(0..12u32));
        let p = gen::option_of(rng, |r| r.gen_range(0..4u32));
        let o = gen::option_of(rng, |r| r.gen_range(0..12u32));
        let mut store = TripleStore::new();
        let mut all: Vec<Triple> = Vec::new();
        for (ts, tp, to) in triples {
            let t = Triple::new(
                sds_semantic::TermId(ts),
                sds_semantic::TermId(tp + 100),
                sds_semantic::TermId(to + 200),
            );
            store.insert(t);
            if !all.contains(&t) {
                all.push(t);
            }
        }
        let pattern = TriplePattern {
            s: s.map(sds_semantic::TermId),
            p: p.map(|x| sds_semantic::TermId(x + 100)),
            o: o.map(|x| sds_semantic::TermId(x + 200)),
        };
        let mut got: Vec<Triple> = store.query(pattern).collect();
        let mut want: Vec<Triple> = all.iter().copied().filter(|t| pattern.matches(t)).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want);
    });
}

#[test]
fn store_len_tracks_inserts_and_removes() {
    Checker::new("store_len_tracks_inserts_and_removes").run(|rng| {
        let ops = gen::vec_of(rng, 0, 60, |r| {
            (r.gen_bool(0.5), r.gen_range(0..6u32), r.gen_range(0..3u32), r.gen_range(0..6u32))
        });
        let mut store = TripleStore::new();
        let mut model: std::collections::BTreeSet<(u32, u32, u32)> = Default::default();
        for (insert, s, p, o) in ops {
            let t = Triple::new(
                sds_semantic::TermId(s),
                sds_semantic::TermId(p),
                sds_semantic::TermId(o),
            );
            if insert {
                assert_eq!(store.insert(t), model.insert((s, p, o)));
            } else {
                assert_eq!(store.remove(t), model.remove(&(s, p, o)));
            }
            assert_eq!(store.len(), model.len());
        }
    });
}

#[test]
fn ranking_is_sorted_and_truncated() {
    Checker::new("ranking_is_sorted_and_truncated").run(|rng| {
        let dag = arb_dag(rng, 12);
        let n_profiles = rng.gen_range(1..20usize);
        let profiles: Vec<ServiceProfile> = (0..n_profiles)
            .map(|i| ServiceProfile::new(format!("s{i}"), ClassId(rng.gen_index(dag.len()) as u32)))
            .collect();
        let request = ServiceRequest::for_category(ClassId(rng.gen_index(dag.len()) as u32));
        let limit = gen::option_of(rng, |r| r.gen_range(0..8usize));
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        let mm = Matchmaker::new(&idx);
        let ranked = mm.rank(&request, &profiles, limit);

        if let Some(k) = limit {
            assert!(ranked.len() <= k);
        }
        // No Fail results, ordering is non-increasing in degree.
        for w in ranked.windows(2) {
            assert!(w[0].1.degree >= w[1].1.degree);
        }
        for (i, r) in &ranked {
            assert!(r.degree.is_match());
            // Ranked results agree with direct matching.
            let direct = match_request(&idx, &request, &profiles[*i]);
            assert_eq!(direct.degree, r.degree);
        }
        // Completeness (when unlimited): every matching profile is ranked.
        if limit.is_none() {
            let matching = profiles
                .iter()
                .filter(|p| match_request(&idx, &request, p).degree.is_match())
                .count();
            assert_eq!(ranked.len(), matching);
        }
    });
}

#[test]
fn concept_match_degrees_are_antisymmetric() {
    Checker::new("concept_match_degrees_are_antisymmetric").run(|rng| {
        let dag = arb_dag(rng, 16);
        let ont = build_ontology(&dag);
        let idx = SubsumptionIndex::build(&ont);
        for a in ont.classes() {
            for b in ont.classes() {
                let ab = sds_semantic::match_concept(&idx, a, b);
                let ba = sds_semantic::match_concept(&idx, b, a);
                match ab {
                    Degree::Exact => assert_eq!(ba, Degree::Exact),
                    Degree::PlugIn => assert_eq!(ba, Degree::Subsumes),
                    Degree::Subsumes => assert_eq!(ba, Degree::PlugIn),
                    Degree::Fail => assert_eq!(ba, Degree::Fail),
                }
            }
        }
    });
}

#[test]
fn bitset_behaves_like_hashset() {
    Checker::new("bitset_behaves_like_hashset").run(|rng| {
        let bits = gen::vec_of(rng, 0, 64, |r| r.gen_range(0..200usize));
        let probe = gen::vec_of(rng, 0, 32, |r| r.gen_range(0..220usize));
        let mut bs = BitSet::with_capacity(200);
        let mut hs = std::collections::HashSet::new();
        for b in bits {
            bs.insert(b);
            hs.insert(b);
        }
        assert_eq!(bs.len(), hs.len());
        for p in probe {
            assert_eq!(bs.contains(p), hs.contains(&p));
        }
        let via_iter: Vec<usize> = bs.iter().collect();
        let mut sorted: Vec<usize> = hs.into_iter().collect();
        sorted.sort_unstable();
        assert_eq!(via_iter, sorted);
    });
}
