//! Property-based tests for the composition planner and vocabulary
//! mediation.

use proptest::prelude::*;

use sds_semantic::{
    compose, ClassId, ClassMapping, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex,
};

/// A linear taxonomy C0 ⊒ C1 ⊒ … ⊒ C{n-1} plus `extra` unrelated roots.
fn taxonomy(depth: usize, extra: usize) -> Ontology {
    let mut o = Ontology::new();
    let mut prev: Option<ClassId> = None;
    for i in 0..depth {
        let parents = prev.map(|p| vec![p]).unwrap_or_default();
        prev = Some(o.class(&format!("C{i}"), &parents));
    }
    for i in 0..extra {
        o.class(&format!("X{i}"), &[]);
    }
    o
}

fn arb_profiles(n_classes: usize) -> impl Strategy<Value = Vec<ServiceProfile>> {
    prop::collection::vec(
        (
            0..n_classes as u32,
            prop::collection::vec(0..n_classes as u32, 0..2),
            prop::collection::vec(0..n_classes as u32, 0..2),
        ),
        0..10,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .map(|(i, (cat, inputs, outputs))| {
                ServiceProfile::new(format!("s{i}"), ClassId(cat))
                    .with_inputs(&inputs.into_iter().map(ClassId).collect::<Vec<_>>())
                    .with_outputs(&outputs.into_iter().map(ClassId).collect::<Vec<_>>())
            })
            .collect()
    })
}

/// Replays a plan: checks each step's inputs are satisfied when it runs and
/// returns the concepts available at the end.
fn replay(
    idx: &SubsumptionIndex,
    provided: &[ClassId],
    profiles: &[ServiceProfile],
    steps: &[usize],
) -> Option<Vec<ClassId>> {
    let mut available = provided.to_vec();
    for &i in steps {
        let p = &profiles[i];
        let ok = p
            .inputs
            .iter()
            .all(|&inp| available.iter().any(|&a| idx.is_subclass(a, inp)));
        if !ok {
            return None;
        }
        available.extend_from_slice(&p.outputs);
    }
    Some(available)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn plans_are_executable_and_achieve_the_goal(
        profiles in arb_profiles(8),
        outputs in prop::collection::vec(0..8u32, 0..2),
        provided in prop::collection::vec(0..8u32, 0..3),
    ) {
        let ont = taxonomy(5, 3);
        let idx = SubsumptionIndex::build(&ont);
        let request = ServiceRequest {
            category: None,
            outputs: outputs.iter().copied().map(ClassId).collect(),
            provided_inputs: provided.iter().copied().map(ClassId).collect(),
            qos: Vec::new(),
        };
        if let Some(plan) = compose(&idx, &request, &profiles, 6) {
            // No duplicate steps.
            let mut sorted = plan.steps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), plan.steps.len(), "steps are unique");
            // The plan replays: every step applicable in order, goal reached.
            let available = replay(&idx, &request.provided_inputs, &profiles, &plan.steps)
                .expect("every step's inputs satisfied in order");
            for &goal in &request.outputs {
                prop_assert!(
                    available.iter().any(|&a| idx.is_subclass(a, goal)),
                    "goal {:?} satisfied by plan {:?}",
                    goal,
                    plan.steps
                );
            }
        }
    }

    #[test]
    fn composition_finds_linear_chains_of_any_length(len in 1usize..7) {
        // Profiles s_i: input K_i → output K_{i+1} over unrelated roots.
        let mut o = Ontology::new();
        let ks: Vec<ClassId> = (0..=len).map(|i| o.class(&format!("K{i}"), &[])).collect();
        let idx = SubsumptionIndex::build(&o);
        let profiles: Vec<ServiceProfile> = (0..len)
            .map(|i| {
                ServiceProfile::new(format!("s{i}"), ks[0])
                    .with_inputs(&[ks[i]])
                    .with_outputs(&[ks[i + 1]])
            })
            .collect();
        let request = ServiceRequest::default()
            .with_outputs(&[ks[len]])
            .with_provided_inputs(&[ks[0]]);
        let plan = compose(&idx, &request, &profiles, len).expect("chain exists");
        prop_assert_eq!(plan.steps.len(), len, "every link needed");
        let too_shallow = compose(&idx, &request, &profiles, len - 1);
        prop_assert!(too_shallow.is_none() || len == 1, "depth bound respected");
    }

    #[test]
    fn injective_mapping_round_trips_profiles(
        pairs in prop::collection::btree_map(0u32..30, 0u32..30, 1..12),
        cat in 0u32..30,
        ios in prop::collection::vec(0u32..30, 0..4),
    ) {
        // Make the mapping injective by keeping first-come targets only.
        let mut fwd = ClassMapping::new();
        let mut used = std::collections::HashSet::new();
        for (&src, &dst) in &pairs {
            if used.insert(dst) {
                fwd.map(ClassId(src), ClassId(dst));
            }
        }
        let inv = fwd.inverse().expect("injective by construction");
        let profile = ServiceProfile::new("p", ClassId(cat))
            .with_inputs(&ios.iter().copied().map(ClassId).collect::<Vec<_>>());
        match fwd.translate_profile(&profile) {
            Some(translated) => {
                let back = inv.translate_profile(&translated).expect("inverse covers image");
                prop_assert_eq!(back.category, profile.category);
                prop_assert_eq!(back.inputs, profile.inputs);
            }
            None => {
                // Some referenced concept is unmapped — consistent with
                // translate_class on at least one concept.
                let all: Vec<ClassId> =
                    std::iter::once(profile.category).chain(profile.inputs.iter().copied()).collect();
                prop_assert!(all.iter().any(|&c| fwd.translate_class(c).is_none()));
            }
        }
    }

    #[test]
    fn mapping_composition_agrees_with_sequential_translation(
        ab in prop::collection::btree_map(0u32..12, 12u32..24, 0..10),
        bc in prop::collection::btree_map(12u32..24, 24u32..36, 0..10),
        probe in 0u32..12,
    ) {
        let mut m_ab = ClassMapping::new();
        for (&s, &d) in &ab {
            m_ab.map(ClassId(s), ClassId(d));
        }
        let mut m_bc = ClassMapping::new();
        for (&s, &d) in &bc {
            m_bc.map(ClassId(s), ClassId(d));
        }
        let m_ac = m_ab.compose(&m_bc);
        let sequential = m_ab
            .translate_class(ClassId(probe))
            .and_then(|mid| m_bc.translate_class(mid));
        prop_assert_eq!(m_ac.translate_class(ClassId(probe)), sequential);
    }
}
