//! Property-based tests for the composition planner and vocabulary
//! mediation. Run under the in-workspace seeded harness (`sds_rand::check`).

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;

use sds_semantic::{
    compose, ClassId, ClassMapping, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex,
};

/// A linear taxonomy C0 ⊒ C1 ⊒ … ⊒ C{n-1} plus `extra` unrelated roots.
fn taxonomy(depth: usize, extra: usize) -> Ontology {
    let mut o = Ontology::new();
    let mut prev: Option<ClassId> = None;
    for i in 0..depth {
        let parents = prev.map(|p| vec![p]).unwrap_or_default();
        prev = Some(o.class(&format!("C{i}"), &parents));
    }
    for i in 0..extra {
        o.class(&format!("X{i}"), &[]);
    }
    o
}

fn arb_classes(rng: &mut Rng, n_classes: u32, min: usize, max: usize) -> Vec<ClassId> {
    gen::vec_of(rng, min, max, |r| ClassId(r.gen_range(0..n_classes)))
}

fn arb_profiles(rng: &mut Rng, n_classes: u32) -> Vec<ServiceProfile> {
    let n = rng.gen_range(0..10usize);
    (0..n)
        .map(|i| {
            ServiceProfile::new(format!("s{i}"), ClassId(rng.gen_range(0..n_classes)))
                .with_inputs(&arb_classes(rng, n_classes, 0, 2))
                .with_outputs(&arb_classes(rng, n_classes, 0, 2))
        })
        .collect()
}

/// Replays a plan: checks each step's inputs are satisfied when it runs and
/// returns the concepts available at the end.
fn replay(
    idx: &SubsumptionIndex,
    provided: &[ClassId],
    profiles: &[ServiceProfile],
    steps: &[usize],
) -> Option<Vec<ClassId>> {
    let mut available = provided.to_vec();
    for &i in steps {
        let p = &profiles[i];
        let ok = p
            .inputs
            .iter()
            .all(|&inp| available.iter().any(|&a| idx.is_subclass(a, inp)));
        if !ok {
            return None;
        }
        available.extend_from_slice(&p.outputs);
    }
    Some(available)
}

#[test]
fn plans_are_executable_and_achieve_the_goal() {
    Checker::new("plans_are_executable_and_achieve_the_goal").run(|rng| {
        let profiles = arb_profiles(rng, 8);
        let ont = taxonomy(5, 3);
        let idx = SubsumptionIndex::build(&ont);
        let request = ServiceRequest {
            category: None,
            outputs: arb_classes(rng, 8, 0, 2),
            provided_inputs: arb_classes(rng, 8, 0, 3),
            qos: Vec::new(),
        };
        if let Some(plan) = compose(&idx, &request, &profiles, 6) {
            // No duplicate steps.
            let mut sorted = plan.steps.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), plan.steps.len(), "steps are unique");
            // The plan replays: every step applicable in order, goal reached.
            let available = replay(&idx, &request.provided_inputs, &profiles, &plan.steps)
                .expect("every step's inputs satisfied in order");
            for &goal in &request.outputs {
                assert!(
                    available.iter().any(|&a| idx.is_subclass(a, goal)),
                    "goal {goal:?} satisfied by plan {:?}",
                    plan.steps
                );
            }
        }
    });
}

#[test]
fn composition_finds_linear_chains_of_any_length() {
    Checker::new("composition_finds_linear_chains_of_any_length").cases(32).run(|rng| {
        let len = rng.gen_range(1..7usize);
        // Profiles s_i: input K_i → output K_{i+1} over unrelated roots.
        let mut o = Ontology::new();
        let ks: Vec<ClassId> = (0..=len).map(|i| o.class(&format!("K{i}"), &[])).collect();
        let idx = SubsumptionIndex::build(&o);
        let profiles: Vec<ServiceProfile> = (0..len)
            .map(|i| {
                ServiceProfile::new(format!("s{i}"), ks[0])
                    .with_inputs(&[ks[i]])
                    .with_outputs(&[ks[i + 1]])
            })
            .collect();
        let request = ServiceRequest::default()
            .with_outputs(&[ks[len]])
            .with_provided_inputs(&[ks[0]]);
        let plan = compose(&idx, &request, &profiles, len).expect("chain exists");
        assert_eq!(plan.steps.len(), len, "every link needed");
        let too_shallow = compose(&idx, &request, &profiles, len - 1);
        assert!(too_shallow.is_none() || len == 1, "depth bound respected");
    });
}

#[test]
fn injective_mapping_round_trips_profiles() {
    Checker::new("injective_mapping_round_trips_profiles").run(|rng| {
        let n_pairs = rng.gen_range(1..12usize);
        let mut pairs = std::collections::BTreeMap::new();
        for _ in 0..n_pairs {
            pairs.insert(rng.gen_range(0..30u32), rng.gen_range(0..30u32));
        }
        let cat = rng.gen_range(0..30u32);
        let ios = arb_classes(rng, 30, 0, 4);
        // Make the mapping injective by keeping first-come targets only.
        let mut fwd = ClassMapping::new();
        let mut used = std::collections::HashSet::new();
        for (&src, &dst) in &pairs {
            if used.insert(dst) {
                fwd.map(ClassId(src), ClassId(dst));
            }
        }
        let inv = fwd.inverse().expect("injective by construction");
        let profile = ServiceProfile::new("p", ClassId(cat)).with_inputs(&ios);
        match fwd.translate_profile(&profile) {
            Some(translated) => {
                let back = inv.translate_profile(&translated).expect("inverse covers image");
                assert_eq!(back.category, profile.category);
                assert_eq!(back.inputs, profile.inputs);
            }
            None => {
                // Some referenced concept is unmapped — consistent with
                // translate_class on at least one concept.
                let all: Vec<ClassId> =
                    std::iter::once(profile.category).chain(profile.inputs.iter().copied()).collect();
                assert!(all.iter().any(|&c| fwd.translate_class(c).is_none()));
            }
        }
    });
}

#[test]
fn mapping_composition_agrees_with_sequential_translation() {
    Checker::new("mapping_composition_agrees_with_sequential_translation").run(|rng| {
        let mut m_ab = ClassMapping::new();
        for _ in 0..rng.gen_range(0..10usize) {
            m_ab.map(ClassId(rng.gen_range(0..12u32)), ClassId(rng.gen_range(12..24u32)));
        }
        let mut m_bc = ClassMapping::new();
        for _ in 0..rng.gen_range(0..10usize) {
            m_bc.map(ClassId(rng.gen_range(12..24u32)), ClassId(rng.gen_range(24..36u32)));
        }
        let probe = rng.gen_range(0..12u32);
        let m_ac = m_ab.compose(&m_bc);
        let sequential = m_ab
            .translate_class(ClassId(probe))
            .and_then(|mid| m_bc.translate_class(mid));
        assert_eq!(m_ac.translate_class(ClassId(probe)), sequential);
    });
}
