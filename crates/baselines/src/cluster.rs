//! A UDDI-like replicated registry cluster.
//!
//! "One could view a clustered registry as a hybrid topology as well. With
//! this scheme, one registry is replicated on several nodes. This means that
//! exactly the same content is present at different nodes. An example of a
//! system using this principle is UDDI."
//!
//! Every replica answers queries from its full copy; publishes are forwarded
//! to the other replicas; nothing is leased, so adverts of crashed providers
//! persist until explicitly removed — exactly the staleness failure mode the
//! paper attributes to UDDI.

use std::sync::Arc;

use sds_protocol::{
    Codec, DiscoveryMessage, MaintenanceOp, ModelId, Operation, PublishOp, QueryOp,
};
use sds_registry::{RegistryEngine, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_registry::LeasePolicy;
use sds_semantic::SubsumptionIndex;
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, SimTime, TimerId};

const TAG_BEACON: u64 = 1;

/// Configuration of one cluster replica.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// The other replicas this node pushes content to.
    pub replicas: Vec<NodeId>,
    /// Description models evaluated.
    pub models: Vec<ModelId>,
    /// Presence beacon period (0 disables; clients then need static
    /// endpoints, as with real UDDI).
    pub beacon_interval: SimTime,
    pub codec: Codec,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            replicas: Vec::new(),
            models: vec![ModelId::Uri, ModelId::Template, ModelId::Semantic],
            beacon_interval: 5_000,
            codec: Codec::default(),
        }
    }
}

/// One replica of the UDDI-like cluster.
pub struct ClusterRegistryNode {
    cfg: ClusterConfig,
    semantic_index: Option<Arc<SubsumptionIndex>>,
    engine: RegistryEngine,
    /// Publishes accepted directly from providers (not replication traffic).
    pub direct_publishes: u64,
}

impl ClusterRegistryNode {
    pub fn new(cfg: ClusterConfig, semantic_index: Option<Arc<SubsumptionIndex>>) -> Self {
        let engine = Self::fresh_engine(&cfg, &semantic_index);
        Self { cfg, semantic_index, engine, direct_publishes: 0 }
    }

    fn fresh_engine(cfg: &ClusterConfig, idx: &Option<Arc<SubsumptionIndex>>) -> RegistryEngine {
        // UDDI semantics: no leases, ever.
        let mut engine = RegistryEngine::new(LeasePolicy::no_leasing());
        for model in &cfg.models {
            match model {
                ModelId::Uri => engine.register_evaluator(Box::new(UriEvaluator)),
                ModelId::Template => engine.register_evaluator(Box::new(TemplateEvaluator)),
                ModelId::Semantic => {
                    if let Some(idx) = idx {
                        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
                    }
                }
            }
        }
        engine
    }

    pub fn engine(&self) -> &RegistryEngine {
        &self.engine
    }

    fn is_replica(&self, node: NodeId) -> bool {
        self.cfg.replicas.contains(&node)
    }

    fn send(&self, ctx: &mut Ctx<'_, DiscoveryMessage>, to: NodeId, msg: DiscoveryMessage) {
        let bytes = self.cfg.codec.message_size(&msg);
        let kind = msg.kind();
        ctx.send(Destination::Unicast(to), msg, bytes, kind);
    }
}

impl NodeHandler<DiscoveryMessage> for ClusterRegistryNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        self.engine = Self::fresh_engine(&self.cfg, &self.semantic_index);
        if self.cfg.beacon_interval > 0 {
            let lan = ctx.lan();
            let msg = DiscoveryMessage::maintenance(MaintenanceOp::RegistryBeacon {
                advert_count: 0,
            });
            let bytes = self.cfg.codec.message_size(&msg);
            ctx.send(Destination::Multicast(lan), msg, bytes, "beacon");
            ctx.set_timer(self.cfg.beacon_interval, TAG_BEACON);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        match msg.op {
            Operation::Maintenance(MaintenanceOp::RegistryProbe) => {
                let reply = DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbeReply {
                    advert_count: self.engine.store().len() as u32,
                    load: 0,
                });
                self.send(ctx, from, reply);
            }
            Operation::Maintenance(MaintenanceOp::Ping) => {
                self.send(ctx, from, DiscoveryMessage::maintenance(MaintenanceOp::Pong));
            }
            Operation::Maintenance(MaintenanceOp::RegistryListRequest { .. }) => {
                let mut registries = self.cfg.replicas.clone();
                registries.push(ctx.node());
                self.send(
                    ctx,
                    from,
                    DiscoveryMessage::maintenance(MaintenanceOp::RegistryList { registries }),
                );
            }
            Operation::Publishing(op) => match op {
                PublishOp::Publish { advert, .. } | PublishOp::Update { advert, .. } => {
                    let id = advert.id;
                    let (_, lease_until) =
                        self.engine.publish(advert.clone(), from, ctx.now(), 0);
                    self.direct_publishes += 1;
                    self.send(
                        ctx,
                        from,
                        DiscoveryMessage::publishing(PublishOp::PublishAck { id, lease_until }),
                    );
                    // Replicate to the rest of the cluster.
                    for &replica in &self.cfg.replicas.clone() {
                        self.send(
                            ctx,
                            replica,
                            DiscoveryMessage::publishing(PublishOp::ForwardAdverts {
                                adverts: vec![advert.clone()],
                            }),
                        );
                    }
                }
                PublishOp::ForwardAdverts { adverts } => {
                    for advert in adverts {
                        let _ = self.engine.publish(advert, from, ctx.now(), 0);
                    }
                }
                PublishOp::RenewLease { id } => {
                    // Nothing is leased; acknowledge so providers stay quiet.
                    let (known, lease_until) = self.engine.renew(id, ctx.now());
                    self.send(
                        ctx,
                        from,
                        DiscoveryMessage::publishing(PublishOp::RenewAck {
                            id,
                            lease_until,
                            known,
                        }),
                    );
                }
                PublishOp::Remove { id } => {
                    self.engine.remove(id);
                    // Propagate explicit removals, but never re-propagate
                    // replication traffic (loop avoidance).
                    if !self.is_replica(from) {
                        for &replica in &self.cfg.replicas.clone() {
                            self.send(
                                ctx,
                                replica,
                                DiscoveryMessage::publishing(PublishOp::Remove { id }),
                            );
                        }
                    }
                }
                // UDDI-class baselines do no ontology validation, so they
                // never emit nacks; arriving ones are ignored.
                PublishOp::PublishAck { .. }
                | PublishOp::RenewAck { .. }
                | PublishOp::PublishNack { .. } => {}
            },
            Operation::Querying(QueryOp::Query(query)) => {
                // Full replication: answer entirely from the local copy.
                let hits = self.engine.evaluate(&query, ctx.now());
                let reply = DiscoveryMessage::querying(QueryOp::QueryResponse {
                    query_id: query.id,
                    hits,
                    responder: ctx.node(),
                });
                self.send(ctx, from, reply);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, _timer: TimerId, tag: u64) {
        if tag == TAG_BEACON {
            let lan = ctx.lan();
            let msg = DiscoveryMessage::maintenance(MaintenanceOp::RegistryBeacon {
                advert_count: self.engine.store().len() as u32,
            });
            let bytes = self.cfg.codec.message_size(&msg);
            ctx.send(Destination::Multicast(lan), msg, bytes, "beacon");
            ctx.set_timer(self.cfg.beacon_interval, TAG_BEACON);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_core::{ClientNode, QueryOptions, ServiceNode};
    use sds_protocol::{Description, QueryPayload};
    use sds_simnet::{secs, Sim, SimConfig, Topology};

    fn cluster_world() -> (Sim<DiscoveryMessage>, NodeId, NodeId) {
        let mut topo = Topology::new();
        let lan = topo.add_lan();
        let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 99);
        // Two replicas that know each other (ids 0 and 1).
        let r0 = sim.add_node(
            lan,
            Box::new(ClusterRegistryNode::new(
                ClusterConfig { replicas: vec![NodeId(1)], ..Default::default() },
                None,
            )),
        );
        let r1 = sim.add_node(
            lan,
            Box::new(ClusterRegistryNode::new(
                ClusterConfig { replicas: vec![NodeId(0)], ..Default::default() },
                None,
            )),
        );
        (sim, r0, r1)
    }

    #[test]
    fn publish_replicates_to_all_replicas() {
        let (mut sim, r0, r1) = cluster_world();
        let lan = sim.topology().lan_of(r0);
        let _svc = sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                crate::presets::uddi_service(r0),
                vec![Description::Uri("urn:svc:x".into())],
                None,
            )),
        );
        sim.run_until(secs(1));
        assert_eq!(sim.handler::<ClusterRegistryNode>(r0).unwrap().engine().store().len(), 1);
        assert_eq!(
            sim.handler::<ClusterRegistryNode>(r1).unwrap().engine().store().len(),
            1,
            "replicated"
        );
    }

    #[test]
    fn stale_adverts_survive_provider_crash() {
        let (mut sim, r0, _r1) = cluster_world();
        let lan = sim.topology().lan_of(r0);
        let svc = sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                crate::presets::uddi_service(r0),
                vec![Description::Uri("urn:svc:x".into())],
                None,
            )),
        );
        let client = sim.add_node(
            lan,
            Box::new(ClientNode::new(crate::presets::centralized_client(r0))),
        );
        sim.run_until(secs(1));
        sim.crash_node(svc);
        // Long after the crash, the lease-less registry still serves the
        // dead service — the paper's UDDI staleness failure.
        sim.run_until(secs(120));
        sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(ctx, QueryPayload::Uri("urn:svc:x".into()), QueryOptions::default());
        });
        sim.run_until(secs(126));
        let done = &sim.handler::<ClientNode>(client).unwrap().completed;
        assert_eq!(done[0].hits.len(), 1, "stale advert served");
        assert_eq!(done[0].hits[0].advert.provider, svc);
        assert!(!sim.is_alive(svc), "…whose provider is long dead");
    }

    #[test]
    fn explicit_remove_propagates_without_looping() {
        let (mut sim, r0, r1) = cluster_world();
        let lan = sim.topology().lan_of(r0);
        let svc = sim.add_node(
            lan,
            Box::new(ServiceNode::new(
                crate::presets::uddi_service(r0),
                vec![Description::Uri("urn:svc:x".into())],
                None,
            )),
        );
        sim.run_until(secs(1));
        let advert_id = sim.handler::<ServiceNode>(svc).unwrap().advert_ids()[0].unwrap();
        // Client-side explicit deregistration (what UDDI relies on).
        sim.with_node::<ServiceNode>(svc, |_s, ctx| {
            let msg = DiscoveryMessage::publishing(PublishOp::Remove { id: advert_id });
            let bytes = Codec::default().message_size(&msg);
            ctx.send(Destination::Unicast(r0), msg, bytes, "remove");
        });
        sim.run_until(secs(2));
        assert!(sim.handler::<ClusterRegistryNode>(r0).unwrap().engine().store().is_empty());
        assert!(sim.handler::<ClusterRegistryNode>(r1).unwrap().engine().store().is_empty());
    }
}
