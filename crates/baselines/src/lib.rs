//! # sds-baselines — the systems the paper argues against
//!
//! The paper's case for autonomous federated registries is comparative: it
//! names the shortcomings of the Web-Service discovery technologies of its
//! day. To reproduce those comparisons, this crate implements each
//! comparator at the fidelity the argument requires:
//!
//! * [`cluster`] — a **UDDI-like replicated registry cluster**: replicas
//!   share identical content via advert forwarding and, crucially, grant no
//!   leases ("neither UDDI nor ebXML use leasing, and are dependent on
//!   services actively de-registering themselves … a serious shortcoming");
//! * [`wsdiscovery`] — a **WS-Discovery-like** LAN protocol: services
//!   multicast Hello/Bye, clients probe by multicast, and an optional
//!   discovery proxy caches Hellos ("when used with a discovery proxy the
//!   same shortcoming applies to WS-Discovery");
//! * [`dht`] — a **DHT keyword index** over super-peers (consistent
//!   hashing): publishes and lookups route by key hash, so "query evaluation
//!   other than string matching cannot be performed at the intermediate
//!   nodes" — semantic subsumption queries structurally cannot be answered.
//!
//! The paper's *centralized* and *decentralized* strawmen need no new code:
//! they are `sds-core` deployments (one static registry / no registries with
//! multicast fallback) — see `presets`.

pub mod cluster;
pub mod dht;
pub mod presets;
pub mod wsdiscovery;

pub use cluster::ClusterRegistryNode;
pub use dht::{dht_key_of_description, dht_key_of_payload, DhtConfig, DhtNode};
pub use wsdiscovery::{WsProxyNode, WsServiceNode};
