//! Configuration presets realizing the paper's topologies and baselines
//! from the `sds-core` building blocks.

use sds_core::{AttachConfig, Bootstrap, ClientConfig, ForwardStrategy, RegistryConfig, ServiceConfig};
use sds_registry::LeasePolicy;
use sds_simnet::NodeId;

/// The paper's *centralized* topology: one registry, everyone statically
/// configured against it, no federation, no beacons to find anything else.
pub fn centralized_registry() -> RegistryConfig {
    RegistryConfig {
        strategy: ForwardStrategy::None,
        seeds: Vec::new(),
        gateway_election: false,
        ..RegistryConfig::default()
    }
}

/// Client statically bound to the central registry (no fallback: if the
/// registry dies, discovery dies — the single point of failure).
pub fn centralized_client(registry: NodeId) -> ClientConfig {
    ClientConfig {
        attach: AttachConfig { bootstrap: Bootstrap::Static(registry), ..Default::default() },
        fallback_query: false,
        ..Default::default()
    }
}

/// Service statically bound to the central registry.
pub fn centralized_service(registry: NodeId) -> ServiceConfig {
    ServiceConfig {
        attach: AttachConfig { bootstrap: Bootstrap::Static(registry), ..Default::default() },
        fallback_responder: false,
        ..Default::default()
    }
}

/// The paper's *decentralized* topology: no registries; clients multicast
/// queries and providers self-evaluate.
pub fn decentralized_client() -> ClientConfig {
    ClientConfig { fallback_query: true, ..Default::default() }
}

/// Decentralized provider: always answers multicast queries.
pub fn decentralized_service() -> ServiceConfig {
    ServiceConfig { fallback_responder: true, ..Default::default() }
}

/// A UDDI-like registry: centralized behaviour plus **no leasing** — stale
/// adverts of crashed services are served until explicitly removed.
pub fn uddi_registry() -> RegistryConfig {
    RegistryConfig { lease_policy: LeasePolicy::no_leasing(), ..centralized_registry() }
}

/// A UDDI-like publisher: never renews (UDDI has nothing to renew).
pub fn uddi_service(registry: NodeId) -> ServiceConfig {
    ServiceConfig {
        // Renewals would be no-ops against an infinite lease; disable the
        // traffic entirely by renewing absurdly rarely.
        renew_interval: u64::MAX / 4,
        ..centralized_service(registry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn centralized_presets_disable_federation_and_fallback() {
        let r = centralized_registry();
        assert_eq!(r.strategy, ForwardStrategy::None);
        assert!(!centralized_client(NodeId(0)).fallback_query);
        assert!(!centralized_service(NodeId(0)).fallback_responder);
    }

    #[test]
    fn uddi_preset_has_no_leasing() {
        assert!(!uddi_registry().lease_policy.leasing_enabled);
        assert!(uddi_service(NodeId(0)).renew_interval > 1_000_000_000);
    }

    #[test]
    fn decentralized_presets_enable_fallback() {
        assert!(decentralized_client().fallback_query);
        assert!(decentralized_service().fallback_responder);
    }
}
