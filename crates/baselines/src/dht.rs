//! A DHT keyword-index baseline (consistent hashing over super-peers).
//!
//! "Super-peer distributed hash tables are used in several peer-to-peer
//! systems … Such systems are based on storage of hashes in the intermediate
//! nodes, and therefore, semantic query evaluation cannot be performed at
//! the intermediate nodes in such systems."
//!
//! Advertisements are indexed under a single *key* extracted from the
//! description (the URI, the template's type, or the semantic category
//! IRI); lookups hash the query's key and route to the owner, which can
//! only compare keys for equality. Subsumption ("give me any `Sensor`")
//! structurally cannot be answered — the claim experiment E12 measures.
//!
//! Membership is static full membership (one-hop DHT), as in super-peer
//! deployments where the registry set is small and known.

use sds_protocol::{
    Advertisement, Codec, Description, DiscoveryMessage, MaintenanceOp, Operation, PublishOp,
    QueryOp, QueryPayload, ResponseHit,
};
use sds_semantic::Degree;
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, SimTime, TimerId};

use std::collections::HashMap;

const TAG_BEACON: u64 = 1;

/// FNV-1a, the classic cheap string hash — adequate for ring placement.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The DHT key a description is indexed under, if it has one.
pub fn dht_key_of_description(d: &Description) -> Option<String> {
    match d {
        Description::Uri(u) => Some(u.clone()),
        Description::Template(t) => t.type_uri.clone().or_else(|| t.name.clone()),
        // Only the category concept is hashable; everything else in the
        // profile is invisible to a hash index.
        Description::Semantic(p) => Some(format!("cat:{}", p.category.0)),
    }
}

/// The DHT key a query routes by, if it has one.
pub fn dht_key_of_payload(p: &QueryPayload) -> Option<String> {
    match p {
        QueryPayload::Uri(u) => Some(u.clone()),
        QueryPayload::Template(t) => t.type_uri.clone().or_else(|| t.name.clone()),
        QueryPayload::Semantic(r) => r.category.map(|c| format!("cat:{}", c.0)),
    }
}

/// Configuration of one DHT super-peer.
#[derive(Clone, Debug)]
pub struct DhtConfig {
    /// All ring members (including this node).
    pub members: Vec<NodeId>,
    /// Presence beacon period so providers/clients can attach.
    pub beacon_interval: SimTime,
    pub codec: Codec,
}

/// Counters for experiments.
#[derive(Clone, Copy, Default, Debug)]
pub struct DhtStats {
    pub stored: u64,
    pub routed_publishes: u64,
    pub routed_queries: u64,
    pub answered: u64,
}

/// One DHT super-peer node.
pub struct DhtNode {
    cfg: DhtConfig,
    /// Key → adverts stored under that key (this node owns these keys).
    index: HashMap<String, Vec<Advertisement>>,
    pub stats: DhtStats,
}

impl DhtNode {
    pub fn new(cfg: DhtConfig) -> Self {
        Self { cfg, index: HashMap::new(), stats: DhtStats::default() }
    }

    pub fn stored_keys(&self) -> usize {
        self.index.len()
    }

    fn ring_position(node: NodeId) -> u64 {
        fnv1a(&format!("node:{}", node.0))
    }

    /// Consistent hashing: the owner of `key` is the member with the
    /// smallest ring position ≥ hash(key), wrapping around.
    fn owner_of(&self, key: &str) -> NodeId {
        let h = fnv1a(key);
        let mut best_wrap: Option<(u64, NodeId)> = None;
        let mut best_ge: Option<(u64, NodeId)> = None;
        for &m in &self.cfg.members {
            let pos = Self::ring_position(m);
            if pos >= h
                && best_ge.is_none_or(|(p, _)| pos < p) {
                    best_ge = Some((pos, m));
                }
            if best_wrap.is_none_or(|(p, _)| pos < p) {
                best_wrap = Some((pos, m));
            }
        }
        best_ge.or(best_wrap).expect("ring has members").1
    }

    fn send(&self, ctx: &mut Ctx<'_, DiscoveryMessage>, to: NodeId, msg: DiscoveryMessage) {
        let bytes = self.cfg.codec.message_size(&msg);
        let kind = msg.kind();
        ctx.send(Destination::Unicast(to), msg, bytes, kind);
    }

    fn beacon(&self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        let lan = ctx.lan();
        let msg = DiscoveryMessage::maintenance(MaintenanceOp::RegistryBeacon {
            advert_count: self.index.len() as u32,
        });
        let bytes = self.cfg.codec.message_size(&msg);
        ctx.send(Destination::Multicast(lan), msg, bytes, "beacon");
    }
}

impl NodeHandler<DiscoveryMessage> for DhtNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        self.index.clear();
        if self.cfg.beacon_interval > 0 {
            self.beacon(ctx);
            ctx.set_timer(self.cfg.beacon_interval, TAG_BEACON);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        match msg.op {
            Operation::Maintenance(MaintenanceOp::RegistryProbe) => {
                let reply = DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbeReply {
                    advert_count: self.index.len() as u32,
                    load: 0,
                });
                self.send(ctx, from, reply);
            }
            Operation::Maintenance(MaintenanceOp::Ping) => {
                self.send(ctx, from, DiscoveryMessage::maintenance(MaintenanceOp::Pong));
            }
            Operation::Maintenance(MaintenanceOp::RegistryListRequest { .. }) => {
                let reply = DiscoveryMessage::maintenance(MaintenanceOp::RegistryList {
                    registries: self.cfg.members.clone(),
                });
                self.send(ctx, from, reply);
            }
            Operation::Publishing(PublishOp::Publish { advert, lease_ms })
            | Operation::Publishing(PublishOp::Update { advert, lease_ms }) => {
                let Some(key) = dht_key_of_description(&advert.description) else {
                    return; // unindexable description — dropped by design
                };
                let owner = self.owner_of(&key);
                if owner == ctx.node() {
                    let id = advert.id;
                    let provider = advert.provider;
                    let slot = self.index.entry(key).or_default();
                    slot.retain(|a| a.id != id);
                    slot.push(advert);
                    self.stats.stored += 1;
                    // Ack straight to the provider (not the routing hop).
                    self.send(
                        ctx,
                        provider,
                        DiscoveryMessage::publishing(PublishOp::PublishAck {
                            id,
                            lease_until: SimTime::MAX,
                        }),
                    );
                } else {
                    self.stats.routed_publishes += 1;
                    self.send(
                        ctx,
                        owner,
                        DiscoveryMessage::publishing(PublishOp::Publish { advert, lease_ms }),
                    );
                }
            }
            Operation::Publishing(PublishOp::RenewLease { id }) => {
                // No leases in the DHT; keep providers quiet.
                self.send(
                    ctx,
                    from,
                    DiscoveryMessage::publishing(PublishOp::RenewAck {
                        id,
                        lease_until: SimTime::MAX,
                        known: true,
                    }),
                );
            }
            Operation::Querying(QueryOp::Query(query)) => {
                let origin = query.id.origin;
                let Some(key) = dht_key_of_payload(&query.payload) else {
                    // Unroutable (e.g. a pure-outputs semantic request): the
                    // hash index has no entry point. Answer empty.
                    self.stats.answered += 1;
                    self.send(
                        ctx,
                        origin,
                        DiscoveryMessage::querying(QueryOp::QueryResponse {
                            query_id: query.id,
                            hits: Vec::new(),
                            responder: ctx.node(),
                        }),
                    );
                    return;
                };
                let owner = self.owner_of(&key);
                if owner == ctx.node() {
                    // Key equality is ALL the index can check.
                    let hits: Vec<ResponseHit> = self
                        .index
                        .get(&key)
                        .map(|adverts| {
                            adverts
                                .iter()
                                .map(|a| ResponseHit {
                                    advert: a.clone(),
                                    degree: Degree::Exact,
                                    distance: 0,
                                })
                                .collect()
                        })
                        .unwrap_or_default();
                    self.stats.answered += 1;
                    self.send(
                        ctx,
                        origin,
                        DiscoveryMessage::querying(QueryOp::QueryResponse {
                            query_id: query.id,
                            hits,
                            responder: ctx.node(),
                        }),
                    );
                } else {
                    self.stats.routed_queries += 1;
                    self.send(ctx, owner, DiscoveryMessage::querying(QueryOp::Query(query)));
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, _timer: TimerId, tag: u64) {
        if tag == TAG_BEACON {
            self.beacon(ctx);
            ctx.set_timer(self.cfg.beacon_interval, TAG_BEACON);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_core::{ClientConfig, ClientNode, QueryOptions, ServiceConfig, ServiceNode};
    use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
    use sds_simnet::{secs, Sim, SimConfig, Topology};
    use std::sync::Arc;

    fn ring(n: usize, seed: u64) -> (Sim<DiscoveryMessage>, Vec<NodeId>, Vec<sds_simnet::LanId>) {
        let mut topo = Topology::new();
        let lans: Vec<_> = (0..n).map(|_| topo.add_lan()).collect();
        let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, seed);
        let members: Vec<NodeId> = (0..n as u32).map(NodeId).collect();
        let ids: Vec<NodeId> = lans
            .iter()
            .map(|&lan| {
                sim.add_node(
                    lan,
                    Box::new(DhtNode::new(DhtConfig {
                        members: members.clone(),
                        beacon_interval: secs(5),
                        codec: Codec::default(),
                    })),
                )
            })
            .collect();
        (sim, ids, lans)
    }

    #[test]
    fn owner_is_deterministic_and_consistent() {
        let (sim, ids, _) = ring(4, 1);
        let n0 = sim.handler::<DhtNode>(ids[0]).unwrap();
        let n3 = sim.handler::<DhtNode>(ids[3]).unwrap();
        for key in ["urn:a", "urn:b", "urn:c", "cat:7"] {
            assert_eq!(n0.owner_of(key), n3.owner_of(key), "all members agree on {key}");
        }
    }

    #[test]
    fn exact_uri_lookup_works_across_ring() {
        let (mut sim, _ids, lans) = ring(4, 2);
        let _svc = sim.add_node(
            lans[1],
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![Description::Uri("urn:svc:x".into())],
                None,
            )),
        );
        let c = sim.add_node(lans[2], Box::new(ClientNode::new(ClientConfig::default())));
        sim.run_until(secs(2));
        sim.with_node::<ClientNode>(c, |cl, ctx| {
            cl.issue_query(ctx, QueryPayload::Uri("urn:svc:x".into()), QueryOptions::default());
        });
        sim.run_until(secs(8));
        let done = &sim.handler::<ClientNode>(c).unwrap().completed;
        assert_eq!(done[0].hits.len(), 1, "exact keyword lookup succeeds");
    }

    #[test]
    fn semantic_subsumption_query_fails_on_hash_index() {
        // A Radar service is indexed under its category; a request for the
        // PARENT category hashes to a different key — no subsumption.
        let mut ont = Ontology::new();
        let thing = ont.class("Thing", &[]);
        let surveil = ont.class("SurveillanceService", &[thing]);
        let radar_svc = ont.class("RadarService", &[surveil]);
        let idx = Arc::new(SubsumptionIndex::build(&ont));

        let (mut sim, _ids, lans) = ring(4, 3);
        let _svc = sim.add_node(
            lans[1],
            Box::new(ServiceNode::new(
                ServiceConfig::default(),
                vec![Description::Semantic(ServiceProfile::new("radar", radar_svc))],
                Some(idx.clone()),
            )),
        );
        let c = sim.add_node(lans[2], Box::new(ClientNode::new(ClientConfig::default())));
        sim.run_until(secs(2));

        // Exact category: found (hash equality).
        sim.with_node::<ClientNode>(c, |cl, ctx| {
            cl.issue_query(
                ctx,
                QueryPayload::Semantic(ServiceRequest::for_category(radar_svc)),
                QueryOptions::default(),
            );
        });
        // Parent category: subsumption needed — structurally impossible.
        sim.with_node::<ClientNode>(c, |cl, ctx| {
            cl.issue_query(
                ctx,
                QueryPayload::Semantic(ServiceRequest::for_category(surveil)),
                QueryOptions::default(),
            );
        });
        sim.run_until(secs(10));
        let done = &sim.handler::<ClientNode>(c).unwrap().completed;
        assert_eq!(done.len(), 2);
        let exact = done.iter().find(|q| q.seq == 0).unwrap();
        let parent = done.iter().find(|q| q.seq == 1).unwrap();
        assert_eq!(exact.hits.len(), 1, "exact category key matches");
        assert_eq!(parent.hits.len(), 0, "subsumption query fails on the DHT");
    }

    #[test]
    fn unroutable_semantic_query_answers_empty() {
        let (mut sim, _ids, lans) = ring(3, 4);
        let c = sim.add_node(lans[0], Box::new(ClientNode::new(ClientConfig::default())));
        sim.run_until(secs(2));
        sim.with_node::<ClientNode>(c, |cl, ctx| {
            // No category at all: nothing to hash.
            cl.issue_query(
                ctx,
                QueryPayload::Semantic(ServiceRequest::default().with_outputs(&[ClassId(1)])),
                QueryOptions::default(),
            );
        });
        sim.run_until(secs(8));
        let done = &sim.handler::<ClientNode>(c).unwrap().completed;
        assert_eq!(done[0].hits.len(), 0);
        assert!(done[0].responses_received >= 1, "the DHT answered, albeit emptily");
    }
}
