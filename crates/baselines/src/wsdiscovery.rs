//! A WS-Discovery-like LAN discovery baseline.
//!
//! Models the two modes of WS-Dynamic-Discovery the paper discusses:
//!
//! * **Ad hoc mode**: services announce themselves with a multicast *Hello*
//!   on joining and a *Bye* on graceful departure; clients probe by
//!   multicast and providers answer directly. "WS-Discovery, because of its
//!   decentralized nature, does not need an explicit leasing mechanism when
//!   used in decentralized mode."
//! * **Managed mode**: a *discovery proxy* caches Hello announcements and
//!   answers probes, suppressing the multicast storm — but "when used with a
//!   discovery proxy the same shortcoming applies": a crashed service never
//!   sends Bye, so the proxy serves it forever.
//!
//! Message reuse: Hello = multicast `Publish`, Bye = multicast `Remove`,
//! proxy presence = `RegistryBeacon` (so plain `sds-core` clients can attach
//! to the proxy), probes = multicast `Query`.

use std::sync::Arc;

use sds_protocol::{
    Advertisement, Codec, Description, DiscoveryMessage, MaintenanceOp, Operation, PublishOp,
    QueryOp, ResponseHit, Uuid,
};
use sds_registry::{ModelEvaluator, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_semantic::SubsumptionIndex;
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, SimTime, TimerId};

const TAG_BEACON: u64 = 1;

fn evaluators(idx: Option<Arc<SubsumptionIndex>>) -> Vec<Box<dyn ModelEvaluator>> {
    let mut v: Vec<Box<dyn ModelEvaluator>> =
        vec![Box::new(UriEvaluator), Box::new(TemplateEvaluator)];
    if let Some(idx) = idx {
        v.push(Box::new(SemanticEvaluator::new(idx)));
    }
    v
}

fn evaluate_all(
    evaluators: &[Box<dyn ModelEvaluator>],
    payload: &sds_protocol::QueryPayload,
    adverts: impl Iterator<Item = Advertisement>,
) -> Vec<ResponseHit> {
    let mut hits = Vec::new();
    for advert in adverts {
        for e in evaluators {
            if e.model() == payload.model() {
                if let Some((degree, distance)) = e.evaluate(payload, &advert) {
                    hits.push(ResponseHit { advert: advert.clone(), degree, distance });
                }
            }
        }
    }
    hits
}

/// A WS-Discovery service endpoint.
pub struct WsServiceNode {
    descriptions: Vec<Description>,
    evaluators: Vec<Box<dyn ModelEvaluator>>,
    codec: Codec,
    adverts: Vec<Advertisement>,
    /// When a proxy has been heard, providers stay silent on probes.
    proxy_seen: Option<SimTime>,
    /// How long a proxy beacon suppresses direct answers.
    proxy_timeout: SimTime,
    pub answers_sent: u64,
}

impl WsServiceNode {
    pub fn new(
        descriptions: Vec<Description>,
        semantic_index: Option<Arc<SubsumptionIndex>>,
        codec: Codec,
    ) -> Self {
        Self {
            descriptions,
            evaluators: evaluators(semantic_index),
            codec,
            adverts: Vec::new(),
            proxy_seen: None,
            proxy_timeout: 12_000,
            answers_sent: 0,
        }
    }

    /// Graceful departure: multicast Bye for every advert. (A crash never
    /// gets to call this — that asymmetry is the baseline's failure mode.)
    pub fn leave(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        let lan = ctx.lan();
        for advert in &self.adverts {
            let msg = DiscoveryMessage::publishing(PublishOp::Remove { id: advert.id });
            let bytes = self.codec.message_size(&msg);
            ctx.send(Destination::Multicast(lan), msg, bytes, "bye");
        }
    }

    fn proxy_active(&self, now: SimTime) -> bool {
        self.proxy_seen.is_some_and(|t| now.saturating_sub(t) < self.proxy_timeout)
    }
}

impl NodeHandler<DiscoveryMessage> for WsServiceNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        // Hello: announce every hosted service on the LAN.
        self.adverts = self
            .descriptions
            .iter()
            .map(|d| Advertisement {
                id: Uuid::generate(ctx.rng()),
                provider: ctx.node(),
                description: d.clone(),
                version: 1,
            })
            .collect();
        let lan = ctx.lan();
        for advert in &self.adverts {
            let msg = DiscoveryMessage::publishing(PublishOp::Publish {
                advert: advert.clone(),
                lease_ms: 0,
            });
            let bytes = self.codec.message_size(&msg);
            ctx.send(Destination::Multicast(lan), msg, bytes, "hello");
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        match msg.op {
            Operation::Maintenance(MaintenanceOp::RegistryBeacon { .. }) => {
                self.proxy_seen = Some(ctx.now());
            }
            Operation::Querying(QueryOp::Query(query)) => {
                if self.proxy_active(ctx.now()) {
                    return; // managed mode: the proxy answers
                }
                let hits =
                    evaluate_all(&self.evaluators, &query.payload, self.adverts.iter().cloned());
                if !hits.is_empty() {
                    self.answers_sent += 1;
                    let reply = DiscoveryMessage::querying(QueryOp::QueryResponse {
                        query_id: query.id,
                        hits,
                        responder: ctx.node(),
                    });
                    let bytes = self.codec.message_size(&reply);
                    ctx.send(Destination::Unicast(from), reply, bytes, "query-response");
                }
            }
            _ => {}
        }
    }
}

/// A WS-Discovery discovery proxy: caches Hellos, beacons its presence,
/// answers probes and unicast queries. No leases — Bye is the only way an
/// entry leaves the cache.
pub struct WsProxyNode {
    evaluators: Vec<Box<dyn ModelEvaluator>>,
    codec: Codec,
    beacon_interval: SimTime,
    cache: Vec<Advertisement>,
    pub answers_sent: u64,
}

impl WsProxyNode {
    pub fn new(
        semantic_index: Option<Arc<SubsumptionIndex>>,
        beacon_interval: SimTime,
        codec: Codec,
    ) -> Self {
        Self {
            evaluators: evaluators(semantic_index),
            codec,
            beacon_interval,
            cache: Vec::new(),
            answers_sent: 0,
        }
    }

    /// Cached advertisement count (staleness inspection).
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    fn beacon(&self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        let lan = ctx.lan();
        let msg = DiscoveryMessage::maintenance(MaintenanceOp::RegistryBeacon {
            advert_count: self.cache.len() as u32,
        });
        let bytes = self.codec.message_size(&msg);
        ctx.send(Destination::Multicast(lan), msg, bytes, "beacon");
    }
}

impl NodeHandler<DiscoveryMessage> for WsProxyNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        self.cache.clear();
        self.beacon(ctx);
        ctx.set_timer(self.beacon_interval, TAG_BEACON);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        match msg.op {
            Operation::Publishing(PublishOp::Publish { advert, .. }) => {
                // Hello: cache (replacing any same-id entry).
                self.cache.retain(|a| a.id != advert.id);
                self.cache.push(advert);
            }
            Operation::Publishing(PublishOp::Remove { id }) => {
                // Bye.
                self.cache.retain(|a| a.id != id);
            }
            Operation::Maintenance(MaintenanceOp::RegistryProbe) => {
                let reply = DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbeReply {
                    advert_count: self.cache.len() as u32,
                    load: 0,
                });
                let bytes = self.codec.message_size(&reply);
                ctx.send(Destination::Unicast(from), reply, bytes, "probe-reply");
            }
            Operation::Maintenance(MaintenanceOp::Ping) => {
                let reply = DiscoveryMessage::maintenance(MaintenanceOp::Pong);
                let bytes = self.codec.message_size(&reply);
                ctx.send(Destination::Unicast(from), reply, bytes, "pong");
            }
            Operation::Maintenance(MaintenanceOp::RegistryListRequest { .. }) => {
                let reply = DiscoveryMessage::maintenance(MaintenanceOp::RegistryList {
                    registries: vec![ctx.node()],
                });
                let bytes = self.codec.message_size(&reply);
                ctx.send(Destination::Unicast(from), reply, bytes, "reglist");
            }
            Operation::Querying(QueryOp::Query(query)) => {
                let mut hits =
                    evaluate_all(&self.evaluators, &query.payload, self.cache.iter().cloned());
                sds_registry::rank_hits(&mut hits);
                if let Some(k) = query.max_responses {
                    hits.truncate(k as usize);
                }
                self.answers_sent += 1;
                let reply = DiscoveryMessage::querying(QueryOp::QueryResponse {
                    query_id: query.id,
                    hits,
                    responder: ctx.node(),
                });
                let bytes = self.codec.message_size(&reply);
                ctx.send(Destination::Unicast(from), reply, bytes, "query-response");
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, _timer: TimerId, tag: u64) {
        if tag == TAG_BEACON {
            self.beacon(ctx);
            ctx.set_timer(self.beacon_interval, TAG_BEACON);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_core::{ClientConfig, ClientNode, QueryMode, QueryOptions};
    use sds_protocol::QueryPayload;
    use sds_simnet::{secs, Sim, SimConfig, Topology};

    fn lan_world() -> (Sim<DiscoveryMessage>, sds_simnet::LanId) {
        let mut topo = Topology::new();
        let lan = topo.add_lan();
        (Sim::new(SimConfig::default(), topo, 7), lan)
    }

    fn multicast_query(sim: &mut Sim<DiscoveryMessage>, client: NodeId, uri: &str) {
        let payload = QueryPayload::Uri(uri.into());
        sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(
                ctx,
                payload,
                QueryOptions { mode: QueryMode::MulticastLan, ..Default::default() },
            );
        });
    }

    #[test]
    fn adhoc_mode_providers_answer_probes() {
        let (mut sim, lan) = lan_world();
        let _s = sim.add_node(
            lan,
            Box::new(WsServiceNode::new(
                vec![Description::Uri("urn:svc:print".into())],
                None,
                Codec::default(),
            )),
        );
        let c = sim.add_node(
            lan,
            Box::new(ClientNode::new(ClientConfig {
                attach: sds_core::AttachConfig {
                    bootstrap: sds_core::Bootstrap::PassiveOnly,
                    ..Default::default()
                },
                ..Default::default()
            })),
        );
        sim.run_until(secs(1));
        multicast_query(&mut sim, c, "urn:svc:print");
        sim.run_until(secs(6));
        let done = &sim.handler::<ClientNode>(c).unwrap().completed;
        assert_eq!(done[0].hits.len(), 1, "provider answered the probe directly");
    }

    #[test]
    fn managed_mode_proxy_answers_and_suppresses_providers() {
        let (mut sim, lan) = lan_world();
        let p = sim.add_node(lan, Box::new(WsProxyNode::new(None, secs(5), Codec::default())));
        let s = sim.add_node(
            lan,
            Box::new(WsServiceNode::new(
                vec![Description::Uri("urn:svc:print".into())],
                None,
                Codec::default(),
            )),
        );
        let c = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
        // Wait past the proxy's second beacon so the provider (added after
        // the proxy's initial beacon) learns a proxy is present.
        sim.run_until(secs(6));
        assert_eq!(sim.handler::<WsProxyNode>(p).unwrap().cache_len(), 1, "Hello cached");
        multicast_query(&mut sim, c, "urn:svc:print");
        sim.run_until(secs(11));
        let done = &sim.handler::<ClientNode>(c).unwrap().completed;
        assert_eq!(done[0].hits.len(), 1);
        assert_eq!(sim.handler::<WsServiceNode>(s).unwrap().answers_sent, 0, "provider silent");
        assert_eq!(sim.handler::<WsProxyNode>(p).unwrap().answers_sent, 1);
    }

    #[test]
    fn bye_removes_but_crash_leaves_stale_cache_entry() {
        let (mut sim, lan) = lan_world();
        let p = sim.add_node(lan, Box::new(WsProxyNode::new(None, secs(5), Codec::default())));
        let s1 = sim.add_node(
            lan,
            Box::new(WsServiceNode::new(
                vec![Description::Uri("urn:svc:a".into())],
                None,
                Codec::default(),
            )),
        );
        let s2 = sim.add_node(
            lan,
            Box::new(WsServiceNode::new(
                vec![Description::Uri("urn:svc:b".into())],
                None,
                Codec::default(),
            )),
        );
        sim.run_until(secs(1));
        assert_eq!(sim.handler::<WsProxyNode>(p).unwrap().cache_len(), 2);

        // Graceful leave sends Bye.
        sim.with_node::<WsServiceNode>(s1, |svc, ctx| svc.leave(ctx));
        sim.run_until(secs(2));
        assert_eq!(sim.handler::<WsProxyNode>(p).unwrap().cache_len(), 1);

        // A crash sends nothing: the entry stays forever.
        sim.crash_node(s2);
        sim.run_until(secs(300));
        assert_eq!(
            sim.handler::<WsProxyNode>(p).unwrap().cache_len(),
            1,
            "stale entry survives (the paper's proxy shortcoming)"
        );
    }
}
