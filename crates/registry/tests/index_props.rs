//! Equivalence properties for the indexed query path: on randomized stores
//! (random taxonomies, mixed description models, expired leases, removals,
//! renewals, out-of-ontology ClassIds straight "from the wire"), the
//! candidate-generation `evaluate` must return exactly the ranked hit vector
//! of the naive full scan — same hit set, same tie-break order — and
//! `summary` must agree with a from-scratch recount. Run under the
//! in-workspace seeded harness (`sds_rand::check`).

use std::sync::Arc;

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;

use sds_protocol::{
    Advertisement, Description, DescriptionTemplate, ModelId, QueryId, QueryMessage, QueryPayload,
    Uuid,
};
use sds_registry::{
    LeasePolicy, RegistryEngine, RegistrySummary, SemanticEvaluator, TemplateEvaluator,
    UriEvaluator,
};
use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::NodeId;

/// How many ids beyond the ontology count as "wire garbage": concepts that
/// decode fine but name nothing this registry can reason about.
const GHOST_CONCEPTS: u32 = 3;

/// A random multi-rooted DAG taxonomy: each class picks 0–2 parents among
/// its predecessors (0 parents = another root).
fn arb_ontology(rng: &mut Rng) -> Ontology {
    let n = rng.gen_range(2..14u32);
    let mut o = Ontology::new();
    let mut ids: Vec<ClassId> = Vec::new();
    for i in 0..n {
        let parents: Vec<ClassId> = match ids.len() {
            0 => Vec::new(),
            have => {
                let count = rng.gen_range(0..3usize).min(have);
                let mut p: Vec<ClassId> =
                    (0..count).map(|_| ids[rng.gen_range(0..have as u64) as usize]).collect();
                p.sort_unstable_by_key(|c| c.0);
                p.dedup();
                p
            }
        };
        ids.push(o.class(&format!("C{i}"), &parents));
    }
    o
}

/// A concept id, sometimes outside the ontology (the wire accepts any u32).
fn arb_concept(rng: &mut Rng, ontology_len: u32) -> ClassId {
    ClassId(rng.gen_range(0..u64::from(ontology_len + GHOST_CONCEPTS)) as u32)
}

fn arb_template(rng: &mut Rng) -> DescriptionTemplate {
    let name = (rng.gen_range(0..3u32) == 0).then(|| format!("n{}", rng.gen_range(0..3u32)));
    let type_uri = (rng.gen_range(0..2u32) == 0).then(|| format!("urn:t{}", rng.gen_range(0..3u32)));
    let attrs = gen::vec_of(rng, 0, 2, |r| {
        (format!("k{}", r.gen_range(0..2u32)), format!("v{}", r.gen_range(0..2u32)))
    });
    DescriptionTemplate { name, type_uri, attrs }
}

fn arb_description(rng: &mut Rng, ontology_len: u32) -> Description {
    match rng.gen_range(0..3u32) {
        0 => Description::Uri(format!("urn:u{}", rng.gen_range(0..5u32))),
        1 => Description::Template(arb_template(rng)),
        _ => {
            let category = arb_concept(rng, ontology_len);
            let outputs = gen::vec_of(rng, 0, 3, |r| arb_concept(r, ontology_len));
            let inputs = gen::vec_of(rng, 0, 2, |r| arb_concept(r, ontology_len));
            Description::Semantic(
                ServiceProfile::new(format!("svc{}", rng.gen_range(0..100u32)), category)
                    .with_outputs(&outputs)
                    .with_inputs(&inputs),
            )
        }
    }
}

fn arb_payload(rng: &mut Rng, ontology_len: u32) -> QueryPayload {
    match rng.gen_range(0..3u32) {
        0 => QueryPayload::Uri(format!("urn:u{}", rng.gen_range(0..5u32))),
        1 => QueryPayload::Template(arb_template(rng)),
        _ => {
            let category =
                (rng.gen_range(0..2u32) == 0).then(|| arb_concept(rng, ontology_len));
            let outputs = gen::vec_of(rng, 0, 2, |r| arb_concept(r, ontology_len));
            let provided_inputs = gen::vec_of(rng, 0, 2, |r| arb_concept(r, ontology_len));
            QueryPayload::Semantic(ServiceRequest {
                category,
                outputs,
                provided_inputs,
                qos: Vec::new(),
            })
        }
    }
}

#[derive(Debug)]
enum Op {
    Publish { id: u128, version: u32, lease_ms: u64 },
    Renew { id: u128 },
    Remove { id: u128 },
    Purge,
    Query { max: Option<u16> },
}

fn arb_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..8u32) {
        0 | 1 | 2 => Op::Publish {
            id: u128::from(rng.gen_range(0..12u64)),
            version: rng.gen_range(0..3u32),
            lease_ms: rng.gen_range(1..300u64),
        },
        3 => Op::Renew { id: u128::from(rng.gen_range(0..12u64)) },
        4 => Op::Remove { id: u128::from(rng.gen_range(0..12u64)) },
        5 => Op::Purge,
        _ => Op::Query {
            max: (rng.gen_range(0..2u32) == 0).then(|| rng.gen_range(0..4u64) as u16),
        },
    }
}

/// Recomputes the summary by scanning the live adverts, the pre-index way.
fn naive_summary(engine: &RegistryEngine, now: u64) -> RegistrySummary {
    let mut models: Vec<ModelId> = Vec::new();
    let mut count = 0u32;
    for a in engine.store().live(now) {
        count += 1;
        let m = a.advert.description.model();
        if !models.contains(&m) {
            models.push(m);
        }
    }
    models.sort_by_key(|m| m.wire_tag());
    RegistrySummary { advert_count: count, models }
}

#[test]
fn indexed_evaluate_equals_naive_full_scan() {
    Checker::new("indexed_evaluate_equals_naive_full_scan").run(|rng| {
        let ontology = arb_ontology(rng);
        let ontology_len = ontology.len() as u32;
        let idx = Arc::new(SubsumptionIndex::build(&ontology));

        let mut engine = RegistryEngine::new(LeasePolicy {
            default_ms: 50,
            max_ms: 100_000,
            leasing_enabled: true,
        });
        engine.register_evaluator(Box::new(UriEvaluator));
        engine.register_evaluator(Box::new(TemplateEvaluator));
        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));

        let ops = gen::vec_of(rng, 1, 60, arb_op);
        let mut now = 0u64;
        let mut seq = 0u64;
        for op in ops {
            // Time moves forward unevenly so leases straddle queries: some
            // adverts are live, some expired-but-unpurged, some purged.
            now += rng.gen_range(0..40u64);
            match op {
                Op::Publish { id, version, lease_ms } => {
                    let advert = Advertisement {
                        id: Uuid(id),
                        provider: NodeId(id as u32),
                        description: arb_description(rng, ontology_len),
                        version,
                    };
                    engine.publish(advert, NodeId(1), now, lease_ms);
                }
                Op::Renew { id } => {
                    engine.renew(Uuid(id), now);
                }
                Op::Remove { id } => {
                    engine.remove(Uuid(id));
                }
                Op::Purge => {
                    engine.purge(now);
                }
                Op::Query { max } => {
                    seq += 1;
                    let query = QueryMessage {
                        id: QueryId { origin: NodeId(99), seq },
                        payload: arb_payload(rng, ontology_len),
                        max_responses: max,
                        ttl: 0,
                        reply_to: None,
                    };
                    let indexed = engine.evaluate(&query, now);
                    let naive = engine.naive_evaluate(&query, now);
                    assert_eq!(
                        indexed, naive,
                        "indexed and naive evaluation diverged for {:?} at t={now}",
                        query.payload
                    );
                }
            }
            let expected_summary = naive_summary(&engine, now);
            assert_eq!(engine.summary(now), expected_summary, "summary diverged at t={now}");
        }
    });
}

#[test]
fn unlimited_queries_return_every_live_match() {
    // With no response cap and a category-free, output-free request, the
    // indexed path must still see every live semantic advert.
    Checker::new("unlimited_queries_return_every_live_match").run(|rng| {
        let ontology = arb_ontology(rng);
        let ontology_len = ontology.len() as u32;
        let idx = Arc::new(SubsumptionIndex::build(&ontology));
        let mut engine = RegistryEngine::new(LeasePolicy::default());
        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx)));

        let n = rng.gen_range(0..20u64);
        for i in 0..n {
            let advert = Advertisement {
                id: Uuid(u128::from(i)),
                provider: NodeId(i as u32),
                description: Description::Semantic(ServiceProfile::new(
                    format!("s{i}"),
                    arb_concept(rng, ontology_len),
                )),
                version: 1,
            };
            engine.publish(advert, NodeId(1), 0, 60_000);
        }
        let query = QueryMessage {
            id: QueryId { origin: NodeId(9), seq: 1 },
            payload: QueryPayload::Semantic(ServiceRequest::default()),
            max_responses: None,
            ttl: 0,
            reply_to: None,
        };
        let hits = engine.evaluate(&query, 1);
        assert_eq!(hits.len() as u64, n, "empty request matches everything live");
        assert_eq!(hits, engine.naive_evaluate(&query, 1));
    });
}
