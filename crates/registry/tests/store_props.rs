//! Property-based tests for the registry store: lease arithmetic, purge
//! correctness against a naive model, version monotonicity, and the
//! query-id dedup cache.

use proptest::prelude::*;

use sds_protocol::{Advertisement, Description, QueryId, Uuid};
use sds_registry::{LeasePolicy, RegistryStore, SeenQueries};
use sds_simnet::NodeId;

fn advert(id: u128, version: u32) -> Advertisement {
    Advertisement {
        id: Uuid(id),
        provider: NodeId(id as u32),
        description: Description::Uri(format!("urn:{id}")),
        version,
    }
}

#[derive(Clone, Debug)]
enum StoreOp {
    Publish { id: u128, version: u32, lease_until: u64 },
    Renew { id: u128, lease_until: u64 },
    Remove { id: u128 },
    Purge { now: u64 },
}

fn arb_store_op() -> impl Strategy<Value = StoreOp> {
    prop_oneof![
        (0u128..8, 0u32..4, 1u64..1_000).prop_map(|(id, version, lease_until)| {
            StoreOp::Publish { id, version, lease_until }
        }),
        (0u128..8, 1u64..1_000).prop_map(|(id, lease_until)| StoreOp::Renew { id, lease_until }),
        (0u128..8).prop_map(|id| StoreOp::Remove { id }),
        (0u64..1_000).prop_map(|now| StoreOp::Purge { now }),
    ]
}

/// Naive reference model of the store.
#[derive(Default)]
struct Model {
    adverts: std::collections::HashMap<u128, (u32, u64)>, // id → (version, lease_until)
}

proptest! {
    #[test]
    fn store_agrees_with_naive_model(ops in prop::collection::vec(arb_store_op(), 0..80)) {
        let mut store = RegistryStore::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                StoreOp::Publish { id, version, lease_until } => {
                    store.publish(advert(id, version), NodeId(0), 0, lease_until, 0);
                    match model.adverts.get_mut(&id) {
                        Some((v, l)) if version >= *v => {
                            *v = version;
                            *l = (*l).max(lease_until);
                        }
                        Some(_) => {} // stale version dropped
                        None => {
                            model.adverts.insert(id, (version, lease_until));
                        }
                    }
                }
                StoreOp::Renew { id, lease_until } => {
                    let known = store.renew(Uuid(id), lease_until);
                    prop_assert_eq!(known, model.adverts.contains_key(&id));
                    if let Some((_, l)) = model.adverts.get_mut(&id) {
                        *l = (*l).max(lease_until);
                    }
                }
                StoreOp::Remove { id } => {
                    let had = store.remove(Uuid(id));
                    prop_assert_eq!(had, model.adverts.remove(&id).is_some());
                }
                StoreOp::Purge { now } => {
                    let mut purged = store.purge_expired(now);
                    purged.sort();
                    let mut expected: Vec<Uuid> = model
                        .adverts
                        .iter()
                        .filter(|(_, &(_, l))| l <= now)
                        .map(|(&id, _)| Uuid(id))
                        .collect();
                    expected.sort();
                    model.adverts.retain(|_, &mut (_, l)| l > now);
                    prop_assert_eq!(purged, expected);
                }
            }
            prop_assert_eq!(store.len(), model.adverts.len());
            for (&id, &(version, lease_until)) in &model.adverts {
                let stored = store.get(&Uuid(id)).expect("model says present");
                prop_assert_eq!(stored.advert.version, version);
                prop_assert_eq!(stored.lease_until, lease_until);
            }
        }
    }

    #[test]
    fn lease_grants_are_bounded_and_monotone(
        now in 0u64..1_000_000,
        requested in 0u64..10_000_000,
        default_ms in 1u64..100_000,
        max_ms in 1u64..1_000_000,
    ) {
        let p = LeasePolicy { default_ms, max_ms, leasing_enabled: true };
        let granted = p.grant(now, requested);
        prop_assert!(granted > now, "a lease always lies in the future");
        prop_assert!(
            granted <= now + max_ms.max(default_ms),
            "never beyond the policy bound"
        );
        // Lease-less policy is infinite regardless of inputs.
        let un = LeasePolicy { leasing_enabled: false, ..p };
        prop_assert_eq!(un.grant(now, requested), u64::MAX);
    }

    #[test]
    fn seen_cache_drops_exactly_in_window_duplicates(
        events in prop::collection::vec((0u64..16, 0u64..5_000), 1..60),
        retention in 1u64..2_000,
    ) {
        let mut cache = SeenQueries::new(retention);
        let mut sorted = events.clone();
        sorted.sort_by_key(|&(_, t)| t);
        let mut last_accepted: std::collections::HashMap<u64, u64> = Default::default();
        for (seq, t) in sorted {
            let id = QueryId { origin: NodeId(1), seq };
            let fresh = cache.first_sighting(id, t);
            let expected = match last_accepted.get(&seq) {
                Some(&prev) => t.saturating_sub(prev) >= retention,
                None => true,
            };
            prop_assert_eq!(fresh, expected, "seq {} at {}", seq, t);
            if fresh {
                last_accepted.insert(seq, t);
            }
        }
    }
}
