//! Property-based tests for the registry store: lease arithmetic, purge
//! correctness against a naive model, version monotonicity, and the
//! query-id dedup cache. Run under the in-workspace seeded harness
//! (`sds_rand::check`).

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;

use sds_protocol::{Advertisement, Description, QueryId, Uuid};
use sds_registry::{LeasePolicy, RegistryStore, SeenQueries};
use sds_simnet::NodeId;

fn advert(id: u128, version: u32) -> Advertisement {
    Advertisement {
        id: Uuid(id),
        provider: NodeId(id as u32),
        description: Description::Uri(format!("urn:{id}")),
        version,
    }
}

#[derive(Clone, Debug)]
enum StoreOp {
    Publish { id: u128, version: u32, lease_until: u64, from_provider: bool },
    Renew { id: u128, lease_until: u64 },
    Remove { id: u128 },
    Purge { now: u64 },
}

fn arb_store_op(rng: &mut Rng) -> StoreOp {
    match rng.gen_range(0..4u32) {
        0 => StoreOp::Publish {
            id: u128::from(rng.gen_range(0..8u64)),
            version: rng.gen_range(0..4u32),
            lease_until: rng.gen_range(1..1_000u64),
            from_provider: rng.gen_range(0..2u32) == 0,
        },
        1 => StoreOp::Renew {
            id: u128::from(rng.gen_range(0..8u64)),
            lease_until: rng.gen_range(1..1_000u64),
        },
        2 => StoreOp::Remove { id: u128::from(rng.gen_range(0..8u64)) },
        _ => StoreOp::Purge { now: rng.gen_range(0..1_000u64) },
    }
}

/// Naive reference model of the store.
#[derive(Default)]
struct Model {
    adverts: std::collections::HashMap<u128, (u32, u64)>, // id → (version, lease_until)
}

#[test]
fn store_agrees_with_naive_model() {
    Checker::new("store_agrees_with_naive_model").run(|rng| {
        let ops = gen::vec_of(rng, 0, 80, arb_store_op);
        let mut store = RegistryStore::new();
        let mut model = Model::default();
        for op in ops {
            match op {
                StoreOp::Publish { id, version, lease_until, from_provider } => {
                    // The advert's provider is NodeId(id); third-party
                    // sources model replication forwards.
                    let source = if from_provider { NodeId(id as u32) } else { NodeId(999) };
                    store.publish(advert(id, version), source, 0, lease_until, 0);
                    match model.adverts.get_mut(&id) {
                        Some((v, l)) if version >= *v => {
                            *v = version;
                            *l = (*l).max(lease_until);
                        }
                        Some((_, l)) if from_provider => {
                            // Stale content dropped, but a publish from the
                            // provider itself is still a liveness heartbeat.
                            *l = (*l).max(lease_until);
                        }
                        Some(_) => {} // stale version from a third party: dropped whole
                        None => {
                            model.adverts.insert(id, (version, lease_until));
                        }
                    }
                }
                StoreOp::Renew { id, lease_until } => {
                    let known = store.renew(Uuid(id), lease_until);
                    assert_eq!(known, model.adverts.contains_key(&id));
                    if let Some((_, l)) = model.adverts.get_mut(&id) {
                        *l = (*l).max(lease_until);
                    }
                }
                StoreOp::Remove { id } => {
                    let had = store.remove(Uuid(id));
                    assert_eq!(had, model.adverts.remove(&id).is_some());
                }
                StoreOp::Purge { now } => {
                    let mut purged = store.purge_expired(now);
                    purged.sort();
                    let mut expected: Vec<Uuid> = model
                        .adverts
                        .iter()
                        .filter(|(_, &(_, l))| l <= now)
                        .map(|(&id, _)| Uuid(id))
                        .collect();
                    expected.sort();
                    model.adverts.retain(|_, &mut (_, l)| l > now);
                    assert_eq!(purged, expected);
                }
            }
            assert_eq!(store.len(), model.adverts.len());
            for (&id, &(version, lease_until)) in &model.adverts {
                let stored = store.get(&Uuid(id)).expect("model says present");
                assert_eq!(stored.advert.version, version);
                assert_eq!(stored.lease_until, lease_until);
            }
        }
    });
}

#[test]
fn lease_grants_are_bounded_and_monotone() {
    Checker::new("lease_grants_are_bounded_and_monotone").run(|rng| {
        let now = rng.gen_range(0..1_000_000u64);
        let requested = rng.gen_range(0..10_000_000u64);
        let default_ms = rng.gen_range(1..100_000u64);
        let max_ms = rng.gen_range(1..1_000_000u64);
        let p = LeasePolicy { default_ms, max_ms, leasing_enabled: true };
        let granted = p.grant(now, requested);
        assert!(granted > now, "a lease always lies in the future");
        assert!(
            granted <= now + max_ms.max(default_ms),
            "never beyond the policy bound"
        );
        // Lease-less policy is infinite regardless of inputs.
        let un = LeasePolicy { leasing_enabled: false, ..p };
        assert_eq!(un.grant(now, requested), u64::MAX);
    });
}

#[test]
fn seen_cache_drops_exactly_in_window_duplicates() {
    Checker::new("seen_cache_drops_exactly_in_window_duplicates").run(|rng| {
        let events = gen::vec_of(rng, 1, 60, |r| (r.gen_range(0..16u64), r.gen_range(0..5_000u64)));
        let retention = rng.gen_range(1..2_000u64);
        let mut cache = SeenQueries::new(retention);
        let mut sorted = events;
        sorted.sort_by_key(|&(_, t)| t);
        let mut last_accepted: std::collections::HashMap<u64, u64> = Default::default();
        for (seq, t) in sorted {
            let id = QueryId { origin: NodeId(1), seq };
            let fresh = cache.first_sighting(id, t);
            let expected = match last_accepted.get(&seq) {
                Some(&prev) => t.saturating_sub(prev) >= retention,
                None => true,
            };
            assert_eq!(fresh, expected, "seq {seq} at {t}");
            if fresh {
                last_accepted.insert(seq, t);
            }
        }
    });
}
