//! Allocation audit for batched evaluation's duplicate handling.
//!
//! `evaluate_batch` coalesces identical in-flight queries to one evaluation
//! and returns duplicates as slot indices into the unique results — it used
//! to deep-clone the result vector once per duplicate, so a 1000-way
//! coalesced burst paid 1000 copies of every ranked hit. This binary
//! installs a counting global allocator and pins the fix: growing a burst
//! by duplicates only must cost O(1) small allocations per duplicate (the
//! coalescing key), nothing proportional to the hit vectors.
//!
//! One `#[test]` because the counter is process-global and the libtest
//! harness runs separate tests on concurrent threads.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sds_protocol::{
    Advertisement, Description, QueryId, QueryMessage, QueryPayload, Uuid,
};
use sds_registry::{
    LeasePolicy, SemanticEvaluator, ShardedEngine, TemplateEvaluator, UriEvaluator,
};
use sds_semantic::{Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::NodeId;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// A small taxonomy with one category whose services all match a
/// `for_category` request — enough hits that a per-duplicate deep clone
/// would be loud in the allocation count.
fn engine_with_hits(hits: usize) -> (ShardedEngine, QueryPayload) {
    let mut ont = Ontology::new();
    let root = ont.class("Root", &[]);
    let cat = ont.class("Cat", &[root]);
    let leaf = ont.class("Leaf", &[cat]);
    let idx = Arc::new(SubsumptionIndex::build(&ont));
    let mut e = ShardedEngine::new(LeasePolicy::default(), 4, Some(&idx));
    e.register_evaluator(Box::new(UriEvaluator));
    e.register_evaluator(Box::new(TemplateEvaluator));
    e.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
    for i in 0..hits {
        let advert = Advertisement {
            id: Uuid(i as u128 + 1),
            provider: NodeId(i as u32),
            description: Description::Semantic(
                ServiceProfile::new(format!("svc{i}"), leaf).with_outputs(&[leaf]),
            ),
            version: 1,
        };
        e.publish(advert, NodeId(0), 0, 1_000_000);
    }
    (e, QueryPayload::Semantic(ServiceRequest::for_category(cat)))
}

fn burst(payload: &QueryPayload, copies: usize) -> Vec<QueryMessage> {
    (0..copies)
        .map(|seq| QueryMessage {
            id: QueryId { origin: NodeId(9), seq: seq as u64 },
            payload: payload.clone(),
            max_responses: None,
            ttl: 0,
            reply_to: None,
        })
        .collect()
}

#[test]
fn coalesced_duplicates_do_not_clone_result_vectors() {
    const HITS: usize = 64;
    const SMALL: usize = 100;
    const BIG: usize = 1_000;

    let (engine, payload) = engine_with_hits(HITS);
    let small_burst = burst(&payload, SMALL);
    let big_burst = burst(&payload, BIG);

    // Warm up: hash-map capacities, memo vectors, and the result path all
    // reach steady state before anything is measured.
    let warm = engine.evaluate_batch(&big_burst, 1);
    assert_eq!(warm.len(), BIG);
    assert_eq!(warm.unique_evaluations(), 1, "identical copies must coalesce to one");
    assert_eq!(warm.hits(0).len(), HITS);
    // Structural sharing: the first and last duplicate borrow the *same*
    // unique vector, not equal copies.
    assert!(
        std::ptr::eq(warm.hits(0), warm.hits(BIG - 1)),
        "duplicates must share their unique slot's storage"
    );

    let before_small = allocations();
    let small_out = engine.evaluate_batch(&small_burst, 1);
    let small_allocs = allocations() - before_small;

    let before_big = allocations();
    let big_out = engine.evaluate_batch(&big_burst, 1);
    let big_allocs = allocations() - before_big;

    assert_eq!(small_out.unique_evaluations(), 1);
    assert_eq!(big_out.unique_evaluations(), 1);
    assert_eq!(small_out.hits(SMALL - 1), big_out.hits(BIG - 1));

    // The two bursts differ only in duplicate count: same unique query, same
    // hits. Each extra duplicate may cost the coalescing key encoding (one
    // Vec<u8>) and amortized table growth — call it 4 small allocations of
    // slack — but must NOT re-clone the 64-hit result vector, whose semantic
    // profiles alone would dwarf that budget (each hit clones a name String
    // plus output/input vectors, ~4+ allocations per hit).
    let extra = (BIG - SMALL) as u64;
    let per_duplicate_budget = 4 * extra;
    assert!(
        big_allocs <= small_allocs + per_duplicate_budget,
        "duplicate growth allocated too much: {SMALL}-burst cost {small_allocs}, \
         {BIG}-burst cost {big_allocs}, budget {per_duplicate_budget} over the small burst \
         (a per-duplicate deep clone would cost ~{} allocations)",
        extra * (HITS as u64) * 4
    );
}
