//! Equivalence properties for the sharded data plane: on randomized
//! taxonomies, stores, and lease schedules, [`ShardedEngine`] at 1, 2, 4,
//! and 8 shards must be observably identical to [`RegistryEngine`] — same
//! publish outcomes and granted leases, same purge sets, byte-identical
//! ranked hit vectors (which `RegistryEngine` itself locks against
//! `naive_evaluate`), and identical summaries. Batched evaluation must
//! coalesce duplicate queries without changing a single result byte, a
//! query cache fed by `evaluate_with_validity` plus the node's invalidation
//! rules must never serve bytes a fresh evaluation would not return, and
//! the parallel data plane (`set_workers`) must be byte-identical to the
//! sequential path at every worker count (sweep the suite under
//! `SDS_REGISTRY_WORKERS=1/2/4` to pin a divergence to its count, as
//! `scripts/ci.sh` does).

use std::sync::Arc;

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;

use sds_protocol::{
    Advertisement, Description, DescriptionTemplate, QueryId, QueryMessage, QueryPayload, Uuid,
};
use sds_registry::{
    cache_key, LeasePolicy, PublishOutcome, QueryCache, RegistryEngine, SemanticEvaluator,
    ShardedEngine, TemplateEvaluator, UriEvaluator,
};
use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::NodeId;

const GHOST_CONCEPTS: u32 = 3;
const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn arb_ontology(rng: &mut Rng) -> Ontology {
    let n = rng.gen_range(2..14u32);
    let mut o = Ontology::new();
    let mut ids: Vec<ClassId> = Vec::new();
    for i in 0..n {
        let parents: Vec<ClassId> = match ids.len() {
            0 => Vec::new(),
            have => {
                let count = rng.gen_range(0..3usize).min(have);
                let mut p: Vec<ClassId> =
                    (0..count).map(|_| ids[rng.gen_range(0..have as u64) as usize]).collect();
                p.sort_unstable_by_key(|c| c.0);
                p.dedup();
                p
            }
        };
        ids.push(o.class(&format!("C{i}"), &parents));
    }
    o
}

fn arb_concept(rng: &mut Rng, ontology_len: u32) -> ClassId {
    ClassId(rng.gen_range(0..u64::from(ontology_len + GHOST_CONCEPTS)) as u32)
}

fn arb_template(rng: &mut Rng) -> DescriptionTemplate {
    let name = (rng.gen_range(0..3u32) == 0).then(|| format!("n{}", rng.gen_range(0..3u32)));
    let type_uri = (rng.gen_range(0..2u32) == 0).then(|| format!("urn:t{}", rng.gen_range(0..3u32)));
    let attrs = gen::vec_of(rng, 0, 2, |r| {
        (format!("k{}", r.gen_range(0..2u32)), format!("v{}", r.gen_range(0..2u32)))
    });
    DescriptionTemplate { name, type_uri, attrs }
}

fn arb_description(rng: &mut Rng, ontology_len: u32) -> Description {
    match rng.gen_range(0..3u32) {
        0 => Description::Uri(format!("urn:u{}", rng.gen_range(0..5u32))),
        1 => Description::Template(arb_template(rng)),
        _ => {
            let category = arb_concept(rng, ontology_len);
            let outputs = gen::vec_of(rng, 0, 3, |r| arb_concept(r, ontology_len));
            let inputs = gen::vec_of(rng, 0, 2, |r| arb_concept(r, ontology_len));
            Description::Semantic(
                ServiceProfile::new(format!("svc{}", rng.gen_range(0..100u32)), category)
                    .with_outputs(&outputs)
                    .with_inputs(&inputs),
            )
        }
    }
}

fn arb_payload(rng: &mut Rng, ontology_len: u32) -> QueryPayload {
    match rng.gen_range(0..3u32) {
        0 => QueryPayload::Uri(format!("urn:u{}", rng.gen_range(0..5u32))),
        1 => QueryPayload::Template(arb_template(rng)),
        _ => {
            let category =
                (rng.gen_range(0..2u32) == 0).then(|| arb_concept(rng, ontology_len));
            let outputs = gen::vec_of(rng, 0, 2, |r| arb_concept(r, ontology_len));
            let provided_inputs = gen::vec_of(rng, 0, 2, |r| arb_concept(r, ontology_len));
            QueryPayload::Semantic(ServiceRequest {
                category,
                outputs,
                provided_inputs,
                qos: Vec::new(),
            })
        }
    }
}

#[derive(Debug)]
enum Op {
    Publish { id: u128, version: u32, lease_ms: u64, from_provider: bool },
    Renew { id: u128 },
    Remove { id: u128 },
    Purge,
    Query { max: Option<u16> },
}

fn arb_op(rng: &mut Rng) -> Op {
    match rng.gen_range(0..8u32) {
        0 | 1 | 2 => Op::Publish {
            id: u128::from(rng.gen_range(0..12u64)),
            version: rng.gen_range(0..3u32),
            lease_ms: rng.gen_range(1..300u64),
            from_provider: rng.gen_range(0..2u32) == 0,
        },
        3 => Op::Renew { id: u128::from(rng.gen_range(0..12u64)) },
        4 => Op::Remove { id: u128::from(rng.gen_range(0..12u64)) },
        5 => Op::Purge,
        _ => Op::Query {
            max: (rng.gen_range(0..2u32) == 0).then(|| rng.gen_range(0..4u64) as u16),
        },
    }
}

fn reference_engine(idx: &Arc<SubsumptionIndex>) -> RegistryEngine {
    let mut e = RegistryEngine::new(LeasePolicy {
        default_ms: 50,
        max_ms: 100_000,
        leasing_enabled: true,
    });
    e.register_evaluator(Box::new(UriEvaluator));
    e.register_evaluator(Box::new(TemplateEvaluator));
    e.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
    e
}

fn sharded_engine(shards: usize, idx: &Arc<SubsumptionIndex>) -> ShardedEngine {
    let mut e = ShardedEngine::new(
        LeasePolicy { default_ms: 50, max_ms: 100_000, leasing_enabled: true },
        shards,
        Some(idx),
    );
    e.register_evaluator(Box::new(UriEvaluator));
    e.register_evaluator(Box::new(TemplateEvaluator));
    e.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
    e
}

#[test]
fn sharded_engine_matches_unsharded_at_every_shard_count() {
    Checker::new("sharded_engine_matches_unsharded_at_every_shard_count").run(|rng| {
        let ontology = arb_ontology(rng);
        let ontology_len = ontology.len() as u32;
        let idx = Arc::new(SubsumptionIndex::build(&ontology));

        let mut reference = reference_engine(&idx);
        let mut sharded: Vec<ShardedEngine> =
            SHARD_COUNTS.iter().map(|&n| sharded_engine(n, &idx)).collect();

        let ops = gen::vec_of(rng, 1, 60, arb_op);
        let mut now = 0u64;
        let mut seq = 0u64;
        for op in ops {
            now += rng.gen_range(0..40u64);
            match op {
                Op::Publish { id, version, lease_ms, from_provider } => {
                    let advert = Advertisement {
                        id: Uuid(id),
                        provider: NodeId(id as u32),
                        description: arb_description(rng, ontology_len),
                        version,
                    };
                    let source = if from_provider { NodeId(id as u32) } else { NodeId(999) };
                    let want = reference.publish(advert.clone(), source, now, lease_ms);
                    for (engine, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                        let got = engine.publish(advert.clone(), source, now, lease_ms);
                        assert_eq!(got, want, "publish outcome diverged at {n} shards, t={now}");
                    }
                }
                Op::Renew { id } => {
                    let want = reference.renew(Uuid(id), now);
                    for (engine, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                        let got = engine.renew(Uuid(id), now);
                        assert_eq!(got, want, "renew grant diverged at {n} shards, t={now}");
                    }
                }
                Op::Remove { id } => {
                    let want = reference.remove(Uuid(id));
                    for (engine, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                        assert_eq!(engine.remove(Uuid(id)), want, "remove diverged at {n} shards");
                    }
                }
                Op::Purge => {
                    let want = reference.purge(now);
                    for (engine, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                        let got = engine.purge(now);
                        assert_eq!(got, want, "purge set diverged at {n} shards, t={now}");
                    }
                }
                Op::Query { max } => {
                    seq += 1;
                    let query = QueryMessage {
                        id: QueryId { origin: NodeId(99), seq },
                        payload: arb_payload(rng, ontology_len),
                        max_responses: max,
                        ttl: 0,
                        reply_to: None,
                    };
                    // The unsharded engine is itself locked against the naive
                    // full scan; assert against both to keep the chain tight.
                    let want = reference.evaluate(&query, now);
                    assert_eq!(want, reference.naive_evaluate(&query, now));
                    for (engine, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                        let got = engine.evaluate(&query, now);
                        assert_eq!(
                            got, want,
                            "ranked hits diverged at {n} shards for {:?} at t={now}",
                            query.payload
                        );
                    }
                }
            }
            let want = reference.summary(now);
            for (engine, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                assert_eq!(engine.summary(now), want, "summary diverged at {n} shards, t={now}");
            }
            let want_len = reference.store().len();
            for (engine, &n) in sharded.iter_mut().zip(&SHARD_COUNTS) {
                assert_eq!(engine.store().len(), want_len, "store size diverged at {n} shards");
            }
        }
    });
}

#[test]
fn batched_evaluation_coalesces_without_changing_results() {
    Checker::new("batched_evaluation_coalesces_without_changing_results").run(|rng| {
        let ontology = arb_ontology(rng);
        let ontology_len = ontology.len() as u32;
        let idx = Arc::new(SubsumptionIndex::build(&ontology));
        let mut engine = sharded_engine(rng.gen_range(1..9u64) as usize, &idx);

        let adverts = rng.gen_range(0..16u64);
        for i in 0..adverts {
            let advert = Advertisement {
                id: Uuid(u128::from(i)),
                provider: NodeId(i as u32),
                description: arb_description(rng, ontology_len),
                version: 1,
            };
            engine.publish(advert, NodeId(1), 0, rng.gen_range(1..300u64));
        }
        let now = rng.gen_range(0..200u64);

        // A burst with deliberate duplicates: a few distinct payloads, many
        // queries drawing from them.
        let distinct: Vec<(QueryPayload, Option<u16>)> = (0..rng.gen_range(1..5u64))
            .map(|_| {
                let payload = arb_payload(rng, ontology_len);
                let max = (rng.gen_range(0..2u32) == 0).then(|| rng.gen_range(0..4u64) as u16);
                (payload, max)
            })
            .collect();
        let queries: Vec<QueryMessage> = (0..rng.gen_range(1..20u64))
            .map(|seq| {
                let (payload, max) = &distinct[rng.gen_range(0..distinct.len() as u64) as usize];
                QueryMessage {
                    id: QueryId { origin: NodeId(7), seq },
                    payload: payload.clone(),
                    max_responses: *max,
                    ttl: 0,
                    reply_to: None,
                }
            })
            .collect();

        let batch = engine.evaluate_batch(&queries, now);
        assert_eq!(batch.len(), queries.len(), "one result per input, in order");
        for (q, hits) in queries.iter().zip(batch.iter()) {
            assert_eq!(
                hits,
                &engine.evaluate(q, now)[..],
                "batched result diverged from a lone evaluation for {:?}",
                q.payload
            );
        }
        // Coalescing: N identical in-flight queries cost one evaluation.
        let mut keys: Vec<_> = queries
            .iter()
            .map(|q| cache_key(&q.payload, q.max_responses))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(
            batch.unique_evaluations(),
            keys.len(),
            "evaluations must equal distinct (payload, cap) pairs"
        );
    });
}

/// The worker counts the parallel-equivalence property sweeps: pinned to the
/// `SDS_REGISTRY_WORKERS` override when set (so `scripts/ci.sh` can attribute
/// a divergence to its count), else 1, 2, and 4. The count-1 engine doubles
/// as the sequential reference.
fn worker_counts() -> Vec<usize> {
    match sds_registry::pool::env_workers() {
        Some(w) => {
            let mut counts = vec![1];
            if w != 1 {
                counts.push(w);
            }
            counts
        }
        None => vec![1, 2, 4],
    }
}

#[test]
fn parallel_data_plane_matches_sequential_at_every_worker_count() {
    // The worker-count unobservability contract (DESIGN §16): the same op
    // sequence driven through engines differing only in `set_workers` must
    // produce byte-identical outcomes, grants, purge sets, ranked hits,
    // batch results, and summaries. Shard counts vary per case so the
    // parallel paths (broadcast fan-out, per-shard batch queues) all fire.
    Checker::new("parallel_data_plane_matches_sequential_at_every_worker_count").run(|rng| {
        let ontology = arb_ontology(rng);
        let ontology_len = ontology.len() as u32;
        let idx = Arc::new(SubsumptionIndex::build(&ontology));
        let counts = worker_counts();
        let shards = rng.gen_range(1..9u64) as usize;
        let mut engines: Vec<ShardedEngine> = counts
            .iter()
            .map(|&w| {
                let mut e = sharded_engine(shards, &idx);
                e.set_workers(w);
                e
            })
            .collect();

        let ops = gen::vec_of(rng, 1, 60, arb_op);
        let mut now = 0u64;
        let mut seq = 0u64;
        for op in ops {
            now += rng.gen_range(0..40u64);
            match op {
                Op::Publish { id, version, lease_ms, from_provider } => {
                    let advert = Advertisement {
                        id: Uuid(id),
                        provider: NodeId(id as u32),
                        description: arb_description(rng, ontology_len),
                        version,
                    };
                    let source = if from_provider { NodeId(id as u32) } else { NodeId(999) };
                    let (reference, rest) = engines.split_first_mut().expect("counts nonempty");
                    let want = reference.publish(advert.clone(), source, now, lease_ms);
                    for (engine, &w) in rest.iter_mut().zip(&counts[1..]) {
                        let got = engine.publish(advert.clone(), source, now, lease_ms);
                        assert_eq!(got, want, "publish outcome diverged at {w} workers, t={now}");
                    }
                }
                Op::Renew { id } => {
                    let (reference, rest) = engines.split_first_mut().expect("counts nonempty");
                    let want = reference.renew(Uuid(id), now);
                    for (engine, &w) in rest.iter_mut().zip(&counts[1..]) {
                        assert_eq!(
                            engine.renew(Uuid(id), now),
                            want,
                            "renew grant diverged at {w} workers, t={now}"
                        );
                    }
                }
                Op::Remove { id } => {
                    let (reference, rest) = engines.split_first_mut().expect("counts nonempty");
                    let want = reference.remove(Uuid(id));
                    for (engine, &w) in rest.iter_mut().zip(&counts[1..]) {
                        assert_eq!(engine.remove(Uuid(id)), want, "remove diverged at {w} workers");
                    }
                }
                Op::Purge => {
                    let (reference, rest) = engines.split_first_mut().expect("counts nonempty");
                    let want = reference.purge(now);
                    for (engine, &w) in rest.iter_mut().zip(&counts[1..]) {
                        assert_eq!(
                            engine.purge(now),
                            want,
                            "purge set diverged at {w} workers, t={now}"
                        );
                    }
                }
                Op::Query { max } => {
                    // Drive both read paths: a lone evaluation and a small
                    // burst with duplicates through evaluate_batch.
                    seq += 1;
                    let query = QueryMessage {
                        id: QueryId { origin: NodeId(99), seq },
                        payload: arb_payload(rng, ontology_len),
                        max_responses: max,
                        ttl: 0,
                        reply_to: None,
                    };
                    let mut batch_queries = vec![query.clone(); 3];
                    batch_queries.push(QueryMessage {
                        id: QueryId { origin: NodeId(99), seq },
                        payload: arb_payload(rng, ontology_len),
                        max_responses: max,
                        ttl: 0,
                        reply_to: None,
                    });
                    let want = engines[0].evaluate(&query, now);
                    let want_batch = engines[0].evaluate_batch(&batch_queries, now);
                    for (engine, &w) in engines.iter().zip(&counts).skip(1) {
                        assert_eq!(
                            engine.evaluate(&query, now),
                            want,
                            "ranked hits diverged at {w} workers for {:?}, t={now}",
                            query.payload
                        );
                        let got = engine.evaluate_batch(&batch_queries, now);
                        assert_eq!(
                            got.unique_hits, want_batch.unique_hits,
                            "batch unique hits diverged at {w} workers, t={now}"
                        );
                        assert_eq!(
                            got.slot_of, want_batch.slot_of,
                            "batch slot mapping diverged at {w} workers, t={now}"
                        );
                    }
                }
            }
            let (reference, rest) = engines.split_first_mut().expect("counts nonempty");
            let want = reference.summary(now);
            for (engine, &w) in rest.iter_mut().zip(&counts[1..]) {
                assert_eq!(engine.summary(now), want, "summary diverged at {w} workers, t={now}");
            }
        }
    });
}

#[test]
fn cache_served_bytes_always_match_a_fresh_evaluation() {
    // Drives a cache exactly the way `RegistryNode` does — lookup before
    // evaluation, `evaluate_with_validity` on miss, the same invalidation
    // rules on publish/renew/remove — and checks every served result against
    // a fresh evaluation, across lease expiry, resurrection, and updates.
    Checker::new("cache_served_bytes_always_match_a_fresh_evaluation").run(|rng| {
        let ontology = arb_ontology(rng);
        let ontology_len = ontology.len() as u32;
        let idx = Arc::new(SubsumptionIndex::build(&ontology));
        let mut engine = sharded_engine(rng.gen_range(1..9u64) as usize, &idx);
        let mut cache = QueryCache::new(rng.gen_range(1..32u64) as usize);

        let ops = gen::vec_of(rng, 1, 60, arb_op);
        let mut now = 0u64;
        let mut seq = 0u64;
        for op in ops {
            now += rng.gen_range(0..40u64);
            match op {
                Op::Publish { id, version, lease_ms, from_provider } => {
                    let advert = Advertisement {
                        id: Uuid(id),
                        provider: NodeId(id as u32),
                        description: arb_description(rng, ontology_len),
                        version,
                    };
                    let source = if from_provider { NodeId(id as u32) } else { NodeId(999) };
                    let before = engine
                        .store()
                        .get(&advert.id)
                        .map(|s| (s.advert.clone(), s.is_live(now)));
                    let (outcome, _) = engine.publish(advert.clone(), source, now, lease_ms);
                    match (outcome, &before) {
                        (PublishOutcome::New, _) => {
                            cache.invalidate_for_advert(&advert, Some(&idx));
                        }
                        (PublishOutcome::Updated, Some((old, _))) => {
                            cache.invalidate_for_advert(old, Some(&idx));
                            cache.invalidate_for_advert(&advert, Some(&idx));
                        }
                        (PublishOutcome::Updated, None) => {
                            cache.invalidate_for_advert(&advert, Some(&idx));
                        }
                        (PublishOutcome::Unchanged, Some((_, false))) => {
                            cache.invalidate_for_advert(&advert, Some(&idx));
                        }
                        (PublishOutcome::StaleVersion, Some((old, false))) => {
                            if engine.store().get(&advert.id).is_some_and(|s| s.is_live(now)) {
                                cache.invalidate_for_advert(old, Some(&idx));
                            }
                        }
                        _ => {}
                    }
                }
                Op::Renew { id } => {
                    let revived = engine
                        .store()
                        .get(&Uuid(id))
                        .and_then(|s| (!s.is_live(now)).then(|| s.advert.clone()));
                    let (known, _) = engine.renew(Uuid(id), now);
                    if known {
                        if let Some(advert) = revived {
                            cache.invalidate_for_advert(&advert, Some(&idx));
                        }
                    }
                }
                Op::Remove { id } => {
                    let removed = engine
                        .store()
                        .get(&Uuid(id))
                        .and_then(|s| s.is_live(now).then(|| s.advert.clone()));
                    engine.remove(Uuid(id));
                    if let Some(advert) = removed {
                        cache.invalidate_for_advert(&advert, Some(&idx));
                    }
                }
                Op::Purge => {
                    // Expiry needs no invalidation: validity already ends at
                    // the earliest returned lease.
                    engine.purge(now);
                }
                Op::Query { max } => {
                    seq += 1;
                    let query = QueryMessage {
                        id: QueryId { origin: NodeId(99), seq },
                        payload: arb_payload(rng, ontology_len),
                        max_responses: max,
                        ttl: 0,
                        reply_to: None,
                    };
                    let fresh = engine.evaluate(&query, now);
                    let key = cache_key(&query.payload, query.max_responses);
                    if let Some(cached) = cache.get(&key, now) {
                        assert_eq!(
                            cached,
                            &fresh[..],
                            "cache served stale bytes for {:?} at t={now}",
                            query.payload
                        );
                    } else {
                        let (hits, valid_until) = engine.evaluate_with_validity(&query, now);
                        assert_eq!(hits, fresh);
                        cache.insert(key, &query.payload, hits, valid_until, now);
                    }
                }
            }
        }
    });
}
