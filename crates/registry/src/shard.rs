//! Semantic partitioning and query routing for the sharded data plane.
//!
//! The advert space is split across registry worker shards so query
//! evaluation touches one shard in the common case. The partition key is
//! *relatedness*: the [`SubsumptionIndex`] closure bitsets induce an
//! undirected relatedness graph over classes (x — y when one subsumes the
//! other), and its weakly-connected components are the finest grouping with
//! the property that two related concepts always land in the same group.
//! Everything the built-in matchmaker does — category subsumption, output
//! coverage, candidate generation over `related_concepts` — stays inside one
//! component, so routing a query to its requested concept's component shard
//! can never lose a match (the soundness argument lives on
//! [`ShardRouter::route`] and DESIGN §12).
//!
//! URI and typed-template descriptions match on exact string equality, so
//! they shard by a deterministic string hash instead; the FNV-1a below is
//! fixed (the std hasher is randomly seeded per process and would make shard
//! assignment — and therefore anything derived from it — nondeterministic).
//!
//! Everything here is immutable after construction (plain vectors, no
//! interior mutability), which is what lets the parallel data plane consult
//! the router from scoped worker threads through a shared `&ShardRouter`
//! with no synchronization (see DESIGN §16).

use sds_protocol::{Advertisement, Description, QueryPayload};
use sds_semantic::{ClassId, SubsumptionIndex};

/// Home masks are `u64` bitmaps, one bit per shard.
pub const MAX_SHARDS: usize = 64;

/// Weakly-connected components of the taxonomy's relatedness graph, computed
/// once per ontology with a union-find over each class's ancestor set
/// (uniting a class with its ancestors also covers the descendant direction,
/// since the graph is undirected).
#[derive(Debug)]
pub struct SemanticPartitions {
    /// Per class: the root class index of its component.
    component: Vec<u32>,
}

impl SemanticPartitions {
    pub fn build(idx: &SubsumptionIndex) -> Self {
        let n = idx.len();
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut i: u32) -> u32 {
            while parent[i as usize] != i {
                parent[i as usize] = parent[parent[i as usize] as usize]; // path halving
                i = parent[i as usize];
            }
            i
        }
        for i in 0..n {
            for a in idx.ancestors(ClassId(i as u32)) {
                let (ra, rb) = (find(&mut parent, i as u32), find(&mut parent, a.0));
                // Union by smaller root index keeps component ids stable
                // regardless of visit order.
                if ra != rb {
                    let (lo, hi) = (ra.min(rb), ra.max(rb));
                    parent[hi as usize] = lo;
                }
            }
        }
        let component = (0..n as u32).map(|i| find(&mut parent, i)).collect();
        Self { component }
    }

    /// The component id of `c`. Out-of-ontology ("ghost") class ids arrive
    /// from the wire and relate only to themselves, so each is its own
    /// singleton component, derived from the raw id.
    pub fn component_of(&self, c: ClassId) -> u32 {
        match self.component.get(c.index()) {
            Some(&root) => root,
            None => (self.component.len() as u32).wrapping_add(c.0),
        }
    }

    /// Number of distinct components among in-ontology classes.
    pub fn component_count(&self) -> usize {
        let mut roots: Vec<u32> = self.component.clone();
        roots.sort_unstable();
        roots.dedup();
        roots.len()
    }
}

/// Where one query's matches can live.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Route {
    /// Every possible match is homed at this shard.
    One(usize),
    /// The query constrains nothing the partitioning covers; all shards hold
    /// potential matches.
    Broadcast,
}

/// Maps adverts to their home shard set and queries to the shards that must
/// evaluate them. Routing and homing share every decision, which is what the
/// soundness argument reduces to: a matching advert's home mask always
/// contains the shard its query routes to.
#[derive(Debug)]
pub struct ShardRouter {
    partitions: Option<SemanticPartitions>,
    shards: usize,
}

impl ShardRouter {
    /// A router over `shards` workers (clamped to 1..=[`MAX_SHARDS`]).
    /// Without a subsumption index, semantic descriptions cannot be
    /// partitioned by concept; they all home at shard 0 and semantic queries
    /// route there, which keeps the scheme sound (if unselective) for
    /// registries running without the semantic model.
    pub fn new(shards: usize, idx: Option<&SubsumptionIndex>) -> Self {
        Self {
            partitions: idx.map(SemanticPartitions::build),
            shards: shards.clamp(1, MAX_SHARDS),
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards
    }

    fn hash_shard(&self, s: &str) -> usize {
        (fnv1a(s.as_bytes()) % self.shards as u64) as usize
    }

    fn semantic_shard(&self, c: ClassId) -> usize {
        match &self.partitions {
            Some(p) => {
                // Components are root class indices; hash them so adjacent
                // roots do not all pile onto neighbouring shards.
                (fnv1a(&p.component_of(c).to_le_bytes()) % self.shards as u64) as usize
            }
            None => 0,
        }
    }

    /// The set of shards that must store `advert`, as a bitmask. Semantic
    /// adverts home at the component shard of their category *and* of every
    /// output, because a query may constrain on either; URI and typed
    /// templates hash their exact-match string; untyped templates (matched
    /// only by unconstrained template queries, which broadcast) sit at a
    /// fixed shard.
    pub fn home_mask(&self, advert: &Advertisement) -> u64 {
        match &advert.description {
            Description::Uri(u) => 1u64 << self.hash_shard(u),
            Description::Template(t) => match &t.type_uri {
                Some(ty) => 1u64 << self.hash_shard(ty),
                None => 1u64,
            },
            Description::Semantic(p) => {
                let mut mask = 1u64 << self.semantic_shard(p.category);
                for &out in &p.outputs {
                    mask |= 1u64 << self.semantic_shard(out);
                }
                mask
            }
        }
    }

    /// The shard(s) that must evaluate `payload`. Soundness case by case:
    ///
    /// - URI: matches need string equality with the advertised URI, and both
    ///   sides hash the same string.
    /// - Typed template: matches need the advert to carry exactly this
    ///   `type_uri` (an untyped advert can never satisfy a typed query), and
    ///   typed adverts hash that same string.
    /// - Untyped template: may match any template advert → broadcast.
    /// - Semantic with a category: the evaluator requires the requested
    ///   category to be *related* to the advertised one; related concepts
    ///   share a component, and every semantic advert homes at its category's
    ///   component shard.
    /// - Semantic with outputs only: the evaluator requires each requested
    ///   output to be related to some advertised output; in particular the
    ///   first requested output is related to an advertised output `o`, they
    ///   share a component, and the advert homes at `o`'s component shard —
    ///   which is the shard routed to.
    /// - Unconstrained semantic (inputs/QoS only): nothing partitionable →
    ///   broadcast.
    pub fn route(&self, payload: &QueryPayload) -> Route {
        match payload {
            QueryPayload::Uri(u) => Route::One(self.hash_shard(u)),
            QueryPayload::Template(t) => match &t.type_uri {
                Some(ty) => Route::One(self.hash_shard(ty)),
                None => Route::Broadcast,
            },
            QueryPayload::Semantic(req) => {
                if let Some(cat) = req.category {
                    Route::One(self.semantic_shard(cat))
                } else if let Some(&out) = req.outputs.first() {
                    Route::One(self.semantic_shard(out))
                } else {
                    Route::Broadcast
                }
            }
        }
    }
}

/// 64-bit FNV-1a. In-crate because the std hasher is per-process seeded and
/// shard assignment must be deterministic across runs and processes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::{DescriptionTemplate, Uuid};
    use sds_semantic::{Ontology, ServiceProfile, ServiceRequest};
    use sds_simnet::NodeId;

    fn two_trees() -> (Ontology, [ClassId; 6]) {
        // Two disconnected trees: {Thing, Sensor, Radar} and {Act, Move, Fly}.
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        let radar = o.class("Radar", &[sensor]);
        let act = o.class("Act", &[]);
        let mv = o.class("Move", &[act]);
        let fly = o.class("Fly", &[mv]);
        (o, [thing, sensor, radar, act, mv, fly])
    }

    #[test]
    fn related_classes_share_a_component() {
        let (o, [thing, sensor, radar, act, mv, fly]) = two_trees();
        let idx = SubsumptionIndex::build(&o);
        let p = SemanticPartitions::build(&idx);
        assert_eq!(p.component_of(thing), p.component_of(radar));
        assert_eq!(p.component_of(sensor), p.component_of(radar));
        assert_eq!(p.component_of(act), p.component_of(fly));
        assert_ne!(p.component_of(thing), p.component_of(mv), "trees are disjoint");
        assert_eq!(p.component_count(), 2);
        // Ghosts are singleton components, distinct from in-ontology ones.
        let ghost = ClassId(o.len() as u32 + 5);
        assert_eq!(p.component_of(ghost), p.component_of(ghost));
    }

    #[test]
    fn diamond_collapses_to_one_component() {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let a = o.class("A", &[thing]);
        let b = o.class("B", &[thing]);
        let idx = SubsumptionIndex::build(&o);
        let p = SemanticPartitions::build(&idx);
        assert_eq!(p.component_of(a), p.component_of(b), "siblings relate via the root");
        assert_eq!(p.component_count(), 1);
    }

    fn sem_advert(category: ClassId, outputs: &[ClassId]) -> Advertisement {
        Advertisement {
            id: Uuid(1),
            provider: NodeId(1),
            description: Description::Semantic(
                ServiceProfile::new("s", category).with_outputs(outputs),
            ),
            version: 1,
        }
    }

    /// The property every route decision must satisfy: a query's route shard
    /// is contained in the home mask of any advert it could match.
    #[test]
    fn routed_shard_is_always_a_home_shard_of_matching_adverts() {
        let (o, [_, sensor, radar, _, mv, fly]) = two_trees();
        let idx = SubsumptionIndex::build(&o);
        for shards in [1usize, 2, 4, 8] {
            let r = ShardRouter::new(shards, Some(&idx));
            // Category query vs related-category advert.
            let q = QueryPayload::Semantic(ServiceRequest::for_category(sensor));
            let Route::One(s) = r.route(&q) else { panic!("category query routes to one") };
            assert_ne!(r.home_mask(&sem_advert(radar, &[])) & (1 << s), 0);
            // Output-only query vs advert producing a related output.
            let q = QueryPayload::Semantic(ServiceRequest::default().with_outputs(&[fly]));
            let Route::One(s) = r.route(&q) else { panic!("output query routes to one") };
            assert_ne!(r.home_mask(&sem_advert(sensor, &[mv])) & (1 << s), 0);
            // URI equality.
            let a = Advertisement {
                id: Uuid(2),
                provider: NodeId(1),
                description: Description::Uri("urn:x".into()),
                version: 1,
            };
            let Route::One(s) = r.route(&QueryPayload::Uri("urn:x".into())) else {
                panic!("uri query routes to one")
            };
            assert_eq!(r.home_mask(&a), 1 << s);
            // Typed template equality.
            let t = Advertisement {
                id: Uuid(3),
                provider: NodeId(1),
                description: Description::Template(DescriptionTemplate {
                    type_uri: Some("urn:t".into()),
                    ..Default::default()
                }),
                version: 1,
            };
            let tq = QueryPayload::Template(DescriptionTemplate {
                type_uri: Some("urn:t".into()),
                ..Default::default()
            });
            let Route::One(s) = r.route(&tq) else { panic!("typed template routes to one") };
            assert_eq!(r.home_mask(&t), 1 << s);
        }
    }

    #[test]
    fn unconstrained_queries_broadcast() {
        let (o, _) = two_trees();
        let idx = SubsumptionIndex::build(&o);
        let r = ShardRouter::new(4, Some(&idx));
        let open_template = QueryPayload::Template(DescriptionTemplate::default());
        assert_eq!(r.route(&open_template), Route::Broadcast);
        let open_semantic = QueryPayload::Semantic(ServiceRequest::default());
        assert_eq!(r.route(&open_semantic), Route::Broadcast);
    }

    #[test]
    fn router_without_index_pins_semantics_to_shard_zero() {
        let r = ShardRouter::new(8, None);
        let a = sem_advert(ClassId(3), &[ClassId(9)]);
        assert_eq!(r.home_mask(&a), 1);
        let q = QueryPayload::Semantic(ServiceRequest::for_category(ClassId(7)));
        assert_eq!(r.route(&q), Route::One(0));
    }

    #[test]
    fn shard_counts_clamp_to_mask_width() {
        assert_eq!(ShardRouter::new(0, None).shard_count(), 1);
        assert_eq!(ShardRouter::new(1000, None).shard_count(), MAX_SHARDS);
    }
}
