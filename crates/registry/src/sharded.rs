//! The sharded registry data plane: one logical registry engine whose advert
//! table is split across worker shards by [`ShardRouter`] partition, so each
//! query is evaluated against one shard's postings in the common case.
//!
//! Observable equivalence is the design invariant: every public operation
//! returns exactly what [`RegistryEngine`] would — same outcomes, same
//! granted leases, same ranked hit bytes, same summaries — which the
//! `shard_props` property suite locks across shard counts. The ranking order
//! `(degree desc, distance asc, id asc)` is total over unique advert ids, so
//! merging per-shard confirmed hits through the shared top-k selection
//! reproduces the unsharded result whatever order shards enumerate in.
//!
//! Multi-homing: a semantic advert whose category and outputs fall in
//! different taxonomy components is stored in every one of those shards (its
//! *home mask*), so each single-shard route still sees every possible match.
//! Broadcast queries deduplicate by evaluating an advert only in its first
//! home shard. Lease state is kept identical across an advert's home shards:
//! publishes, renewals, heartbeats, and purges fan out to the whole mask.
//!
//! Parallel execution: with [`ShardedEngine::set_workers`] above 1, a
//! broadcast query's per-shard scans and a batch's per-shard queues fan out
//! across scoped worker threads ([`crate::pool`]). Each worker reads only
//! its own shard's store and owns its own memo table — share-nothing — and
//! results merge through the total ranking order, so the worker count is
//! unobservable: every byte matches the sequential path (see DESIGN §16 and
//! the `shard_props` sweep).

use std::collections::HashMap;

use sds_protocol::{Advertisement, AdvertId, ModelId, QueryMessage, QueryPayload, ResponseHit};
use sds_semantic::{Artifact, ArtifactRepository, ClassId, SubsumptionIndex};
use sds_simnet::{NodeId, SimTime};

use crate::engine::{select_ranked, RankedRef, RegistrySummary};
use crate::evaluate::ModelEvaluator;
use crate::pool;
use crate::shard::{Route, ShardRouter};
use crate::store::{LeasePolicy, PublishOutcome, RegistryStore, StoredAdvert};

/// Where an advert lives: its shard bitmask plus the model it counts under.
#[derive(Clone, Copy, Debug)]
struct Home {
    mask: u64,
    model: ModelId,
}

/// One batch's results: ranked hits per *unique* coalesced query plus the
/// input-position → unique-slot mapping. Duplicates share their slot's
/// vector instead of deep-cloning it, so a 1000-way coalesced burst
/// allocates one result, not 1000 (pinned by the `batch_alloc` test).
pub struct BatchResult {
    /// Ranked hits per unique `(payload, max_responses)` pair, in
    /// first-appearance order.
    pub unique_hits: Vec<Vec<ResponseHit>>,
    /// For each input query, the index into `unique_hits` it coalesced to.
    pub slot_of: Vec<usize>,
}

impl BatchResult {
    /// Number of input queries in the batch.
    pub fn len(&self) -> usize {
        self.slot_of.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slot_of.is_empty()
    }

    /// How many evaluations actually ran after coalescing identical
    /// payloads: N identical in-flight queries cost 1.
    pub fn unique_evaluations(&self) -> usize {
        self.unique_hits.len()
    }

    /// The ranked hits for input query `i`, borrowed from its unique slot.
    pub fn hits(&self, i: usize) -> &[ResponseHit] {
        &self.unique_hits[self.slot_of[i]]
    }

    /// Iterates results in input order (duplicates borrow the same slot).
    pub fn iter(&self) -> impl Iterator<Item = &[ResponseHit]> + '_ {
        self.slot_of.iter().map(|&s| self.unique_hits[s].as_slice())
    }
}

/// A registry engine running the sharded data plane. Drop-in for
/// [`RegistryEngine`]: the public surface mirrors it method for method, with
/// batch and validity-tracking variants layered on top.
pub struct ShardedEngine {
    router: ShardRouter,
    shards: Vec<RegistryStore>,
    homes: HashMap<AdvertId, Home>,
    /// Distinct stored adverts per model wire tag (multi-homed adverts count
    /// once) — the sharded analogue of the store's model buckets, kept
    /// incrementally so `summary`'s fast path stays O(shards).
    model_counts: [usize; 3],
    lease_policy: LeasePolicy,
    evaluators: HashMap<ModelId, Box<dyn ModelEvaluator>>,
    artifacts: ArtifactRepository,
    /// Worker threads the read path fans out to (1 = everything on the
    /// calling thread). Writes (publish/renew/purge) always run sequentially
    /// — they are borrow-exclusive and cheap next to evaluation.
    workers: usize,
}

impl ShardedEngine {
    /// An engine with `shard_count` worker shards, partitioned over `idx`
    /// when given (without it, semantic descriptions pin to shard 0; see
    /// [`ShardRouter::new`]).
    pub fn new(
        lease_policy: LeasePolicy,
        shard_count: usize,
        idx: Option<&SubsumptionIndex>,
    ) -> Self {
        let router = ShardRouter::new(shard_count, idx);
        let shards = (0..router.shard_count()).map(|_| RegistryStore::new()).collect();
        Self {
            router,
            shards,
            homes: HashMap::new(),
            model_counts: [0; 3],
            lease_policy,
            evaluators: HashMap::new(),
            artifacts: ArtifactRepository::new(),
            workers: 1,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Sets how many scoped worker threads broadcast scans and batched
    /// evaluation fan out across. 1 (the default) keeps the data plane on
    /// the calling thread — the historical sequential path. Results are
    /// byte-identical at every count; only wall clock changes.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Registers an evaluator plug-in; replaces any previous evaluator for
    /// the same model.
    pub fn register_evaluator(&mut self, evaluator: Box<dyn ModelEvaluator>) {
        self.evaluators.insert(evaluator.model(), evaluator);
    }

    pub fn supports(&self, model: ModelId) -> bool {
        self.evaluators.contains_key(&model)
    }

    pub fn lease_policy(&self) -> LeasePolicy {
        self.lease_policy
    }

    pub fn artifacts(&self) -> &ArtifactRepository {
        &self.artifacts
    }

    pub fn host_artifact(&mut self, artifact: Artifact) {
        self.artifacts.put(artifact);
    }

    /// A read view over the sharded advert table with the same surface as
    /// [`RegistryEngine::store`] exposes: multi-homed adverts appear once.
    pub fn store(&self) -> StoreView<'_> {
        StoreView { shards: &self.shards, homes: &self.homes }
    }

    fn first_shard(mask: u64) -> usize {
        debug_assert_ne!(mask, 0, "every stored advert has at least one home");
        mask.trailing_zeros() as usize
    }

    /// Iterates the shard indices set in `mask`, ascending.
    fn shards_of(mask: u64) -> impl Iterator<Item = usize> {
        (0..64usize).filter(move |s| mask & (1u64 << s) != 0)
    }

    /// Handles a publish/update; grants a lease per policy, fans the write
    /// out to the advert's home shards, and keeps lease state identical
    /// across them. Outcome and granted expiry match [`RegistryEngine`]
    /// exactly, including the stale-heartbeat and requested-duration rules.
    pub fn publish(
        &mut self,
        advert: Advertisement,
        source: NodeId,
        now: SimTime,
        requested_lease_ms: u64,
    ) -> (PublishOutcome, SimTime) {
        let lease_until = self.lease_policy.grant(now, requested_lease_ms);
        let id = advert.id;
        let new_mask = self.router.home_mask(&advert);
        let model = advert.description.model();
        let Some(&home) = self.homes.get(&id) else {
            for s in Self::shards_of(new_mask) {
                self.shards[s].publish(advert.clone(), source, now, lease_until, requested_lease_ms);
            }
            self.homes.insert(id, Home { mask: new_mask, model });
            self.model_counts[model.wire_tag() as usize] += 1;
            return (PublishOutcome::New, lease_until);
        };
        let existing = self.shards[Self::first_shard(home.mask)]
            .get(&id)
            .expect("homes tracks stored adverts");
        if advert.version < existing.advert.version {
            // Stale content: every home shard applies the same
            // provider-heartbeat rule, so leases stay aligned.
            for s in Self::shards_of(home.mask) {
                self.shards[s].publish(advert.clone(), source, now, lease_until, requested_lease_ms);
            }
            return (PublishOutcome::StaleVersion, lease_until);
        }
        let newer = advert.version > existing.advert.version;
        let unchanged = advert.version == existing.advert.version && advert == existing.advert;
        // A content change can move the advert between shards. Shards kept in
        // the mask update in place; shards leaving drop it; shards joining
        // insert it fresh — carrying over the *effective* lease and requested
        // duration so every home shard stores the same record the unsharded
        // engine would.
        let effective_lease = existing.lease_until.max(lease_until);
        let keep_requested =
            if newer { requested_lease_ms } else { existing.requested_lease_ms };
        debug_assert!(!unchanged || new_mask == home.mask, "mask is a function of content");
        for s in Self::shards_of(home.mask & new_mask) {
            self.shards[s].publish(advert.clone(), source, now, lease_until, requested_lease_ms);
        }
        for s in Self::shards_of(home.mask & !new_mask) {
            self.shards[s].remove(id);
        }
        for s in Self::shards_of(new_mask & !home.mask) {
            self.shards[s].publish(advert.clone(), source, now, effective_lease, keep_requested);
        }
        if new_mask != home.mask || model != home.model {
            self.model_counts[home.model.wire_tag() as usize] -= 1;
            self.model_counts[model.wire_tag() as usize] += 1;
            self.homes.insert(id, Home { mask: new_mask, model });
        }
        (if unchanged { PublishOutcome::Unchanged } else { PublishOutcome::Updated }, lease_until)
    }

    /// Handles a lease renewal, re-granting the originally requested
    /// duration; the extension fans out to every home shard. Returns
    /// `(known, new_expiry)`.
    pub fn renew(&mut self, id: AdvertId, now: SimTime) -> (bool, SimTime) {
        let Some(&home) = self.homes.get(&id) else {
            return (false, self.lease_policy.grant(now, 0));
        };
        let requested = self.shards[Self::first_shard(home.mask)]
            .get(&id)
            .map_or(0, |a| a.requested_lease_ms);
        let lease_until = self.lease_policy.grant(now, requested);
        let mut known = false;
        for s in Self::shards_of(home.mask) {
            known |= self.shards[s].renew(id, lease_until);
        }
        (known, lease_until)
    }

    /// Handles explicit removal across every home shard.
    pub fn remove(&mut self, id: AdvertId) -> bool {
        let Some(home) = self.homes.remove(&id) else {
            return false;
        };
        self.model_counts[home.model.wire_tag() as usize] -= 1;
        let mut had = false;
        for s in Self::shards_of(home.mask) {
            had |= self.shards[s].remove(id);
        }
        debug_assert!(had, "homes tracks stored adverts");
        had
    }

    /// Purges expired adverts from every shard; returns purged ids in the
    /// same global `(lease_until, id)` order the unsharded store produces.
    /// Leases are identical across a mask, so an advert expires from all its
    /// home shards in the same purge.
    pub fn purge(&mut self, now: SimTime) -> Vec<AdvertId> {
        let mut dead: Vec<(SimTime, AdvertId)> = Vec::new();
        for shard in &mut self.shards {
            dead.extend(shard.purge_expired_with_times(now));
        }
        dead.sort_unstable();
        dead.dedup();
        let mut out = Vec::with_capacity(dead.len());
        for (_, id) in dead {
            let home = self.homes.remove(&id).expect("purged adverts were homed");
            self.model_counts[home.model.wire_tag() as usize] -= 1;
            out.push(id);
        }
        out
    }

    /// Evaluates a query: routed to one shard when the payload pins a
    /// partition, merged across shards (first-home deduplicated) otherwise.
    /// Byte-identical to [`RegistryEngine::evaluate`] on the same adverts.
    pub fn evaluate(&self, query: &QueryMessage, now: SimTime) -> Vec<ResponseHit> {
        self.evaluate_with_validity(query, now).0
    }

    /// [`ShardedEngine::evaluate`] also reporting how long the result stays
    /// valid: the earliest lease expiry among the returned hits
    /// (`SimTime::MAX` when empty — an empty result only changes when a
    /// publish arrives, which cache invalidation covers separately). A
    /// cached copy served while `now < valid_until` is byte-identical to a
    /// fresh evaluation, because expiry of any *non*-returned advert cannot
    /// change a top-k selection it was not part of.
    pub fn evaluate_with_validity(
        &self,
        query: &QueryMessage,
        now: SimTime,
    ) -> (Vec<ResponseHit>, SimTime) {
        let Some(evaluator) = self.evaluators.get(&query.payload.model()) else {
            return (Vec::new(), SimTime::MAX);
        };
        let ranked = match self.router.route(&query.payload) {
            Route::One(s) => {
                self.confirm_in_shard(s, evaluator.as_ref(), &query.payload, now, query.max_responses)
            }
            Route::Broadcast => self.confirm_broadcast(evaluator.as_ref(), &query.payload, now, query.max_responses),
        };
        let valid_until =
            ranked.iter().map(|h| h.stored.lease_until).min().unwrap_or(SimTime::MAX);
        (ranked.into_iter().map(RankedRef::into_hit).collect(), valid_until)
    }

    fn confirm_in_shard<'a>(
        &'a self,
        shard: usize,
        evaluator: &'a dyn ModelEvaluator,
        payload: &QueryPayload,
        now: SimTime,
        max: Option<u16>,
    ) -> Vec<RankedRef<'a>> {
        let store = &self.shards[shard];
        let candidates = store.candidates(payload, evaluator.subsumption_index());
        let confirmed = candidates.iter().filter_map(move |id| {
            let stored = store.get(&id)?;
            if !stored.is_live(now) {
                return None;
            }
            evaluator
                .evaluate(payload, &stored.advert)
                .map(|(degree, distance)| RankedRef { degree, distance, stored })
        });
        select_ranked(confirmed, max)
    }

    /// Scans one shard for `payload`'s confirmed live hits (first-home
    /// deduplicated) and selects that shard's bounded top `max`. The
    /// per-shard unit of work the broadcast path fans across workers.
    fn scan_shard<'a>(
        &'a self,
        si: usize,
        evaluator: &dyn ModelEvaluator,
        payload: &QueryPayload,
        now: SimTime,
        max: Option<u16>,
    ) -> Vec<RankedRef<'a>> {
        let store = &self.shards[si];
        let candidates = store.candidates(payload, evaluator.subsumption_index());
        // Materialize: `Candidates` borrows the store for the closure's
        // lifetime, and each id is a copy anyway.
        let ids: Vec<AdvertId> = candidates.iter().collect();
        let confirmed = ids.into_iter().filter_map(move |id| {
            // Multi-homed adverts answer from their first home only.
            if Self::first_shard(self.homes.get(&id)?.mask) != si {
                return None;
            }
            let stored = store.get(&id)?;
            if !stored.is_live(now) {
                return None;
            }
            evaluator
                .evaluate(payload, &stored.advert)
                .map(|(degree, distance)| RankedRef { degree, distance, stored })
        });
        select_ranked(confirmed, max)
    }

    /// Merges every shard's scan into one global top-k. Sound because the
    /// ranking order `(degree desc, distance asc, id asc)` is total over
    /// unique advert ids: a shard's top-k retains every advert that could
    /// appear in the global top-k, so merging per-shard selections through
    /// the same `select_ranked` equals selecting over the raw concatenation
    /// — whatever order (or thread) the shards scanned in.
    fn confirm_broadcast<'a>(
        &'a self,
        evaluator: &'a dyn ModelEvaluator,
        payload: &'a QueryPayload,
        now: SimTime,
        max: Option<u16>,
    ) -> Vec<RankedRef<'a>> {
        let per_shard = pool::map_indexed(self.workers, self.shards.len(), |si| {
            self.scan_shard(si, evaluator, payload, now, max)
        });
        select_ranked(per_shard.into_iter().flatten(), max)
    }

    /// Evaluates a queue of outstanding queries as one batch: identical
    /// payloads are coalesced to a single evaluation, and semantic taxonomy
    /// walks (candidate generation over `related_concepts`) are memoized per
    /// shard so a burst of queries for the same concept walks the taxonomy
    /// once. With multiple workers, the unique queue is partitioned by home
    /// shard and per-shard queues evaluate in parallel — each worker reads
    /// only its own shard and owns its own memo, no locking. Results come
    /// back in input order, byte-identical to evaluating each query alone at
    /// any worker count (evaluation is pure: shared `&self`, per-worker
    /// memos, and the deterministic input-order reassembly below).
    pub fn evaluate_batch(&self, queries: &[QueryMessage], now: SimTime) -> BatchResult {
        // Coalesce by (payload bytes, max): the codec encoding is injective,
        // so equal keys ⇔ equal queries (QoS floats block a derived Eq).
        let mut unique_of: HashMap<(Vec<u8>, Option<u16>), usize> = HashMap::new();
        let mut uniques: Vec<&QueryMessage> = Vec::new();
        let mut slot_of: Vec<usize> = Vec::with_capacity(queries.len());
        for q in queries {
            let key = (sds_protocol::codec::encode_payload(&q.payload), q.max_responses);
            let slot = *unique_of.entry(key).or_insert_with(|| {
                uniques.push(q);
                uniques.len() - 1
            });
            slot_of.push(slot);
        }
        // Partition uniques by home shard. Broadcast routes fall outside the
        // share-nothing scheme; they evaluate via the (itself parallel)
        // broadcast path after the per-shard scope joins.
        let mut shard_queue: Vec<Vec<usize>> = vec![Vec::new(); self.shards.len()];
        let mut broadcasts: Vec<usize> = Vec::new();
        for (ui, q) in uniques.iter().enumerate() {
            match self.router.route(&q.payload) {
                Route::One(s) => shard_queue[s].push(ui),
                Route::Broadcast => broadcasts.push(ui),
            }
        }
        // Only shards with queued work occupy pool slots, so a skewed batch
        // does not spawn workers that immediately exit.
        let active: Vec<usize> =
            (0..self.shards.len()).filter(|&s| !shard_queue[s].is_empty()).collect();
        let per_shard = pool::map_indexed(self.workers, active.len(), |k| {
            let s = active[k];
            // This worker's memo of materialized semantic candidate lists,
            // keyed by the routing concept — the taxonomy walk is identical
            // for every query constraining on the same category (or first
            // output). Owned per shard, so workers never synchronize.
            let mut memo: HashMap<(bool, ClassId), Vec<AdvertId>> = HashMap::new();
            shard_queue[s]
                .iter()
                .map(|&ui| (ui, self.evaluate_in_shard_memoized(s, uniques[ui], now, &mut memo)))
                .collect::<Vec<_>>()
        });
        let mut unique_hits: Vec<Vec<ResponseHit>> = Vec::new();
        unique_hits.resize_with(uniques.len(), Vec::new);
        for (ui, hits) in per_shard.into_iter().flatten() {
            unique_hits[ui] = hits;
        }
        for &ui in &broadcasts {
            unique_hits[ui] = self.evaluate(uniques[ui], now);
        }
        BatchResult { unique_hits, slot_of }
    }

    /// One routed evaluation within its home shard, sharing `memo` with the
    /// rest of that shard's queue. Only semantic routes are memoizable —
    /// URI/template candidate lookups are a hash probe already.
    fn evaluate_in_shard_memoized(
        &self,
        shard: usize,
        query: &QueryMessage,
        now: SimTime,
        memo: &mut HashMap<(bool, ClassId), Vec<AdvertId>>,
    ) -> Vec<ResponseHit> {
        let Some(evaluator) = self.evaluators.get(&query.payload.model()) else {
            return Vec::new();
        };
        let concept_key = match &query.payload {
            QueryPayload::Semantic(req) => match (req.category, req.outputs.first()) {
                (Some(cat), _) => Some((true, cat)),
                (None, Some(&out)) => Some((false, out)),
                (None, None) => None,
            },
            _ => None,
        };
        let Some(key) = concept_key else {
            return self
                .confirm_in_shard(shard, evaluator.as_ref(), &query.payload, now, query.max_responses)
                .into_iter()
                .map(RankedRef::into_hit)
                .collect();
        };
        let store = &self.shards[shard];
        let ids = memo.entry(key).or_insert_with(|| {
            store.candidates(&query.payload, evaluator.subsumption_index()).iter().collect()
        });
        let confirmed = ids.iter().filter_map(|id| {
            let stored = store.get(id)?;
            if !stored.is_live(now) {
                return None;
            }
            evaluator
                .evaluate(&query.payload, &stored.advert)
                .map(|(degree, distance)| RankedRef { degree, distance, stored })
        });
        select_ranked(confirmed, query.max_responses)
            .into_iter()
            .map(RankedRef::into_hit)
            .collect()
    }

    /// Plans a service chain over the live semantic adverts, as
    /// [`RegistryEngine::compose`] does over its single store.
    pub fn compose(
        &self,
        request: &sds_semantic::ServiceRequest,
        now: SimTime,
        max_depth: usize,
    ) -> Option<Vec<Advertisement>> {
        let evaluator = self.evaluators.get(&ModelId::Semantic)?;
        let index = evaluator.subsumption_index()?;
        let live: Vec<&Advertisement> = self
            .store()
            .live(now)
            .map(|s| &s.advert)
            .filter(|a| matches!(a.description, sds_protocol::Description::Semantic(_)))
            .collect();
        let profiles: Vec<sds_semantic::ServiceProfile> = live
            .iter()
            .map(|a| match &a.description {
                sds_protocol::Description::Semantic(p) => p.clone(),
                _ => unreachable!("filtered above"),
            })
            .collect();
        let plan = sds_semantic::compose(index, request, &profiles, max_depth)?;
        Some(plan.steps.iter().map(|&i| live[i].clone()).collect())
    }

    /// Evaluates a single payload against a single advertisement — used for
    /// subscription matching on publish.
    pub fn evaluate_single(
        &self,
        payload: &QueryPayload,
        advert: &Advertisement,
    ) -> Option<(sds_semantic::Degree, u32)> {
        self.evaluators.get(&payload.model())?.evaluate(payload, advert)
    }

    /// Current summary for registry signaling, agreeing with
    /// [`RegistryEngine::summary`]. Fast path: when no shard holds an
    /// expired-but-unpurged advert, the maintained per-model counts answer
    /// in O(shards).
    pub fn summary(&mut self, now: SimTime) -> RegistrySummary {
        let none_expired = self.shards.iter_mut().all(|s| s.none_expired(now));
        let counts: [usize; 3] = if none_expired {
            self.model_counts
        } else {
            let mut counts = [0usize; 3];
            for a in self.store().live(now) {
                counts[a.advert.description.model().wire_tag() as usize] += 1;
            }
            counts
        };
        let models: Vec<ModelId> = ModelId::ALL
            .into_iter()
            .filter(|m| counts[m.wire_tag() as usize] > 0)
            .collect();
        RegistrySummary { advert_count: counts.iter().sum::<usize>() as u32, models }
    }
}

/// A read view over the sharded table presenting each advert once (from its
/// first home shard — all home shards store identical records). Mirrors the
/// accessor surface callers use on `engine().store()`.
pub struct StoreView<'a> {
    shards: &'a [RegistryStore],
    homes: &'a HashMap<AdvertId, Home>,
}

impl<'a> StoreView<'a> {
    pub fn len(&self) -> usize {
        self.homes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.homes.is_empty()
    }

    pub fn get(&self, id: &AdvertId) -> Option<&'a StoredAdvert> {
        let home = self.homes.get(id)?;
        self.shards[ShardedEngine::first_shard(home.mask)].get(id)
    }

    /// Iterates all adverts including expired-but-not-yet-purged ones.
    pub fn iter(&self) -> impl Iterator<Item = &'a StoredAdvert> + '_ {
        self.homes.iter().map(|(id, home)| {
            self.shards[ShardedEngine::first_shard(home.mask)]
                .get(id)
                .expect("homes tracks stored adverts")
        })
    }

    /// Iterates adverts whose lease is still live at `now`.
    pub fn live(&self, now: SimTime) -> impl Iterator<Item = &'a StoredAdvert> + '_ {
        self.iter().filter(move |a| a.is_live(now))
    }

    /// Iterates the registry's *first-hand* live adverts: those published
    /// directly by their provider, excluding replicas learned from peers.
    /// This is the set anti-entropy advertises to federation peers —
    /// replicating replicas would make every registry re-gossip everyone
    /// else's state and turn deletions ambiguous.
    pub fn first_hand(&self, now: SimTime) -> impl Iterator<Item = &'a StoredAdvert> + '_ {
        self.live(now).filter(|a| a.source == a.advert.provider)
    }

    /// Per-bucket anti-entropy digests over the first-hand live set (see
    /// [`crate::sync`]); order-independent, so the `homes` hash map's
    /// nondeterministic iteration order cannot leak into the wire.
    pub fn sync_digests(&self, now: SimTime, buckets: u16) -> Vec<u64> {
        crate::sync::fold_digests(
            self.first_hand(now).map(|a| (a.advert.id, a.advert.version, a.lease_until)),
            buckets,
        )
    }
}
