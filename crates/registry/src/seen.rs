//! Loop avoidance: a time-bounded cache of query ids already handled.
//!
//! "We think that giving queries their unique query ID is a good approach to
//! avoid query looping between registry nodes." A registry records each
//! query id it processes; a re-arrival within the retention window is
//! dropped instead of being evaluated and forwarded again.

use std::collections::HashMap;

use sds_protocol::QueryId;
use sds_simnet::SimTime;

/// Time-bounded set of recently seen query ids.
#[derive(Debug)]
pub struct SeenQueries {
    retention_ms: u64,
    seen: HashMap<QueryId, SimTime>,
}

impl SeenQueries {
    /// `retention_ms` should exceed the maximum plausible query lifetime in
    /// the registry network (TTL × per-hop latency, with margin).
    pub fn new(retention_ms: u64) -> Self {
        Self { retention_ms, seen: HashMap::new() }
    }

    /// Records `id` at `now`. Returns `true` when the id is new (the query
    /// should be processed), `false` when it is a duplicate (drop it).
    /// Opportunistically evicts expired entries to bound memory.
    pub fn first_sighting(&mut self, id: QueryId, now: SimTime) -> bool {
        if self.seen.len() > 1024 {
            let cutoff = now.saturating_sub(self.retention_ms);
            self.seen.retain(|_, &mut t| t > cutoff);
        }
        match self.seen.get(&id) {
            Some(&t) if now.saturating_sub(t) < self.retention_ms => false,
            _ => {
                self.seen.insert(id, now);
                true
            }
        }
    }

    /// Number of retained entries (diagnostic).
    pub fn len(&self) -> usize {
        self.seen.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }

    /// Drops all state (e.g. on simulated node restart).
    pub fn clear(&mut self) {
        self.seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_simnet::NodeId;

    fn qid(seq: u64) -> QueryId {
        QueryId { origin: NodeId(1), seq }
    }

    #[test]
    fn duplicate_within_window_is_dropped() {
        let mut s = SeenQueries::new(1_000);
        assert!(s.first_sighting(qid(1), 0));
        assert!(!s.first_sighting(qid(1), 500));
        assert!(s.first_sighting(qid(2), 500), "different id is fresh");
    }

    #[test]
    fn reappearance_after_retention_is_fresh() {
        let mut s = SeenQueries::new(1_000);
        assert!(s.first_sighting(qid(1), 0));
        assert!(s.first_sighting(qid(1), 1_500));
    }

    #[test]
    fn eviction_bounds_memory() {
        let mut s = SeenQueries::new(100);
        for i in 0..2_000 {
            assert!(s.first_sighting(qid(i), i));
        }
        assert!(s.len() <= 1_100, "expired entries evicted, got {}", s.len());
    }

    #[test]
    fn clear_forgets_everything() {
        let mut s = SeenQueries::new(1_000);
        s.first_sighting(qid(1), 0);
        s.clear();
        assert!(s.is_empty());
        assert!(s.first_sighting(qid(1), 1));
    }
}
