//! A reusable scoped worker pool for share-nothing fan-out.
//!
//! Extracted from the `sds_bench::parallel` multi-seed driver so the same
//! mechanism can run *inside* a node handler: the registry data plane fans a
//! broadcast query's per-shard scans — and a batch's per-shard queues —
//! across worker threads (see [`crate::ShardedEngine`]), and `sds_bench`
//! delegates its experiment driver here. Zero external dependencies, per the
//! workspace policy: `std::thread::scope` workers pulling indices off one
//! atomic cursor, writing each result into its own slot.
//!
//! The guarantee callers build on: for a pure `f` (a function of its index
//! only), [`map_indexed`] returns exactly what the sequential loop
//! `(0..n).map(f).collect()` would — results come back in *index* order
//! regardless of completion order, so the worker count is unobservable in
//! the output. `workers <= 1` (or a single task) runs the plain sequential
//! loop on the calling thread: no spawn, no overhead on single-core
//! machines.
//!
//! Because the scope borrows rather than requiring `'static`, `f` may
//! capture references into the caller's data structures (shard stores,
//! evaluator tables) as long as they are `Sync` — which is what lets the
//! engine parallelize over `&self` without cloning or `Arc`-wrapping its
//! state.
//!
//! Panics in a worker propagate to the caller when the scope joins, so a
//! failing task still fails the operation that launched it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The environment variable test harnesses use to pin the registry
/// data-plane worker count (see [`env_workers`]).
pub const WORKERS_ENV: &str = "SDS_REGISTRY_WORKERS";

/// Applies `f` to every index in `0..n`, fanning across up to `workers`
/// threads, and returns the results in index order.
pub fn map_indexed<T, F>(workers: usize, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = workers.min(n);
    if workers <= 1 {
        return (0..n).map(f).collect();
    }
    // One mutex-guarded slot per task (never contended: each index is
    // claimed by exactly one worker). `Mutex` rather than `OnceLock` so `T`
    // only needs `Send` — results are moved out, never shared.
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("no panic while holding a slot lock") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("worker panics propagate at scope join")
                .expect("every index was claimed and filled")
        })
        .collect()
}

/// Validates a worker-count override: a positive integer (surrounding
/// whitespace tolerated). Split from [`env_workers`] so the rejection rules
/// are unit-testable without mutating process environment. Shared with
/// `sds_bench::parallel`'s `SDS_BENCH_THREADS` parsing — one set of rules
/// for every thread-count knob in the workspace.
pub fn parse_workers(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value (unset the variable to use the configured count)".into());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("worker count must be at least 1".into()),
        Ok(n) => Ok(n),
        Err(e) => Err(format!("not a worker count ({e})")),
    }
}

/// The `SDS_REGISTRY_WORKERS` override, if set: test harnesses use it to
/// sweep the shard-property suite across worker counts (see `scripts/ci.sh`).
/// `None` means unset — callers fall back to their configured count.
///
/// # Panics
///
/// When `SDS_REGISTRY_WORKERS` is set to anything other than a positive
/// integer. A typo'd override must not fall back silently: a suite that
/// believes it is sweeping worker counts while actually running sequentially
/// proves nothing, so garbage is a hard error (same rule as
/// `SDS_BENCH_THREADS`).
pub fn env_workers() -> Option<usize> {
    match std::env::var(WORKERS_ENV) {
        Ok(raw) => match parse_workers(&raw) {
            Ok(n) => Some(n),
            Err(why) => panic!("invalid {WORKERS_ENV}={raw:?}: {why}"),
        },
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_indexed_preserves_index_order() {
        let expected: Vec<u64> = (0..100u64).map(|x| x * 3 + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let got = map_indexed(workers, 100, |i| i as u64 * 3 + 1);
            assert_eq!(got, expected, "workers={workers}");
        }
    }

    #[test]
    fn map_indexed_handles_empty_and_single() {
        assert!(map_indexed(4, 0, |i| i).is_empty());
        assert_eq!(map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn map_indexed_borrows_caller_state() {
        // The scoped threads may read non-'static caller data — the property
        // the sharded engine relies on to scan `&self.shards` in place.
        let table: Vec<u64> = (0..37u64).map(|x| x.wrapping_mul(x) ^ 0xA5).collect();
        let got = map_indexed(4, table.len(), |i| table[i]);
        assert_eq!(got, table);
    }

    #[test]
    fn registry_workers_override_accepts_positive_integers() {
        assert_eq!(parse_workers("1"), Ok(1));
        assert_eq!(parse_workers("16"), Ok(16));
        assert_eq!(parse_workers("  4 "), Ok(4), "surrounding whitespace tolerated");
    }

    #[test]
    fn registry_workers_override_rejects_zero_and_garbage() {
        for bad in ["0", "", "  ", "four", "-2", "1.5", "2x", "0x4"] {
            let got = parse_workers(bad);
            assert!(got.is_err(), "{bad:?} must be rejected, got {got:?}");
        }
    }
}
