//! # sds-registry — registry node internals
//!
//! "A registry node … can operate autonomously since it stores advertisements
//! and is capable of evaluating queries. In addition, it is responsible for
//! cleaning up advertisements representing obsolete services."
//!
//! This crate is the *inside* of such a node, independent of any networking:
//!
//! * [`RegistryStore`]: the advertisement store — a registry information
//!   model record per advert (provider, version, publication time, lease) —
//!   with lease-based purging ("letting service advertisements have limited
//!   lifetime ensures removal of obsolete advertisements"), secondary
//!   indexes for sublinear candidate generation, and a lazy expiry heap;
//! * [`ModelEvaluator`] + the three shipped evaluators: pluggable per-model
//!   query evaluation behind the protocol's next-header, so "primitive
//!   devices using only a lightweight URI-matching service discovery can use
//!   the same service discovery infrastructure as the more heavyweight ones
//!   based on semantic service descriptions";
//! * [`RegistryEngine`]: evaluation + ranking + query response control +
//!   summaries + artifact hosting, glued together;
//! * [`SeenQueries`]: the query-id cache used for loop avoidance when
//!   registries forward queries;
//! * the sharded data plane: [`ShardRouter`] partitions the advert space by
//!   taxonomy component (plus exact-match hashing for URI/template models),
//!   [`ShardedEngine`] runs one logical registry over per-partition worker
//!   shards with batched, coalesced query evaluation — optionally fanned
//!   across scoped worker threads ([`pool`], `set_workers`) with a
//!   deterministic merge — and [`QueryCache`] memoizes ranked results at
//!   the registry edge with lease-driven invalidation — all observably
//!   equivalent to the unsharded engine at every shard and worker count.
//!
//! The network-facing behaviour (timers, beacons, federation) lives in
//! `sds-core`; baselines reuse these internals with different policies.

mod cache;
mod engine;
mod evaluate;
pub mod pool;
mod seen;
mod shard;
mod sharded;
mod store;
mod subscriptions;
pub mod sync;

pub use cache::{cache_key, CacheKey, CacheStats, QueryCache};
pub use engine::{rank_hits, RegistryEngine, RegistrySummary};
pub use evaluate::{ModelEvaluator, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
pub use seen::SeenQueries;
pub use shard::{Route, SemanticPartitions, ShardRouter, MAX_SHARDS};
pub use sharded::{BatchResult, ShardedEngine, StoreView};
pub use store::{Candidates, LeasePolicy, PublishOutcome, RegistryStore, StoredAdvert};
pub use subscriptions::SubscriptionIndex;
