//! The advertisement store: registry information model records plus leases.

use std::collections::HashMap;

use sds_protocol::{AdvertId, Advertisement};
use sds_simnet::{NodeId, SimTime};

/// How a registry grants leases.
///
/// "Typically, the provider of a service obtains a lease when publishing its
/// service description to the registry. From then on, the provider must
/// periodically confirm that it is alive."
#[derive(Clone, Copy, Debug)]
pub struct LeasePolicy {
    /// Granted when the publisher does not ask for a duration (`lease_ms` 0).
    pub default_ms: u64,
    /// Upper bound on granted lease durations.
    pub max_ms: u64,
    /// When `false`, leases never expire — the UDDI-like baseline behaviour
    /// the paper criticizes ("neither UDDI nor ebXML use leasing … a serious
    /// shortcoming").
    pub leasing_enabled: bool,
}

impl Default for LeasePolicy {
    fn default() -> Self {
        Self { default_ms: 30_000, max_ms: 300_000, leasing_enabled: true }
    }
}

impl LeasePolicy {
    /// A lease-less policy (UDDI-like baseline).
    pub fn no_leasing() -> Self {
        Self { leasing_enabled: false, ..Self::default() }
    }

    /// Computes the expiry for a publish/renew arriving at `now` asking for
    /// `requested_ms` (0 = registry default).
    pub fn grant(&self, now: SimTime, requested_ms: u64) -> SimTime {
        if !self.leasing_enabled {
            return SimTime::MAX;
        }
        let ms = if requested_ms == 0 { self.default_ms } else { requested_ms.min(self.max_ms) };
        now.saturating_add(ms)
    }
}

/// One stored advertisement with its registry information model record.
#[derive(Clone, Debug)]
pub struct StoredAdvert {
    pub advert: Advertisement,
    /// The node the publish physically came from (usually the provider, but
    /// replication forwards on behalf of others).
    pub source: NodeId,
    pub published_at: SimTime,
    pub lease_until: SimTime,
    /// The lease duration the provider asked for at publish time (0 =
    /// registry default); renewals re-grant the same duration.
    pub requested_lease_ms: u64,
}

impl StoredAdvert {
    pub fn is_live(&self, now: SimTime) -> bool {
        self.lease_until > now
    }
}

/// Result of a publish/update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PublishOutcome {
    /// First time this advert id was seen.
    New,
    /// Replaced content with an equal-or-newer version.
    Updated,
    /// Same version, same content (a duplicated or retransmitted publish).
    /// The lease is still extended, but nothing changed — subscribers must
    /// not be re-notified, keeping duplicate deliveries from double-counting.
    Unchanged,
    /// Dropped: the incoming version is older than what is stored
    /// (replication races).
    StaleVersion,
}

/// The advertisement table of one registry.
#[derive(Default, Debug)]
pub struct RegistryStore {
    adverts: HashMap<AdvertId, StoredAdvert>,
}

impl RegistryStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes or updates an advertisement.
    pub fn publish(
        &mut self,
        advert: Advertisement,
        source: NodeId,
        now: SimTime,
        lease_until: SimTime,
        requested_lease_ms: u64,
    ) -> PublishOutcome {
        match self.adverts.get_mut(&advert.id) {
            None => {
                self.adverts.insert(
                    advert.id,
                    StoredAdvert { advert, source, published_at: now, lease_until, requested_lease_ms },
                );
                PublishOutcome::New
            }
            Some(existing) => {
                if advert.version < existing.advert.version {
                    return PublishOutcome::StaleVersion;
                }
                let unchanged =
                    advert.version == existing.advert.version && advert == existing.advert;
                existing.advert = advert;
                existing.source = source;
                existing.lease_until = lease_until.max(existing.lease_until);
                existing.requested_lease_ms = requested_lease_ms;
                if unchanged {
                    PublishOutcome::Unchanged
                } else {
                    PublishOutcome::Updated
                }
            }
        }
    }

    /// Extends the lease of a known advertisement. Returns `false` when the
    /// id is unknown (the provider should republish).
    pub fn renew(&mut self, id: AdvertId, lease_until: SimTime) -> bool {
        match self.adverts.get_mut(&id) {
            Some(a) => {
                a.lease_until = a.lease_until.max(lease_until);
                true
            }
            None => false,
        }
    }

    /// Explicit deregistration. Returns `true` when the advert existed.
    pub fn remove(&mut self, id: AdvertId) -> bool {
        self.adverts.remove(&id).is_some()
    }

    /// Drops every advert whose lease expired at or before `now`; returns the
    /// purged ids ("should a service crash, it would not be able to renew its
    /// lease, and the service description would be purged").
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<AdvertId> {
        let dead: Vec<AdvertId> = self
            .adverts
            .iter()
            .filter(|(_, a)| !a.is_live(now))
            .map(|(&id, _)| id)
            .collect();
        for id in &dead {
            self.adverts.remove(id);
        }
        dead
    }

    /// The earliest lease expiry among stored adverts, for scheduling the
    /// next purge without polling.
    pub fn next_expiry(&self) -> Option<SimTime> {
        self.adverts
            .values()
            .map(|a| a.lease_until)
            .filter(|&t| t != SimTime::MAX)
            .min()
    }

    pub fn get(&self, id: &AdvertId) -> Option<&StoredAdvert> {
        self.adverts.get(id)
    }

    pub fn len(&self) -> usize {
        self.adverts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adverts.is_empty()
    }

    /// Iterates adverts whose lease is still live at `now`.
    pub fn live(&self, now: SimTime) -> impl Iterator<Item = &StoredAdvert> {
        self.adverts.values().filter(move |a| a.is_live(now))
    }

    /// Iterates all adverts including expired-but-not-yet-purged ones.
    pub fn iter(&self) -> impl Iterator<Item = &StoredAdvert> {
        self.adverts.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::{Description, Uuid};

    fn advert(id: u128, version: u32) -> Advertisement {
        Advertisement {
            id: Uuid(id),
            provider: NodeId(1),
            description: Description::Uri("urn:x".into()),
            version,
        }
    }

    #[test]
    fn publish_new_update_and_stale() {
        let mut s = RegistryStore::new();
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 0, 100, 0), PublishOutcome::New);
        assert_eq!(s.publish(advert(1, 2), NodeId(1), 10, 200, 0), PublishOutcome::Updated);
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 20, 300, 0), PublishOutcome::StaleVersion);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&Uuid(1)).unwrap().advert.version, 2);
        // Stale publish must not shorten the lease.
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 200);
    }

    #[test]
    fn duplicated_publish_is_unchanged_but_extends_lease() {
        let mut s = RegistryStore::new();
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 0, 100, 0), PublishOutcome::New);
        // The network delivered the same publish twice.
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 5, 150, 0), PublishOutcome::Unchanged);
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 150);
        // Same version but different content is a real update.
        let mut changed = advert(1, 1);
        changed.description = Description::Uri("urn:y".into());
        assert_eq!(s.publish(changed, NodeId(1), 10, 150, 0), PublishOutcome::Updated);
    }

    #[test]
    fn renew_extends_but_never_shortens() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.renew(Uuid(1), 500));
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 500);
        assert!(s.renew(Uuid(1), 300), "older renewal acknowledged");
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 500, "but lease not shortened");
        assert!(!s.renew(Uuid(9), 500), "unknown id");
    }

    #[test]
    fn purge_removes_expired_only() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        s.publish(advert(2, 1), NodeId(1), 0, 200, 0);
        let purged = s.purge_expired(150);
        assert_eq!(purged, vec![Uuid(1)]);
        assert_eq!(s.len(), 1);
        assert!(s.get(&Uuid(2)).is_some());
        assert_eq!(s.live(150).count(), 1);
    }

    #[test]
    fn lease_exactly_at_expiry_is_dead() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert_eq!(s.live(99).count(), 1);
        assert_eq!(s.live(100).count(), 0);
    }

    #[test]
    fn next_expiry_ignores_infinite_leases() {
        let mut s = RegistryStore::new();
        assert_eq!(s.next_expiry(), None);
        s.publish(advert(1, 1), NodeId(1), 0, SimTime::MAX, 0);
        assert_eq!(s.next_expiry(), None);
        s.publish(advert(2, 1), NodeId(1), 0, 400, 0);
        s.publish(advert(3, 1), NodeId(1), 0, 300, 0);
        assert_eq!(s.next_expiry(), Some(300));
    }

    #[test]
    fn remove_is_idempotent() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.remove(Uuid(1)));
        assert!(!s.remove(Uuid(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn lease_policy_grants() {
        let p = LeasePolicy { default_ms: 10_000, max_ms: 60_000, leasing_enabled: true };
        assert_eq!(p.grant(100, 0), 10_100);
        assert_eq!(p.grant(100, 5_000), 5_100);
        assert_eq!(p.grant(100, 999_999), 60_100, "capped at max");
        assert_eq!(LeasePolicy::no_leasing().grant(100, 5_000), SimTime::MAX);
    }
}
