//! The advertisement store: registry information model records plus leases,
//! with incrementally-maintained secondary indexes so query evaluation scans
//! candidates instead of the whole table, and a lazy min-heap over lease
//! expiries so purge scheduling is O(log n) instead of a full scan.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};

use sds_protocol::{AdvertId, Advertisement, Description, ModelId, QueryPayload};
use sds_semantic::{ClassId, SubsumptionIndex};
use sds_simnet::{NodeId, SimTime};

/// How a registry grants leases.
///
/// "Typically, the provider of a service obtains a lease when publishing its
/// service description to the registry. From then on, the provider must
/// periodically confirm that it is alive."
#[derive(Clone, Copy, Debug)]
pub struct LeasePolicy {
    /// Granted when the publisher does not ask for a duration (`lease_ms` 0).
    pub default_ms: u64,
    /// Upper bound on granted lease durations.
    pub max_ms: u64,
    /// When `false`, leases never expire — the UDDI-like baseline behaviour
    /// the paper criticizes ("neither UDDI nor ebXML use leasing … a serious
    /// shortcoming").
    pub leasing_enabled: bool,
}

impl Default for LeasePolicy {
    fn default() -> Self {
        Self { default_ms: 30_000, max_ms: 300_000, leasing_enabled: true }
    }
}

impl LeasePolicy {
    /// A lease-less policy (UDDI-like baseline).
    pub fn no_leasing() -> Self {
        Self { leasing_enabled: false, ..Self::default() }
    }

    /// Computes the expiry for a publish/renew arriving at `now` asking for
    /// `requested_ms` (0 = registry default).
    pub fn grant(&self, now: SimTime, requested_ms: u64) -> SimTime {
        if !self.leasing_enabled {
            return SimTime::MAX;
        }
        let ms = if requested_ms == 0 { self.default_ms } else { requested_ms.min(self.max_ms) };
        now.saturating_add(ms)
    }
}

/// One stored advertisement with its registry information model record.
#[derive(Clone, Debug)]
pub struct StoredAdvert {
    pub advert: Advertisement,
    /// The node the publish physically came from (usually the provider, but
    /// replication forwards on behalf of others).
    pub source: NodeId,
    pub published_at: SimTime,
    pub lease_until: SimTime,
    /// The lease duration the provider asked for at publish time (0 =
    /// registry default); renewals re-grant the same duration.
    pub requested_lease_ms: u64,
    /// Generation of the latest expiry-heap entry for this advert. Heap
    /// entries carrying an older generation are stale and skipped on pop;
    /// generations are store-unique so re-published ids cannot collide with
    /// entries left behind by a removed predecessor.
    lease_generation: u64,
}

impl StoredAdvert {
    pub fn is_live(&self, now: SimTime) -> bool {
        self.lease_until > now
    }
}

/// Result of a publish/update.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PublishOutcome {
    /// First time this advert id was seen.
    New,
    /// Replaced content with an equal-or-newer version.
    Updated,
    /// Same version, same content (a duplicated or retransmitted publish).
    /// The lease is still extended, but nothing changed — subscribers must
    /// not be re-notified, keeping duplicate deliveries from double-counting.
    Unchanged,
    /// Dropped: the incoming version is older than what is stored
    /// (replication races).
    StaleVersion,
}

/// Secondary indexes over the advert table, keyed by the description fields
/// the built-in evaluators constrain on. Postings are `BTreeSet`s so
/// candidate enumeration is deterministic (ascending advert id).
#[derive(Default, Debug)]
struct SecondaryIndex {
    /// Exact service-type URI → adverts (the URI model matches exactly).
    by_uri: HashMap<String, BTreeSet<AdvertId>>,
    /// Template `type_uri` → adverts carrying that type. Untyped template
    /// adverts appear only in the model bucket; a type-constrained template
    /// query can never match them.
    by_template_type: HashMap<String, BTreeSet<AdvertId>>,
    /// Advertised category concept → semantic adverts (one posting each).
    by_category: HashMap<ClassId, BTreeSet<AdvertId>>,
    /// Advertised output concept → semantic adverts producing it.
    by_output: HashMap<ClassId, BTreeSet<AdvertId>>,
    /// All adverts of each description model, by wire tag.
    by_model: [BTreeSet<AdvertId>; 3],
}

impl SecondaryIndex {
    fn insert(&mut self, id: AdvertId, advert: &Advertisement) {
        self.by_model[advert.description.model().wire_tag() as usize].insert(id);
        match &advert.description {
            Description::Uri(u) => {
                self.by_uri.entry(u.clone()).or_default().insert(id);
            }
            Description::Template(t) => {
                if let Some(ty) = &t.type_uri {
                    self.by_template_type.entry(ty.clone()).or_default().insert(id);
                }
            }
            Description::Semantic(p) => {
                self.by_category.entry(p.category).or_default().insert(id);
                for &out in &p.outputs {
                    self.by_output.entry(out).or_default().insert(id);
                }
            }
        }
    }

    fn remove(&mut self, id: AdvertId, advert: &Advertisement) {
        self.by_model[advert.description.model().wire_tag() as usize].remove(&id);
        match &advert.description {
            Description::Uri(u) => remove_posting(&mut self.by_uri, u, id),
            Description::Template(t) => {
                if let Some(ty) = &t.type_uri {
                    remove_posting(&mut self.by_template_type, ty, id);
                }
            }
            Description::Semantic(p) => {
                remove_posting(&mut self.by_category, &p.category, id);
                for &out in &p.outputs {
                    remove_posting(&mut self.by_output, &out, id);
                }
            }
        }
    }

}

/// Removes `id` from one posting list, dropping the entry when it empties so
/// churn does not leak keys.
fn remove_posting<K: std::hash::Hash + Eq + Clone>(
    map: &mut HashMap<K, BTreeSet<AdvertId>>,
    key: &K,
    id: AdvertId,
) {
    if let Some(set) = map.get_mut(key) {
        set.remove(&id);
        if set.is_empty() {
            map.remove(key);
        }
    }
}

/// Candidate adverts for one query: a sound over-approximation of the ids
/// that could match — the evaluator still confirms every one. Sets borrow
/// from the index; `Merged` holds a sorted, deduplicated union.
#[derive(Debug)]
pub enum Candidates<'a> {
    /// One posting list (or a whole model bucket) covers the query.
    Set(&'a BTreeSet<AdvertId>),
    /// Union of several posting lists, sorted ascending and deduplicated.
    Merged(Vec<AdvertId>),
    /// Provably no advert can match (e.g. an unseen exact URI).
    None,
}

static EMPTY_POSTING: BTreeSet<AdvertId> = BTreeSet::new();

impl<'a> Candidates<'a> {
    /// Iterates candidate ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = AdvertId> + '_ {
        let (set, merged) = match self {
            Candidates::Set(s) => (*s, &[][..]),
            Candidates::Merged(v) => (&EMPTY_POSTING, v.as_slice()),
            Candidates::None => (&EMPTY_POSTING, &[][..]),
        };
        set.iter().copied().chain(merged.iter().copied())
    }

    /// Number of candidate ids.
    pub fn len(&self) -> usize {
        match self {
            Candidates::Set(s) => s.len(),
            Candidates::Merged(v) => v.len(),
            Candidates::None => 0,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The advertisement table of one registry.
#[derive(Default, Debug)]
pub struct RegistryStore {
    adverts: HashMap<AdvertId, StoredAdvert>,
    index: SecondaryIndex,
    /// Lazy min-heap of `(lease_until, id, generation)`. An entry is current
    /// when the stored advert's `lease_generation` matches; anything else
    /// (removed advert, extended lease) is stale and skipped on pop. Leases
    /// of `SimTime::MAX` never enter the heap.
    expiry: BinaryHeap<Reverse<(SimTime, AdvertId, u64)>>,
    next_generation: u64,
}

impl RegistryStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// Issues a fresh heap generation and records the advert's current lease
    /// in the expiry heap (infinite leases stay out of the heap entirely).
    fn schedule_expiry(&mut self, id: AdvertId, lease_until: SimTime) -> u64 {
        let generation = self.next_generation;
        self.next_generation += 1;
        if lease_until != SimTime::MAX {
            self.expiry.push(Reverse((lease_until, id, generation)));
        }
        generation
    }

    /// Publishes or updates an advertisement.
    pub fn publish(
        &mut self,
        advert: Advertisement,
        source: NodeId,
        now: SimTime,
        lease_until: SimTime,
        requested_lease_ms: u64,
    ) -> PublishOutcome {
        let id = advert.id;
        let Some(existing) = self.adverts.get_mut(&id) else {
            self.index.insert(id, &advert);
            let lease_generation = self.schedule_expiry(id, lease_until);
            self.adverts.insert(
                id,
                StoredAdvert {
                    advert,
                    source,
                    published_at: now,
                    lease_until,
                    requested_lease_ms,
                    lease_generation,
                },
            );
            return PublishOutcome::New;
        };
        if advert.version < existing.advert.version {
            // The content is stale, but a publish from the advert's own
            // provider still proves the provider is alive: a replication race
            // must not cost a live service its lease. Extend (never shorten)
            // like any other heartbeat; replication forwards from third
            // parties carry no such liveness evidence and are dropped whole.
            if source == existing.advert.provider && lease_until > existing.lease_until {
                existing.lease_until = lease_until;
                let generation = self.schedule_expiry(id, lease_until);
                self.adverts.get_mut(&id).expect("present above").lease_generation = generation;
            }
            return PublishOutcome::StaleVersion;
        }
        let newer = advert.version > existing.advert.version;
        let unchanged = advert.version == existing.advert.version && advert == existing.advert;
        let old = std::mem::replace(&mut existing.advert, advert);
        existing.source = source;
        // A same-version duplicate may be a reordered copy of an older
        // publish: adopting its requested duration could silently downgrade
        // every future renewal grant. Only a genuinely newer version speaks
        // for the provider's current wishes.
        if newer {
            existing.requested_lease_ms = requested_lease_ms;
        }
        let extended = lease_until > existing.lease_until;
        if extended {
            existing.lease_until = lease_until;
        }
        if !unchanged {
            let new = &self.adverts[&id].advert;
            // Field-disjoint borrows: `index` is not `adverts`.
            self.index.remove(id, &old);
            self.index.insert(id, new);
        }
        if extended {
            let generation = self.schedule_expiry(id, lease_until);
            self.adverts.get_mut(&id).expect("present above").lease_generation = generation;
        }
        if unchanged {
            PublishOutcome::Unchanged
        } else {
            PublishOutcome::Updated
        }
    }

    /// Extends the lease of a known advertisement. Returns `false` when the
    /// id is unknown (the provider should republish).
    pub fn renew(&mut self, id: AdvertId, lease_until: SimTime) -> bool {
        let Some(a) = self.adverts.get_mut(&id) else {
            return false;
        };
        if lease_until > a.lease_until {
            a.lease_until = lease_until;
            let generation = self.schedule_expiry(id, lease_until);
            self.adverts.get_mut(&id).expect("present above").lease_generation = generation;
        }
        true
    }

    /// Explicit deregistration. Returns `true` when the advert existed.
    pub fn remove(&mut self, id: AdvertId) -> bool {
        match self.adverts.remove(&id) {
            Some(stored) => {
                // Any heap entry for it is now stale and gets skipped on pop.
                self.index.remove(id, &stored.advert);
                true
            }
            None => false,
        }
    }

    /// Drops every advert whose lease expired at or before `now`; returns the
    /// purged ids ("should a service crash, it would not be able to renew its
    /// lease, and the service description would be purged"), ordered by
    /// `(lease_until, id)`.
    pub fn purge_expired(&mut self, now: SimTime) -> Vec<AdvertId> {
        self.purge_expired_with_times(now).into_iter().map(|(_, id)| id).collect()
    }

    /// [`RegistryStore::purge_expired`] keeping each purged advert's expiry
    /// time, so callers holding several stores (the sharded data plane) can
    /// merge per-shard results back into one global `(lease_until, id)`
    /// order.
    #[doc(hidden)]
    pub fn purge_expired_with_times(&mut self, now: SimTime) -> Vec<(SimTime, AdvertId)> {
        if now == SimTime::MAX {
            // At the end of time everything is expired — `is_live` is strict,
            // so even `SimTime::MAX` leases (which never enter the heap) die.
            let mut dead: Vec<(SimTime, AdvertId)> =
                self.adverts.iter().map(|(&id, a)| (a.lease_until, id)).collect();
            dead.sort_unstable();
            for &(_, id) in &dead {
                let stored = self.adverts.remove(&id).expect("collected above");
                self.index.remove(id, &stored.advert);
            }
            self.expiry.clear();
            return dead;
        }
        let mut dead = Vec::new();
        while let Some(&Reverse((t, id, generation))) = self.expiry.peek() {
            if t > now {
                break;
            }
            self.expiry.pop();
            let current = self
                .adverts
                .get(&id)
                .is_some_and(|a| a.lease_generation == generation);
            if current {
                let stored = self.adverts.remove(&id).expect("checked above");
                debug_assert_eq!(stored.lease_until, t, "current entry carries the lease");
                self.index.remove(id, &stored.advert);
                dead.push((t, id));
            }
        }
        dead
    }

    /// The earliest lease expiry among stored adverts, for scheduling the
    /// next purge without polling. Pops stale heap entries as it goes, hence
    /// `&mut`.
    pub fn next_expiry(&mut self) -> Option<SimTime> {
        while let Some(&Reverse((t, id, generation))) = self.expiry.peek() {
            let current = self
                .adverts
                .get(&id)
                .is_some_and(|a| a.lease_generation == generation);
            if current {
                return Some(t);
            }
            self.expiry.pop();
        }
        None
    }

    /// True when no stored advert can be expired at `now`. Stale heap
    /// entries (renewed leases, removed adverts) are popped first — deciding
    /// from the raw minimum would stay pessimistically false for the whole
    /// window between a renewal and the old expiry passing, knocking
    /// `summary` off its O(1) fast path — hence `&mut`. After popping, the
    /// heap minimum is the true earliest expiry among stored adverts.
    pub fn none_expired(&mut self, now: SimTime) -> bool {
        self.next_expiry().is_none_or(|t| t > now)
    }

    /// Candidate adverts for `payload`: a sound over-approximation of every
    /// advert the built-in evaluator for the payload's model could accept.
    /// The caller confirms each candidate with the full evaluator, so pruning
    /// here only ever removes provable non-matches:
    ///
    /// - URI queries match on exact string equality → the `by_uri` posting.
    /// - Template queries constrained on `type_uri` require equality on that
    ///   field → the `by_template_type` posting; unconstrained ones fall back
    ///   to every template advert.
    /// - Semantic queries require the requested category (when present) to be
    ///   related to the advertised category, and every requested output to be
    ///   related to some advertised output. Relatedness is membership in
    ///   ancestors∪descendants, so unioning the postings of every concept
    ///   related to the requested one cannot lose a match (`idx` is the same
    ///   index the evaluator reasons with). Without an index, or without any
    ///   category/output constraint, every semantic advert is a candidate.
    pub fn candidates(
        &self,
        payload: &QueryPayload,
        idx: Option<&SubsumptionIndex>,
    ) -> Candidates<'_> {
        let model_bucket =
            |m: ModelId| Candidates::Set(&self.index.by_model[m.wire_tag() as usize]);
        match payload {
            QueryPayload::Uri(u) => match self.index.by_uri.get(u) {
                Some(set) => Candidates::Set(set),
                None => Candidates::None,
            },
            QueryPayload::Template(t) => match &t.type_uri {
                Some(ty) => match self.index.by_template_type.get(ty) {
                    Some(set) => Candidates::Set(set),
                    None => Candidates::None,
                },
                None => model_bucket(ModelId::Template),
            },
            QueryPayload::Semantic(req) => {
                let Some(idx) = idx else {
                    return model_bucket(ModelId::Semantic);
                };
                if let Some(cat) = req.category {
                    // Category postings are disjoint (one category per
                    // advert), so the union needs no deduplication — but ids
                    // must still be merged into one ascending sequence.
                    self.merge_postings(&self.index.by_category, idx.related_concepts(cat))
                } else if let Some(&out) = req.outputs.first() {
                    self.merge_postings(&self.index.by_output, idx.related_concepts(out))
                } else {
                    // No category and no outputs constrains nothing the
                    // inverted indexes cover (inputs/QoS only).
                    model_bucket(ModelId::Semantic)
                }
            }
        }
    }

    /// Unions the postings of `concepts` into one sorted, deduplicated
    /// candidate list. A single non-empty posting is borrowed directly.
    fn merge_postings<'a>(
        &'a self,
        postings: &'a HashMap<ClassId, BTreeSet<AdvertId>>,
        concepts: impl Iterator<Item = ClassId>,
    ) -> Candidates<'a> {
        let mut sets: Vec<&'a BTreeSet<AdvertId>> = Vec::new();
        for c in concepts {
            if let Some(set) = postings.get(&c) {
                sets.push(set);
            }
        }
        match sets.len() {
            0 => Candidates::None,
            1 => Candidates::Set(sets[0]),
            _ => {
                let mut merged: Vec<AdvertId> =
                    sets.iter().flat_map(|s| s.iter().copied()).collect();
                merged.sort_unstable();
                merged.dedup();
                Candidates::Merged(merged)
            }
        }
    }

    pub fn get(&self, id: &AdvertId) -> Option<&StoredAdvert> {
        self.adverts.get(id)
    }

    /// Live advert count per model (by wire tag) — exact only while nothing
    /// is expired-but-unpurged; pair with [`RegistryStore::none_expired`].
    pub fn model_counts(&self) -> [usize; 3] {
        [
            self.index.by_model[0].len(),
            self.index.by_model[1].len(),
            self.index.by_model[2].len(),
        ]
    }

    pub fn len(&self) -> usize {
        self.adverts.len()
    }

    pub fn is_empty(&self) -> bool {
        self.adverts.is_empty()
    }

    /// Iterates adverts whose lease is still live at `now`.
    pub fn live(&self, now: SimTime) -> impl Iterator<Item = &StoredAdvert> {
        self.adverts.values().filter(move |a| a.is_live(now))
    }

    /// Iterates all adverts including expired-but-not-yet-purged ones.
    pub fn iter(&self) -> impl Iterator<Item = &StoredAdvert> {
        self.adverts.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::Uuid;

    fn advert(id: u128, version: u32) -> Advertisement {
        Advertisement {
            id: Uuid(id),
            provider: NodeId(1),
            description: Description::Uri("urn:x".into()),
            version,
        }
    }

    #[test]
    fn publish_new_update_and_stale() {
        let mut s = RegistryStore::new();
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 0, 100, 0), PublishOutcome::New);
        assert_eq!(s.publish(advert(1, 2), NodeId(1), 10, 200, 0), PublishOutcome::Updated);
        // A stale version from a third party (replication race) is dropped
        // whole; it is no liveness evidence for the provider.
        assert_eq!(s.publish(advert(1, 1), NodeId(7), 20, 300, 0), PublishOutcome::StaleVersion);
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(&Uuid(1)).unwrap().advert.version, 2);
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 200);
    }

    #[test]
    fn stale_publish_from_provider_extends_lease() {
        // Regression: a stale-version publish used to early-return before
        // touching the lease, so a replication race could let a live
        // provider's advert expire. The provider's own publish is a
        // heartbeat whatever version it carries.
        let mut s = RegistryStore::new();
        s.publish(advert(1, 2), NodeId(1), 0, 200, 0);
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 20, 300, 0), PublishOutcome::StaleVersion);
        let stored = s.get(&Uuid(1)).unwrap();
        assert_eq!(stored.advert.version, 2, "stale content still dropped");
        assert_eq!(stored.lease_until, 300, "provider heartbeat extends the lease");
        // The heap follows the extension: nothing purges at the old expiry.
        assert_eq!(s.purge_expired(200), Vec::<AdvertId>::new());
        assert_eq!(s.next_expiry(), Some(300));
        // Never shorten: a provider-sourced stale publish with an older
        // (shorter) lease leaves the grant alone.
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 30, 250, 0), PublishOutcome::StaleVersion);
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 300);
    }

    #[test]
    fn reordered_duplicate_keeps_requested_lease_duration() {
        // Regression: every publish used to overwrite `requested_lease_ms`,
        // so a reordered duplicate carrying 0 downgraded future renewals to
        // the registry default. Only a newer version adopts a new duration.
        let mut s = RegistryStore::new();
        s.publish(advert(1, 2), NodeId(1), 0, 100, 90_000);
        // Reordered duplicate of the same version asking for the default.
        assert_eq!(s.publish(advert(1, 2), NodeId(1), 10, 150, 0), PublishOutcome::Unchanged);
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 150, "heartbeat still extends");
        assert_eq!(
            s.get(&Uuid(1)).unwrap().requested_lease_ms,
            90_000,
            "renewals keep re-granting the provider's requested duration"
        );
        // A genuinely newer version speaks for the provider's current wish.
        s.publish(advert(1, 3), NodeId(1), 20, 200, 45_000);
        assert_eq!(s.get(&Uuid(1)).unwrap().requested_lease_ms, 45_000);
    }

    #[test]
    fn duplicated_publish_is_unchanged_but_extends_lease() {
        let mut s = RegistryStore::new();
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 0, 100, 0), PublishOutcome::New);
        // The network delivered the same publish twice.
        assert_eq!(s.publish(advert(1, 1), NodeId(1), 5, 150, 0), PublishOutcome::Unchanged);
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 150);
        // Same version but different content is a real update.
        let mut changed = advert(1, 1);
        changed.description = Description::Uri("urn:y".into());
        assert_eq!(s.publish(changed, NodeId(1), 10, 150, 0), PublishOutcome::Updated);
    }

    #[test]
    fn renew_extends_but_never_shortens() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.renew(Uuid(1), 500));
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 500);
        assert!(s.renew(Uuid(1), 300), "older renewal acknowledged");
        assert_eq!(s.get(&Uuid(1)).unwrap().lease_until, 500, "but lease not shortened");
        assert!(!s.renew(Uuid(9), 500), "unknown id");
    }

    #[test]
    fn purge_removes_expired_only() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        s.publish(advert(2, 1), NodeId(1), 0, 200, 0);
        let purged = s.purge_expired(150);
        assert_eq!(purged, vec![Uuid(1)]);
        assert_eq!(s.len(), 1);
        assert!(s.get(&Uuid(2)).is_some());
        assert_eq!(s.live(150).count(), 1);
    }

    #[test]
    fn lease_exactly_at_expiry_is_dead() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert_eq!(s.live(99).count(), 1);
        assert_eq!(s.live(100).count(), 0);
    }

    #[test]
    fn next_expiry_ignores_infinite_leases() {
        let mut s = RegistryStore::new();
        assert_eq!(s.next_expiry(), None);
        s.publish(advert(1, 1), NodeId(1), 0, SimTime::MAX, 0);
        assert_eq!(s.next_expiry(), None);
        s.publish(advert(2, 1), NodeId(1), 0, 400, 0);
        s.publish(advert(3, 1), NodeId(1), 0, 300, 0);
        assert_eq!(s.next_expiry(), Some(300));
    }

    #[test]
    fn renewal_makes_old_heap_entry_stale() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.renew(Uuid(1), 500));
        // The (100, id) heap entry is stale: purging at its time must not
        // drop the renewed advert.
        assert_eq!(s.purge_expired(100), Vec::<AdvertId>::new());
        assert!(s.get(&Uuid(1)).is_some());
        assert_eq!(s.next_expiry(), Some(500), "stale entry skipped");
        assert_eq!(s.purge_expired(500), vec![Uuid(1)]);
        assert!(s.is_empty());
    }

    #[test]
    fn republish_after_remove_ignores_predecessors_heap_entries() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.remove(Uuid(1)));
        // Same id comes back with a longer lease; the removed predecessor's
        // (100, id) entry must not purge it.
        s.publish(advert(1, 2), NodeId(1), 50, 400, 0);
        assert_eq!(s.purge_expired(100), Vec::<AdvertId>::new());
        assert_eq!(s.get(&Uuid(1)).unwrap().advert.version, 2);
        assert_eq!(s.purge_expired(400), vec![Uuid(1)]);
    }

    #[test]
    fn non_extending_renewal_keeps_current_entry_live() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 300, 0);
        // A late-arriving shorter renewal changes nothing; the original
        // entry must still fire.
        assert!(s.renew(Uuid(1), 200));
        assert_eq!(s.next_expiry(), Some(300));
        assert_eq!(s.purge_expired(300), vec![Uuid(1)]);
    }

    #[test]
    fn purge_at_end_of_time_drains_infinite_leases_too() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, SimTime::MAX, 0);
        s.publish(advert(2, 1), NodeId(1), 0, 100, 0);
        // `is_live` is strict, so at SimTime::MAX everything is expired —
        // including leases that never entered the heap.
        assert_eq!(s.purge_expired(SimTime::MAX), vec![Uuid(2), Uuid(1)]);
        assert!(s.is_empty());
        assert_eq!(s.next_expiry(), None);
    }

    #[test]
    fn purge_returns_ids_ordered_by_expiry_then_id() {
        let mut s = RegistryStore::new();
        s.publish(advert(3, 1), NodeId(1), 0, 100, 0);
        s.publish(advert(1, 1), NodeId(1), 0, 200, 0);
        s.publish(advert(2, 1), NodeId(1), 0, 100, 0);
        assert_eq!(s.purge_expired(200), vec![Uuid(2), Uuid(3), Uuid(1)]);
    }

    #[test]
    fn none_expired_tracks_heap_minimum() {
        let mut s = RegistryStore::new();
        assert!(s.none_expired(SimTime::MAX - 1), "empty store has no expiries");
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.none_expired(99));
        assert!(!s.none_expired(100));
        s.purge_expired(100);
        assert!(s.none_expired(100));
    }

    #[test]
    fn none_expired_skips_stale_entries_after_renewal() {
        // Regression: the raw heap minimum used to pin `none_expired` false
        // for the whole window between a renewal and the superseded expiry
        // passing. Stale entries must be popped, not believed.
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.renew(Uuid(1), 500));
        assert!(s.none_expired(250), "stale (100, id) entry must not count");
        assert!(!s.none_expired(500), "the renewed expiry still does");
        // Removal leaves a stale entry behind too.
        s.publish(advert(2, 1), NodeId(1), 0, 300, 0);
        assert!(s.remove(Uuid(2)));
        assert!(s.none_expired(350));
    }

    fn sem_advert(id: u128, category: ClassId, outputs: &[ClassId]) -> Advertisement {
        Advertisement {
            id: Uuid(id),
            provider: NodeId(1),
            description: Description::Semantic(
                sds_semantic::ServiceProfile::new(format!("s{id}"), category)
                    .with_outputs(outputs),
            ),
            version: 1,
        }
    }

    #[test]
    fn uri_candidates_are_exact() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0); // urn:x
        let ids = |c: Candidates<'_>| c.iter().collect::<Vec<_>>();
        assert_eq!(ids(s.candidates(&QueryPayload::Uri("urn:x".into()), None)), vec![Uuid(1)]);
        assert!(ids(s.candidates(&QueryPayload::Uri("urn:y".into()), None)).is_empty());
        // Removal unindexes.
        s.remove(Uuid(1));
        assert!(ids(s.candidates(&QueryPayload::Uri("urn:x".into()), None)).is_empty());
    }

    #[test]
    fn template_candidates_by_type_with_wildcard_fallback() {
        use sds_protocol::DescriptionTemplate;
        let mut s = RegistryStore::new();
        let typed = Advertisement {
            id: Uuid(1),
            provider: NodeId(1),
            description: Description::Template(DescriptionTemplate {
                type_uri: Some("urn:t".into()),
                ..Default::default()
            }),
            version: 1,
        };
        let untyped = Advertisement {
            id: Uuid(2),
            provider: NodeId(1),
            description: Description::Template(DescriptionTemplate {
                name: Some("n".into()),
                ..Default::default()
            }),
            version: 1,
        };
        s.publish(typed, NodeId(1), 0, 100, 0);
        s.publish(untyped, NodeId(1), 0, 100, 0);
        let by_type = QueryPayload::Template(DescriptionTemplate {
            type_uri: Some("urn:t".into()),
            ..Default::default()
        });
        assert_eq!(s.candidates(&by_type, None).iter().collect::<Vec<_>>(), vec![Uuid(1)]);
        let open = QueryPayload::Template(DescriptionTemplate::default());
        assert_eq!(
            s.candidates(&open, None).iter().collect::<Vec<_>>(),
            vec![Uuid(1), Uuid(2)],
            "unconstrained query scans the model bucket"
        );
    }

    #[test]
    fn semantic_candidates_union_related_postings() {
        use sds_semantic::Ontology;
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        let radar = o.class("Radar", &[sensor]);
        let weapon = o.class("Weapon", &[thing]);
        let idx = SubsumptionIndex::build(&o);

        let mut s = RegistryStore::new();
        s.publish(sem_advert(1, radar, &[radar]), NodeId(1), 0, 100, 0);
        s.publish(sem_advert(2, weapon, &[weapon]), NodeId(1), 0, 100, 0);
        s.publish(sem_advert(3, sensor, &[sensor, radar]), NodeId(1), 0, 100, 0);

        let cat_q = QueryPayload::Semantic(sds_semantic::ServiceRequest::for_category(sensor));
        assert_eq!(
            s.candidates(&cat_q, Some(&idx)).iter().collect::<Vec<_>>(),
            vec![Uuid(1), Uuid(3)],
            "weapon-category advert pruned"
        );
        let out_q = QueryPayload::Semantic(
            sds_semantic::ServiceRequest::default().with_outputs(&[radar]),
        );
        // Advert 3 appears in both the sensor and radar postings; the union
        // must deduplicate it.
        assert_eq!(
            s.candidates(&out_q, Some(&idx)).iter().collect::<Vec<_>>(),
            vec![Uuid(1), Uuid(3)]
        );
        let open = QueryPayload::Semantic(sds_semantic::ServiceRequest::default());
        assert_eq!(s.candidates(&open, Some(&idx)).len(), 3, "model bucket");
        assert_eq!(s.candidates(&open, None).len(), 3, "no index, model bucket");
    }

    #[test]
    fn remove_is_idempotent() {
        let mut s = RegistryStore::new();
        s.publish(advert(1, 1), NodeId(1), 0, 100, 0);
        assert!(s.remove(Uuid(1)));
        assert!(!s.remove(Uuid(1)));
        assert!(s.is_empty());
    }

    #[test]
    fn lease_policy_grants() {
        let p = LeasePolicy { default_ms: 10_000, max_ms: 60_000, leasing_enabled: true };
        assert_eq!(p.grant(100, 0), 10_100);
        assert_eq!(p.grant(100, 5_000), 5_100);
        assert_eq!(p.grant(100, 999_999), 60_100, "capped at max");
        assert_eq!(LeasePolicy::no_leasing().grant(100, 5_000), SimTime::MAX);
    }
}
