//! The registry engine: store + evaluators + response control + artifacts.

use std::collections::HashMap;

use sds_protocol::{Advertisement, AdvertId, ModelId, QueryMessage, QueryPayload, ResponseHit};
use sds_semantic::{Artifact, ArtifactRepository};
use sds_simnet::{NodeId, SimTime};

use crate::evaluate::ModelEvaluator;
use crate::store::{LeasePolicy, PublishOutcome, RegistryStore};

/// Summary information a registry shares with peers ("send out summary
/// information about the advertisements present in a registry").
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegistrySummary {
    pub advert_count: u32,
    /// Which description models are present, ascending by wire tag.
    pub models: Vec<ModelId>,
}

/// One registry's complete local state and query-evaluation logic, with no
/// networking: `sds-core` drives it from a node handler, baselines from
/// their own policies.
pub struct RegistryEngine {
    store: RegistryStore,
    lease_policy: LeasePolicy,
    evaluators: HashMap<ModelId, Box<dyn ModelEvaluator>>,
    artifacts: ArtifactRepository,
}

impl RegistryEngine {
    pub fn new(lease_policy: LeasePolicy) -> Self {
        Self {
            store: RegistryStore::new(),
            lease_policy,
            evaluators: HashMap::new(),
            artifacts: ArtifactRepository::new(),
        }
    }

    /// Registers an evaluator plug-in; replaces any previous evaluator for
    /// the same model.
    pub fn register_evaluator(&mut self, evaluator: Box<dyn ModelEvaluator>) {
        self.evaluators.insert(evaluator.model(), evaluator);
    }

    /// Whether this registry can evaluate the given model.
    pub fn supports(&self, model: ModelId) -> bool {
        self.evaluators.contains_key(&model)
    }

    pub fn lease_policy(&self) -> LeasePolicy {
        self.lease_policy
    }

    pub fn store(&self) -> &RegistryStore {
        &self.store
    }

    pub fn store_mut(&mut self) -> &mut RegistryStore {
        &mut self.store
    }

    pub fn artifacts(&self) -> &ArtifactRepository {
        &self.artifacts
    }

    /// Hosts an artifact for in-band distribution.
    pub fn host_artifact(&mut self, artifact: Artifact) {
        self.artifacts.put(artifact);
    }

    /// Handles a publish/update: grants a lease per policy and stores the
    /// advert. Returns the outcome and the granted expiry.
    pub fn publish(
        &mut self,
        advert: Advertisement,
        source: NodeId,
        now: SimTime,
        requested_lease_ms: u64,
    ) -> (PublishOutcome, SimTime) {
        let lease_until = self.lease_policy.grant(now, requested_lease_ms);
        let outcome = self.store.publish(advert, source, now, lease_until, requested_lease_ms);
        (outcome, lease_until)
    }

    /// Handles a lease renewal, re-granting the originally requested
    /// duration. Returns `(known, new_expiry)`.
    pub fn renew(&mut self, id: AdvertId, now: SimTime) -> (bool, SimTime) {
        let requested = self.store.get(&id).map_or(0, |a| a.requested_lease_ms);
        let lease_until = self.lease_policy.grant(now, requested);
        (self.store.renew(id, lease_until), lease_until)
    }

    /// Handles explicit removal.
    pub fn remove(&mut self, id: AdvertId) -> bool {
        self.store.remove(id)
    }

    /// Purges expired adverts; returns purged ids.
    pub fn purge(&mut self, now: SimTime) -> Vec<AdvertId> {
        self.store.purge_expired(now)
    }

    /// Evaluates a query against the live adverts: dispatches on the
    /// payload's model (silently returning nothing for unsupported models),
    /// ranks hits best-first, and truncates to the query's `max_responses` —
    /// the query response control the paper requires of registries.
    ///
    /// Sublinear path: the store's secondary indexes produce a candidate set
    /// (a sound over-approximation — see [`RegistryStore::candidates`]), the
    /// evaluator confirms each candidate over *borrowed* adverts, and only
    /// the final top-k hits are cloned. The ranking order `(degree desc,
    /// distance asc, id asc)` is total over unique advert ids, so the result
    /// is identical to [`RegistryEngine::naive_evaluate`] regardless of
    /// candidate enumeration order.
    pub fn evaluate(&self, query: &QueryMessage, now: SimTime) -> Vec<ResponseHit> {
        let Some(evaluator) = self.evaluators.get(&query.payload.model()) else {
            return Vec::new(); // "silently discard messages they cannot understand"
        };
        let candidates = self.store.candidates(&query.payload, evaluator.subsumption_index());
        let confirmed = candidates.iter().filter_map(|id| {
            let stored = self.store.get(&id)?;
            if !stored.is_live(now) {
                return None;
            }
            evaluator
                .evaluate(&query.payload, &stored.advert)
                .map(|(degree, distance)| RankedRef { degree, distance, stored })
        });
        select_ranked(confirmed, query.max_responses)
            .into_iter()
            .map(RankedRef::into_hit)
            .collect()
    }

    /// The pre-index full-scan evaluation, kept verbatim as the reference
    /// implementation for equivalence properties and the `q1_query_scaling`
    /// comparison bench. Not part of the public API surface.
    #[doc(hidden)]
    pub fn naive_evaluate(&self, query: &QueryMessage, now: SimTime) -> Vec<ResponseHit> {
        let Some(evaluator) = self.evaluators.get(&query.payload.model()) else {
            return Vec::new();
        };
        let mut hits: Vec<ResponseHit> = self
            .store
            .live(now)
            .filter_map(|stored| {
                evaluator
                    .evaluate(&query.payload, &stored.advert)
                    .map(|(degree, distance)| ResponseHit {
                        advert: stored.advert.clone(),
                        degree,
                        distance,
                    })
            })
            .collect();
        rank_hits(&mut hits);
        if let Some(k) = query.max_responses {
            hits.truncate(k as usize);
        }
        hits
    }

    /// Plans a service chain (paper §4.3 composition support) over the live
    /// *semantic* advertisements. Returns the chain's advertisements in
    /// execution order, or `None` when no chain exists or the semantic
    /// model is unsupported.
    pub fn compose(
        &self,
        request: &sds_semantic::ServiceRequest,
        now: SimTime,
        max_depth: usize,
    ) -> Option<Vec<Advertisement>> {
        let evaluator = self.evaluators.get(&ModelId::Semantic)?;
        let index = evaluator.subsumption_index()?;
        let live: Vec<&Advertisement> = self
            .store
            .live(now)
            .map(|s| &s.advert)
            .filter(|a| matches!(a.description, sds_protocol::Description::Semantic(_)))
            .collect();
        let profiles: Vec<sds_semantic::ServiceProfile> = live
            .iter()
            .map(|a| match &a.description {
                sds_protocol::Description::Semantic(p) => p.clone(),
                _ => unreachable!("filtered above"),
            })
            .collect();
        let plan = sds_semantic::compose(index, request, &profiles, max_depth)?;
        Some(plan.steps.iter().map(|&i| live[i].clone()).collect())
    }

    /// Evaluates a single payload against a single advertisement — used for
    /// subscription matching on publish. `None` for unsupported models and
    /// non-matches alike.
    pub fn evaluate_single(
        &self,
        payload: &QueryPayload,
        advert: &Advertisement,
    ) -> Option<(sds_semantic::Degree, u32)> {
        self.evaluators.get(&payload.model())?.evaluate(payload, advert)
    }

    /// Current summary for registry signaling. Models come out ascending by
    /// wire tag by construction; when nothing is expired-but-unpurged the
    /// model buckets answer directly without scanning the table. `&mut`
    /// because deciding "nothing expired" pops stale expiry-heap entries —
    /// without that, every renewal would knock the summary onto full scans
    /// until the superseded expiry passed.
    pub fn summary(&mut self, now: SimTime) -> RegistrySummary {
        let counts: [usize; 3] = if self.store.none_expired(now) {
            self.store.model_counts()
        } else {
            let mut counts = [0usize; 3];
            for a in self.store.live(now) {
                counts[a.advert.description.model().wire_tag() as usize] += 1;
            }
            counts
        };
        let models: Vec<ModelId> = ModelId::ALL
            .into_iter()
            .filter(|m| counts[m.wire_tag() as usize] > 0)
            .collect();
        RegistrySummary {
            advert_count: counts.iter().sum::<usize>() as u32,
            models,
        }
    }
}

/// A confirmed hit over a borrowed advert, ordered best-first: degree desc,
/// distance asc, advert id asc — the same total order as [`rank_hits`], so
/// "greatest" means "worst" and a max-heap of size k retains the top k.
/// Crate-visible so the sharded data plane shares the exact selection logic
/// (the total order over unique advert ids is what makes sharded evaluation
/// byte-identical to this engine's, whatever order shards enumerate in).
pub(crate) struct RankedRef<'a> {
    pub(crate) degree: sds_semantic::Degree,
    pub(crate) distance: u32,
    pub(crate) stored: &'a crate::store::StoredAdvert,
}

impl RankedRef<'_> {
    fn key(&self) -> (std::cmp::Reverse<sds_semantic::Degree>, u32, AdvertId) {
        (std::cmp::Reverse(self.degree), self.distance, self.stored.advert.id)
    }

    pub(crate) fn into_hit(self) -> ResponseHit {
        ResponseHit {
            advert: self.stored.advert.clone(),
            degree: self.degree,
            distance: self.distance,
        }
    }
}

/// Selects the best `max` hits (all of them when unbounded) in rank order
/// from an arbitrarily-ordered stream of confirmed hits. Bounded selection
/// keeps a max-heap of the k best seen so far, worst on top: O(n · log k)
/// and never more than k+1 entries resident.
///
/// Because the ranking key is a *total* order over unique advert ids,
/// selection is also composable: `select_ranked(concat(streams), k)` equals
/// `select_ranked(concat(per-stream select_ranked(stream, k)), k)` — any
/// global top-k member survives its own stream's top-k. The parallel
/// sharded plane leans on exactly this to merge per-shard selections
/// deterministically (DESIGN §16).
pub(crate) fn select_ranked<'a>(
    confirmed: impl Iterator<Item = RankedRef<'a>>,
    max: Option<u16>,
) -> Vec<RankedRef<'a>> {
    match max {
        Some(k) => {
            let k = k as usize;
            let mut top = std::collections::BinaryHeap::with_capacity(k + 1);
            for hit in confirmed {
                if k == 0 {
                    break;
                }
                top.push(hit);
                if top.len() > k {
                    top.pop();
                }
            }
            let mut v = top.into_vec();
            v.sort_unstable();
            v
        }
        None => {
            let mut v: Vec<RankedRef<'a>> = confirmed.collect();
            v.sort_unstable();
            v
        }
    }
}

impl PartialEq for RankedRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl Eq for RankedRef<'_> {}
impl PartialOrd for RankedRef<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RankedRef<'_> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key().cmp(&other.key())
    }
}

/// Ranks hits best-first: degree desc, distance asc, advert id for
/// determinism. Shared with federation-side aggregation.
pub fn rank_hits(hits: &mut [ResponseHit]) {
    hits.sort_by(|a, b| {
        b.degree
            .cmp(&a.degree)
            .then(a.distance.cmp(&b.distance))
            .then(a.advert.id.cmp(&b.advert.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::{SemanticEvaluator, TemplateEvaluator, UriEvaluator};
    use sds_protocol::{Description, QueryId, QueryPayload, Uuid};
    use sds_semantic::{
        ArtifactId, ArtifactKind, Degree, Ontology, ServiceProfile, ServiceRequest,
        SubsumptionIndex,
    };
    use std::sync::Arc;

    fn uri_advert(id: u128, uri: &str) -> Advertisement {
        Advertisement {
            id: Uuid(id),
            provider: NodeId(1),
            description: Description::Uri(uri.into()),
            version: 1,
        }
    }

    fn query(payload: QueryPayload, max: Option<u16>) -> QueryMessage {
        QueryMessage {
            id: QueryId { origin: NodeId(9), seq: 1 },
            payload,
            max_responses: max,
            ttl: 0,
            reply_to: None,
        }
    }

    fn engine_with_uri() -> RegistryEngine {
        let mut e = RegistryEngine::new(LeasePolicy::default());
        e.register_evaluator(Box::new(UriEvaluator));
        e
    }

    #[test]
    fn publish_evaluate_and_lease_expiry() {
        let mut e = engine_with_uri();
        let (outcome, lease) = e.publish(uri_advert(1, "urn:a"), NodeId(1), 0, 10_000);
        assert_eq!(outcome, PublishOutcome::New);
        assert_eq!(lease, 10_000);
        let q = query(QueryPayload::Uri("urn:a".into()), None);
        assert_eq!(e.evaluate(&q, 5_000).len(), 1);
        // After expiry the advert no longer matches even before purge runs.
        assert_eq!(e.evaluate(&q, 10_000).len(), 0);
        assert_eq!(e.purge(10_000), vec![Uuid(1)]);
    }

    #[test]
    fn unsupported_model_silently_discarded() {
        let mut e = engine_with_uri();
        e.publish(uri_advert(1, "urn:a"), NodeId(1), 0, 10_000);
        let sem = query(QueryPayload::Semantic(ServiceRequest::default()), None);
        assert!(e.evaluate(&sem, 0).is_empty());
        assert!(!e.supports(ModelId::Semantic));
        assert!(e.supports(ModelId::Uri));
    }

    #[test]
    fn response_control_truncates_after_ranking() {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let track = o.class("Track", &[thing]);
        let air = o.class("AirTrack", &[track]);
        let svc = o.class("Svc", &[thing]);
        let idx = Arc::new(SubsumptionIndex::build(&o));

        let mut e = RegistryEngine::new(LeasePolicy::default());
        e.register_evaluator(Box::new(SemanticEvaluator::new(idx)));
        for (i, out) in [air, track, air, track].iter().enumerate() {
            let advert = Advertisement {
                id: Uuid(i as u128 + 1),
                provider: NodeId(1),
                description: Description::Semantic(
                    ServiceProfile::new(format!("s{i}"), svc).with_outputs(&[*out]),
                ),
                version: 1,
            };
            e.publish(advert, NodeId(1), 0, 60_000);
        }
        let q = query(
            QueryPayload::Semantic(ServiceRequest::default().with_outputs(&[air])),
            Some(2),
        );
        let hits = e.evaluate(&q, 1_000);
        assert_eq!(hits.len(), 2, "truncated to max_responses");
        assert!(hits.iter().all(|h| h.degree == Degree::Exact), "best hits kept: {hits:?}");
    }

    #[test]
    fn renew_unknown_tells_provider_to_republish() {
        let mut e = engine_with_uri();
        let (known, _) = e.renew(Uuid(7), 0);
        assert!(!known);
        e.publish(uri_advert(7, "urn:a"), NodeId(1), 0, 1_000);
        let (known, lease) = e.renew(Uuid(7), 500);
        assert!(known);
        assert_eq!(lease, 1_500, "renewal re-grants the requested 1s lease");
    }

    #[test]
    fn summary_reflects_live_adverts_and_models() {
        let mut e = engine_with_uri();
        e.register_evaluator(Box::new(TemplateEvaluator));
        e.publish(uri_advert(1, "urn:a"), NodeId(1), 0, 1_000);
        e.publish(uri_advert(2, "urn:b"), NodeId(1), 0, 10_000);
        let s = e.summary(500);
        assert_eq!(s, RegistrySummary { advert_count: 2, models: vec![ModelId::Uri] });
        let s_late = e.summary(5_000);
        assert_eq!(s_late.advert_count, 1, "expired advert excluded from summary");
    }

    #[test]
    fn renewed_store_regains_summary_fast_path() {
        // Regression: after a renewal the superseded heap entry used to pin
        // the raw minimum, so `none_expired` stayed false and `summary` fell
        // off its O(1) fast path for the whole old-lease window.
        let mut e = engine_with_uri();
        e.publish(uri_advert(1, "urn:a"), NodeId(1), 0, 1_000);
        let (known, lease) = e.renew(Uuid(1), 500);
        assert!(known);
        assert_eq!(lease, 1_500);
        // Between the old expiry (1 000) and the new one (1 500) the store
        // must report none-expired, which is exactly the fast-path gate.
        assert!(e.store_mut().none_expired(1_200), "fast path regained after renewal");
        let s = e.summary(1_200);
        assert_eq!(s, RegistrySummary { advert_count: 1, models: vec![ModelId::Uri] });
        assert!(!e.store_mut().none_expired(1_500), "renewed expiry still honoured");
        assert_eq!(e.summary(1_500).advert_count, 0);
    }

    #[test]
    fn artifact_hosting_round_trip() {
        let mut e = engine_with_uri();
        e.host_artifact(Artifact {
            id: ArtifactId::new("nato-sensors", 1),
            kind: ArtifactKind::Ontology,
            body: vec![0; 2_048],
        });
        assert_eq!(e.artifacts().get_latest("nato-sensors").unwrap().body.len(), 2_048);
        assert!(e.artifacts().get_latest("missing").is_none());
    }

    #[test]
    fn rank_hits_orders_deterministically() {
        let mk = |id: u128, degree: Degree, distance: u32| ResponseHit {
            advert: uri_advert(id, "urn:x"),
            degree,
            distance,
        };
        let mut hits = vec![
            mk(3, Degree::Subsumes, 1),
            mk(2, Degree::Exact, 0),
            mk(1, Degree::Exact, 0),
            mk(4, Degree::PlugIn, 2),
            mk(5, Degree::PlugIn, 1),
        ];
        rank_hits(&mut hits);
        let ids: Vec<u128> = hits.iter().map(|h| h.advert.id.0).collect();
        assert_eq!(ids, vec![1, 2, 5, 4, 3]);
    }
}
