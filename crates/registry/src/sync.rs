//! Anti-entropy digest machinery for registry federation.
//!
//! Peers compare their advert sets by exchanging a small, fixed number of
//! per-bucket digests instead of the adverts themselves. Each advert folds
//! the triple `(id, version, lease_until)` into a 64-bit hash; hashes land
//! in a bucket chosen by the advert id alone (so an advert stays in the
//! same bucket across version bumps and lease renewals — only its bucket's
//! digest moves), and a bucket's digest is the *wrapping sum* of its entry
//! hashes. Summation is commutative, so digests are independent of
//! iteration order — two stores holding the same records always produce
//! the same digests no matter how their hash maps iterate.
//!
//! A digest collision (two different bucket contents summing to the same
//! 64 bits) would delay reconciliation of that bucket until the next entry
//! change perturbs it, never corrupt state: delta application is
//! idempotent and versioned, so a spurious or missed round only costs
//! staleness, not divergence.

use sds_protocol::AdvertId;
use sds_simnet::SimTime;

/// 64-bit FNV-1a over the advert's sync-relevant fields. The triple fully
/// determines what a replica must know to consider itself converged: a
/// version bump or a lease heartbeat both move the hash.
pub fn entry_hash(id: AdvertId, version: u32, lease_until: SimTime) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for b in id
        .0
        .to_le_bytes()
        .into_iter()
        .chain(version.to_le_bytes())
        .chain(lease_until.to_le_bytes())
    {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// The bucket an advert belongs to, a function of the id only. Buckets use
/// the id's *hash*, not the raw id bits, so sequentially allocated UUIDs
/// still spread evenly.
pub fn bucket_of(id: AdvertId, buckets: u16) -> u16 {
    debug_assert!(buckets > 0, "bucket count must be positive");
    // Hash with neutral version/lease so bucket choice ignores both.
    (entry_hash(id, 0, 0) % u64::from(buckets.max(1))) as u16
}

/// Folds an entry set into `buckets` order-independent digests.
pub fn fold_digests(
    entries: impl Iterator<Item = (AdvertId, u32, SimTime)>,
    buckets: u16,
) -> Vec<u64> {
    let mut out = vec![0u64; usize::from(buckets.max(1))];
    for (id, version, lease_until) in entries {
        let b = usize::from(bucket_of(id, buckets));
        out[b] = out[b].wrapping_add(entry_hash(id, version, lease_until));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::Uuid;

    fn entries(n: u128) -> Vec<(AdvertId, u32, SimTime)> {
        (0..n).map(|i| (Uuid(i * 7 + 1), (i % 5) as u32, (i as u64) * 1000)).collect()
    }

    #[test]
    fn digests_are_order_independent() {
        let mut es = entries(64);
        let forward = fold_digests(es.iter().copied(), 16);
        es.reverse();
        let backward = fold_digests(es.iter().copied(), 16);
        assert_eq!(forward, backward);
    }

    #[test]
    fn version_and_lease_changes_move_exactly_one_bucket() {
        let es = entries(64);
        let base = fold_digests(es.iter().copied(), 16);
        for (i, mutate) in [(3usize, 0u64), (40, 1)] {
            let mut changed = es.clone();
            if mutate == 0 {
                changed[i].1 += 1; // version bump
            } else {
                changed[i].2 += 500; // lease heartbeat
            }
            let after = fold_digests(changed.iter().copied(), 16);
            let moved: Vec<usize> =
                (0..16).filter(|&b| base[b] != after[b]).collect();
            assert_eq!(moved, vec![usize::from(bucket_of(changed[i].0, 16))]);
        }
    }

    #[test]
    fn bucket_choice_ignores_version_and_lease() {
        let id = Uuid(42);
        assert_eq!(bucket_of(id, 16), bucket_of(id, 16));
        for (v, l) in [(0u32, 0u64), (7, 30_000), (u32::MAX, u64::MAX)] {
            // bucket_of has no version/lease inputs; assert the digest fold
            // keeps such an entry in its id-determined bucket.
            let d = fold_digests(std::iter::once((id, v, l)), 16);
            let nonzero: Vec<usize> = (0..16).filter(|&b| d[b] != 0).collect();
            assert_eq!(nonzero, vec![usize::from(bucket_of(id, 16))]);
        }
    }

    #[test]
    fn sequential_ids_spread_across_buckets() {
        let es: Vec<_> = (0..256u128).map(|i| (Uuid(i), 1u32, 1u64)).collect();
        let d = fold_digests(es.iter().copied(), 16);
        let occupied = d.iter().filter(|&&x| x != 0).count();
        assert!(occupied >= 12, "only {occupied}/16 buckets occupied");
    }

    #[test]
    fn empty_set_digests_to_zeros_and_zero_buckets_is_total() {
        assert_eq!(fold_digests(std::iter::empty(), 16), vec![0; 16]);
        // A hostile peer could claim 0 buckets; the fold must stay total.
        assert_eq!(fold_digests(std::iter::empty(), 0).len(), 1);
    }
}
