//! Pluggable query evaluation — one evaluator per description model.
//!
//! "Software libraries for distribution would only need new plug-ins or
//! handlers for new models, keeping the same stack underneath." A registry
//! registers the evaluators it supports; payloads for models it lacks are
//! silently discarded (the paper's "next header" filtering).

use std::sync::Arc;

use sds_protocol::{Advertisement, Description, ModelId, QueryPayload};
use sds_semantic::{match_request, Degree, SubsumptionIndex};

/// Evaluates queries of one description model against advertisements.
///
/// Returns `None` for a non-match or for an advert in a different model;
/// `Some((degree, distance))` for a hit. Simple models only ever produce
/// [`Degree::Exact`] with distance 0.
///
/// `Send + Sync` because the sharded data plane confirms candidates from
/// scoped worker threads sharing one `&dyn ModelEvaluator` — evaluators are
/// stateless verdict functions over their (immutable) ontology index, so the
/// bound costs implementations nothing.
pub trait ModelEvaluator: Send + Sync {
    /// The model this evaluator handles.
    fn model(&self) -> ModelId;

    /// Match verdict for `payload` (already checked to be of this model)
    /// against `advert`.
    fn evaluate(&self, payload: &QueryPayload, advert: &Advertisement) -> Option<(Degree, u32)>;

    /// The subsumption index backing this evaluator, when it reasons over an
    /// ontology (used by registry-side composition planning).
    fn subsumption_index(&self) -> Option<&SubsumptionIndex> {
        None
    }
}

/// Exact string match on pre-agreed service-type URIs (WS-Discovery-class).
#[derive(Default, Debug, Clone, Copy)]
pub struct UriEvaluator;

impl ModelEvaluator for UriEvaluator {
    fn model(&self) -> ModelId {
        ModelId::Uri
    }

    fn evaluate(&self, payload: &QueryPayload, advert: &Advertisement) -> Option<(Degree, u32)> {
        let (QueryPayload::Uri(q), Description::Uri(d)) = (payload, &advert.description) else {
            return None;
        };
        (q == d).then_some((Degree::Exact, 0))
    }
}

/// Partial-template match on (name, type, attributes) (UDDI-class).
#[derive(Default, Debug, Clone, Copy)]
pub struct TemplateEvaluator;

impl ModelEvaluator for TemplateEvaluator {
    fn model(&self) -> ModelId {
        ModelId::Template
    }

    fn evaluate(&self, payload: &QueryPayload, advert: &Advertisement) -> Option<(Degree, u32)> {
        let (QueryPayload::Template(q), Description::Template(d)) = (payload, &advert.description)
        else {
            return None;
        };
        d.matches(q).then_some((Degree::Exact, 0))
    }
}

/// Subsumption matchmaking over a shared ontology (OWL-S-class). The
/// evaluator holds the precomputed closure; registries sharing an ontology
/// share the index.
#[derive(Clone)]
pub struct SemanticEvaluator {
    idx: Arc<SubsumptionIndex>,
}

impl SemanticEvaluator {
    pub fn new(idx: Arc<SubsumptionIndex>) -> Self {
        Self { idx }
    }

    pub fn index(&self) -> &SubsumptionIndex {
        &self.idx
    }
}

impl ModelEvaluator for SemanticEvaluator {
    fn model(&self) -> ModelId {
        ModelId::Semantic
    }

    fn subsumption_index(&self) -> Option<&SubsumptionIndex> {
        Some(&self.idx)
    }

    fn evaluate(&self, payload: &QueryPayload, advert: &Advertisement) -> Option<(Degree, u32)> {
        let (QueryPayload::Semantic(req), Description::Semantic(profile)) =
            (payload, &advert.description)
        else {
            return None;
        };
        let r = match_request(&self.idx, req, profile);
        r.degree.is_match().then_some((r.degree, r.distance))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::{DescriptionTemplate, Uuid};
    use sds_semantic::{Ontology, ServiceProfile, ServiceRequest};
    use sds_simnet::NodeId;

    fn advert(description: Description) -> Advertisement {
        Advertisement { id: Uuid(1), provider: NodeId(0), description, version: 1 }
    }

    #[test]
    fn uri_evaluator_exact_only() {
        let e = UriEvaluator;
        let a = advert(Description::Uri("urn:svc:chat".into()));
        assert_eq!(
            e.evaluate(&QueryPayload::Uri("urn:svc:chat".into()), &a),
            Some((Degree::Exact, 0))
        );
        assert_eq!(e.evaluate(&QueryPayload::Uri("urn:svc:mail".into()), &a), None);
        // Cross-model advert silently ignored.
        let t = advert(Description::Template(DescriptionTemplate::default()));
        assert_eq!(e.evaluate(&QueryPayload::Uri("urn:svc:chat".into()), &t), None);
    }

    #[test]
    fn template_evaluator_partial_match() {
        let e = TemplateEvaluator;
        let a = advert(Description::Template(DescriptionTemplate {
            name: Some("tracker".into()),
            type_uri: Some("urn:svc:tracking".into()),
            attrs: vec![],
        }));
        let q = QueryPayload::Template(DescriptionTemplate {
            type_uri: Some("urn:svc:tracking".into()),
            ..Default::default()
        });
        assert_eq!(e.evaluate(&q, &a), Some((Degree::Exact, 0)));
        let miss = QueryPayload::Template(DescriptionTemplate {
            name: Some("other".into()),
            ..Default::default()
        });
        assert_eq!(e.evaluate(&miss, &a), None);
    }

    #[test]
    fn semantic_evaluator_uses_subsumption() {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        let radar = o.class("Radar", &[sensor]);
        let svc = o.class("Svc", &[thing]);
        let e = SemanticEvaluator::new(Arc::new(SubsumptionIndex::build(&o)));
        assert_eq!(e.model(), ModelId::Semantic);

        let a = advert(Description::Semantic(
            ServiceProfile::new("radar-feed", svc).with_outputs(&[radar]),
        ));
        // Asking for Sensor output: Radar output plugs in.
        let q = QueryPayload::Semantic(ServiceRequest::default().with_outputs(&[sensor]));
        assert_eq!(e.evaluate(&q, &a), Some((Degree::PlugIn, 1)));
        // Unrelated request fails.
        let q2 = QueryPayload::Semantic(ServiceRequest::default().with_outputs(&[svc]));
        assert_eq!(e.evaluate(&q2, &a), None);
    }
}
