//! The registry-edge result cache: memoized ranked query results with
//! lease-driven invalidation, so repeated identical queries — the paper's E2
//! response-implosion traffic pattern seen from the registry side — cost one
//! evaluation instead of N.
//!
//! Correctness rests on two mechanisms covering the two ways a result can
//! go stale:
//!
//! 1. **Expiry** is handled by each entry's `valid_until` — the earliest
//!    lease expiry among the *returned* hits, stamped by
//!    [`ShardedEngine::evaluate_with_validity`](crate::ShardedEngine). A hit
//!    is served only while `now < valid_until`; expiry of any advert outside
//!    the returned set cannot change a top-k selection it was not part of.
//! 2. **Mutation** (publish / update / renew-resurrection / remove) is
//!    handled by reverse invalidation through a [`SubscriptionIndex`]: every
//!    cached payload is indexed like a standing query, and an advert's
//!    candidate set there is a sound over-approximation of the cached
//!    queries whose results it could appear in (or newly match). The caller
//!    invalidates on the events that can change results; see
//!    `RegistryNode::invalidate_cache_for` in `sds-core`.
//!
//! Keys are the payload's canonical wire bytes (the codec encoding is
//! injective; QoS `f64`s keep `QueryPayload` from deriving `Eq`/`Hash`)
//! paired with the response cap. Eviction is FIFO by insertion sequence —
//! cheap, deterministic, and good enough for a cache whose entries are
//! usually invalidated by lease churn long before capacity pressure.

use std::collections::{BTreeMap, HashMap};

use sds_protocol::{Advertisement, QueryId, QueryPayload, ResponseHit};
use sds_semantic::SubsumptionIndex;
use sds_simnet::{NodeId, SimTime};

use crate::subscriptions::SubscriptionIndex;

/// Cache key: canonical payload bytes plus the response cap (the cap changes
/// the result, so it is part of identity).
pub type CacheKey = (Vec<u8>, Option<u16>);

/// Builds the cache key for a query.
pub fn cache_key(payload: &QueryPayload, max_responses: Option<u16>) -> CacheKey {
    (sds_protocol::codec::encode_payload(payload), max_responses)
}

/// The synthetic origin marking cache entries inside the reverse index.
/// Real query origins are simulated node ids, which never reach `u32::MAX`.
const CACHE_ORIGIN: NodeId = NodeId(u32::MAX);

struct CacheEntry {
    seq: u64,
    /// Kept for unindexing on removal (the reverse index is keyed by what
    /// the payload constrains on).
    payload: QueryPayload,
    hits: Vec<ResponseHit>,
    valid_until: SimTime,
}

/// Hit/miss/invalidation counters, for stats reporting and tests.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by reverse invalidation (publish/renew/remove).
    pub invalidated: u64,
    /// Entries dropped because their `valid_until` passed (sweep or lookup).
    pub expired: u64,
    /// Entries dropped by FIFO eviction at capacity.
    pub evicted: u64,
    /// Lapsed-but-within-slack entries served by [`QueryCache::get_stale`]
    /// (the overload path's graceful degradation; never counted as `hits`).
    pub stale_hits: u64,
}

/// The cache proper. Not a shard: one per registry node, sitting in front of
/// whatever engine evaluates misses.
pub struct QueryCache {
    entries: HashMap<CacheKey, CacheEntry>,
    /// Insertion order → key, for FIFO eviction and seq → entry resolution
    /// during reverse invalidation.
    by_seq: BTreeMap<u64, CacheKey>,
    /// Reverse index over cached payloads, probed with published adverts.
    index: SubscriptionIndex,
    next_seq: u64,
    capacity: usize,
    stats: CacheStats,
}

impl QueryCache {
    /// A cache holding at most `capacity` entries (0 disables caching:
    /// every insert is dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            by_seq: BTreeMap::new(),
            index: SubscriptionIndex::new(),
            next_seq: 0,
            capacity,
            stats: CacheStats::default(),
        }
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Looks up a cached result still valid at `now`. A hit is
    /// byte-identical to what a fresh evaluation would return. An entry
    /// whose validity has lapsed is dropped on the spot.
    pub fn get(&mut self, key: &CacheKey, now: SimTime) -> Option<&[ResponseHit]> {
        match self.entries.get(key) {
            Some(e) if now < e.valid_until => {
                self.stats.hits += 1;
                Some(&self.entries[key].hits)
            }
            Some(_) => {
                self.drop_entry(key.clone());
                self.stats.expired += 1;
                self.stats.misses += 1;
                None
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Like [`QueryCache::get`], but additionally serves entries whose
    /// validity lapsed less than `slack` ago — the overload path's graceful
    /// degradation: under saturation a slightly-stale answer beats a refusal.
    /// A still-valid entry counts as an ordinary hit; a stale serve counts
    /// under [`CacheStats::stale_hits`]. Unlike the strict lookup, a lapsed
    /// entry is *not* dropped here (the sweep, or the next strict lookup,
    /// retires it), so repeated overload queries keep a degraded answer.
    pub fn get_stale(
        &mut self,
        key: &CacheKey,
        now: SimTime,
        slack: SimTime,
    ) -> Option<&[ResponseHit]> {
        let e = self.entries.get(key)?;
        if now < e.valid_until {
            self.stats.hits += 1;
        } else if now < e.valid_until.saturating_add(slack) {
            self.stats.stale_hits += 1;
        } else {
            return None;
        }
        Some(&self.entries[key].hits)
    }

    /// Caches one evaluated result. `valid_until` must come from the
    /// evaluation (earliest returned-hit lease); entries already invalid (or
    /// a zero capacity) are not stored. Re-inserting an existing key
    /// replaces the entry.
    pub fn insert(
        &mut self,
        key: CacheKey,
        payload: &QueryPayload,
        hits: Vec<ResponseHit>,
        valid_until: SimTime,
        now: SimTime,
    ) {
        if self.capacity == 0 || now >= valid_until {
            return;
        }
        if self.entries.contains_key(&key) {
            self.drop_entry(key.clone());
        }
        while self.entries.len() >= self.capacity {
            let (_, oldest) = self.by_seq.iter().next().map(|(s, k)| (*s, k.clone())).expect(
                "entries nonempty ⇒ by_seq nonempty",
            );
            self.drop_entry(oldest);
            self.stats.evicted += 1;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.index.insert(QueryId { origin: CACHE_ORIGIN, seq }, payload);
        self.by_seq.insert(seq, key.clone());
        self.entries.insert(
            key,
            CacheEntry { seq, payload: payload.clone(), hits, valid_until },
        );
    }

    /// Drops every cached result `advert` could affect — the queries whose
    /// results it may appear in (so updates/removals re-evaluate) or could
    /// newly match (so a cached empty/partial result does not mask a fresh
    /// publish). The reverse index over-approximates exactly like
    /// subscription matching on publish does. Returns how many entries were
    /// dropped.
    pub fn invalidate_for_advert(
        &mut self,
        advert: &Advertisement,
        idx: Option<&SubsumptionIndex>,
    ) -> usize {
        let affected = self.index.candidates(advert, idx);
        let mut dropped = 0;
        for qid in affected {
            if let Some(key) = self.by_seq.get(&qid.seq).cloned() {
                self.drop_entry(key);
                dropped += 1;
            }
        }
        self.stats.invalidated += dropped as u64;
        dropped
    }

    /// Drops entries whose validity has lapsed; for the periodic sweep timer
    /// so dead entries do not linger until their next lookup. Returns how
    /// many entries were dropped.
    pub fn sweep(&mut self, now: SimTime) -> usize {
        let dead: Vec<CacheKey> = self
            .entries
            .iter()
            .filter(|(_, e)| now >= e.valid_until)
            .map(|(k, _)| k.clone())
            .collect();
        let n = dead.len();
        for key in dead {
            self.drop_entry(key);
        }
        self.stats.expired += n as u64;
        n
    }

    /// Drops everything (restart: cached soft state does not survive).
    pub fn clear(&mut self) {
        self.entries.clear();
        self.by_seq.clear();
        self.index.clear();
    }

    fn drop_entry(&mut self, key: CacheKey) {
        if let Some(e) = self.entries.remove(&key) {
            self.by_seq.remove(&e.seq);
            self.index.remove(QueryId { origin: CACHE_ORIGIN, seq: e.seq }, &e.payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::{Description, Uuid};
    use sds_semantic::{Degree, Ontology, ServiceProfile, ServiceRequest};

    fn uri_hit(id: u128, uri: &str) -> ResponseHit {
        ResponseHit {
            advert: Advertisement {
                id: Uuid(id),
                provider: NodeId(1),
                description: Description::Uri(uri.into()),
                version: 1,
            },
            degree: Degree::Exact,
            distance: 0,
        }
    }

    #[test]
    fn hit_returns_identical_bytes_until_validity_lapses() {
        let mut c = QueryCache::new(8);
        let payload = QueryPayload::Uri("urn:a".into());
        let key = cache_key(&payload, Some(4));
        assert!(c.get(&key, 10).is_none());
        let hits = vec![uri_hit(1, "urn:a")];
        c.insert(key.clone(), &payload, hits.clone(), 100, 10);
        assert_eq!(c.get(&key, 50).unwrap(), &hits[..]);
        assert_eq!(c.get(&key, 99).unwrap(), &hits[..]);
        // At the earliest returned lease expiry the hit is no longer live.
        assert!(c.get(&key, 100).is_none());
        assert!(c.is_empty(), "lapsed entry dropped on lookup");
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.expired), (2, 2, 1));
    }

    #[test]
    fn stale_lookup_serves_within_slack_without_dropping() {
        let mut c = QueryCache::new(8);
        let payload = QueryPayload::Uri("urn:a".into());
        let key = cache_key(&payload, None);
        let hits = vec![uri_hit(1, "urn:a")];
        c.insert(key.clone(), &payload, hits.clone(), 100, 10);
        // Fresh: an ordinary hit.
        assert_eq!(c.get_stale(&key, 50, 200).unwrap(), &hits[..]);
        // Lapsed but within slack: served as stale, entry kept.
        assert_eq!(c.get_stale(&key, 150, 200).unwrap(), &hits[..]);
        assert_eq!(c.len(), 1, "stale serve must not drop the entry");
        // Beyond slack: refused (but still not dropped — sweeps retire it).
        assert!(c.get_stale(&key, 500, 200).is_none());
        assert_eq!(c.len(), 1);
        let s = c.stats();
        assert_eq!((s.hits, s.stale_hits), (1, 1));
        // The strict lookup still retires the lapsed entry.
        assert!(c.get(&key, 150).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn max_responses_is_part_of_identity() {
        let mut c = QueryCache::new(8);
        let payload = QueryPayload::Uri("urn:a".into());
        c.insert(cache_key(&payload, Some(1)), &payload, vec![uri_hit(1, "urn:a")], 100, 0);
        assert!(c.get(&cache_key(&payload, Some(2)), 10).is_none());
        assert!(c.get(&cache_key(&payload, Some(1)), 10).is_some());
    }

    #[test]
    fn publish_invalidates_exactly_the_affected_entries() {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        let radar = o.class("Radar", &[sensor]);
        let weapon = o.class("Weapon", &[thing]);
        let idx = SubsumptionIndex::build(&o);

        let mut c = QueryCache::new(8);
        let sensor_q = QueryPayload::Semantic(ServiceRequest::for_category(sensor));
        let weapon_q = QueryPayload::Semantic(ServiceRequest::for_category(weapon));
        let uri_q = QueryPayload::Uri("urn:x".into());
        c.insert(cache_key(&sensor_q, None), &sensor_q, vec![], SimTime::MAX, 0);
        c.insert(cache_key(&weapon_q, None), &weapon_q, vec![], SimTime::MAX, 0);
        c.insert(cache_key(&uri_q, None), &uri_q, vec![], SimTime::MAX, 0);
        assert_eq!(c.len(), 3);

        // A radar advert relates to the sensor query only.
        let radar_advert = Advertisement {
            id: Uuid(9),
            provider: NodeId(2),
            description: Description::Semantic(ServiceProfile::new("r", radar)),
            version: 1,
        };
        assert_eq!(c.invalidate_for_advert(&radar_advert, Some(&idx)), 1);
        assert!(c.get(&cache_key(&sensor_q, None), 10).is_none(), "affected entry dropped");
        assert!(c.get(&cache_key(&weapon_q, None), 10).is_some(), "unrelated survives");
        assert!(c.get(&cache_key(&uri_q, None), 10).is_some(), "other model survives");
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = QueryCache::new(2);
        let p1 = QueryPayload::Uri("urn:1".into());
        let p2 = QueryPayload::Uri("urn:2".into());
        let p3 = QueryPayload::Uri("urn:3".into());
        c.insert(cache_key(&p1, None), &p1, vec![], SimTime::MAX, 0);
        c.insert(cache_key(&p2, None), &p2, vec![], SimTime::MAX, 0);
        c.insert(cache_key(&p3, None), &p3, vec![], SimTime::MAX, 0);
        assert_eq!(c.len(), 2);
        assert!(c.get(&cache_key(&p1, None), 1).is_none(), "oldest evicted");
        assert!(c.get(&cache_key(&p2, None), 1).is_some());
        assert!(c.get(&cache_key(&p3, None), 1).is_some());
        assert_eq!(c.stats().evicted, 1);
        // The evicted entry's reverse-index posting is gone too: publishing
        // its URI invalidates nothing.
        let a = Advertisement {
            id: Uuid(1),
            provider: NodeId(1),
            description: Description::Uri("urn:1".into()),
            version: 1,
        };
        assert_eq!(c.invalidate_for_advert(&a, None), 0);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = QueryCache::new(0);
        let p = QueryPayload::Uri("urn:a".into());
        c.insert(cache_key(&p, None), &p, vec![], SimTime::MAX, 0);
        assert!(c.is_empty());
        assert!(c.get(&cache_key(&p, None), 1).is_none());
    }

    #[test]
    fn sweep_drops_only_lapsed_entries() {
        let mut c = QueryCache::new(8);
        let p1 = QueryPayload::Uri("urn:1".into());
        let p2 = QueryPayload::Uri("urn:2".into());
        c.insert(cache_key(&p1, None), &p1, vec![uri_hit(1, "urn:1")], 100, 0);
        c.insert(cache_key(&p2, None), &p2, vec![uri_hit(2, "urn:2")], 300, 0);
        assert_eq!(c.sweep(50), 0);
        assert_eq!(c.sweep(200), 1);
        assert!(c.get(&cache_key(&p2, None), 200).is_some());
        c.clear();
        assert!(c.is_empty());
    }

    #[test]
    fn reinsert_replaces_and_unindexes_the_old_entry() {
        let mut c = QueryCache::new(8);
        let p = QueryPayload::Uri("urn:a".into());
        let key = cache_key(&p, None);
        c.insert(key.clone(), &p, vec![uri_hit(1, "urn:a")], 100, 0);
        c.insert(key.clone(), &p, vec![uri_hit(2, "urn:a")], 400, 0);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&key, 200).unwrap().len(), 1);
        assert_eq!(c.get(&key, 200).unwrap()[0].advert.id, Uuid(2));
        // One invalidation posting, not two.
        let a = Advertisement {
            id: Uuid(3),
            provider: NodeId(1),
            description: Description::Uri("urn:a".into()),
            version: 1,
        };
        assert_eq!(c.invalidate_for_advert(&a, None), 1);
        assert!(c.is_empty());
    }
}
