//! Reverse candidate generation for standing queries: given a freshly stored
//! advert, which subscriptions could it match?
//!
//! This mirrors [`RegistryStore::candidates`](crate::RegistryStore) but runs
//! in the publish direction — subscriptions are indexed by the fields their
//! payloads constrain on, and an incoming advert probes those postings with
//! its *own* description fields. The produced set is a sound
//! over-approximation: the caller confirms every candidate with the full
//! evaluator, so a publish only re-matches the standing queries whose
//! requested concepts relate to the new advert instead of all of them.

use std::collections::{BTreeSet, HashMap};

use sds_protocol::{Advertisement, Description, ModelId, QueryId, QueryPayload};
use sds_semantic::{ClassId, SubsumptionIndex};

/// Secondary index over standing queries, keyed by what they constrain on.
#[derive(Default, Debug)]
pub struct SubscriptionIndex {
    /// URI subscriptions, by their exact query string.
    by_uri: HashMap<String, BTreeSet<QueryId>>,
    /// Template subscriptions constrained on `type_uri`, by that type.
    by_template_type: HashMap<String, BTreeSet<QueryId>>,
    /// Semantic subscriptions constrained on a category, by that concept.
    by_category: HashMap<ClassId, BTreeSet<QueryId>>,
    /// Semantic subscriptions without a category but with outputs, by their
    /// first requested output (one necessary constraint suffices for
    /// soundness; the evaluator checks the rest).
    by_output: HashMap<ClassId, BTreeSet<QueryId>>,
    /// Subscriptions the keyed postings cannot narrow: templates without a
    /// type constraint, semantic requests with neither category nor outputs.
    /// Probed whenever an advert of the matching model arrives.
    wildcard: [BTreeSet<QueryId>; 3],
}

impl SubscriptionIndex {
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one standing query. A subscription id being re-registered
    /// with a different payload must be [`SubscriptionIndex::remove`]d with
    /// its old payload first.
    pub fn insert(&mut self, id: QueryId, payload: &QueryPayload) {
        match payload {
            QueryPayload::Uri(u) => {
                self.by_uri.entry(u.clone()).or_default().insert(id);
            }
            QueryPayload::Template(t) => match &t.type_uri {
                Some(ty) => {
                    self.by_template_type.entry(ty.clone()).or_default().insert(id);
                }
                None => {
                    self.wildcard[ModelId::Template.wire_tag() as usize].insert(id);
                }
            },
            QueryPayload::Semantic(req) => {
                if let Some(cat) = req.category {
                    self.by_category.entry(cat).or_default().insert(id);
                } else if let Some(&out) = req.outputs.first() {
                    self.by_output.entry(out).or_default().insert(id);
                } else {
                    self.wildcard[ModelId::Semantic.wire_tag() as usize].insert(id);
                }
            }
        }
    }

    /// Unindexes one standing query (no-op when absent).
    pub fn remove(&mut self, id: QueryId, payload: &QueryPayload) {
        match payload {
            QueryPayload::Uri(u) => remove_posting(&mut self.by_uri, u, id),
            QueryPayload::Template(t) => match &t.type_uri {
                Some(ty) => remove_posting(&mut self.by_template_type, ty, id),
                None => {
                    self.wildcard[ModelId::Template.wire_tag() as usize].remove(&id);
                }
            },
            QueryPayload::Semantic(req) => {
                if let Some(cat) = req.category {
                    remove_posting(&mut self.by_category, &cat, id);
                } else if let Some(&out) = req.outputs.first() {
                    remove_posting(&mut self.by_output, &out, id);
                } else {
                    self.wildcard[ModelId::Semantic.wire_tag() as usize].remove(&id);
                }
            }
        }
    }

    /// Drops every indexed subscription.
    pub fn clear(&mut self) {
        self.by_uri.clear();
        self.by_template_type.clear();
        self.by_category.clear();
        self.by_output.clear();
        for bucket in &mut self.wildcard {
            bucket.clear();
        }
    }

    /// Subscription ids that could match `advert`, sorted ascending and
    /// deduplicated. Soundness per model:
    ///
    /// - URI: a subscription matches only on string equality with the
    ///   advertised URI.
    /// - Template: a type-constrained subscription needs the advert to carry
    ///   exactly that `type_uri`; unconstrained subscriptions (wildcard
    ///   bucket) are always probed.
    /// - Semantic: a category-constrained subscription needs its category
    ///   related to the advertised one, so probing the postings of every
    ///   concept related to the advert's category covers them; likewise an
    ///   output-keyed subscription needs its first requested output related
    ///   to *some* advertised output. Without an index all keyed semantic
    ///   postings are probed wholesale (still sound, merely unselective).
    pub fn candidates(
        &self,
        advert: &Advertisement,
        idx: Option<&SubsumptionIndex>,
    ) -> Vec<QueryId> {
        let mut out: Vec<QueryId> = Vec::new();
        match &advert.description {
            Description::Uri(u) => {
                if let Some(set) = self.by_uri.get(u) {
                    out.extend(set.iter().copied());
                }
            }
            Description::Template(t) => {
                if let Some(ty) = &t.type_uri {
                    if let Some(set) = self.by_template_type.get(ty) {
                        out.extend(set.iter().copied());
                    }
                }
                out.extend(self.wildcard[ModelId::Template.wire_tag() as usize].iter().copied());
            }
            Description::Semantic(p) => {
                match idx {
                    Some(idx) => {
                        for c in idx.related_concepts(p.category) {
                            if let Some(set) = self.by_category.get(&c) {
                                out.extend(set.iter().copied());
                            }
                        }
                        for &adv_out in &p.outputs {
                            for c in idx.related_concepts(adv_out) {
                                if let Some(set) = self.by_output.get(&c) {
                                    out.extend(set.iter().copied());
                                }
                            }
                        }
                    }
                    None => {
                        for set in self.by_category.values().chain(self.by_output.values()) {
                            out.extend(set.iter().copied());
                        }
                    }
                }
                out.extend(self.wildcard[ModelId::Semantic.wire_tag() as usize].iter().copied());
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Number of indexed subscriptions across all postings.
    pub fn len(&self) -> usize {
        self.by_uri.values().map(BTreeSet::len).sum::<usize>()
            + self.by_template_type.values().map(BTreeSet::len).sum::<usize>()
            + self.by_category.values().map(BTreeSet::len).sum::<usize>()
            + self.by_output.values().map(BTreeSet::len).sum::<usize>()
            + self.wildcard.iter().map(BTreeSet::len).sum::<usize>()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Removes `id` from one posting list, dropping emptied entries.
fn remove_posting<K: std::hash::Hash + Eq + Clone>(
    map: &mut HashMap<K, BTreeSet<QueryId>>,
    key: &K,
    id: QueryId,
) {
    if let Some(set) = map.get_mut(key) {
        set.remove(&id);
        if set.is_empty() {
            map.remove(key);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sds_protocol::{DescriptionTemplate, Uuid};
    use sds_semantic::{Ontology, ServiceProfile, ServiceRequest};
    use sds_simnet::NodeId;

    fn qid(seq: u64) -> QueryId {
        QueryId { origin: NodeId(1), seq }
    }

    fn advert(description: Description) -> Advertisement {
        Advertisement { id: Uuid(1), provider: NodeId(2), description, version: 1 }
    }

    #[test]
    fn uri_subscriptions_probe_exact_string() {
        let mut s = SubscriptionIndex::new();
        s.insert(qid(1), &QueryPayload::Uri("urn:a".into()));
        s.insert(qid(2), &QueryPayload::Uri("urn:b".into()));
        let a = advert(Description::Uri("urn:a".into()));
        assert_eq!(s.candidates(&a, None), vec![qid(1)]);
        s.remove(qid(1), &QueryPayload::Uri("urn:a".into()));
        assert!(s.candidates(&a, None).is_empty());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn template_wildcards_always_probed() {
        let mut s = SubscriptionIndex::new();
        let typed = QueryPayload::Template(DescriptionTemplate {
            type_uri: Some("urn:t".into()),
            ..Default::default()
        });
        let untyped = QueryPayload::Template(DescriptionTemplate {
            name: Some("x".into()),
            ..Default::default()
        });
        s.insert(qid(1), &typed);
        s.insert(qid(2), &untyped);
        let matching = advert(Description::Template(DescriptionTemplate {
            type_uri: Some("urn:t".into()),
            ..Default::default()
        }));
        assert_eq!(s.candidates(&matching, None), vec![qid(1), qid(2)]);
        let untyped_advert = advert(Description::Template(DescriptionTemplate::default()));
        assert_eq!(s.candidates(&untyped_advert, None), vec![qid(2)]);
    }

    #[test]
    fn semantic_candidates_follow_relatedness() {
        let mut o = Ontology::new();
        let thing = o.class("Thing", &[]);
        let sensor = o.class("Sensor", &[thing]);
        let radar = o.class("Radar", &[sensor]);
        let weapon = o.class("Weapon", &[thing]);
        let idx = SubsumptionIndex::build(&o);

        let mut s = SubscriptionIndex::new();
        s.insert(qid(1), &QueryPayload::Semantic(ServiceRequest::for_category(sensor)));
        s.insert(qid(2), &QueryPayload::Semantic(ServiceRequest::for_category(weapon)));
        s.insert(
            qid(3),
            &QueryPayload::Semantic(ServiceRequest::default().with_outputs(&[sensor])),
        );
        s.insert(qid(4), &QueryPayload::Semantic(ServiceRequest::default()));

        let a = advert(Description::Semantic(
            ServiceProfile::new("r", radar).with_outputs(&[radar]),
        ));
        // Radar relates to Sensor (category sub 1), its output relates to the
        // Sensor request (sub 3), and the unconstrained sub 4 always probes;
        // the Weapon subscription is pruned.
        assert_eq!(s.candidates(&a, Some(&idx)), vec![qid(1), qid(3), qid(4)]);
        // Without an index every keyed posting is probed (sound fallback).
        assert_eq!(s.candidates(&a, None), vec![qid(1), qid(2), qid(3), qid(4)]);
    }

    #[test]
    fn clear_drops_everything() {
        let mut s = SubscriptionIndex::new();
        s.insert(qid(1), &QueryPayload::Uri("urn:a".into()));
        s.insert(qid(2), &QueryPayload::Semantic(ServiceRequest::default()));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }
}
