//! Focused tests of the attachment state machine: probe retry cadence,
//! failover timing bounds, and candidate freshness.

use sds_core::{
    AttachConfig, Bootstrap, ClientConfig, ClientNode, RegistryConfig, RegistryNode,
};
use sds_protocol::DiscoveryMessage;
use sds_simnet::{secs, ControlAction, FaultProfile, NodeId, Sim, SimConfig, Topology};

type Net = Sim<DiscoveryMessage>;

fn lan_world(seed: u64) -> (Net, sds_simnet::LanId) {
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    (Sim::new(SimConfig::default(), topo, seed), lan)
}

#[test]
fn probe_retries_until_a_registry_appears() {
    let (mut sim, lan) = lan_world(1);
    let c = sim.add_node(
        lan,
        Box::new(ClientNode::new(ClientConfig {
            attach: AttachConfig { probe_retry: secs(2), ..Default::default() },
            ..Default::default()
        })),
    );
    sim.run_until(secs(7));
    assert!(sim.handler::<ClientNode>(c).unwrap().home_registry().is_none());
    // 4 probes so far: t=0, 2, 4, 6.
    assert_eq!(sim.stats().kind("probe").messages, 4);

    // A registry appears; the next retry (t=8 s) finds it.
    let r = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    sim.run_until(secs(9));
    assert_eq!(sim.handler::<ClientNode>(c).unwrap().home_registry(), Some(r));
    // Attached clients stop probing.
    let probes_after_attach = sim.stats().kind("probe").messages;
    sim.run_until(secs(20));
    assert_eq!(sim.stats().kind("probe").messages, probes_after_attach);
}

#[test]
fn failover_happens_within_the_ping_tolerance_window() {
    let (mut sim, lan) = lan_world(2);
    let r0 = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let r1 = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let attach = AttachConfig { ping_interval: secs(4), ping_tolerance: 2, ..Default::default() };
    let c = sim.add_node(
        lan,
        Box::new(ClientNode::new(ClientConfig { attach, ..Default::default() })),
    );
    sim.run_until(secs(1));
    let home = sim.handler::<ClientNode>(c).unwrap().home_registry().unwrap();
    let other = if home == r0 { r1 } else { r0 };
    sim.crash_node(home);
    let crash_at = sim.now();

    // Detection needs (tolerance + 1) missed ping rounds at worst:
    // 3 rounds × 4 s = 12 s, plus one round of slack.
    let mut attached_at = None;
    for step in 0..3_000u64 {
        sim.run_until(crash_at + step * 10);
        if sim.handler::<ClientNode>(c).unwrap().home_registry() == Some(other) {
            attached_at = Some(sim.now() - crash_at);
            break;
        }
    }
    let took = attached_at.expect("failover happened");
    assert!(took <= secs(16), "failover within tolerance window, took {took} ms");
    assert!(took >= secs(8), "no premature failover, took {took} ms");
}

#[test]
fn static_bootstrap_never_probes() {
    let (mut sim, lan) = lan_world(3);
    let r = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let _c = sim.add_node(
        lan,
        Box::new(ClientNode::new(ClientConfig {
            attach: AttachConfig { bootstrap: Bootstrap::Static(r), ..Default::default() },
            ..Default::default()
        })),
    );
    sim.run_until(secs(30));
    assert_eq!(sim.stats().kind("probe").messages, 0);
}

#[test]
fn candidate_list_refreshes_with_new_remote_registries() {
    // A remote registry joining the federation AFTER the client attached
    // must eventually show up in the client's failover candidates via the
    // periodic registry-list refresh.
    let mut topo = Topology::new();
    let lan0 = topo.add_lan();
    let lan1 = topo.add_lan();
    let mut sim: Net = Sim::new(SimConfig::default(), topo, 4);
    let r0 = sim.add_node(lan0, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let c = sim.add_node(lan0, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(2));
    let before = sim.handler::<ClientNode>(c).unwrap().candidate_count();
    assert_eq!(before, 1, "only the home registry known initially");

    let _r1 = sim.add_node(
        lan1,
        Box::new(RegistryNode::new(RegistryConfig { seeds: vec![r0], ..Default::default() }, None)),
    );
    // Wait for federation join + the client's next list refresh (3 pings).
    sim.run_until(secs(40));
    assert!(
        sim.handler::<ClientNode>(c).unwrap().candidate_count() >= 2,
        "remote registry learned through registry signaling"
    );
}

#[test]
fn staggered_clients_spread_across_registries() {
    // Three equally empty registries; six clients arriving one by one.
    // Each probe reply carries the registry's attachment load, so joiners
    // pick the least-loaded one ("assigning clients to registries in an
    // even distribution").
    let (mut sim, lan) = lan_world(6);
    let regs: Vec<NodeId> = (0..3)
        .map(|_| sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None))))
        .collect();
    let mut clients = Vec::new();
    for i in 0..6 {
        sim.run_until(secs(1 + i * 2));
        clients.push(sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default()))));
    }
    sim.run_until(secs(20));
    let mut counts = std::collections::HashMap::new();
    for &c in &clients {
        let home = sim.handler::<ClientNode>(c).unwrap().home_registry().unwrap();
        *counts.entry(home).or_insert(0u32) += 1;
    }
    for &r in &regs {
        assert_eq!(counts.get(&r), Some(&2), "2 clients per registry: {counts:?}");
    }
}

#[test]
fn duplicated_probe_replies_do_not_flap_home_or_inflate_candidates() {
    // 100% duplication plus mild reordering on the LAN: every probe reply,
    // beacon, and pong arrives twice and slightly out of order. Attachment
    // must still converge to one stable home, and the candidate set must
    // stay bounded by the number of real registries.
    for seed in 0..5u64 {
        let (mut sim, lan) = lan_world(100 + seed);
        sim.set_lan_faults(
            lan,
            FaultProfile { duplicate: 1.0, reorder_jitter: 200, ..Default::default() },
        );
        let regs: Vec<NodeId> = (0..3)
            .map(|_| sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None))))
            .collect();
        let c = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
        sim.run_until(secs(2));
        let home = sim
            .handler::<ClientNode>(c)
            .unwrap()
            .home_registry()
            .expect("attached despite duplication");
        assert!(regs.contains(&home));
        // The home must not flap while every registry stays healthy.
        for step in 1..=28u64 {
            sim.run_until(secs(2 + step));
            let h = sim.handler::<ClientNode>(c).unwrap();
            assert_eq!(h.home_registry(), Some(home), "seed {seed}: home flapped");
            assert!(
                h.candidate_count() <= regs.len(),
                "seed {seed}: duplicated signals inflated the candidate set"
            );
        }
        assert!(sim.stats().duplicated_messages > 0, "faults were actually injected");
    }
}

#[test]
fn stale_pongs_after_failover_do_not_resurrect_a_dead_home() {
    // A fault window delays and duplicates traffic right before the home
    // registry crashes, so pongs the old home sent while alive can surface
    // long after the client failed over. Those stale pongs (and their
    // duplicates) must not re-attach the client to the dead registry.
    for seed in 0..8u64 {
        let (mut sim, lan) = lan_world(200 + seed);
        let r0 = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
        let r1 = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
        let attach =
            AttachConfig { ping_interval: secs(2), ping_tolerance: 2, ..Default::default() };
        let c = sim.add_node(
            lan,
            Box::new(ClientNode::new(ClientConfig { attach, ..Default::default() })),
        );
        sim.schedule(
            secs(10),
            ControlAction::SetLanFaults(
                lan,
                FaultProfile { duplicate: 1.0, reorder_jitter: secs(8), ..Default::default() },
            ),
        );
        sim.schedule(secs(20), ControlAction::ClearFaults);
        sim.run_until(secs(2));
        let home = sim.handler::<ClientNode>(c).unwrap().home_registry().expect("attached");
        let survivor = if home == r0 { r1 } else { r0 };
        sim.run_until(secs(20));
        sim.crash_node(home);
        // Delayed duplicates from the window drain while failover runs; the
        // client must settle on the survivor and stay there.
        sim.run_until(secs(60));
        assert_eq!(
            sim.handler::<ClientNode>(c).unwrap().home_registry(),
            Some(survivor),
            "seed {seed}: did not settle on the surviving registry"
        );
        for step in 1..=10u64 {
            sim.run_until(secs(60 + step * 2));
            assert_eq!(
                sim.handler::<ClientNode>(c).unwrap().home_registry(),
                Some(survivor),
                "seed {seed}: flapped away from the survivor"
            );
        }
        assert!(sim.stats().fault_injections() > 0, "faults were actually injected");
    }
}

#[test]
fn ping_tolerance_zero_is_trigger_happy_but_works() {
    let (mut sim, lan) = lan_world(5);
    let _r0 = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let _r1 = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let attach = AttachConfig { ping_interval: secs(1), ping_tolerance: 0, ..Default::default() };
    let c = sim.add_node(
        lan,
        Box::new(ClientNode::new(ClientConfig { attach, ..Default::default() })),
    );
    // Tolerance 0 with a healthy registry: pongs land between rounds, so it
    // must not flap.
    sim.run_until(secs(20));
    assert!(sim.handler::<ClientNode>(c).unwrap().home_registry().is_some());
}
