//! Tests for the anti-entropy replication plane: digest/delta rounds replace
//! the legacy full-state push, gossip payloads stay bounded, and probation
//! reinstatement no longer re-announces with a push when pushing is off.

use sds_core::{RegistryConfig, RegistryNode, RetryPolicy, ServiceConfig, ServiceNode, SyncMode};
use sds_protocol::{Description, DiscoveryMessage, MaintenanceOp, PublishOp};
use sds_simnet::{secs, NodeHandler, NodeId, Sim, SimConfig, Topology};

fn two_lan_sim() -> (Sim<DiscoveryMessage>, sds_simnet::LanId, sds_simnet::LanId) {
    let mut topo = Topology::new();
    let lan0 = topo.add_lan();
    let lan1 = topo.add_lan();
    (Sim::new(SimConfig::default(), topo, 11), lan0, lan1)
}

/// Satellite regression: `FederationJoin::known_peers` and
/// `FederationAck::peers` are capped at `gossip_peer_cap`, deduplicated, and
/// never name the recipient — a 256-peer view must not gossip 256 ids.
#[test]
fn gossip_peer_lists_are_capped_at_256_peers() {
    let (mut sim, lan0, lan1) = two_lan_sim();
    let quiet = RegistryConfig {
        signaling_interval: 0,
        peer_ping_interval: secs(120),
        ..Default::default()
    };
    let r_joiner = sim.add_node(lan0, Box::new(RegistryNode::new(quiet.clone(), None)));
    let r_seed = sim.add_node(lan1, Box::new(RegistryNode::new(quiet.clone(), None)));
    sim.run_until(secs(1));

    // Hand the joiner a 256-peer view (plus the seed) via gossip. The fake
    // ids name nobody, so traffic toward them black-holes harmlessly. The
    // joiner had no peers, so learning some triggers its federation joins —
    // each carrying a `known_peers` payload built from 257 peers.
    let fakes: Vec<NodeId> = (0..256u32).map(|i| NodeId(100 + i)).collect();
    let mut registries = fakes.clone();
    registries.push(r_seed);
    sim.with_node::<RegistryNode>(r_joiner, |n, ctx| {
        n.on_message(
            ctx,
            r_seed,
            DiscoveryMessage::maintenance(MaintenanceOp::RegistryList { registries }),
        );
    });
    sim.run_until(secs(3));

    let joiner = sim.handler::<RegistryNode>(r_joiner).unwrap();
    assert_eq!(joiner.peer_ids().len(), 257, "joiner ingested the full view");
    // The seed learned the joiner plus a capped slice of its view — not all
    // 256 fakes. (transitive_peering ingests whatever the payload carried.)
    let cap = RegistryConfig::default().gossip_peer_cap;
    let seed_peers = sim.handler::<RegistryNode>(r_seed).unwrap().peer_ids();
    assert!(
        seed_peers.len() <= cap + 1,
        "known_peers payload leaked past the cap: {} peers",
        seed_peers.len()
    );
    assert!(seed_peers.contains(&r_joiner));
    assert!(!seed_peers.contains(&r_seed), "a gossip payload never names the recipient's self");
    let mut deduped = seed_peers.clone();
    deduped.dedup();
    assert_eq!(deduped, seed_peers, "gossiped peer list carried duplicates");
}

/// Satellite regression: a probation reinstatement in legacy mode must not
/// fire a full advert push when `advert_push_interval == 0` — replication
/// that is switched off stays off through the suspect/reinstate cycle.
#[test]
fn reinstate_respects_disabled_push_replication() {
    let (mut sim, lan0, lan1) = two_lan_sim();
    let cfg = RegistryConfig {
        sync_mode: SyncMode::Legacy,
        advert_push_interval: 0,
        advert_pull_interval: 0,
        probation: RetryPolicy::standard(),
        signaling_interval: 0,
        ..Default::default()
    };
    let r0 = sim.add_node(lan0, Box::new(RegistryNode::new(cfg.clone(), None)));
    let r1 = sim.add_node(
        lan1,
        Box::new(RegistryNode::new(RegistryConfig { seeds: vec![r0], ..cfg }, None)),
    );
    // r0 holds a first-hand advert it could (wrongly) push on reinstate.
    let _s = sim.add_node(
        lan0,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:home".into())],
            None,
        )),
    );
    sim.run_until(secs(12));
    assert!(sim.handler::<RegistryNode>(r0).unwrap().peer_ids().contains(&r1));

    // Silence r1 long enough for r0 to suspect it, then bring it back so a
    // probation re-ping reinstates it.
    sim.crash_node(r1);
    sim.run_until(secs(40));
    sim.revive_node(r1);
    sim.run_until(secs(80));
    let r0_stats = sim.handler::<RegistryNode>(r0).unwrap().stats;
    assert!(r0_stats.peers_suspected >= 1, "crash was never suspected");
    assert!(r0_stats.peers_reinstated >= 1, "revived peer was never reinstated");
    assert_eq!(
        sim.stats().kind("fwd-adverts").messages,
        0,
        "reinstatement pushed adverts although push replication is disabled"
    );
}

/// The anti-entropy plane replicates without ever sending a full-state push:
/// a remote first-hand advert appears as a replica after one digest/delta
/// exchange, stays alive through delta-encoded renewals, and expires once
/// the origin stops listing it.
#[test]
fn anti_entropy_replicates_renews_and_forgets() {
    let (mut sim, lan0, lan1) = two_lan_sim();
    let r0 = sim.add_node(lan0, Box::new(RegistryNode::new(RegistryConfig::default(), None)));
    let r1 = sim.add_node(
        lan1,
        Box::new(RegistryNode::new(
            RegistryConfig { seeds: vec![r0], ..Default::default() },
            None,
        )),
    );
    let _s = sim.add_node(
        lan1,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:far".into())],
            None,
        )),
    );

    // Replication through sync rounds only — the legacy plane stays silent.
    sim.run_until(secs(15));
    assert_eq!(
        sim.handler::<RegistryNode>(r0).unwrap().engine().store().len(),
        1,
        "replica arrived at r0 via anti-entropy"
    );
    assert_eq!(sim.stats().kind("fwd-adverts").messages, 0, "no full-state push");
    assert!(sim.stats().kind("sync-digest").messages > 0, "digest rounds ran");

    // Steady state: the origin keeps the replica alive with fixed-size
    // deltas (the service renews its lease every few seconds), never
    // re-shipping the full advert.
    sim.run_until(secs(60));
    let now = sim.now();
    let r0_node = sim.handler::<RegistryNode>(r0).unwrap();
    assert_eq!(r0_node.engine().store().live(now).count(), 1, "replica kept alive");
    let origin_stats = sim.handler::<RegistryNode>(r1).unwrap().stats;
    assert!(origin_stats.sync_rounds > 0);
    assert!(origin_stats.deltas_sent > 0, "renewals should flow as deltas");
    assert!(origin_stats.bytes_saved > 0, "deltas should undercut full adverts");

    // Remove the advert at its origin: the next digest rounds prune the
    // peer's belief, nothing renews the replica, and the lease reaps it.
    let origin = sim.handler::<RegistryNode>(r1).unwrap().engine().store();
    let first_hand = origin.live(now).find(|s| s.source == s.advert.provider).unwrap();
    let (id, provider) = (first_hand.advert.id, first_hand.advert.provider);
    sim.crash_node(_s); // stop the service from republishing
    sim.with_node::<RegistryNode>(r1, |n, ctx| {
        n.on_message(ctx, provider, DiscoveryMessage::publishing(PublishOp::Remove { id }));
    });
    sim.run_until(secs(120));
    let now = sim.now();
    assert_eq!(
        sim.handler::<RegistryNode>(r0).unwrap().engine().store().live(now).count(),
        0,
        "removed advert survived at the replica past its lease"
    );
}
