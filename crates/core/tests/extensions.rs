//! Tests for the architecture's extension features: standing queries
//! (subscribe/notify) and advert push replication between registries.

use std::sync::Arc;

use sds_core::{
    ClientConfig, ClientNode, QueryOptions, RegistryConfig, RegistryNode, ServiceConfig,
    ServiceNode, SyncMode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_semantic::{ClassId, Ontology, ServiceProfile, ServiceRequest, SubsumptionIndex};
use sds_simnet::{secs, Sim, SimConfig, Topology};

fn sensor_index() -> (Arc<SubsumptionIndex>, ClassId, ClassId, ClassId) {
    let mut o = Ontology::new();
    let thing = o.class("Thing", &[]);
    let svc = o.class("Service", &[thing]);
    let surveil = o.class("SurveillanceService", &[svc]);
    let radar = o.class("RadarService", &[surveil]);
    (Arc::new(SubsumptionIndex::build(&o)), svc, surveil, radar)
}

#[test]
fn subscription_notifies_on_future_publish() {
    let (idx, _svc, surveil, radar) = sensor_index();
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 1);
    let r = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), Some(idx.clone()))));
    let c = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(1));

    // Standing query: any SurveillanceService.
    let mut sub_id = None;
    sim.with_node::<ClientNode>(c, |cl, ctx| {
        sub_id = cl.subscribe(
            ctx,
            QueryPayload::Semantic(ServiceRequest::for_category(surveil)),
            60_000,
        );
    });
    let sub_id = sub_id.expect("attached, so subscribe succeeds");
    sim.run_until(secs(2));
    assert_eq!(sim.handler::<ClientNode>(c).unwrap().active_subscriptions, vec![sub_id]);
    assert_eq!(sim.handler::<RegistryNode>(r).unwrap().subscription_count(), 1);

    // A matching service appears AFTER the subscription.
    let _s = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Semantic(ServiceProfile::new("late-radar", radar))],
            Some(idx.clone()),
        )),
    );
    sim.run_until(secs(4));
    let client = sim.handler::<ClientNode>(c).unwrap();
    assert_eq!(client.notifications.len(), 1, "notified of the late arrival");
    assert_eq!(client.notifications[0].subscription, sub_id);
    let Description::Semantic(p) = &client.notifications[0].hit.advert.description else {
        panic!("semantic advert expected")
    };
    assert_eq!(p.name, "late-radar");

    // A non-matching service triggers nothing further.
    let _chat = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:chat".into())],
            None,
        )),
    );
    sim.run_until(secs(6));
    assert_eq!(sim.handler::<ClientNode>(c).unwrap().notifications.len(), 1);
}

#[test]
fn unsubscribe_stops_notifications() {
    let (idx, _svc, surveil, radar) = sensor_index();
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 2);
    let r = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), Some(idx.clone()))));
    let c = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(1));
    let mut sub_id = None;
    sim.with_node::<ClientNode>(c, |cl, ctx| {
        sub_id = cl.subscribe(
            ctx,
            QueryPayload::Semantic(ServiceRequest::for_category(surveil)),
            60_000,
        );
    });
    sim.run_until(secs(2));
    let sub_id = sub_id.unwrap();
    sim.with_node::<ClientNode>(c, |cl, ctx| cl.unsubscribe(ctx, sub_id));
    sim.run_until(secs(3));
    assert_eq!(sim.handler::<RegistryNode>(r).unwrap().subscription_count(), 0);

    let _s = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Semantic(ServiceProfile::new("radar", radar))],
            Some(idx),
        )),
    );
    sim.run_until(secs(5));
    assert!(sim.handler::<ClientNode>(c).unwrap().notifications.is_empty());
}

#[test]
fn expired_subscription_is_purged_and_silent() {
    let (idx, _svc, surveil, radar) = sensor_index();
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 3);
    let r = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), Some(idx.clone()))));
    let c = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(1));
    sim.with_node::<ClientNode>(c, |cl, ctx| {
        // A 3-second lease that the client never renews.
        cl.subscribe(ctx, QueryPayload::Semantic(ServiceRequest::for_category(surveil)), 3_000);
    });
    sim.run_until(secs(8));
    assert_eq!(sim.handler::<RegistryNode>(r).unwrap().subscription_count(), 0, "lease expired");
    let _s = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Semantic(ServiceProfile::new("radar", radar))],
            Some(idx),
        )),
    );
    sim.run_until(secs(10));
    assert!(sim.handler::<ClientNode>(c).unwrap().notifications.is_empty());
}

#[test]
fn advert_pull_replicates_on_demand() {
    let mut topo = Topology::new();
    let lan0 = topo.add_lan();
    let lan1 = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 8);
    // r0 pulls; r1 never pushes. Legacy sync: the pull timer is the legacy
    // replication plane and must do the work itself here.
    let legacy = RegistryConfig { sync_mode: SyncMode::Legacy, ..Default::default() };
    let r0 = sim.add_node(
        lan0,
        Box::new(RegistryNode::new(
            RegistryConfig { advert_pull_interval: secs(5), ..legacy.clone() },
            None,
        )),
    );
    let _r1 = sim.add_node(
        lan1,
        Box::new(RegistryNode::new(RegistryConfig { seeds: vec![r0], ..legacy }, None)),
    );
    let _s = sim.add_node(
        lan1,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:far".into())],
            None,
        )),
    );
    // After a pull round, r0 holds a replica it never received a publish for.
    sim.run_until(secs(12));
    assert_eq!(
        sim.handler::<RegistryNode>(r0).unwrap().engine().store().len(),
        1,
        "pulled replica present at r0"
    );
}

#[test]
fn registry_plans_service_chains_end_to_end() {
    // Taxonomy for a two-step chain: radar (AOI → RadarRaw ⊑ Raw) then
    // fusion (Raw → Track).
    let mut o = Ontology::new();
    let thing = o.class("Thing", &[]);
    let aoi = o.class("AreaOfInterest", &[thing]);
    let raw = o.class("RawSensorData", &[thing]);
    let radar_raw = o.class("RadarRaw", &[raw]);
    let track = o.class("Track", &[thing]);
    let svc = o.class("Service", &[thing]);
    let idx = Arc::new(SubsumptionIndex::build(&o));

    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 6);
    let _r = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), Some(idx.clone()))));
    let radar = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Semantic(
                ServiceProfile::new("radar", svc).with_inputs(&[aoi]).with_outputs(&[radar_raw]),
            )],
            Some(idx.clone()),
        )),
    );
    let fusion = sim.add_node(
        lan,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Semantic(
                ServiceProfile::new("fusion", svc).with_inputs(&[raw]).with_outputs(&[track]),
            )],
            Some(idx.clone()),
        )),
    );
    let c = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(1));

    // No single service yields a Track from an AOI; a plain query confirms.
    sim.with_node::<ClientNode>(c, |cl, ctx| {
        cl.issue_query(
            ctx,
            QueryPayload::Semantic(
                ServiceRequest::default().with_outputs(&[track]).with_provided_inputs(&[aoi]),
            ),
            QueryOptions::default(),
        );
    });
    // Composition finds the chain.
    sim.with_node::<ClientNode>(c, |cl, ctx| {
        cl.request_composition(
            ctx,
            ServiceRequest::default().with_outputs(&[track]).with_provided_inputs(&[aoi]),
            4,
        );
    });
    sim.run_until(secs(6));
    let client = sim.handler::<ClientNode>(c).unwrap();
    assert_eq!(client.completed[0].hits.len(), 0, "no single service matches");
    let plan = &client.compositions[0];
    assert!(plan.found);
    let providers: Vec<_> = plan.chain.iter().map(|a| a.provider).collect();
    assert_eq!(providers, vec![radar, fusion], "radar → fusion chain, in order");
}

#[test]
fn composition_reports_not_found() {
    let (idx, _svc, surveil, _radar) = sensor_index();
    let mut topo = Topology::new();
    let lan = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 7);
    let _r = sim.add_node(lan, Box::new(RegistryNode::new(RegistryConfig::default(), Some(idx))));
    let c = sim.add_node(lan, Box::new(ClientNode::new(ClientConfig::default())));
    sim.run_until(secs(1));
    sim.with_node::<ClientNode>(c, |cl, ctx| {
        cl.request_composition(ctx, ServiceRequest::for_category(surveil), 4);
    });
    sim.run_until(secs(3));
    let client = sim.handler::<ClientNode>(c).unwrap();
    assert!(!client.compositions[0].found);
    assert!(client.compositions[0].chain.is_empty());
}

#[test]
fn advert_push_replicates_across_federation() {
    let mut topo = Topology::new();
    let lan0 = topo.add_lan();
    let lan1 = topo.add_lan();
    let mut sim: Sim<DiscoveryMessage> = Sim::new(SimConfig::default(), topo, 4);
    let push = RegistryConfig {
        advert_push_interval: secs(5),
        strategy: sds_core::ForwardStrategy::None, // replication instead of forwarding
        sync_mode: SyncMode::Legacy,               // exercise the legacy push plane
        ..Default::default()
    };
    let r0 = sim.add_node(lan0, Box::new(RegistryNode::new(push.clone(), None)));
    let r1 = sim.add_node(
        lan1,
        Box::new(RegistryNode::new(RegistryConfig { seeds: vec![r0], ..push }, None)),
    );
    let _s = sim.add_node(
        lan1,
        Box::new(ServiceNode::new(
            ServiceConfig::default(),
            vec![Description::Uri("urn:svc:far".into())],
            None,
        )),
    );
    let c = sim.add_node(lan0, Box::new(ClientNode::new(ClientConfig::default())));
    // Two push rounds.
    sim.run_until(secs(12));
    assert_eq!(
        sim.handler::<RegistryNode>(r0).unwrap().engine().store().len(),
        1,
        "replica arrived at r0"
    );

    // With ForwardStrategy::None the query is answered purely from the local
    // replica — no WAN query traffic at query time.
    sim.reset_stats();
    sim.with_node::<ClientNode>(c, |cl, ctx| {
        cl.issue_query(ctx, QueryPayload::Uri("urn:svc:far".into()), QueryOptions::default());
    });
    sim.run_until(secs(18));
    assert_eq!(sim.handler::<ClientNode>(c).unwrap().completed[0].hits.len(), 1);
    assert_eq!(sim.stats().kind("query").messages, 1, "one local query, no forwarding");

    // Replicas are leased: when the provider dies, its advert expires at the
    // replica too (pushes stop refreshing it).
    let provider = sim.handler::<RegistryNode>(r1).unwrap().engine().store().iter().next().unwrap().advert.provider;
    sim.crash_node(provider);
    sim.run_until(secs(80));
    assert!(
        sim.handler::<RegistryNode>(r0).unwrap().engine().store().is_empty(),
        "replicated advert expired after the provider died"
    );
}
