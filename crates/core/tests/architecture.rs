//! End-to-end tests of the discovery architecture on the simulated network.

use std::sync::Arc;

use sds_core::{
    AttachConfig, Bootstrap, ClientConfig, ClientNode, ForwardStrategy, QueryMode, QueryOptions,
    RegistryConfig, RegistryNode, ServiceConfig, ServiceNode, SyncMode,
};
use sds_protocol::{Description, DiscoveryMessage, QueryPayload};
use sds_semantic::{
    Artifact, ArtifactId, ArtifactKind, ClassId, Degree, Ontology, ServiceProfile, ServiceRequest,
    SubsumptionIndex,
};
use sds_simnet::{secs, ControlAction, LanId, NodeId, Sim, SimConfig, Topology};

type Net = Sim<DiscoveryMessage>;

struct World {
    sim: Net,
    lans: Vec<LanId>,
    idx: Arc<SubsumptionIndex>,
    sensor: ClassId,
    radar: ClassId,
    svc_cat: ClassId,
}

fn world(n_lans: usize, seed: u64) -> World {
    let mut ont = Ontology::new();
    let thing = ont.class("Thing", &[]);
    let sensor = ont.class("Sensor", &[thing]);
    let radar = ont.class("Radar", &[sensor]);
    let svc_cat = ont.class("SurveillanceService", &[thing]);
    let idx = Arc::new(SubsumptionIndex::build(&ont));

    let mut topo = Topology::new();
    let lans: Vec<LanId> = (0..n_lans).map(|_| topo.add_lan()).collect();
    let sim = Sim::new(SimConfig::default(), topo, seed);
    World { sim, lans, idx, sensor, radar, svc_cat }
}

impl World {
    fn registry(&mut self, lan: usize, cfg: RegistryConfig) -> NodeId {
        let node = RegistryNode::new(cfg, Some(self.idx.clone()));
        self.sim.add_node(self.lans[lan], Box::new(node))
    }

    fn uri_service(&mut self, lan: usize, uri: &str) -> NodeId {
        self.service(lan, Description::Uri(uri.into()), ServiceConfig::default())
    }

    fn service(&mut self, lan: usize, description: Description, cfg: ServiceConfig) -> NodeId {
        let node = ServiceNode::new(cfg, vec![description], Some(self.idx.clone()));
        self.sim.add_node(self.lans[lan], Box::new(node))
    }

    fn client(&mut self, lan: usize) -> NodeId {
        self.client_with(lan, ClientConfig::default())
    }

    fn client_with(&mut self, lan: usize, cfg: ClientConfig) -> NodeId {
        self.sim.add_node(self.lans[lan], Box::new(ClientNode::new(cfg)))
    }

    fn query(&mut self, client: NodeId, payload: QueryPayload, options: QueryOptions) {
        self.sim.with_node::<ClientNode>(client, |c, ctx| {
            c.issue_query(ctx, payload, options);
        });
    }

    fn results(&self, client: NodeId) -> &[sds_core::CompletedQuery] {
        &self.sim.handler::<ClientNode>(client).unwrap().completed
    }
}

fn radar_profile(svc_cat: ClassId, radar: ClassId) -> Description {
    Description::Semantic(ServiceProfile::new("radar-feed", svc_cat).with_outputs(&[radar]))
}

#[test]
fn publish_and_query_on_one_lan() {
    let mut w = world(1, 1);
    let _r = w.registry(0, RegistryConfig::default());
    let _s = w.uri_service(0, "urn:svc:chat");
    let c = w.client(0);
    w.sim.run_until(secs(1));
    w.query(c, QueryPayload::Uri("urn:svc:chat".into()), QueryOptions::default());
    w.sim.run_until(secs(6));

    let results = w.results(c);
    assert_eq!(results.len(), 1);
    assert!(results[0].dispatched);
    assert_eq!(results[0].hits.len(), 1, "service discovered via registry");
    assert_eq!(results[0].hits[0].degree, Degree::Exact);
    // Non-matching query returns nothing.
    w.query(c, QueryPayload::Uri("urn:svc:mail".into()), QueryOptions::default());
    w.sim.run_until(secs(12));
    assert_eq!(w.results(c)[1].hits.len(), 0);
}

#[test]
fn passive_discovery_via_beacons() {
    let mut w = world(1, 2);
    let r = w.registry(0, RegistryConfig { beacon_interval: secs(2), ..Default::default() });
    let cfg = ClientConfig {
        attach: AttachConfig { bootstrap: Bootstrap::PassiveOnly, ..Default::default() },
        ..Default::default()
    };
    let c = w.client_with(0, cfg);
    w.sim.run_until(500);
    assert_eq!(w.sim.handler::<ClientNode>(c).unwrap().home_registry(), None, "no probe sent");
    w.sim.run_until(secs(5));
    assert_eq!(
        w.sim.handler::<ClientNode>(c).unwrap().home_registry(),
        Some(r),
        "beacon attached the client passively"
    );
}

#[test]
fn static_bootstrap_attaches_immediately() {
    let mut w = world(1, 3);
    let r = w.registry(0, RegistryConfig::default());
    let cfg = ClientConfig {
        attach: AttachConfig { bootstrap: Bootstrap::Static(r), ..Default::default() },
        ..Default::default()
    };
    let c = w.client_with(0, cfg);
    assert_eq!(w.sim.handler::<ClientNode>(c).unwrap().home_registry(), Some(r));
}

#[test]
fn lease_expiry_purges_crashed_service() {
    let mut w = world(1, 4);
    let r = w.registry(0, RegistryConfig::default());
    let s = w.service(
        0,
        Description::Uri("urn:svc:chat".into()),
        ServiceConfig { lease_ms: 5_000, renew_interval: secs(2), ..Default::default() },
    );
    let c = w.client(0);
    w.sim.run_until(secs(1));

    // Alive and renewing: advert stays past the initial lease.
    w.sim.run_until(secs(8));
    w.query(c, QueryPayload::Uri("urn:svc:chat".into()), QueryOptions::default());
    w.sim.run_until(secs(12));
    assert_eq!(w.results(c)[0].hits.len(), 1, "renewals kept the advert alive");

    // Crash the provider; within lease_ms the advert must be purged.
    w.sim.crash_node(s);
    w.sim.run_until(secs(20));
    assert!(w.sim.handler::<RegistryNode>(r).unwrap().engine().store().is_empty());
    w.query(c, QueryPayload::Uri("urn:svc:chat".into()), QueryOptions::default());
    w.sim.run_until(secs(25));
    assert_eq!(w.results(c)[1].hits.len(), 0, "no stale advert after lease expiry");
}

#[test]
fn registry_restart_triggers_republish() {
    let mut w = world(1, 5);
    let r = w.registry(0, RegistryConfig::default());
    let s = w.uri_service(0, "urn:svc:chat");
    w.sim.run_until(secs(1));
    assert_eq!(w.sim.handler::<RegistryNode>(r).unwrap().engine().store().len(), 1);

    // Restart the registry: soft state (adverts) is lost.
    w.sim.crash_node(r);
    w.sim.revive_node(r);
    assert_eq!(w.sim.handler::<RegistryNode>(r).unwrap().engine().store().len(), 0);

    // The provider's next renewal gets `known: false` and republishes.
    w.sim.run_until(secs(30));
    assert_eq!(w.sim.handler::<RegistryNode>(r).unwrap().engine().store().len(), 1);
    assert!(w.sim.handler::<ServiceNode>(s).unwrap().stats.republishes_after_unknown >= 1);
}

#[test]
fn federation_connects_lans() {
    let mut w = world(2, 6);
    let r0 = w.registry(0, RegistryConfig::default());
    let _r1 = w.registry(1, RegistryConfig { seeds: vec![r0], ..Default::default() });
    let _s = w.service(1, radar_profile(w.svc_cat, w.radar), ServiceConfig::default());
    let c = w.client(0);
    w.sim.run_until(secs(2));

    // Semantic query for Sensor output: the remote Radar service plugs in.
    let req = ServiceRequest::default().with_outputs(&[w.sensor]);
    w.query(c, QueryPayload::Semantic(req), QueryOptions::default());
    w.sim.run_until(secs(8));
    let results = w.results(c);
    assert_eq!(results.len(), 1);
    assert_eq!(results[0].hits.len(), 1, "WAN discovery through the registry network");
    assert_eq!(results[0].hits[0].degree, Degree::PlugIn);
}

#[test]
fn query_response_control_limits_hits() {
    let mut w = world(1, 7);
    let _r = w.registry(0, RegistryConfig::default());
    for _ in 0..8 {
        w.uri_service(0, "urn:svc:chat");
    }
    let c = w.client(0);
    w.sim.run_until(secs(1));
    w.query(
        c,
        QueryPayload::Uri("urn:svc:chat".into()),
        QueryOptions { max_responses: Some(2), ..Default::default() },
    );
    w.sim.run_until(secs(6));
    assert_eq!(w.results(c)[0].hits.len(), 2, "registry truncated to max_responses");
}

#[test]
fn decentralized_fallback_without_registry() {
    let mut w = world(1, 8);
    let _s1 = w.uri_service(0, "urn:svc:chat");
    let _s2 = w.uri_service(0, "urn:svc:mail");
    let c = w.client(0);
    w.sim.run_until(secs(1));
    // Unicast mode falls back to LAN multicast because no registry exists.
    w.query(c, QueryPayload::Uri("urn:svc:chat".into()), QueryOptions::default());
    w.sim.run_until(secs(6));
    let results = w.results(c);
    assert!(results[0].dispatched);
    assert_eq!(results[0].hits.len(), 1, "provider self-answered");
    assert_eq!(results[0].responses_received, 1, "only the matching provider responded");
}

#[test]
fn fallback_suppressed_when_registry_present() {
    let mut w = world(1, 9);
    let _r = w.registry(0, RegistryConfig::default());
    let s = w.uri_service(0, "urn:svc:chat");
    let c = w.client(0);
    w.sim.run_until(secs(1));
    // Even a multicast query is answered by the registry, not the provider.
    w.query(
        c,
        QueryPayload::Uri("urn:svc:chat".into()),
        QueryOptions { mode: QueryMode::MulticastLan, ..Default::default() },
    );
    w.sim.run_until(secs(6));
    assert_eq!(w.sim.handler::<ServiceNode>(s).unwrap().stats.fallback_answers, 0);
    assert_eq!(w.results(c)[0].hits.len(), 1);
}

#[test]
fn client_and_service_fail_over_to_surviving_registry() {
    let mut w = world(1, 10);
    let r0 = w.registry(0, RegistryConfig::default());
    let r1 = w.registry(0, RegistryConfig::default());
    let s = w.uri_service(0, "urn:svc:chat");
    let c = w.client(0);
    w.sim.run_until(secs(2));

    let home = w.sim.handler::<ServiceNode>(s).unwrap().home_registry().unwrap();
    let other = if home == r0 { r1 } else { r0 };
    w.sim.crash_node(home);

    // Ping tolerance (2 × 5 s) plus margin: both roles fail over, the
    // service republishes to the survivor.
    w.sim.run_until(secs(40));
    assert_eq!(w.sim.handler::<ServiceNode>(s).unwrap().home_registry(), Some(other));
    assert_eq!(
        w.sim.handler::<RegistryNode>(other).unwrap().engine().store().len(),
        1,
        "advert republished to surviving registry"
    );
    w.query(c, QueryPayload::Uri("urn:svc:chat".into()), QueryOptions::default());
    w.sim.run_until(secs(46));
    let results = w.results(c);
    assert_eq!(results.last().unwrap().hits.len(), 1, "discovery works after failover");
}

#[test]
fn flood_forwarding_reaches_all_registries_without_loops() {
    let mut w = world(4, 11);
    let r0 = w.registry(0, RegistryConfig::default());
    let mut regs = vec![r0];
    for lan in 1..4 {
        regs.push(w.registry(lan, RegistryConfig { seeds: vec![r0], ..Default::default() }));
    }
    let _s = w.uri_service(3, "urn:svc:far");
    let c = w.client(0);
    // Let signaling gossip build the full mesh.
    w.sim.run_until(secs(40));
    w.query(
        c,
        QueryPayload::Uri("urn:svc:far".into()),
        QueryOptions { ttl: 4, timeout: secs(3), ..Default::default() },
    );
    w.sim.run_until(secs(46));
    assert_eq!(w.results(c)[0].hits.len(), 1, "hit from a 3-hops-away LAN");
    // Loop avoidance: every registry processed the query at most once;
    // extra copies were dropped as duplicates, not re-forwarded forever.
    for &r in &regs {
        let st = w.sim.handler::<RegistryNode>(r).unwrap().stats;
        assert!(
            st.queries_adopted + st.queries_received - st.duplicate_queries_dropped <= 2 * st.queries_received,
            "sane counters"
        );
    }
    let dup_total: u64 = regs
        .iter()
        .map(|&r| w.sim.handler::<RegistryNode>(r).unwrap().stats.duplicate_queries_dropped)
        .sum();
    assert!(dup_total > 0, "full-mesh flood produces duplicates that get dropped");
}

#[test]
fn gateway_election_avoids_redundant_wan_forwards() {
    let run = |election: bool, seed: u64| -> u64 {
        let mut w = world(2, seed);
        let r0 = w.registry(
            0,
            RegistryConfig { gateway_election: election, ..Default::default() },
        );
        let r2 = w.registry(1, RegistryConfig { seeds: vec![r0], ..Default::default() });
        // Second local registry with its own WAN peering (seeded to the
        // remote registry), so that without election it forwards redundantly.
        let _r1 = w.registry(
            0,
            RegistryConfig { gateway_election: election, seeds: vec![r2], ..Default::default() },
        );
        let _s = w.uri_service(1, "urn:svc:far");
        let c = w.client(0);
        w.sim.run_until(secs(30));
        // Multicast query reaches both local registries.
        w.query(
            c,
            QueryPayload::Uri("urn:svc:far".into()),
            QueryOptions { mode: QueryMode::MulticastLan, ..Default::default() },
        );
        w.sim.run_until(secs(36));
        assert_eq!(w.results(c)[0].hits.len(), 1);
        let st = w.sim.handler::<RegistryNode>(r2).unwrap().stats;
        st.queries_received
    };
    let with_election = run(true, 12);
    let without_election = run(false, 12);
    assert!(
        without_election > with_election,
        "election reduces redundant WAN queries ({without_election} vs {with_election})"
    );
}

#[test]
fn random_walk_forwards_to_limited_peers() {
    let mut w = world(5, 13);
    let strategy = ForwardStrategy::RandomWalk { walkers: 1, ttl: 1 };
    // Legacy sync: anti-entropy replication would hand every registry a
    // replica of every advert, hiding the walk behaviour under test.
    let base = RegistryConfig {
        strategy: strategy.clone(),
        sync_mode: SyncMode::Legacy,
        ..Default::default()
    };
    let r0 = w.registry(0, base.clone());
    for lan in 1..5 {
        w.registry(lan, RegistryConfig { seeds: vec![r0], ..base.clone() });
    }
    for lan in 1..5 {
        w.uri_service(lan, "urn:svc:x");
    }
    let c = w.client(0);
    w.sim.run_until(secs(40));
    w.query(c, QueryPayload::Uri("urn:svc:x".into()), QueryOptions::default());
    w.sim.run_until(secs(46));
    // One walker with one hop: at most one remote registry answers.
    assert!(w.results(c)[0].hits.len() <= 1, "random walk is not exhaustive");
}

#[test]
fn expanding_ring_stops_at_first_hit_ring() {
    let mut w = world(3, 14);
    let strategy = ForwardStrategy::ExpandingRing { ttls: vec![1, 3] };
    // Chain topology: r0 - r1 - r2 (no signaling so the mesh stays a chain).
    let r0 = w.registry(
        0,
        RegistryConfig { strategy: strategy.clone(), signaling_interval: 0, ..Default::default() },
    );
    let r1 = w.registry(
        1,
        RegistryConfig {
            strategy: strategy.clone(),
            signaling_interval: 0,
            seeds: vec![r0],
            ..Default::default()
        },
    );
    let _r2 = w.registry(
        2,
        RegistryConfig {
            strategy,
            signaling_interval: 0,
            seeds: vec![r1],
            ..Default::default()
        },
    );
    let _s_near = w.uri_service(1, "urn:svc:near");
    let c = w.client(0);
    w.sim.run_until(secs(5));
    w.query(c, QueryPayload::Uri("urn:svc:near".into()), QueryOptions::default());
    w.sim.run_until(secs(11));
    assert_eq!(w.results(c)[0].hits.len(), 1, "found in the first ring");
}

#[test]
fn artifact_fetch_from_registry() {
    let mut w = world(1, 15);
    let cfg = RegistryConfig::default();
    let node = RegistryNode::new(cfg, Some(w.idx.clone())).with_artifact(Artifact {
        id: ArtifactId::new("nato-sensors", 2),
        kind: ArtifactKind::Ontology,
        body: vec![0; 4_096],
    });
    let _r = w.sim.add_node(w.lans[0], Box::new(node));
    let c = w.client(0);
    w.sim.run_until(secs(1));
    w.sim.with_node::<ClientNode>(c, |client, ctx| {
        assert!(client.fetch_artifact(ctx, "nato-sensors"));
        assert!(client.fetch_artifact(ctx, "missing"));
    });
    w.sim.run_until(secs(2));
    let client = w.sim.handler::<ClientNode>(c).unwrap();
    assert_eq!(client.artifacts.len(), 2);
    assert!(client.artifacts.iter().any(|a| a.name == "nato-sensors" && a.found && a.size == 4_096));
    assert!(client.artifacts.iter().any(|a| a.name == "missing" && !a.found));
}

#[test]
fn partition_heals_and_wan_discovery_resumes() {
    let mut w = world(2, 16);
    let r0 = w.registry(0, RegistryConfig::default());
    let _r1 = w.registry(1, RegistryConfig { seeds: vec![r0], ..Default::default() });
    let _s = w.uri_service(1, "urn:svc:far");
    let c = w.client(0);
    w.sim.run_until(secs(2));

    let (l0, l1) = (w.lans[0], w.lans[1]);
    w.sim.schedule(secs(3), ControlAction::Partition(vec![vec![l0], vec![l1]]));
    w.sim.run_until(secs(5));
    w.query(c, QueryPayload::Uri("urn:svc:far".into()), QueryOptions::default());
    w.sim.run_until(secs(10));
    assert_eq!(w.results(c)[0].hits.len(), 0, "partition blocks WAN discovery");
    // Local discovery still works during the partition (registry autonomy).
    let _local = w.uri_service(0, "urn:svc:near");
    w.sim.run_until(secs(12));
    w.query(c, QueryPayload::Uri("urn:svc:near".into()), QueryOptions::default());
    w.sim.run_until(secs(17));
    assert_eq!(w.results(c)[1].hits.len(), 1, "LAN discovery survives the partition");

    w.sim.schedule(secs(18), ControlAction::HealPartition);
    // Allow peer pings / seed retry to reconnect the overlay.
    w.sim.run_until(secs(60));
    w.query(c, QueryPayload::Uri("urn:svc:far".into()), QueryOptions::default());
    w.sim.run_until(secs(66));
    assert_eq!(w.results(c)[2].hits.len(), 1, "WAN discovery resumes after healing");
}

#[test]
fn updated_description_is_republished() {
    let mut w = world(1, 17);
    let r = w.registry(0, RegistryConfig::default());
    let s = w.uri_service(0, "urn:svc:v1");
    let c = w.client(0);
    w.sim.run_until(secs(1));
    w.sim.with_node::<ServiceNode>(s, |svc, ctx| {
        svc.update_description(ctx, 0, Description::Uri("urn:svc:v2".into()));
    });
    w.sim.run_until(secs(2));
    w.query(c, QueryPayload::Uri("urn:svc:v2".into()), QueryOptions::default());
    w.query(c, QueryPayload::Uri("urn:svc:v1".into()), QueryOptions::default());
    w.sim.run_until(secs(8));
    let results = w.results(c);
    assert_eq!(results[0].hits.len(), 1, "new content discoverable");
    assert_eq!(results[1].hits.len(), 0, "old content replaced, same advert id");
    assert_eq!(w.sim.handler::<RegistryNode>(r).unwrap().engine().store().len(), 1);
}
