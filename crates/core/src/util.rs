//! Shared helpers: timer tags and message sending.

use sds_protocol::{Codec, DiscoveryMessage};
use sds_simnet::{Ctx, Destination};

/// Timer tag namespace. Fixed tags identify periodic duties; `*_BASE` tags
/// carry a per-entity sequence number in the low bits.
///
/// Every sequenced family owns an explicit `WINDOW`-wide range, so tag
/// families can never collide: `tagged` debug-asserts the sequence fits the
/// window, and `seq_of` only recognises tags inside it. A long-lived client
/// would previously have walked `QUERY_TIMEOUT_BASE + seq` into the next
/// family once `seq` crossed the (implicit) window size.
pub(crate) mod tags {
    /// Attachment: re-probe while unattached.
    pub const PROBE: u64 = 1;
    /// Attachment: home-registry liveness ping.
    pub const PING: u64 = 2;
    /// Registry: periodic beacon.
    pub const BEACON: u64 = 3;
    /// Registry: periodic expired-advert purge.
    pub const PURGE: u64 = 4;
    /// Registry: federation peer liveness ping round.
    pub const PEER_PING: u64 = 5;
    /// Registry: periodic registry signaling (peer-list gossip).
    pub const SIGNALING: u64 = 6;
    /// Service: lease renewal round.
    pub const RENEW: u64 = 7;
    /// Registry: retry federation seeds while peerless.
    pub const SEED_RETRY: u64 = 8;
    /// Registry: replication round — push local adverts to peers.
    pub const ADVERT_PUSH: u64 = 9;
    /// Registry: pull round — request a random peer's local adverts.
    pub const ADVERT_PULL: u64 = 10;
    /// Attachment: probe decision window elapsed — pick the best reply.
    pub const PROBE_DECIDE: u64 = 11;
    /// Registry: periodic query-cache sweep — drop entries whose validity
    /// lapsed, so dead results do not linger until their next lookup.
    pub const CACHE_SWEEP: u64 = 12;
    /// Registry: anti-entropy round — exchange sync digests with peers.
    pub const SYNC: u64 = 13;
    /// Registry: overload-control tick — fold the ops counter into the
    /// utilization EWMA and re-evaluate the shedding ladder.
    pub const OVERLOAD_TICK: u64 = 14;

    /// Width of every sequenced tag family's range. Wide enough that no
    /// in-simulation counter (query seq, service index, node id) can
    /// plausibly overflow it, and checked by `tagged` in debug builds.
    pub const WINDOW: u64 = 1 << 40;
    /// Registry: response-aggregation deadline; low bits = pending seq.
    pub const AGG_BASE: u64 = WINDOW;
    /// Client: query deadline / retry checkpoint; low bits = root query seq.
    pub const QUERY_TIMEOUT_BASE: u64 = 2 * WINDOW;
    /// Service: publish/renew ack-retry backoff; low bits = service index.
    pub const PUBLISH_RETRY_BASE: u64 = 3 * WINDOW;
    /// Registry: probation re-ping backoff; low bits = suspect's node id.
    pub const PROBATION_BASE: u64 = 4 * WINDOW;

    /// Composes a family tag from its base and a sequence number, asserting
    /// (in debug builds) that the sequence stays inside the family window.
    pub fn tagged(base: u64, seq: u64) -> u64 {
        debug_assert!(base >= WINDOW && base % WINDOW == 0, "not a family base: {base}");
        debug_assert!(seq < WINDOW, "tag seq {seq} overflows the family window");
        base + seq
    }

    /// Extracts the sequence from a based tag, if the tag is in `base`'s
    /// window.
    pub fn seq_of(tag: u64, base: u64) -> Option<u64> {
        (tag >= base && tag < base + WINDOW).then(|| tag - base)
    }
}

/// Sends a protocol message, charging its modeled wire size.
pub(crate) fn send_msg(
    ctx: &mut Ctx<'_, DiscoveryMessage>,
    codec: Codec,
    dest: Destination,
    msg: DiscoveryMessage,
) {
    let bytes = codec.message_size(&msg);
    let kind = msg.kind();
    ctx.send(dest, msg, bytes, kind);
}

#[cfg(test)]
mod tests {
    use super::tags;

    #[test]
    fn tag_windows_do_not_overlap() {
        assert_eq!(tags::seq_of(tags::AGG_BASE + 5, tags::AGG_BASE), Some(5));
        assert_eq!(tags::seq_of(tags::QUERY_TIMEOUT_BASE, tags::AGG_BASE), None);
        assert_eq!(tags::seq_of(tags::PING, tags::AGG_BASE), None);
        assert_eq!(
            tags::seq_of(tags::QUERY_TIMEOUT_BASE + 7, tags::QUERY_TIMEOUT_BASE),
            Some(7)
        );
    }

    #[test]
    fn every_family_window_is_disjoint() {
        let bases = [
            tags::AGG_BASE,
            tags::QUERY_TIMEOUT_BASE,
            tags::PUBLISH_RETRY_BASE,
            tags::PROBATION_BASE,
        ];
        for (i, &a) in bases.iter().enumerate() {
            // Fixed tags sit below every family window (OVERLOAD_TICK is the
            // highest).
            assert!(tags::OVERLOAD_TICK < a);
            // The largest in-window tag of one family never reaches the next.
            let top = tags::tagged(a, tags::WINDOW - 1);
            for &b in bases.iter().skip(i + 1) {
                assert!(top < b, "window of {a} bleeds into {b}");
                assert_eq!(tags::seq_of(top, b), None);
            }
            assert_eq!(tags::seq_of(top, a), Some(tags::WINDOW - 1));
        }
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overflows the family window")]
    fn overflowing_seq_is_caught_in_debug_builds() {
        let _ = tags::tagged(tags::QUERY_TIMEOUT_BASE, tags::WINDOW);
    }
}
