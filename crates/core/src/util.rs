//! Shared helpers: timer tags and message sending.

use sds_protocol::{Codec, DiscoveryMessage};
use sds_simnet::{Ctx, Destination};

/// Timer tag namespace. Fixed tags identify periodic duties; `*_BASE` tags
/// carry a per-entity sequence number in the low bits.
pub(crate) mod tags {
    /// Attachment: re-probe while unattached.
    pub const PROBE: u64 = 1;
    /// Attachment: home-registry liveness ping.
    pub const PING: u64 = 2;
    /// Registry: periodic beacon.
    pub const BEACON: u64 = 3;
    /// Registry: periodic expired-advert purge.
    pub const PURGE: u64 = 4;
    /// Registry: federation peer liveness ping round.
    pub const PEER_PING: u64 = 5;
    /// Registry: periodic registry signaling (peer-list gossip).
    pub const SIGNALING: u64 = 6;
    /// Service: lease renewal round.
    pub const RENEW: u64 = 7;
    /// Registry: retry federation seeds while peerless.
    pub const SEED_RETRY: u64 = 8;
    /// Registry: replication round — push local adverts to peers.
    pub const ADVERT_PUSH: u64 = 9;
    /// Registry: pull round — request a random peer's local adverts.
    pub const ADVERT_PULL: u64 = 10;
    /// Attachment: probe decision window elapsed — pick the best reply.
    pub const PROBE_DECIDE: u64 = 11;
    /// Registry: response-aggregation deadline; low bits = pending seq.
    pub const AGG_BASE: u64 = 1 << 20;
    /// Client: query deadline; low bits = client query seq.
    pub const QUERY_TIMEOUT_BASE: u64 = 2 << 20;

    /// Extracts the sequence from a based tag, if the tag is in `base`'s
    /// window (each window is 1<<20 wide).
    pub fn seq_of(tag: u64, base: u64) -> Option<u64> {
        (tag >= base && tag < base + (1 << 20)).then(|| tag - base)
    }
}

/// Sends a protocol message, charging its modeled wire size.
pub(crate) fn send_msg(
    ctx: &mut Ctx<'_, DiscoveryMessage>,
    codec: Codec,
    dest: Destination,
    msg: DiscoveryMessage,
) {
    let bytes = codec.message_size(&msg);
    let kind = msg.kind();
    ctx.send(dest, msg, bytes, kind);
}

#[cfg(test)]
mod tests {
    use super::tags;

    #[test]
    fn tag_windows_do_not_overlap() {
        assert_eq!(tags::seq_of(tags::AGG_BASE + 5, tags::AGG_BASE), Some(5));
        assert_eq!(tags::seq_of(tags::QUERY_TIMEOUT_BASE, tags::AGG_BASE), None);
        assert_eq!(tags::seq_of(tags::PING, tags::AGG_BASE), None);
        assert_eq!(
            tags::seq_of(tags::QUERY_TIMEOUT_BASE + 7, tags::QUERY_TIMEOUT_BASE),
            Some(7)
        );
    }
}
