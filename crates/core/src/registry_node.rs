//! The registry-node role: an autonomous, federable super-peer registry.
//!
//! "A registry super-peer is responsible for answering queries based on its
//! knowledge and for forwarding queries and answers to and from other
//! registries. In addition, the registry must cooperate with other registries
//! to maintain the connectivity of the registry network."
//!
//! One [`RegistryNode`] implements, over the simulated network:
//!
//! * LAN presence: probe replies (active discovery) and periodic beacons
//!   (passive discovery);
//! * the publishing surface: publish/renew/remove/update with leases, and
//!   lease-based purging of obsolete advertisements;
//! * the querying surface: local evaluation via the sharded data plane
//!   ([`sds_registry::ShardedEngine`]) behind a registry-edge result cache
//!   ([`sds_registry::QueryCache`]) with lease-driven invalidation,
//!   federation forwarding (flood / expanding ring / random walk), response
//!   aggregation with deduplication, ranking, and query response control;
//! * registry network maintenance: seeded federation join, peer liveness
//!   pings, peer-list gossip (registry signaling), summaries;
//! * gateway election among co-located registries (paper §4.7) so only one
//!   local registry forwards a given query onto the WAN.

use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;

use sds_protocol::{
    Advertisement, Description, DiscoveryMessage, MaintenanceOp, ModelId, PublishOp, QueryId,
    QueryMessage, QueryOp, QueryPayload, ResponseHit, SyncEntry, Uuid, WireSize,
};
use sds_registry::{
    cache_key, rank_hits, CacheStats, PublishOutcome, QueryCache, SeenQueries, SemanticEvaluator,
    ShardedEngine, SubscriptionIndex, TemplateEvaluator, UriEvaluator,
};
use sds_semantic::{Artifact, ClassId, SubsumptionIndex};
use sds_simnet::{Ctx, Destination, NodeId, NodeHandler, Rng, SimTime, TimerId};

use crate::config::{ForwardStrategy, RegistryConfig, SyncMode};
use crate::util::{send_msg, tags};

/// The fixed wire size of a [`SyncEntry::Delta`] body (id, version, lease):
/// what a delta-encoded advert update costs instead of the full advert.
const SYNC_DELTA_ENTRY_BYTES: u32 = 56;

/// Liveness record for a federation peer.
#[derive(Clone, Copy, Debug)]
struct PeerState {
    last_seen: SimTime,
    unanswered_pings: u8,
    /// Last advertised advert count (from summaries), diagnostic.
    advert_count: u32,
}

/// A federation peer that stopped answering pings and is being re-probed
/// under backoff before eviction (opt-in via `RegistryConfig::probation`).
#[derive(Clone, Copy, Debug)]
struct ProbationState {
    /// Backed-off re-pings sent since the peer was suspected.
    attempts: u8,
}

/// Per-peer anti-entropy bookkeeping (`RegistryConfig::sync_mode ==
/// AntiEntropy`). Both maps carry the origin's *stated* version and lease so
/// digest comparison is independent of locally granted lease times, and both
/// are pruned whenever the corresponding advert leaves the store ("believed
/// synced ⊆ stored") so beliefs can never silently diverge from reality.
#[derive(Default, Debug)]
struct PeerSync {
    /// Our belief of the peer's first-hand set: replicas we hold from it,
    /// keyed by advert id with the stated (version, lease-until) we applied.
    /// Digest rounds fold exactly this map; the peer corrects any bucket
    /// whose digest disagrees with its actual first-hand content.
    synced: BTreeMap<Uuid, (u32, SimTime)>,
    /// Versions of our own first-hand adverts we shipped in full and
    /// optimistically assume the peer holds: the delta-encoding base. Voided
    /// when the peer reports the advert missing (`SyncAck`) or rejoins.
    acked: BTreeMap<Uuid, u32>,
}

/// Overload-control runtime state. Only mutated while
/// [`crate::OverloadPolicy::enabled`] holds; a disabled policy leaves it
/// untouched (and the jitter stream underived), so default runs stay
/// byte-identical to the pre-overload behaviour.
#[derive(Default)]
struct OverloadState {
    /// Operations handled since the last overload tick.
    ops_in_window: u64,
    /// Utilization EWMA in integer percent of `ops_budget` (exceeds 100
    /// under overload).
    util_pct: u32,
    /// Lazily derived jitter stream for `retry_after_ms` hints; never
    /// created while the policy is disabled.
    rng: Option<Rng>,
}

/// A standing query registered by a client.
#[derive(Debug)]
struct Subscription {
    client: NodeId,
    payload: QueryPayload,
    lease_until: SimTime,
}

/// A query being aggregated on behalf of a client.
#[derive(Debug)]
struct PendingQuery {
    client: NodeId,
    original: QueryMessage,
    /// Best hit per advert id seen so far.
    hits: HashMap<Uuid, ResponseHit>,
    /// Expanding-ring round index (0-based); unused for other strategies.
    ring_round: usize,
    /// Query ids whose responses feed this aggregation (original id plus any
    /// ring-round rewrites).
    aliases: Vec<QueryId>,
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Default, Debug)]
pub struct RegistryNodeStats {
    pub queries_received: u64,
    pub duplicate_queries_dropped: u64,
    pub queries_adopted: u64,
    pub forwards_sent: u64,
    pub responses_to_clients: u64,
    pub federation_responses: u64,
    pub adverts_purged: u64,
    pub notifications_sent: u64,
    pub push_rounds: u64,
    /// Publishes rejected because the advert referenced ontology concepts
    /// this registry does not know (direct publishes nacked, plus replicated
    /// adverts silently skipped).
    pub publishes_nacked: u64,
    /// Silent peers moved to probation instead of being evicted.
    pub peers_suspected: u64,
    /// Probationers that answered a backed-off re-ping and were reinstated.
    pub peers_reinstated: u64,
    /// Probationers evicted after exhausting the probation retry budget.
    pub peers_evicted: u64,
    /// Anti-entropy digests sent (one per peer per sync round).
    pub sync_rounds: u64,
    /// `SyncDelta` replies sent for mismatched digests or loss-recovery acks.
    pub deltas_sent: u64,
    /// Wire bytes avoided by delta-encoding adverts against the version the
    /// peer last acknowledged (full entry size minus the fixed delta size).
    pub bytes_saved: u64,
    /// Fresh client queries refused with a `Busy` nack above `busy_pct`.
    pub busy_nacks: u64,
    /// Publishes/renewals refused with a `Busy` nack above
    /// `busy_renewal_pct` — nonzero only in the deepest overload band.
    pub renewal_busy_nacks: u64,
    /// Adopted queries whose response budget was tightened to
    /// `degraded_max_responses` in the degraded band.
    pub responses_capped: u64,
    /// Queries answered from a lapsed-but-within-slack cache entry.
    pub stale_served: u64,
    /// Adoptions whose federation forwarding was suppressed in the stale
    /// band (answered from local knowledge only).
    pub forwards_suppressed: u64,
    /// Inbound federation-forwarded queries silently shed above `busy_pct`
    /// (the origin's own registry still answers from local knowledge).
    pub federation_shed: u64,
    /// `QueryRetry` attempts whose root query had already been admitted.
    pub retries_deduped: u64,
}

/// The registry role node handler.
pub struct RegistryNode {
    cfg: RegistryConfig,
    /// Shared subsumption index for the semantic evaluator, kept so the
    /// engine can be rebuilt from scratch after a simulated crash.
    semantic_index: Option<Arc<SubsumptionIndex>>,
    /// Artifacts re-hosted on restart (assumed to live on disk, unlike the
    /// soft-state advertisement store).
    artifacts: Vec<Artifact>,
    engine: ShardedEngine,
    /// Registry-edge result cache: memoized ranked hits with lease-driven
    /// validity plus reverse invalidation on publish/renew/remove.
    query_cache: QueryCache,
    peers: BTreeMap<NodeId, PeerState>,
    /// Anti-entropy state per peer, kept through probation (so a reinstated
    /// peer resynchronizes in O(divergence)) and dropped on eviction.
    sync: BTreeMap<NodeId, PeerSync>,
    /// Suspected-silent peers being re-pinged under backoff.
    probation: BTreeMap<NodeId, ProbationState>,
    /// Lazily derived jitter stream for probation backoff; never created
    /// while the probation policy is passive.
    probation_rng: Option<Rng>,
    /// Overload-control state (ops counter, utilization EWMA, jitter
    /// stream); inert while `cfg.overload` is disabled.
    overload: OverloadState,
    /// Co-located registries, by last beacon/probe time.
    local_registries: BTreeMap<NodeId, SimTime>,
    seen: SeenQueries,
    /// Nodes that recently attached here (refreshed by their periodic
    /// RegistryListRequest), as the load hint for probe replies.
    attached: HashMap<NodeId, SimTime>,
    /// Standing queries: subscription id → (subscriber, payload, lease).
    subscriptions: HashMap<QueryId, Subscription>,
    /// Reverse index over subscription payloads so a publish only re-matches
    /// the standing queries whose constraints relate to the new advert.
    sub_index: SubscriptionIndex,
    pending: HashMap<u64, PendingQuery>,
    pending_by_alias: HashMap<QueryId, u64>,
    next_pending: u64,
    next_rewrite_seq: u64,
    pub stats: RegistryNodeStats,
}

impl RegistryNode {
    pub fn new(cfg: RegistryConfig, semantic_index: Option<Arc<SubsumptionIndex>>) -> Self {
        let engine = Self::fresh_engine(&cfg, &semantic_index);
        let seen_retention = cfg.seen_retention;
        let query_cache = QueryCache::new(cfg.query_cache_capacity);
        Self {
            cfg,
            semantic_index,
            artifacts: Vec::new(),
            engine,
            query_cache,
            peers: BTreeMap::new(),
            sync: BTreeMap::new(),
            probation: BTreeMap::new(),
            probation_rng: None,
            overload: OverloadState::default(),
            local_registries: BTreeMap::new(),
            seen: SeenQueries::new(seen_retention),
            attached: HashMap::new(),
            subscriptions: HashMap::new(),
            sub_index: SubscriptionIndex::new(),
            pending: HashMap::new(),
            pending_by_alias: HashMap::new(),
            next_pending: 0,
            next_rewrite_seq: 0,
            stats: RegistryNodeStats::default(),
        }
    }

    /// Hosts an artifact (persists across simulated crashes, unlike
    /// advertisements, which are soft state).
    pub fn with_artifact(mut self, artifact: Artifact) -> Self {
        self.engine.host_artifact(artifact.clone());
        self.artifacts.push(artifact);
        self
    }

    fn fresh_engine(cfg: &RegistryConfig, idx: &Option<Arc<SubsumptionIndex>>) -> ShardedEngine {
        let mut engine = ShardedEngine::new(cfg.lease_policy, cfg.shard_count, idx.as_deref());
        engine.set_workers(cfg.data_plane_workers);
        for model in &cfg.models {
            match model {
                ModelId::Uri => engine.register_evaluator(Box::new(UriEvaluator)),
                ModelId::Template => engine.register_evaluator(Box::new(TemplateEvaluator)),
                ModelId::Semantic => {
                    if let Some(idx) = idx {
                        engine.register_evaluator(Box::new(SemanticEvaluator::new(idx.clone())));
                    }
                }
            }
        }
        engine
    }

    /// The engine, for inspection in tests and experiments.
    pub fn engine(&self) -> &ShardedEngine {
        &self.engine
    }

    /// Query-cache counters, for experiments.
    pub fn cache_stats(&self) -> CacheStats {
        self.query_cache.stats()
    }

    /// Number of live standing queries (diagnostics).
    pub fn subscription_count(&self) -> usize {
        self.subscriptions.len()
    }

    /// Current federation peers.
    pub fn peer_ids(&self) -> Vec<NodeId> {
        self.peers.keys().copied().collect()
    }

    /// Known co-located registries (excluding self).
    pub fn local_registry_ids(&self) -> Vec<NodeId> {
        self.local_registries.keys().copied().collect()
    }

    /// Peers currently on probation (diagnostics).
    pub fn probation_count(&self) -> usize {
        self.probation.len()
    }

    /// Current utilization EWMA, integer percent (diagnostics/experiments).
    pub fn utilization_pct(&self) -> u32 {
        self.overload.util_pct
    }

    /// Whether the utilization EWMA sits at or above `threshold_pct`; always
    /// false while the overload policy is disabled.
    fn above(&self, threshold_pct: u16) -> bool {
        self.cfg.overload.enabled() && self.overload.util_pct >= u32::from(threshold_pct)
    }

    /// Refuses `to`'s request with an explicit `Busy` nack carrying a
    /// jittered retry hint — backpressure, never a silent drop. Jitter
    /// de-phases the shed crowd's re-arrival.
    fn send_busy(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, to: NodeId) {
        let pol = self.cfg.overload;
        let rng = self
            .overload
            .rng
            .get_or_insert_with(|| ctx.derive_rng("core.registry.overload"));
        let jitter = if pol.retry_jitter > 0 { rng.gen_range(0..=pol.retry_jitter) } else { 0 };
        let retry_after_ms = pol.retry_after.saturating_add(jitter);
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(to),
            DiscoveryMessage::maintenance(MaintenanceOp::Busy { retry_after_ms }),
        );
    }

    /// Gateway election (paper §4.7): among the registries recently heard on
    /// this LAN plus self, the lowest node id is the WAN gateway.
    fn is_gateway(&self, ctx: &Ctx<'_, DiscoveryMessage>) -> bool {
        if !self.cfg.gateway_election {
            return true;
        }
        let horizon = self.cfg.beacon_interval.saturating_mul(5) / 2;
        let now = ctx.now();
        self.local_registries
            .iter()
            .filter(|&(_, &t)| now.saturating_sub(t) <= horizon)
            .all(|(&id, _)| ctx.node() <= id)
    }

    fn local_gateway(&self, ctx: &Ctx<'_, DiscoveryMessage>) -> Option<NodeId> {
        let horizon = self.cfg.beacon_interval.saturating_mul(5) / 2;
        let now = ctx.now();
        self.local_registries
            .iter()
            .filter(|&(_, &t)| now.saturating_sub(t) <= horizon)
            .map(|(&id, _)| id)
            .chain(std::iter::once(ctx.node()))
            .min()
    }

    fn beacon(&self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        let lan = ctx.lan();
        let msg = DiscoveryMessage::maintenance(MaintenanceOp::RegistryBeacon {
            advert_count: self.engine.store().len() as u32,
        });
        send_msg(ctx, self.cfg.codec, Destination::Multicast(lan), msg);
    }

    fn join_seeds(&self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        let seeds = self.cfg.seeds.clone();
        self.join_seeds_to(ctx, &seeds);
    }

    /// Peer-list payload for federation gossip (`FederationJoin::known_peers`
    /// / `FederationAck::peers`) toward `recipient`. Anti-entropy mode bounds
    /// it: sorted, deduplicated, never naming the recipient or the sender
    /// (the receiver learns the sender from the message itself), and capped
    /// at `gossip_peer_cap` so each gossip payload stays O(cap) instead of
    /// O(federation). Legacy mode reproduces the historical unbounded payload
    /// byte-for-byte — the chaos-soak golden digests hash corrupted-frame
    /// outcomes, which depend on exact frame bytes.
    fn gossip_peer_list(&self, recipient: NodeId, append_self: Option<NodeId>) -> Vec<NodeId> {
        let mut list: Vec<NodeId> = self.peers.keys().copied().collect();
        if self.cfg.sync_mode == SyncMode::Legacy {
            if let Some(id) = append_self {
                list.push(id);
            }
            return list;
        }
        // BTreeMap keys are already sorted and unique; dedup is insurance
        // against future callers handing in merged lists.
        list.dedup();
        list.retain(|&p| p != recipient);
        list.truncate(self.cfg.gossip_peer_cap);
        list
    }

    fn join_seeds_to(&self, ctx: &mut Ctx<'_, DiscoveryMessage>, targets: &[NodeId]) {
        for &target in targets {
            if target == ctx.node() {
                continue;
            }
            let known_peers = self.gossip_peer_list(target, None);
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(target),
                DiscoveryMessage::maintenance(MaintenanceOp::FederationJoin { known_peers }),
            );
        }
    }

    fn add_peer(&mut self, id: NodeId, now: SimTime, self_id: NodeId) {
        if id == self_id || self.local_registries.contains_key(&id) {
            return;
        }
        // A probationer announcing itself (FederationJoin/Ack, gossip) is
        // proof of life: reinstate immediately.
        if self.probation.remove(&id).is_some() {
            self.stats.peers_reinstated += 1;
        }
        let entry = self
            .peers
            .entry(id)
            .or_insert(PeerState { last_seen: now, unanswered_pings: 0, advert_count: 0 });
        entry.last_seen = now;
        entry.unanswered_pings = 0;
    }

    /// Moves a silent peer to probation and schedules the first backed-off
    /// re-ping.
    fn suspect_peer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, id: NodeId) {
        self.peers.remove(&id);
        self.probation.insert(id, ProbationState { attempts: 0 });
        self.stats.peers_suspected += 1;
        let rng = self
            .probation_rng
            .get_or_insert_with(|| ctx.derive_rng("core.registry.probation"));
        let delay = self.cfg.probation.backoff(0, rng);
        ctx.set_timer(delay, tags::tagged(tags::PROBATION_BASE, u64::from(id.0)));
    }

    /// `PROBATION_BASE + node` timer: re-ping a probationer or evict it once
    /// the retry budget is spent.
    fn on_probation_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, id: NodeId) {
        let Some(state) = self.probation.get_mut(&id) else {
            // Reinstated (or evicted) before the timer fired.
            return;
        };
        if state.attempts >= self.cfg.probation.max_retries {
            self.probation.remove(&id);
            // Eviction is final: the sync belief for this peer dies with it
            // (a later rejoin starts from a clean digest exchange).
            self.sync.remove(&id);
            self.stats.peers_evicted += 1;
            return;
        }
        state.attempts += 1;
        let attempts = state.attempts;
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(id),
            DiscoveryMessage::maintenance(MaintenanceOp::Ping),
        );
        let rng = self
            .probation_rng
            .get_or_insert_with(|| ctx.derive_rng("core.registry.probation"));
        let delay = self.cfg.probation.backoff(attempts, rng);
        ctx.set_timer(delay, tags::tagged(tags::PROBATION_BASE, u64::from(id.0)));
    }

    /// A probationer answered: put it back in the peer set and re-announce
    /// our state (peer list, and adverts when replication is on) so both
    /// sides converge without waiting for the next gossip round.
    fn reinstate_peer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, id: NodeId) {
        self.probation.remove(&id);
        self.stats.peers_reinstated += 1;
        let self_id = ctx.node();
        // Bypass add_peer's probation bookkeeping (already done above).
        let now = ctx.now();
        if id != self_id && !self.local_registries.contains_key(&id) {
            let entry = self
                .peers
                .entry(id)
                .or_insert(PeerState { last_seen: now, unanswered_pings: 0, advert_count: 0 });
            entry.last_seen = now;
            entry.unanswered_pings = 0;
        }
        self.join_seeds_to(ctx, &[id]);
        match self.cfg.sync_mode {
            // The belief maps survived probation, so one digest round heals
            // in O(divergence): only what changed while the peer was dark
            // flows, not the whole store.
            SyncMode::AntiEntropy => {
                if self.cfg.sync_interval > 0 {
                    self.send_sync_digest(ctx, id);
                }
            }
            // Legacy replication re-announces with a full advert push — but
            // only when push replication is actually enabled; a pull-only or
            // replication-free deployment must not start pushing here.
            SyncMode::Legacy => {
                if self.cfg.advert_push_interval > 0 {
                    self.push_adverts(ctx);
                }
            }
        }
    }

    /// Registry-network targets for a fresh adoption, per strategy. Each
    /// entry is `(peer, ttl-for-that-branch)`.
    fn forward_targets(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        remaining_ttl: u8,
        exclude: Option<NodeId>,
    ) -> Vec<(NodeId, u8)> {
        if remaining_ttl == 0 {
            return Vec::new();
        }
        let peers: Vec<NodeId> =
            self.peers.keys().copied().filter(|&p| Some(p) != exclude).collect();
        if peers.is_empty() {
            return Vec::new();
        }
        match &self.cfg.strategy {
            ForwardStrategy::None => Vec::new(),
            ForwardStrategy::Flood { .. } | ForwardStrategy::ExpandingRing { .. } => {
                peers.into_iter().map(|p| (p, remaining_ttl - 1)).collect()
            }
            ForwardStrategy::RandomWalk { walkers, .. } => {
                let mut chosen = peers;
                ctx.rng().shuffle(&mut chosen);
                chosen.truncate(*walkers as usize);
                chosen.into_iter().map(|p| (p, remaining_ttl - 1)).collect()
            }
        }
    }

    /// Continuation targets for a query this registry did NOT adopt.
    fn relay_targets(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        remaining_ttl: u8,
        from: NodeId,
    ) -> Vec<(NodeId, u8)> {
        if remaining_ttl == 0 {
            return Vec::new();
        }
        let peers: Vec<NodeId> =
            self.peers.keys().copied().filter(|&p| p != from).collect();
        if peers.is_empty() {
            return Vec::new();
        }
        match &self.cfg.strategy {
            ForwardStrategy::None => Vec::new(),
            ForwardStrategy::Flood { .. } | ForwardStrategy::ExpandingRing { .. } => {
                peers.into_iter().map(|p| (p, remaining_ttl - 1)).collect()
            }
            ForwardStrategy::RandomWalk { .. } => {
                // A walk continues through exactly one random neighbour.
                let &next = ctx.rng().choose(&peers).expect("non-empty");
                vec![(next, remaining_ttl - 1)]
            }
        }
    }

    fn send_forwards(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        query: &QueryMessage,
        targets: Vec<(NodeId, u8)>,
        reply_to: NodeId,
    ) {
        for (peer, ttl) in targets {
            let mut fwd = query.clone();
            fwd.ttl = ttl;
            fwd.reply_to = Some(reply_to);
            self.stats.forwards_sent += 1;
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(peer),
                DiscoveryMessage::querying(QueryOp::Query(fwd)),
            );
        }
    }

    /// Initial TTL for an adopted query: the client's requested TTL, capped
    /// by the strategy's own budget.
    fn adoption_ttl(&self, requested: u8, ring_round: usize) -> u8 {
        match &self.cfg.strategy {
            ForwardStrategy::Flood { ttl } => requested.min(*ttl),
            ForwardStrategy::RandomWalk { ttl, .. } => requested.min(*ttl),
            ForwardStrategy::ExpandingRing { ttls } => {
                ttls.get(ring_round).copied().unwrap_or(0).min(requested.max(1))
            }
            ForwardStrategy::None => 0,
        }
    }

    /// Evaluates a query through the registry-edge cache: a repeat of a
    /// recently evaluated query is served from memory while every returned
    /// lease is still running, byte-identical to a fresh evaluation.
    fn cached_evaluate(&mut self, query: &QueryMessage, now: SimTime) -> Vec<ResponseHit> {
        if self.cfg.query_cache_capacity == 0 {
            return self.engine.evaluate(query, now);
        }
        let key = cache_key(&query.payload, query.max_responses);
        if let Some(hits) = self.query_cache.get(&key, now) {
            return hits.to_vec();
        }
        let (hits, valid_until) = self.engine.evaluate_with_validity(query, now);
        self.query_cache.insert(key, &query.payload, hits.clone(), valid_until, now);
        hits
    }

    /// Drops cached results the advert could affect (appear in, or newly
    /// match).
    fn invalidate_cache(&mut self, advert: &Advertisement) {
        if self.query_cache.is_empty() {
            return;
        }
        self.query_cache.invalidate_for_advert(advert, self.semantic_index.as_deref());
    }

    /// Publishes through the engine, keeping the query cache coherent. Every
    /// event that can change some query's result set drops the affected
    /// entries: new content, updated content (old and new constraints both),
    /// and resurrection — a lease extension bringing an expired-but-unpurged
    /// advert back to life without a content change (duplicate publish, or a
    /// stale-version provider heartbeat). Pure expiry needs no hook: each
    /// cache entry's validity already ends at its earliest returned lease.
    fn publish_cached(
        &mut self,
        advert: Advertisement,
        from: NodeId,
        now: SimTime,
        lease_ms: u64,
    ) -> (PublishOutcome, SimTime) {
        let before = self
            .engine
            .store()
            .get(&advert.id)
            .map(|s| (s.advert.clone(), s.is_live(now)));
        let (outcome, lease_until) = self.engine.publish(advert.clone(), from, now, lease_ms);
        match (outcome, &before) {
            (PublishOutcome::New, _) => self.invalidate_cache(&advert),
            (PublishOutcome::Updated, Some((old, _))) => {
                let old = old.clone();
                self.invalidate_cache(&old);
                self.invalidate_cache(&advert);
            }
            (PublishOutcome::Updated, None) => self.invalidate_cache(&advert),
            (PublishOutcome::Unchanged, Some((_, false))) => self.invalidate_cache(&advert),
            (PublishOutcome::StaleVersion, Some((old, false))) => {
                // The provider-heartbeat rule may have revived the *stored*
                // version; its constraints are what now match again.
                if self.engine.store().get(&advert.id).is_some_and(|s| s.is_live(now)) {
                    let old = old.clone();
                    self.invalidate_cache(&old);
                }
            }
            _ => {}
        }
        (outcome, lease_until)
    }

    /// Adopts a client query: evaluate locally, then either answer at once
    /// or aggregate federation responses within the response window. Under
    /// overload the answer degrades before availability does: the response
    /// budget is capped in the degraded band, and in the stale band a
    /// lapsed-but-within-slack cached answer short-circuits evaluation and
    /// federation entirely.
    fn adopt_query(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        from: NodeId,
        mut query: QueryMessage,
    ) {
        self.stats.queries_adopted += 1;
        let pol = self.cfg.overload;
        // Degraded band: tighten the budget before evaluation, so the cache
        // key, ranking truncation, and any federation forwards all see it.
        if self.above(pol.degrade_pct) {
            let capped = query.max_responses.map_or(pol.degraded_max_responses, |m| {
                m.min(pol.degraded_max_responses)
            });
            if query.max_responses != Some(capped) {
                query.max_responses = Some(capped);
                self.stats.responses_capped += 1;
            }
        }
        // Stale band: serve a slightly-lapsed cached answer as is — no
        // evaluation, no federation — while this close to saturation.
        if self.above(pol.stale_pct) && self.cfg.query_cache_capacity > 0 {
            let key = cache_key(&query.payload, query.max_responses);
            let stale =
                self.query_cache.get_stale(&key, ctx.now(), pol.stale_slack).map(<[_]>::to_vec);
            if let Some(mut hits) = stale {
                if let Some(k) = query.max_responses {
                    hits.truncate(k as usize);
                }
                self.stats.stale_served += 1;
                self.stats.responses_to_clients += 1;
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::querying(QueryOp::QueryResponse {
                        query_id: query.id,
                        hits,
                        responder: ctx.node(),
                    }),
                );
                return;
            }
        }
        let local_hits = self.cached_evaluate(&query, ctx.now());

        let i_am_gateway = self.is_gateway(ctx);
        let ttl = self.adoption_ttl(query.ttl, 0);
        let targets = if i_am_gateway {
            self.forward_targets(ctx, ttl, None)
        } else {
            // Delegate WAN forwarding to the elected gateway (full TTL: the
            // local hop does not spend registry-network budget).
            match self.local_gateway(ctx) {
                Some(gw) if gw != ctx.node() && ttl > 0 => vec![(gw, ttl)],
                _ => Vec::new(),
            }
        };
        // Stale band: keep the query off the federation even on a cache
        // miss; local knowledge is the whole answer.
        let targets = if self.above(pol.stale_pct) && !targets.is_empty() {
            self.stats.forwards_suppressed += 1;
            Vec::new()
        } else {
            targets
        };

        if targets.is_empty() {
            // Answer immediately from local knowledge.
            let mut hits = local_hits;
            rank_hits(&mut hits);
            if let Some(k) = query.max_responses {
                hits.truncate(k as usize);
            }
            self.stats.responses_to_clients += 1;
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(from),
                DiscoveryMessage::querying(QueryOp::QueryResponse {
                    query_id: query.id,
                    hits,
                    responder: ctx.node(),
                }),
            );
            return;
        }

        let seq = self.next_pending;
        self.next_pending += 1;
        let mut pending = PendingQuery {
            client: from,
            original: query.clone(),
            hits: HashMap::new(),
            ring_round: 0,
            aliases: vec![query.id],
        };
        for h in local_hits {
            pending.hits.insert(h.advert.id, h);
        }
        self.pending_by_alias.insert(query.id, seq);
        self.pending.insert(seq, pending);
        self.send_forwards(ctx, &query, targets, ctx.node());
        ctx.set_timer(self.cfg.response_window, tags::AGG_BASE + seq);
    }

    /// Handles a query forwarded by another registry: answer toward the
    /// aggregator and relay onward per strategy.
    fn relay_query(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        from: NodeId,
        query: QueryMessage,
        aggregator: NodeId,
    ) {
        let hits = self.cached_evaluate(&query, ctx.now());
        if !hits.is_empty() {
            self.stats.federation_responses += 1;
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(aggregator),
                DiscoveryMessage::querying(QueryOp::QueryResponse {
                    query_id: query.id,
                    hits,
                    responder: ctx.node(),
                }),
            );
        }
        let targets = self.relay_targets(ctx, query.ttl, from);
        self.send_forwards(ctx, &query, targets, aggregator);
    }

    /// Finalizes a pending aggregation: rank, apply response control, reply.
    fn finalize_pending(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, seq: u64) {
        // Expanding ring: if this round found nothing and rounds remain,
        // widen the ring instead of answering.
        if let ForwardStrategy::ExpandingRing { ttls } = &self.cfg.strategy {
            let ttls = ttls.clone();
            if let Some(p) = self.pending.get_mut(&seq) {
                if p.hits.is_empty() && p.ring_round + 1 < ttls.len() {
                    p.ring_round += 1;
                    let round = p.ring_round;
                    // Rewrite the query id so peers that deduplicated the
                    // previous round evaluate the wider one.
                    let rewritten = QueryId { origin: ctx.node(), seq: self.next_rewrite_seq };
                    self.next_rewrite_seq += 1;
                    let mut q = p.original.clone();
                    q.id = rewritten;
                    p.aliases.push(rewritten);
                    self.pending_by_alias.insert(rewritten, seq);
                    let ttl = self.adoption_ttl(q.ttl.max(1), round);
                    let targets = self.forward_targets(ctx, ttl, None);
                    if !targets.is_empty() {
                        self.send_forwards(ctx, &q, targets, ctx.node());
                        ctx.set_timer(self.cfg.response_window, tags::AGG_BASE + seq);
                        return;
                    }
                }
            }
        }
        let Some(pending) = self.pending.remove(&seq) else {
            return;
        };
        for alias in &pending.aliases {
            self.pending_by_alias.remove(alias);
        }
        let mut hits: Vec<ResponseHit> = pending.hits.into_values().collect();
        rank_hits(&mut hits);
        if let Some(k) = pending.original.max_responses {
            hits.truncate(k as usize);
        }
        self.stats.responses_to_clients += 1;
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(pending.client),
            DiscoveryMessage::querying(QueryOp::QueryResponse {
                query_id: pending.original.id,
                hits,
                responder: ctx.node(),
            }),
        );
    }

    /// Checks a freshly stored advert against every live standing query and
    /// notifies subscribers ("registration for notifications about service
    /// advertisements of interest").
    fn notify_subscribers(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, advert: &Advertisement) {
        let now = ctx.now();
        // Candidate generation over the subscription index: only standing
        // queries whose constraints relate to this advert are re-matched
        // (sorted by id, so notification order is deterministic).
        let matches: Vec<(NodeId, QueryId, sds_semantic::Degree, u32)> = self
            .sub_index
            .candidates(advert, self.semantic_index.as_deref())
            .into_iter()
            .filter_map(|id| {
                let sub = self.subscriptions.get(&id)?;
                if sub.lease_until <= now {
                    return None;
                }
                self.engine
                    .evaluate_single(&sub.payload, advert)
                    .map(|(degree, distance)| (sub.client, id, degree, distance))
            })
            .collect();
        for (client, subscription, degree, distance) in matches {
            self.stats.notifications_sent += 1;
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(client),
                DiscoveryMessage::querying(QueryOp::Notify {
                    subscription,
                    hit: ResponseHit { advert: advert.clone(), degree, distance },
                }),
            );
        }
    }

    /// Replication round: push live, locally published adverts (those whose
    /// source is the provider itself, not another registry) to all peers.
    fn push_adverts(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        let now = ctx.now();
        let adverts: Vec<Advertisement> = self
            .engine
            .store()
            .live(now)
            .filter(|s| s.source == s.advert.provider)
            .map(|s| s.advert.clone())
            .collect();
        if adverts.is_empty() {
            return;
        }
        self.stats.push_rounds += 1;
        let peers: Vec<NodeId> = self.peers.keys().copied().collect();
        for peer in peers {
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(peer),
                DiscoveryMessage::publishing(PublishOp::ForwardAdverts {
                    adverts: adverts.clone(),
                }),
            );
        }
    }

    /// Whether this node runs the anti-entropy replication plane.
    fn anti_entropy_on(&self) -> bool {
        self.cfg.sync_mode == SyncMode::AntiEntropy && self.cfg.sync_interval > 0
    }

    /// One anti-entropy round toward `peer`: fold our *belief* of the peer's
    /// first-hand set into per-bucket digests and send them. The peer
    /// compares against its actual first-hand content (it is authoritative
    /// for its own adverts) and answers mismatched buckets with a
    /// `SyncDelta`; agreement costs one fixed-size message and no reply.
    fn send_sync_digest(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, peer: NodeId) {
        let n = self.cfg.sync_buckets;
        let buckets = {
            let st = self.sync.entry(peer).or_default();
            sds_registry::sync::fold_digests(
                st.synced.iter().map(|(&id, &(version, lease))| (id, version, lease)),
                n,
            )
        };
        self.stats.sync_rounds += 1;
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(peer),
            DiscoveryMessage::maintenance(MaintenanceOp::SyncDigest {
                count: u32::from(n),
                buckets,
            }),
        );
    }

    /// Answers a digest mismatch (or a loss-recovery `SyncAck` via `resend`)
    /// with our first-hand adverts the peer is missing or holds stale. Each
    /// advert is delta-encoded against the version the peer last
    /// acknowledged: a matching version ships as a fixed-size (id, version,
    /// lease) renewal, anything else as the full advert. An empty `buckets`
    /// slice marks a resend that must not prune the receiver's belief.
    fn send_sync_delta(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        peer: NodeId,
        buckets: &[u16],
        resend: Option<&[Uuid]>,
    ) {
        let now = ctx.now();
        let n = self.cfg.sync_buckets;
        let mut owned: Vec<(Advertisement, SimTime)> = self
            .engine
            .store()
            .first_hand(now)
            .filter(|s| match resend {
                Some(ids) => ids.contains(&s.advert.id),
                None => buckets.contains(&sds_registry::sync::bucket_of(s.advert.id, n)),
            })
            .map(|s| (s.advert.clone(), s.lease_until))
            .collect();
        owned.sort_unstable_by_key(|(a, _)| a.id);
        if owned.is_empty() && buckets.is_empty() {
            // Nothing to resend and no bucket coverage to report.
            return;
        }
        let st = self.sync.entry(peer).or_default();
        let mut entries = Vec::with_capacity(owned.len());
        let mut saved = 0u64;
        for (advert, lease_until) in owned {
            // A resend answers a peer that does NOT hold the advert: the
            // acked version is void there, ship the full advert again.
            let delta_ok =
                resend.is_none() && st.acked.get(&advert.id) == Some(&advert.version);
            if delta_ok {
                let full = 16 + advert.body_size();
                saved += u64::from(full.saturating_sub(SYNC_DELTA_ENTRY_BYTES));
                entries.push(SyncEntry::Delta {
                    id: advert.id,
                    version: advert.version,
                    lease_until,
                });
            } else {
                st.acked.insert(advert.id, advert.version);
                entries.push(SyncEntry::Full { advert, lease_until });
            }
        }
        self.stats.bytes_saved += saved;
        self.stats.deltas_sent += 1;
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(peer),
            DiscoveryMessage::maintenance(MaintenanceOp::SyncDelta {
                buckets: buckets.to_vec(),
                entries,
            }),
        );
    }

    /// Applies a peer's `SyncDelta`: store full adverts, renew delta-encoded
    /// ones we already hold at that version, report the rest missing, and
    /// prune beliefs the covered buckets no longer mention (deletion
    /// propagation). Idempotent under duplication and reorder: every step
    /// converges the replica toward the origin's stated (version, lease).
    fn apply_sync_delta(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        from: NodeId,
        buckets: Vec<u16>,
        entries: Vec<SyncEntry>,
    ) {
        let now = ctx.now();
        let mut missing: Vec<Uuid> = Vec::new();
        let mut mentioned: Vec<Uuid> = Vec::new();
        for entry in entries {
            match entry {
                SyncEntry::Full { advert, lease_until } => {
                    mentioned.push(advert.id);
                    // Replicated adverts get the same ontology check as
                    // legacy push replication; there is no provider to nack.
                    if !self.unknown_concepts(&advert).is_empty() {
                        self.stats.publishes_nacked += 1;
                        continue;
                    }
                    // Grant what remains of the origin's lease, so the
                    // replica expires when the origin stops refreshing it.
                    let lease_ms = lease_until.saturating_sub(now);
                    if lease_ms == 0 {
                        continue;
                    }
                    let (outcome, _) = self.publish_cached(advert.clone(), from, now, lease_ms);
                    if outcome == PublishOutcome::New {
                        self.notify_subscribers(ctx, &advert);
                    }
                    self.sync
                        .entry(from)
                        .or_default()
                        .synced
                        .insert(advert.id, (advert.version, lease_until));
                }
                SyncEntry::Delta { id, version, lease_until } => {
                    mentioned.push(id);
                    let held = self
                        .engine
                        .store()
                        .get(&id)
                        .map(|s| (s.advert.version, s.is_live(now), s.advert.clone()));
                    match held {
                        Some((v, live, advert)) if v == version => {
                            // A renewal can revive an expired-but-unpurged
                            // replica, which changes query results without
                            // new content: invalidate (mirrors RenewLease).
                            let (known, _) = self.engine.renew(id, now);
                            if known && !live {
                                self.invalidate_cache(&advert);
                            }
                            self.sync
                                .entry(from)
                                .or_default()
                                .synced
                                .insert(id, (version, lease_until));
                        }
                        // Unknown advert or version skew: the delta base is
                        // wrong on our side, ask for the full advert.
                        _ => missing.push(id),
                    }
                }
            }
        }
        // A mismatched bucket's reply lists the origin's entire first-hand
        // content for that bucket, so believed entries it no longer mentions
        // are gone at the origin. An empty bucket list marks a loss-recovery
        // resend and prunes nothing.
        if !buckets.is_empty() {
            let n = self.cfg.sync_buckets;
            if let Some(st) = self.sync.get_mut(&from) {
                st.synced.retain(|&id, _| {
                    !buckets.contains(&sds_registry::sync::bucket_of(id, n))
                        || mentioned.contains(&id)
                });
            }
        }
        if !missing.is_empty() {
            missing.sort_unstable();
            missing.dedup();
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(from),
                DiscoveryMessage::maintenance(MaintenanceOp::SyncAck { missing }),
            );
        }
    }

    fn on_maintenance(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, op: MaintenanceOp) {
        match op {
            MaintenanceOp::RegistryProbe => {
                let horizon = ctx.now().saturating_sub(60_000);
                let load =
                    self.attached.values().filter(|&&t| t >= horizon).count() as u32;
                let reply = DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbeReply {
                    advert_count: self.engine.store().len() as u32,
                    load,
                });
                send_msg(ctx, self.cfg.codec, Destination::Unicast(from), reply);
            }
            MaintenanceOp::RegistryBeacon { advert_count } => {
                // Multicast is link-local, so a received beacon implies a
                // co-located registry.
                self.local_registries.insert(from, ctx.now());
                let _ = advert_count;
            }
            MaintenanceOp::Ping => {
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::maintenance(MaintenanceOp::Pong),
                );
            }
            MaintenanceOp::Pong => {
                if self.probation.contains_key(&from) {
                    self.reinstate_peer(ctx, from);
                } else if let Some(p) = self.peers.get_mut(&from) {
                    p.unanswered_pings = 0;
                    p.last_seen = ctx.now();
                }
            }
            MaintenanceOp::RegistryListRequest { from_registry } => {
                // Attachment tracking: clients/services refresh their lists
                // periodically, so the sender counts as attached; overlay
                // self-healing requests from other registries do not.
                if !from_registry {
                    self.attached.insert(from, ctx.now());
                }
                let mut registries: Vec<NodeId> = self
                    .local_registries
                    .keys()
                    .chain(self.peers.keys())
                    .copied()
                    .filter(|&r| r != from)
                    .collect();
                registries.push(ctx.node());
                registries.sort_unstable();
                registries.dedup();
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::maintenance(MaintenanceOp::RegistryList { registries }),
                );
            }
            MaintenanceOp::RegistryList { registries } => {
                if self.cfg.transitive_peering {
                    let self_id = ctx.node();
                    let had_peers = !self.peers.is_empty();
                    for r in registries {
                        self.add_peer(r, ctx.now(), self_id);
                    }
                    // Coming back from isolation: announce ourselves so the
                    // links become bidirectional immediately.
                    if !had_peers && !self.peers.is_empty() {
                        self.join_seeds_to(ctx, &self.peers.keys().copied().collect::<Vec<_>>());
                    }
                }
            }
            MaintenanceOp::FederationJoin { known_peers } => {
                let self_id = ctx.node();
                let peers = self.gossip_peer_list(from, Some(self_id));
                self.add_peer(from, ctx.now(), self_id);
                if self.cfg.transitive_peering {
                    for p in known_peers {
                        self.add_peer(p, ctx.now(), self_id);
                    }
                }
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::maintenance(MaintenanceOp::FederationAck { peers }),
                );
                if self.anti_entropy_on() {
                    // A (re)joining peer may have restarted with nothing: our
                    // delta-encoding base is void, and one immediate digest
                    // round replaces the legacy full push for initial
                    // replication (the peer corrects whatever differs).
                    if let Some(st) = self.sync.get_mut(&from) {
                        st.acked.clear();
                    }
                    self.send_sync_digest(ctx, from);
                }
            }
            MaintenanceOp::FederationAck { peers } => {
                let self_id = ctx.node();
                self.add_peer(from, ctx.now(), self_id);
                if self.cfg.transitive_peering {
                    for p in peers {
                        self.add_peer(p, ctx.now(), self_id);
                    }
                }
                if self.anti_entropy_on() {
                    // Complete the initial exchange in both directions.
                    self.send_sync_digest(ctx, from);
                }
            }
            MaintenanceOp::SyncDigest { count, buckets } => {
                // A digest is proof the sender holds us as a federation peer
                // (digests only go to peers) and proof of life: adopt it.
                // Transitive peering can leave one-way edges behind —
                // symmetric closure through the sync plane converges them in
                // one round instead of waiting on signaling gossip.
                if self.anti_entropy_on() {
                    let newly_adopted = !self.peers.contains_key(&from);
                    self.add_peer(from, ctx.now(), ctx.node());
                    if newly_adopted && self.peers.contains_key(&from) {
                        self.send_sync_digest(ctx, from);
                    }
                }
                let n = self.cfg.sync_buckets;
                let own = self.engine.store().sync_digests(ctx.now(), n);
                // Bucket-for-bucket comparison only when the shapes agree; a
                // peer with different bucket geometry (or a corrupted frame)
                // counts every bucket as divergent.
                let shape_ok = count as usize == buckets.len() && buckets.len() == own.len();
                let mismatched: Vec<u16> = (0..n)
                    .filter(|&b| !shape_ok || own[usize::from(b)] != buckets[usize::from(b)])
                    .collect();
                if !mismatched.is_empty() {
                    self.send_sync_delta(ctx, from, &mismatched, None);
                }
            }
            MaintenanceOp::SyncDelta { buckets, entries } => {
                self.apply_sync_delta(ctx, from, buckets, entries);
            }
            MaintenanceOp::SyncAck { missing } => {
                if !missing.is_empty() {
                    // The peer lacks these (first sight on its side, or it
                    // lost the original full advert): void the acked
                    // versions and resend complete adverts. Empty bucket
                    // coverage keeps the peer from pruning its beliefs.
                    let st = self.sync.entry(from).or_default();
                    for id in &missing {
                        st.acked.remove(id);
                    }
                    self.send_sync_delta(ctx, from, &[], Some(&missing));
                }
            }
            MaintenanceOp::SummaryAdvert { advert_count, .. } => {
                if let Some(p) = self.peers.get_mut(&from) {
                    p.advert_count = advert_count;
                    p.last_seen = ctx.now();
                }
            }
            MaintenanceOp::AdvertPullRequest => {
                let now = ctx.now();
                let adverts: Vec<sds_protocol::Advertisement> = self
                    .engine
                    .store()
                    .live(now)
                    .filter(|s| s.source == s.advert.provider)
                    .map(|s| s.advert.clone())
                    .collect();
                if !adverts.is_empty() {
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(from),
                        DiscoveryMessage::publishing(PublishOp::ForwardAdverts { adverts }),
                    );
                }
            }
            MaintenanceOp::ArtifactRequest { name } => {
                let (found, size) = match self.engine.artifacts().get_latest(&name) {
                    Some(a) => (true, a.body.len() as u32),
                    None => (false, 0),
                };
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::maintenance(MaintenanceOp::ArtifactResponse {
                        name,
                        found,
                        size,
                    }),
                );
            }
            // A registry never backs off on `Busy` itself: overloaded peers
            // shed federation traffic silently, so an arriving nack is for
            // a client/provider role and carries nothing for us.
            MaintenanceOp::RegistryProbeReply { .. }
            | MaintenanceOp::ArtifactResponse { .. }
            | MaintenanceOp::Busy { .. } => {}
        }
    }

    /// Concepts referenced by the advert's semantic description that this
    /// registry's ontology does not cover. Non-semantic descriptions (and
    /// registries without a semantic index) validate vacuously: there is
    /// nothing to check concepts against.
    fn unknown_concepts(&self, advert: &Advertisement) -> Vec<ClassId> {
        let Some(idx) = &self.semantic_index else { return Vec::new() };
        let Description::Semantic(p) = &advert.description else { return Vec::new() };
        let mut unknown: Vec<ClassId> = std::iter::once(p.category)
            .chain(p.inputs.iter().copied())
            .chain(p.outputs.iter().copied())
            .filter(|&c| !idx.contains(c))
            .collect();
        unknown.sort_unstable_by_key(|c| c.0);
        unknown.dedup();
        unknown
    }

    fn on_publishing(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, op: PublishOp) {
        // The publishing surface (lease renewals included) is liveness-class
        // traffic: it sheds only above `busy_renewal_pct`, a deliberately
        // higher watermark than the query threshold, so degradation consumes
        // answer quality first and provider liveness last.
        if self.above(self.cfg.overload.busy_renewal_pct)
            && matches!(
                op,
                PublishOp::Publish { .. } | PublishOp::Update { .. } | PublishOp::RenewLease { .. }
            )
        {
            self.stats.renewal_busy_nacks += 1;
            self.send_busy(ctx, from);
            return;
        }
        match op {
            PublishOp::Publish { advert, lease_ms } | PublishOp::Update { advert, lease_ms } => {
                let id = advert.id;
                // Validate ontology references before anything is stored: an
                // advert naming concepts we cannot reason about would sit in
                // the store forever matching nothing.
                let unknown = self.unknown_concepts(&advert);
                if !unknown.is_empty() {
                    self.stats.publishes_nacked += 1;
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(from),
                        DiscoveryMessage::publishing(PublishOp::PublishNack { id, unknown }),
                    );
                    return;
                }
                let (outcome, lease_until) =
                    self.publish_cached(advert.clone(), from, ctx.now(), lease_ms);
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::publishing(PublishOp::PublishAck { id, lease_until }),
                );
                // Only genuinely new content triggers notifications: a
                // duplicated publish (Unchanged) must not double-notify.
                if matches!(outcome, PublishOutcome::New | PublishOutcome::Updated) {
                    self.notify_subscribers(ctx, &advert);
                }
            }
            PublishOp::RenewLease { id } => {
                // A renewal can revive an expired-but-unpurged advert, which
                // changes query results without new content: invalidate.
                let revived = self
                    .engine
                    .store()
                    .get(&id)
                    .and_then(|s| (!s.is_live(ctx.now())).then(|| s.advert.clone()));
                let (known, lease_until) = self.engine.renew(id, ctx.now());
                if known {
                    if let Some(advert) = revived {
                        self.invalidate_cache(&advert);
                    }
                }
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::publishing(PublishOp::RenewAck { id, lease_until, known }),
                );
            }
            PublishOp::Remove { id } => {
                // Removing a live advert can shrink cached results; removing
                // an already-expired one cannot (validity ended with it).
                let removed = self
                    .engine
                    .store()
                    .get(&id)
                    .and_then(|s| s.is_live(ctx.now()).then(|| s.advert.clone()));
                self.engine.remove(id);
                if let Some(advert) = removed {
                    self.invalidate_cache(&advert);
                }
                // The advert is gone from the store, so every sync belief
                // referencing it is stale; the next digest round propagates
                // the deletion (peers prune it from the covered bucket).
                for st in self.sync.values_mut() {
                    st.synced.remove(&id);
                    st.acked.remove(&id);
                }
            }
            PublishOp::ForwardAdverts { adverts } => {
                for advert in adverts {
                    // Replicated adverts get the same ontology check as direct
                    // publishes, but there is no provider to nack: skip.
                    if !self.unknown_concepts(&advert).is_empty() {
                        self.stats.publishes_nacked += 1;
                        continue;
                    }
                    let (outcome, _) = self.publish_cached(advert.clone(), from, ctx.now(), 0);
                    if outcome == PublishOutcome::New {
                        self.notify_subscribers(ctx, &advert);
                    }
                }
            }
            PublishOp::PublishAck { .. }
            | PublishOp::RenewAck { .. }
            | PublishOp::PublishNack { .. } => {}
        }
    }

    fn on_querying(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, op: QueryOp) {
        match op {
            QueryOp::Query(query) => {
                self.stats.queries_received += 1;
                // Overload admission runs before duplicate tracking: a shed
                // query must not be marked seen, or its later `QueryRetry`
                // would dedup against an attempt that was never processed.
                if self.above(self.cfg.overload.busy_pct) {
                    match query.reply_to {
                        Some(aggregator) if aggregator != ctx.node() => {
                            // A federation forward: the origin's registry
                            // still answers from local knowledge, so shed
                            // silently instead of backpressuring a peer
                            // mid-aggregation.
                            self.stats.federation_shed += 1;
                        }
                        _ => {
                            self.stats.busy_nacks += 1;
                            self.send_busy(ctx, from);
                        }
                    }
                    return;
                }
                if !self.seen.first_sighting(query.id, ctx.now()) {
                    self.stats.duplicate_queries_dropped += 1;
                    return;
                }
                match query.reply_to {
                    Some(aggregator) if aggregator != ctx.node() => {
                        self.relay_query(ctx, from, query, aggregator);
                    }
                    _ => self.adopt_query(ctx, from, query),
                }
            }
            QueryOp::QueryRetry { query, root_seq } => {
                self.stats.queries_received += 1;
                if self.above(self.cfg.overload.busy_pct) {
                    self.stats.busy_nacks += 1;
                    self.send_busy(ctx, from);
                    return;
                }
                let root = QueryId { origin: query.id.origin, seq: root_seq };
                let root_fresh = self.seen.first_sighting(root, ctx.now());
                // Track the retry's own wire id too, so duplicates of the
                // retry itself dedup normally.
                let _ = self.seen.first_sighting(query.id, ctx.now());
                if !root_fresh {
                    // The root attempt was admitted, so re-adopting it would
                    // double the evaluation (and federation) work exactly
                    // when the client suspects the registry is slow.
                    self.stats.retries_deduped += 1;
                    if self.pending_by_alias.contains_key(&root) {
                        // Aggregation still in flight: the root's answer is
                        // coming under an id the client accepts.
                        return;
                    }
                    // The root already completed — the retry means its
                    // *response* was lost or shed in transit. Re-answer
                    // cheaply from local knowledge (cache-hot for a recent
                    // query) without re-federating.
                    let mut hits = self.cached_evaluate(&query, ctx.now());
                    rank_hits(&mut hits);
                    if let Some(k) = query.max_responses {
                        hits.truncate(k as usize);
                    }
                    self.stats.responses_to_clients += 1;
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(from),
                        DiscoveryMessage::querying(QueryOp::QueryResponse {
                            query_id: query.id,
                            hits,
                            responder: ctx.node(),
                        }),
                    );
                    return;
                }
                // The root was shed or lost before admission: process the
                // retry as a fresh adoption under its own wire id — the
                // client's alias map credits responses to the root attempt.
                match query.reply_to {
                    Some(aggregator) if aggregator != ctx.node() => {
                        self.relay_query(ctx, from, query, aggregator);
                    }
                    _ => self.adopt_query(ctx, from, query),
                }
            }
            QueryOp::Subscribe { id, payload, lease_ms } => {
                let lease_until = self.cfg.lease_policy.grant(ctx.now(), lease_ms);
                let replaced = self
                    .subscriptions
                    .insert(id, Subscription { client: from, payload: payload.clone(), lease_until });
                if let Some(old) = replaced {
                    self.sub_index.remove(id, &old.payload);
                }
                self.sub_index.insert(id, &payload);
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::querying(QueryOp::SubscribeAck { id, lease_until }),
                );
            }
            QueryOp::Unsubscribe { id } => {
                if let Some(sub) = self.subscriptions.remove(&id) {
                    self.sub_index.remove(id, &sub.payload);
                }
            }
            QueryOp::ComposeRequest { id, request, max_depth } => {
                let chain = self.engine.compose(&request, ctx.now(), max_depth as usize);
                let (found, chain) = match chain {
                    Some(c) => (true, c),
                    None => (false, Vec::new()),
                };
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(from),
                    DiscoveryMessage::querying(QueryOp::ComposeResponse { id, found, chain }),
                );
            }
            QueryOp::Notify { .. } | QueryOp::SubscribeAck { .. } | QueryOp::ComposeResponse { .. } => {}
            QueryOp::QueryResponse { query_id, hits, responder: _ } => {
                if let Some(&seq) = self.pending_by_alias.get(&query_id) {
                    if let Some(p) = self.pending.get_mut(&seq) {
                        for h in hits {
                            match p.hits.get(&h.advert.id) {
                                Some(existing)
                                    if (existing.degree, std::cmp::Reverse(existing.distance))
                                        >= (h.degree, std::cmp::Reverse(h.distance)) => {}
                                _ => {
                                    p.hits.insert(h.advert.id, h);
                                }
                            }
                        }
                    }
                }
            }
        }
    }
}

impl NodeHandler<DiscoveryMessage> for RegistryNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        // A (re)starting registry keeps configuration and hosted artifacts
        // but loses soft state: adverts, peers, pending queries.
        self.engine = Self::fresh_engine(&self.cfg, &self.semantic_index);
        for a in &self.artifacts {
            self.engine.host_artifact(a.clone());
        }
        self.query_cache = QueryCache::new(self.cfg.query_cache_capacity);
        self.peers.clear();
        self.probation.clear();
        self.local_registries.clear();
        self.seen.clear();
        self.attached.clear();
        self.subscriptions.clear();
        self.sub_index.clear();
        self.pending.clear();
        self.pending_by_alias.clear();
        self.sync.clear();

        if self.cfg.beacon_interval > 0 {
            self.beacon(ctx);
            ctx.set_timer(self.cfg.beacon_interval, tags::BEACON);
        }
        ctx.set_timer(self.cfg.purge_interval, tags::PURGE);
        if !self.cfg.seeds.is_empty() {
            self.join_seeds(ctx);
        }
        ctx.set_timer(self.cfg.peer_ping_interval, tags::SEED_RETRY);
        ctx.set_timer(self.cfg.peer_ping_interval, tags::PEER_PING);
        if self.cfg.signaling_interval > 0 {
            ctx.set_timer(self.cfg.signaling_interval, tags::SIGNALING);
        }
        // The sync mode selects the replication plane: anti-entropy digest
        // rounds, or the legacy push/pull timers — never both.
        match self.cfg.sync_mode {
            SyncMode::AntiEntropy => {
                if self.cfg.sync_interval > 0 {
                    ctx.set_timer(self.cfg.sync_interval, tags::SYNC);
                }
            }
            SyncMode::Legacy => {
                if self.cfg.advert_push_interval > 0 {
                    ctx.set_timer(self.cfg.advert_push_interval, tags::ADVERT_PUSH);
                }
                if self.cfg.advert_pull_interval > 0 {
                    ctx.set_timer(self.cfg.advert_pull_interval, tags::ADVERT_PULL);
                }
            }
        }
        if self.cfg.query_cache_capacity > 0 && self.cfg.cache_sweep_interval > 0 {
            ctx.set_timer(self.cfg.cache_sweep_interval, tags::CACHE_SWEEP);
        }
        // A restart clears overload history (the EWMA is soft state); the
        // jitter stream, like `probation_rng`, persists across restarts.
        self.overload.ops_in_window = 0;
        self.overload.util_pct = 0;
        if self.cfg.overload.enabled() {
            ctx.set_timer(self.cfg.overload.tick, tags::OVERLOAD_TICK);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        if self.cfg.overload.enabled() {
            // Every handled message is one unit of modeled work; the
            // overload tick folds this into the utilization EWMA.
            self.overload.ops_in_window += 1;
        }
        match msg.op {
            sds_protocol::Operation::Maintenance(op) => self.on_maintenance(ctx, from, op),
            sds_protocol::Operation::Publishing(op) => self.on_publishing(ctx, from, op),
            sds_protocol::Operation::Querying(op) => self.on_querying(ctx, from, op),
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, _timer: TimerId, tag: u64) {
        match tag {
            tags::BEACON => {
                self.beacon(ctx);
                ctx.set_timer(self.cfg.beacon_interval, tags::BEACON);
            }
            tags::PURGE => {
                let purged = self.engine.purge(ctx.now());
                self.stats.adverts_purged += purged.len() as u64;
                // Keep "believed synced ⊆ stored": a purged replica must be
                // fetched again if its origin still lists it, and a purged
                // first-hand advert can no longer serve as a delta base.
                if !purged.is_empty() {
                    for st in self.sync.values_mut() {
                        for id in &purged {
                            st.synced.remove(id);
                            st.acked.remove(id);
                        }
                    }
                }
                let now = ctx.now();
                let sub_index = &mut self.sub_index;
                self.subscriptions.retain(|&id, sub| {
                    let live = sub.lease_until > now;
                    if !live {
                        sub_index.remove(id, &sub.payload);
                    }
                    live
                });
                ctx.set_timer(self.cfg.purge_interval, tags::PURGE);
            }
            tags::PEER_PING => {
                let tolerance = self.cfg.peer_ping_tolerance;
                let dead: Vec<NodeId> = self
                    .peers
                    .iter()
                    .filter(|(_, p)| p.unanswered_pings >= tolerance)
                    .map(|(&id, _)| id)
                    .collect();
                for id in dead {
                    if self.cfg.probation.enabled() {
                        // Probation keeps the sync belief: reinstatement
                        // then heals in O(divergence), not O(state).
                        self.suspect_peer(ctx, id);
                    } else {
                        self.peers.remove(&id);
                        self.sync.remove(&id);
                    }
                }
                let targets: Vec<NodeId> = self.peers.keys().copied().collect();
                for peer in targets {
                    if let Some(p) = self.peers.get_mut(&peer) {
                        p.unanswered_pings += 1;
                    }
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(peer),
                        DiscoveryMessage::maintenance(MaintenanceOp::Ping),
                    );
                }
                ctx.set_timer(self.cfg.peer_ping_interval, tags::PEER_PING);
            }
            tags::SIGNALING => {
                // Gossip the peer list and a summary to one random peer.
                let peers: Vec<NodeId> = self.peers.keys().copied().collect();
                if !peers.is_empty() {
                    let target = peers[ctx.rng().gen_range(0..peers.len())];
                    let mut registries = peers.clone();
                    registries.extend(self.local_registries.keys().copied());
                    registries.push(ctx.node());
                    registries.sort_unstable();
                    registries.dedup();
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(target),
                        DiscoveryMessage::maintenance(MaintenanceOp::RegistryList { registries }),
                    );
                    let summary = self.engine.summary(ctx.now());
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(target),
                        DiscoveryMessage::maintenance(MaintenanceOp::SummaryAdvert {
                            advert_count: summary.advert_count,
                            models: summary.models,
                        }),
                    );
                }
                ctx.set_timer(self.cfg.signaling_interval, tags::SIGNALING);
            }
            tags::ADVERT_PUSH => {
                self.push_adverts(ctx);
                ctx.set_timer(self.cfg.advert_push_interval, tags::ADVERT_PUSH);
            }
            tags::ADVERT_PULL => {
                let peers: Vec<NodeId> = self.peers.keys().copied().collect();
                if !peers.is_empty() {
                    let target = peers[ctx.rng().gen_range(0..peers.len())];
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(target),
                        DiscoveryMessage::maintenance(MaintenanceOp::AdvertPullRequest),
                    );
                }
                ctx.set_timer(self.cfg.advert_pull_interval, tags::ADVERT_PULL);
            }
            tags::SYNC => {
                // Anti-entropy round: one digest per peer. Belief state for
                // nodes that are neither peers nor probationers is garbage.
                let peers_ref = &self.peers;
                let probation_ref = &self.probation;
                self.sync
                    .retain(|id, _| peers_ref.contains_key(id) || probation_ref.contains_key(id));
                let peers: Vec<NodeId> = self.peers.keys().copied().collect();
                for peer in peers {
                    self.send_sync_digest(ctx, peer);
                }
                ctx.set_timer(self.cfg.sync_interval, tags::SYNC);
            }
            tags::CACHE_SWEEP => {
                self.query_cache.sweep(ctx.now());
                ctx.set_timer(self.cfg.cache_sweep_interval, tags::CACHE_SWEEP);
            }
            tags::OVERLOAD_TICK => {
                // Fold the window's ops count into the utilization EWMA
                // (integer percent of the modeled per-window budget).
                let pol = self.cfg.overload;
                let sample = (self.overload.ops_in_window.saturating_mul(100)
                    / u64::from(pol.ops_budget.max(1)))
                .min(u64::from(u32::MAX)) as u32;
                self.overload.ops_in_window = 0;
                let alpha = u64::from(pol.ewma_alpha_pct.min(100));
                self.overload.util_pct = ((alpha * u64::from(sample)
                    + (100 - alpha) * u64::from(self.overload.util_pct))
                    / 100) as u32;
                ctx.set_timer(pol.tick, tags::OVERLOAD_TICK);
            }
            tags::SEED_RETRY => {
                if self.peers.is_empty() {
                    self.join_seeds(ctx);
                    // A restarted registry may hold no seeds (it WAS the
                    // seed): recover the federation through co-located
                    // registries' knowledge (registry signaling).
                    let locals: Vec<NodeId> = self.local_registries.keys().copied().collect();
                    for l in locals {
                        send_msg(
                            ctx,
                            self.cfg.codec,
                            Destination::Unicast(l),
                            DiscoveryMessage::maintenance(MaintenanceOp::RegistryListRequest {
                                from_registry: true,
                            }),
                        );
                    }
                }
                ctx.set_timer(self.cfg.peer_ping_interval.saturating_mul(2), tags::SEED_RETRY);
            }
            t => {
                if let Some(seq) = tags::seq_of(t, tags::AGG_BASE) {
                    self.finalize_pending(ctx, seq);
                } else if let Some(raw) = tags::seq_of(t, tags::PROBATION_BASE) {
                    self.on_probation_timer(ctx, NodeId(raw as u32));
                }
            }
        }
    }
}
