//! The service-node role: publishing, lease renewal, republish, failover,
//! and decentralized fallback answering.
//!
//! "Service nodes are the providers of services. They are responsible for
//! obtaining a connection to the registry network to be able to publish the
//! service description of the services it hosts … periodic messages
//! indicating that services are still alive … republishing of updated
//! service advertisements … should the registry node disappear, the service
//! node must try to find another connection point to the registry network and
//! publish its advertisement there."

use std::sync::Arc;

use sds_protocol::{
    Advertisement, AdvertId, Description, DiscoveryMessage, MaintenanceOp, Operation, PublishOp,
    QueryOp, ResponseHit, Uuid,
};
use sds_registry::{ModelEvaluator, SemanticEvaluator, TemplateEvaluator, UriEvaluator};
use sds_semantic::SubsumptionIndex;
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, Rng, TimerId};

use crate::attach::{AttachEvent, RegistryAttachment};
use crate::config::ServiceConfig;
use crate::util::{send_msg, tags};

/// One hosted service's advertisement state.
#[derive(Clone, Debug)]
struct HostedService {
    description: Description,
    /// Stable advert id, generated on first publish.
    id: Option<AdvertId>,
    version: u32,
    /// The registry nacked this advert (unknown ontology concepts). Stop
    /// republishing/renewing it until the description changes — retrying an
    /// advert the registry cannot reason about would loop forever.
    rejected: bool,
    /// A publish/renew was sent and its ack has not arrived yet (only
    /// tracked while the ack-retry policy is enabled).
    awaiting_ack: bool,
    /// Backoff resends performed for the currently awaited ack.
    attempts: u8,
    /// Whether a retry checkpoint timer for this service is outstanding.
    retry_timer_pending: bool,
}

/// Counters exposed for experiments.
#[derive(Clone, Copy, Default, Debug)]
pub struct ServiceNodeStats {
    pub publishes: u64,
    pub renewals: u64,
    pub republishes_after_unknown: u64,
    pub fallback_answers: u64,
    /// Publishes the registry rejected for unknown ontology concepts.
    pub publish_nacks: u64,
    /// Backoff resends of publishes/renewals whose ack never arrived
    /// (always 0 with the passive default policy).
    pub retry_publishes: u64,
    /// `Busy` nacks received from an overloaded home registry.
    pub busy_nacks: u64,
}

/// The service-provider role node handler.
pub struct ServiceNode {
    cfg: ServiceConfig,
    attach: RegistryAttachment,
    services: Vec<HostedService>,
    evaluators: Vec<Box<dyn ModelEvaluator>>,
    /// Lazily derived jitter stream for ack-retry backoff; never created
    /// while the retry policy is passive.
    retry_rng: Option<Rng>,
    /// Renewal-cadence stretch under registry backpressure: doubled on every
    /// `Busy` nack, halved back toward 1 on every ack, and capped so the
    /// stretched interval never exceeds half the lease (liveness traffic
    /// slows down under overload but can never slow enough to lose the
    /// lease on its own).
    renew_stretch: u32,
    pub stats: ServiceNodeStats,
}

impl ServiceNode {
    /// `semantic_index` enables fallback self-evaluation of semantic queries;
    /// nodes without it silently ignore semantic payloads (the paper's
    /// "not all nodes may be able to evaluate queries on semantic service
    /// descriptions").
    pub fn new(
        cfg: ServiceConfig,
        descriptions: Vec<Description>,
        semantic_index: Option<Arc<SubsumptionIndex>>,
    ) -> Self {
        let mut evaluators: Vec<Box<dyn ModelEvaluator>> =
            vec![Box::new(UriEvaluator), Box::new(TemplateEvaluator)];
        if let Some(idx) = semantic_index {
            evaluators.push(Box::new(SemanticEvaluator::new(idx)));
        }
        let attach = RegistryAttachment::new(cfg.attach.clone(), cfg.codec);
        Self {
            cfg,
            attach,
            services: descriptions
                .into_iter()
                .map(|description| HostedService {
                    description,
                    id: None,
                    version: 1,
                    rejected: false,
                    awaiting_ack: false,
                    attempts: 0,
                    retry_timer_pending: false,
                })
                .collect(),
            evaluators,
            retry_rng: None,
            renew_stretch: 1,
            stats: ServiceNodeStats::default(),
        }
    }

    /// Renewal interval with the current backpressure stretch applied.
    /// Stretch 1 is the exact identity; any stretch is clamped so the
    /// interval never exceeds half the lease (never slower than the
    /// configured cadence already was).
    fn stretched_renew_interval(&self) -> u64 {
        let base = self.cfg.renew_interval;
        if self.renew_stretch <= 1 {
            return base;
        }
        let mut interval = base.saturating_mul(u64::from(self.renew_stretch));
        if self.cfg.lease_ms > 0 {
            interval = interval.min((self.cfg.lease_ms / 2).max(base));
        }
        interval
    }

    /// The registry this node currently publishes to.
    pub fn home_registry(&self) -> Option<NodeId> {
        self.attach.home()
    }

    /// Advert ids of this node's services (None until first publish).
    pub fn advert_ids(&self) -> Vec<Option<AdvertId>> {
        self.services.iter().map(|s| s.id).collect()
    }

    /// Gracefully deregisters every hosted service from the home registry
    /// (explicit `Remove`, the mechanism UDDI-class registries depend on
    /// exclusively; here it merely speeds up what lease expiry would do
    /// anyway). Typically called right before a planned shutdown.
    pub fn deregister_all(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        if let Some(home) = self.attach.home() {
            for s in &self.services {
                if let Some(id) = s.id {
                    send_msg(
                        ctx,
                        self.cfg.codec,
                        Destination::Unicast(home),
                        DiscoveryMessage::publishing(PublishOp::Remove { id }),
                    );
                }
            }
        }
    }

    /// Updates the description of hosted service `index` (e.g. a changed
    /// coverage area) and republishes immediately — the paper's "advertisement
    /// content … could change frequently in dynamic environments".
    pub fn update_description(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        index: usize,
        description: Description,
    ) {
        let svc = &mut self.services[index];
        svc.description = description;
        svc.version += 1;
        // A changed description gets a fresh chance at validation.
        svc.rejected = false;
        if let Some(home) = self.attach.home() {
            let advert = Self::advert_of(svc, ctx);
            self.stats.publishes += 1;
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(home),
                DiscoveryMessage::publishing(PublishOp::Update {
                    advert,
                    lease_ms: self.cfg.lease_ms,
                }),
            );
            self.arm_ack_retry(ctx, index);
        }
    }

    fn advert_of(svc: &mut HostedService, ctx: &mut Ctx<'_, DiscoveryMessage>) -> Advertisement {
        let id = *svc.id.get_or_insert_with(|| Uuid::generate(ctx.rng()));
        Advertisement {
            id,
            provider: ctx.node(),
            description: svc.description.clone(),
            version: svc.version,
        }
    }

    fn publish_all(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, registry: NodeId) {
        for i in 0..self.services.len() {
            if self.services[i].rejected {
                continue;
            }
            let advert = Self::advert_of(&mut self.services[i], ctx);
            self.stats.publishes += 1;
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(registry),
                DiscoveryMessage::publishing(PublishOp::Publish {
                    advert,
                    lease_ms: self.cfg.lease_ms,
                }),
            );
            self.arm_ack_retry(ctx, i);
        }
    }

    /// Marks service `i` as awaiting an ack and schedules the first backoff
    /// checkpoint (no-op while the retry policy is passive).
    fn arm_ack_retry(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, i: usize) {
        if !self.cfg.retry.enabled() {
            return;
        }
        let policy = self.cfg.retry;
        let rng = self.retry_rng.get_or_insert_with(|| ctx.derive_rng("core.service.retry"));
        let svc = &mut self.services[i];
        svc.awaiting_ack = true;
        svc.attempts = 0;
        if !svc.retry_timer_pending {
            svc.retry_timer_pending = true;
            let delay = policy.backoff(0, rng);
            ctx.set_timer(delay, tags::tagged(tags::PUBLISH_RETRY_BASE, i as u64));
        }
    }

    /// Clears the awaiting-ack state for the service with advert `id`. Any
    /// ack is also evidence the registry is keeping up again, so the
    /// backpressure stretch decays back toward normal cadence.
    fn ack_received(&mut self, id: AdvertId) {
        self.renew_stretch = (self.renew_stretch / 2).max(1);
        if let Some(s) = self.services.iter_mut().find(|s| s.id == Some(id)) {
            s.awaiting_ack = false;
            s.attempts = 0;
        }
    }

    /// `PUBLISH_RETRY` checkpoint for service `i`: if the awaited ack still
    /// has not arrived, re-publish the full advert (publish is an
    /// idempotent upsert that also refreshes the lease, so one resend shape
    /// covers both lost publishes and lost renewals) and back off.
    fn on_ack_retry(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, i: usize) {
        let policy = self.cfg.retry;
        {
            let Some(svc) = self.services.get_mut(i) else {
                return;
            };
            svc.retry_timer_pending = false;
            if !policy.enabled() || !svc.awaiting_ack || svc.rejected {
                return;
            }
            if svc.attempts >= policy.max_retries {
                // Give up until the next renew round or re-attach restarts
                // the machinery.
                svc.awaiting_ack = false;
                return;
            }
        }
        let Some(home) = self.attach.home() else {
            // No registry to resend to; a failover re-attach republishes.
            return;
        };
        self.services[i].attempts += 1;
        let attempts = self.services[i].attempts;
        let advert = Self::advert_of(&mut self.services[i], ctx);
        self.stats.retry_publishes += 1;
        self.stats.publishes += 1;
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(home),
            DiscoveryMessage::publishing(PublishOp::Publish {
                advert,
                lease_ms: self.cfg.lease_ms,
            }),
        );
        let rng = self.retry_rng.get_or_insert_with(|| ctx.derive_rng("core.service.retry"));
        let delay = policy.backoff(attempts, rng);
        self.services[i].retry_timer_pending = true;
        ctx.set_timer(delay, tags::tagged(tags::PUBLISH_RETRY_BASE, i as u64));
    }

    fn on_attach_event(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, ev: AttachEvent) {
        if let AttachEvent::Attached(registry) = ev {
            self.publish_all(ctx, registry);
        }
    }

    /// Decentralized fallback (paper Fig. 3 right): with no registry on the
    /// LAN, provider nodes evaluate multicast queries against the adverts
    /// they host and answer the querying node directly.
    fn answer_fallback(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, query: &sds_protocol::QueryMessage) {
        let mut hits: Vec<ResponseHit> = Vec::new();
        for i in 0..self.services.len() {
            let advert = Self::advert_of(&mut self.services[i], ctx);
            for e in &self.evaluators {
                if e.model() == query.payload.model() {
                    if let Some((degree, distance)) = e.evaluate(&query.payload, &advert) {
                        hits.push(ResponseHit { advert: advert.clone(), degree, distance });
                    }
                }
            }
        }
        if !hits.is_empty() {
            self.stats.fallback_answers += 1;
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(from),
                DiscoveryMessage::querying(QueryOp::QueryResponse {
                    query_id: query.id,
                    hits,
                    responder: ctx.node(),
                }),
            );
        }
    }
}

impl NodeHandler<DiscoveryMessage> for ServiceNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        // Fresh boot (or restart): advert ids regenerate so stale copies of
        // the old incarnation age out independently.
        for s in &mut self.services {
            s.id = None;
            s.version = 1;
            s.rejected = false;
            s.awaiting_ack = false;
            s.attempts = 0;
            // Pre-crash timers died with the old epoch.
            s.retry_timer_pending = false;
        }
        // Backpressure history is soft state; a restart forgets it.
        self.renew_stretch = 1;
        if let Some(ev) = self.attach.start(ctx) {
            self.on_attach_event(ctx, ev);
        }
        ctx.set_timer(self.cfg.renew_interval, tags::RENEW);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        match msg.op {
            Operation::Maintenance(op) => {
                if matches!(op, MaintenanceOp::Busy { .. }) {
                    // The registry shed our publish/renewal. Stretch the
                    // renewal cadence (capped at half the lease) instead of
                    // hammering it; the next RENEW round retries at the
                    // slower pace and acks shrink the stretch back.
                    self.stats.busy_nacks += 1;
                    self.renew_stretch = self.renew_stretch.saturating_mul(2).min(8);
                }
                if let Some(ev) = self.attach.on_maintenance(ctx, from, &op) {
                    self.on_attach_event(ctx, ev);
                }
            }
            Operation::Publishing(op) => match op {
                PublishOp::PublishAck { id, .. } => self.ack_received(id),
                PublishOp::PublishNack { id, .. } => {
                    if let Some(s) = self.services.iter_mut().find(|s| s.id == Some(id)) {
                        s.rejected = true;
                        s.awaiting_ack = false;
                        self.stats.publish_nacks += 1;
                    }
                }
                PublishOp::RenewAck { id, known, .. } => {
                    if known {
                        self.ack_received(id);
                    } else {
                        // Registry restarted and lost the advert: republish.
                        if let Some(i) =
                            self.services.iter().position(|s| s.id == Some(id))
                        {
                            if let Some(home) = self.attach.home() {
                                let advert = Self::advert_of(&mut self.services[i], ctx);
                                self.stats.republishes_after_unknown += 1;
                                self.stats.publishes += 1;
                                send_msg(
                                    ctx,
                                    self.cfg.codec,
                                    Destination::Unicast(home),
                                    DiscoveryMessage::publishing(PublishOp::Publish {
                                        advert,
                                        lease_ms: self.cfg.lease_ms,
                                    }),
                                );
                                self.arm_ack_retry(ctx, i);
                            }
                        }
                    }
                }
                _ => {}
            },
            Operation::Querying(QueryOp::Query(query)) => {
                if self.cfg.fallback_responder
                    && query.reply_to.is_none()
                    && !self.attach.lan_has_registry(ctx.now())
                {
                    self.answer_fallback(ctx, from, &query);
                }
            }
            Operation::Querying(_) => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, _timer: TimerId, tag: u64) {
        match tag {
            tags::PROBE => {
                if let Some(ev) = self.attach.on_probe_timer(ctx) {
                    self.on_attach_event(ctx, ev);
                }
            }
            tags::PROBE_DECIDE => {
                if let Some(ev) = self.attach.on_probe_decide(ctx) {
                    self.on_attach_event(ctx, ev);
                }
            }
            tags::PING => {
                if let Some(ev) = self.attach.on_ping_timer(ctx) {
                    self.on_attach_event(ctx, ev);
                }
            }
            tags::RENEW => {
                if let Some(home) = self.attach.home() {
                    for i in 0..self.services.len() {
                        let s = &self.services[i];
                        if s.rejected {
                            continue;
                        }
                        if let Some(id) = s.id {
                            self.stats.renewals += 1;
                            send_msg(
                                ctx,
                                self.cfg.codec,
                                Destination::Unicast(home),
                                DiscoveryMessage::publishing(PublishOp::RenewLease { id }),
                            );
                            self.arm_ack_retry(ctx, i);
                        }
                    }
                }
                ctx.set_timer(self.stretched_renew_interval(), tags::RENEW);
            }
            t => {
                if let Some(i) = tags::seq_of(t, tags::PUBLISH_RETRY_BASE) {
                    self.on_ack_retry(ctx, i as usize);
                }
            }
        }
    }
}
