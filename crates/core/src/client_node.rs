//! The client-node role: registry discovery, query issuing, result
//! collection, artifact fetching, and multicast fallback.
//!
//! "A client node is one that wants to discover a service that can fulfill
//! its needs. To do this, it first has to discover whether there are any
//! registry nodes available. When a client has obtained a connection to the
//! registry network, it can issue a query."

use std::collections::HashMap;

use sds_protocol::{
    DiscoveryMessage, MaintenanceOp, Operation, QueryId, QueryMessage, QueryOp, QueryPayload,
    ResponseHit, Uuid,
};
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, SimTime, TimerId};

use crate::attach::RegistryAttachment;
use crate::config::{ClientConfig, QueryMode, QueryOptions};
use crate::util::{send_msg, tags};

/// A query that finished (deadline reached).
#[derive(Clone, Debug)]
pub struct CompletedQuery {
    pub seq: u64,
    pub sent_at: SimTime,
    pub finished_at: SimTime,
    /// Deduplicated hits, ranked best-first.
    pub hits: Vec<ResponseHit>,
    /// Number of `QueryResponse` messages that arrived (response-implosion
    /// metric: with registries this stays small; decentralized, it can be
    /// one per provider).
    pub responses_received: u32,
    /// False when the query could not even be sent (no registry, fallback
    /// disabled).
    pub dispatched: bool,
    /// When the first response arrived (None = never answered) — the
    /// meaningful latency metric, since completion waits for the deadline.
    pub first_response_at: Option<SimTime>,
}

struct OutstandingQuery {
    sent_at: SimTime,
    options: QueryOptions,
    hits: HashMap<Uuid, ResponseHit>,
    responses_received: u32,
    /// Responders already counted, so a duplicated delivery of the same
    /// response (chaos fault injection) cannot double-count.
    responders_seen: Vec<NodeId>,
    dispatched: bool,
    first_response_at: Option<SimTime>,
}

/// A notification delivered for a standing query.
#[derive(Clone, Debug)]
pub struct Notification {
    pub subscription: QueryId,
    pub hit: ResponseHit,
    pub at: SimTime,
}

/// A composition planning result.
#[derive(Clone, Debug)]
pub struct CompositionResult {
    pub id: QueryId,
    pub found: bool,
    /// The planned chain in execution order.
    pub chain: Vec<sds_protocol::Advertisement>,
    pub at: SimTime,
}

/// An artifact fetch result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FetchedArtifact {
    pub name: String,
    pub found: bool,
    pub size: u32,
    pub at: SimTime,
}

/// The consumer role node handler.
pub struct ClientNode {
    cfg: ClientConfig,
    attach: RegistryAttachment,
    next_seq: u64,
    outstanding: HashMap<u64, OutstandingQuery>,
    /// Finished queries, in completion order. Experiments read these.
    pub completed: Vec<CompletedQuery>,
    /// Artifact fetches that completed.
    pub artifacts: Vec<FetchedArtifact>,
    /// Notifications received for standing queries.
    pub notifications: Vec<Notification>,
    /// Results of composition requests.
    pub compositions: Vec<CompositionResult>,
    /// Acknowledged subscription ids.
    pub active_subscriptions: Vec<QueryId>,
}

impl ClientNode {
    pub fn new(cfg: ClientConfig) -> Self {
        let attach = RegistryAttachment::new(cfg.attach.clone(), cfg.codec);
        Self {
            cfg,
            attach,
            next_seq: 0,
            outstanding: HashMap::new(),
            completed: Vec::new(),
            artifacts: Vec::new(),
            notifications: Vec::new(),
            compositions: Vec::new(),
            active_subscriptions: Vec::new(),
        }
    }

    /// The registry this client currently queries.
    pub fn home_registry(&self) -> Option<NodeId> {
        self.attach.home()
    }

    /// Known failover candidates (diagnostics).
    pub fn candidate_count(&self) -> usize {
        self.attach.candidate_count()
    }

    /// Issues a query; the result lands in [`ClientNode::completed`] once
    /// `options.timeout` elapses. Returns the query sequence number.
    pub fn issue_query(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        payload: QueryPayload,
        options: QueryOptions,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let query = QueryMessage {
            id: QueryId { origin: ctx.node(), seq },
            payload,
            max_responses: options.max_responses,
            ttl: options.ttl,
            reply_to: None,
        };
        let msg = DiscoveryMessage::querying(QueryOp::Query(query));
        let dispatched = match options.mode {
            QueryMode::Unicast => match self.attach.home() {
                Some(home) => {
                    send_msg(ctx, self.cfg.codec, Destination::Unicast(home), msg);
                    true
                }
                None if self.cfg.fallback_query => {
                    // Decentralized LAN fallback.
                    let lan = ctx.lan();
                    send_msg(ctx, self.cfg.codec, Destination::Multicast(lan), msg);
                    true
                }
                None => false,
            },
            QueryMode::MulticastLan => {
                let lan = ctx.lan();
                send_msg(ctx, self.cfg.codec, Destination::Multicast(lan), msg);
                true
            }
        };
        let timeout = options.timeout;
        self.outstanding.insert(
            seq,
            OutstandingQuery {
                sent_at: ctx.now(),
                options,
                hits: HashMap::new(),
                responses_received: 0,
                responders_seen: Vec::new(),
                dispatched,
                first_response_at: None,
            },
        );
        ctx.set_timer(timeout, tags::QUERY_TIMEOUT_BASE + seq);
        seq
    }

    /// Registers a standing query with the home registry: matching
    /// advertisements published later arrive as [`Notification`]s. Returns
    /// the subscription id, or `None` when unattached. The registry leases
    /// the subscription for `lease_ms` (0 = registry default).
    pub fn subscribe(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        payload: QueryPayload,
        lease_ms: u64,
    ) -> Option<QueryId> {
        let home = self.attach.home()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = QueryId { origin: ctx.node(), seq };
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(home),
            DiscoveryMessage::querying(QueryOp::Subscribe { id, payload, lease_ms }),
        );
        Some(id)
    }

    /// Asks the home registry to plan a service chain for a request no
    /// single service can satisfy (paper §4.3). The result arrives in
    /// [`ClientNode::compositions`]. Returns the request id, or `None` when
    /// unattached.
    pub fn request_composition(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        request: sds_semantic::ServiceRequest,
        max_depth: u8,
    ) -> Option<QueryId> {
        let home = self.attach.home()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = QueryId { origin: ctx.node(), seq };
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(home),
            DiscoveryMessage::querying(QueryOp::ComposeRequest { id, request, max_depth }),
        );
        Some(id)
    }

    /// Cancels a standing query.
    pub fn unsubscribe(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, id: QueryId) {
        if let Some(home) = self.attach.home() {
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(home),
                DiscoveryMessage::querying(QueryOp::Unsubscribe { id }),
            );
        }
        self.active_subscriptions.retain(|&s| s != id);
    }

    /// Requests an artifact (ontology, schema…) from the home registry.
    /// Returns `false` when unattached.
    pub fn fetch_artifact(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, name: &str) -> bool {
        let Some(home) = self.attach.home() else {
            return false;
        };
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(home),
            DiscoveryMessage::maintenance(MaintenanceOp::ArtifactRequest { name: name.into() }),
        );
        true
    }

    fn finalize(&mut self, ctx: &Ctx<'_, DiscoveryMessage>, seq: u64) {
        let Some(o) = self.outstanding.remove(&seq) else {
            return;
        };
        let mut hits: Vec<ResponseHit> = o.hits.into_values().collect();
        sds_registry::rank_hits(&mut hits);
        if let Some(k) = o.options.max_responses {
            hits.truncate(k as usize);
        }
        self.completed.push(CompletedQuery {
            seq,
            sent_at: o.sent_at,
            finished_at: ctx.now(),
            hits,
            responses_received: o.responses_received,
            dispatched: o.dispatched,
            first_response_at: o.first_response_at,
        });
    }
}

impl NodeHandler<DiscoveryMessage> for ClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        self.attach.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        match msg.op {
            Operation::Maintenance(op) => {
                if let MaintenanceOp::ArtifactResponse { name, found, size } = &op {
                    self.artifacts.push(FetchedArtifact {
                        name: name.clone(),
                        found: *found,
                        size: *size,
                        at: ctx.now(),
                    });
                }
                self.attach.on_maintenance(ctx, from, &op);
            }
            Operation::Querying(QueryOp::SubscribeAck { id, .. })
                if id.origin == ctx.node() && !self.active_subscriptions.contains(&id) => {
                    self.active_subscriptions.push(id);
                }
            Operation::Querying(QueryOp::ComposeResponse { id, found, chain })
                if id.origin == ctx.node() => {
                    self.compositions.push(CompositionResult { id, found, chain, at: ctx.now() });
                }
            Operation::Querying(QueryOp::Notify { subscription, hit })
                if subscription.origin == ctx.node() => {
                    self.notifications.push(Notification { subscription, hit, at: ctx.now() });
                }
            Operation::Querying(QueryOp::QueryResponse { query_id, hits, responder }) => {
                if query_id.origin != ctx.node() {
                    return;
                }
                if let Some(o) = self.outstanding.get_mut(&query_id.seq) {
                    if o.responders_seen.contains(&responder) {
                        // Each responder answers a query once; a second copy
                        // is a network-level duplicate.
                        return;
                    }
                    o.responders_seen.push(responder);
                    o.responses_received += 1;
                    o.first_response_at.get_or_insert(ctx.now());
                    for h in hits {
                        match o.hits.get(&h.advert.id) {
                            Some(existing)
                                if (existing.degree, std::cmp::Reverse(existing.distance))
                                    >= (h.degree, std::cmp::Reverse(h.distance)) => {}
                            _ => {
                                o.hits.insert(h.advert.id, h);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, _timer: TimerId, tag: u64) {
        match tag {
            tags::PROBE => self.attach.on_probe_timer(ctx),
            tags::PROBE_DECIDE => {
                self.attach.on_probe_decide(ctx);
            }
            tags::PING => {
                self.attach.on_ping_timer(ctx);
            }
            t => {
                if let Some(seq) = tags::seq_of(t, tags::QUERY_TIMEOUT_BASE) {
                    self.finalize(ctx, seq);
                }
            }
        }
    }
}
