//! The client-node role: registry discovery, query issuing, result
//! collection, artifact fetching, and multicast fallback.
//!
//! "A client node is one that wants to discover a service that can fulfill
//! its needs. To do this, it first has to discover whether there are any
//! registry nodes available. When a client has obtained a connection to the
//! registry network, it can issue a query."

use std::collections::HashMap;

use sds_protocol::{
    DiscoveryMessage, MaintenanceOp, Operation, QueryId, QueryMessage, QueryOp, QueryPayload,
    ResponseHit, Uuid,
};
use sds_simnet::{Ctx, Destination, NodeHandler, NodeId, Rng, SimTime, TimerId};

use crate::attach::{AttachEvent, RegistryAttachment};
use crate::config::{ClientConfig, QueryMode, QueryOptions};
use crate::util::{send_msg, tags};

/// A query that finished (deadline reached).
#[derive(Clone, Debug)]
pub struct CompletedQuery {
    pub seq: u64,
    pub sent_at: SimTime,
    pub finished_at: SimTime,
    /// Deduplicated hits, ranked best-first.
    pub hits: Vec<ResponseHit>,
    /// Number of `QueryResponse` messages that arrived (response-implosion
    /// metric: with registries this stays small; decentralized, it can be
    /// one per provider).
    pub responses_received: u32,
    /// False when the query could not even be sent (no registry, fallback
    /// disabled).
    pub dispatched: bool,
    /// When the first response arrived (None = never answered) — the
    /// meaningful latency metric, since completion waits for the deadline.
    pub first_response_at: Option<SimTime>,
    /// `Busy` nacks that hit this query while it was unanswered.
    pub busy_nacks: u32,
    /// Re-sends performed (backoff checkpoints + failover + busy retries).
    pub retries: u8,
}

struct OutstandingQuery {
    sent_at: SimTime,
    /// Absolute completion deadline (`sent_at + options.timeout`). Retries
    /// happen *inside* this budget; the completion semantics are unchanged.
    deadline: SimTime,
    options: QueryOptions,
    /// Kept only while the retry policy is enabled, for re-sends.
    payload: Option<QueryPayload>,
    /// Re-sends performed so far (backoff checkpoints + failover).
    attempt: u8,
    hits: HashMap<Uuid, ResponseHit>,
    responses_received: u32,
    /// Responders already counted, so a duplicated delivery of the same
    /// response (chaos fault injection) cannot double-count.
    responders_seen: Vec<NodeId>,
    dispatched: bool,
    first_response_at: Option<SimTime>,
    /// `Busy` nacks attributed to this query while unanswered.
    busy_nacks: u32,
}

/// A notification delivered for a standing query.
#[derive(Clone, Debug)]
pub struct Notification {
    pub subscription: QueryId,
    pub hit: ResponseHit,
    pub at: SimTime,
}

/// A composition planning result.
#[derive(Clone, Debug)]
pub struct CompositionResult {
    pub id: QueryId,
    pub found: bool,
    /// The planned chain in execution order.
    pub chain: Vec<sds_protocol::Advertisement>,
    pub at: SimTime,
}

/// An artifact fetch result.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FetchedArtifact {
    pub name: String,
    pub found: bool,
    pub size: u32,
    pub at: SimTime,
}

/// The consumer role node handler.
pub struct ClientNode {
    cfg: ClientConfig,
    attach: RegistryAttachment,
    next_seq: u64,
    outstanding: HashMap<u64, OutstandingQuery>,
    /// Wire-id aliases created by retries: retry seq → root query seq.
    /// Registries dedup query ids, so each re-send travels under a fresh
    /// id; responses to any alias are credited to the root query.
    alias: HashMap<u64, u64>,
    /// Lazily derived jitter stream for query-retry backoff; never created
    /// while the retry policy is passive.
    retry_rng: Option<Rng>,
    /// Consecutive `Busy` nacks from the current home with no counted
    /// response in between; drives hedging to an alternate registry.
    busy_streak: u32,
    /// Total `Busy` nacks received (diagnostics).
    pub busy_nacks_total: u64,
    /// Finished queries, in completion order. Experiments read these.
    pub completed: Vec<CompletedQuery>,
    /// Artifact fetches that completed.
    pub artifacts: Vec<FetchedArtifact>,
    /// Notifications received for standing queries.
    pub notifications: Vec<Notification>,
    /// Results of composition requests.
    pub compositions: Vec<CompositionResult>,
    /// Acknowledged subscription ids.
    pub active_subscriptions: Vec<QueryId>,
}

impl ClientNode {
    pub fn new(cfg: ClientConfig) -> Self {
        let attach = RegistryAttachment::new(cfg.attach.clone(), cfg.codec);
        Self {
            cfg,
            attach,
            next_seq: 0,
            outstanding: HashMap::new(),
            alias: HashMap::new(),
            retry_rng: None,
            busy_streak: 0,
            busy_nacks_total: 0,
            completed: Vec::new(),
            artifacts: Vec::new(),
            notifications: Vec::new(),
            compositions: Vec::new(),
            active_subscriptions: Vec::new(),
        }
    }

    /// The registry this client currently queries.
    pub fn home_registry(&self) -> Option<NodeId> {
        self.attach.home()
    }

    /// Known failover candidates (diagnostics).
    pub fn candidate_count(&self) -> usize {
        self.attach.candidate_count()
    }

    /// Issues a query; the result lands in [`ClientNode::completed`] once
    /// `options.timeout` elapses. Returns the query sequence number.
    pub fn issue_query(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        payload: QueryPayload,
        options: QueryOptions,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let retrying = self.cfg.retry.enabled();
        let saved_payload = retrying.then(|| payload.clone());
        let query = QueryMessage {
            id: QueryId { origin: ctx.node(), seq },
            payload,
            max_responses: options.max_responses,
            ttl: options.ttl,
            reply_to: None,
        };
        let msg = DiscoveryMessage::querying(QueryOp::Query(query));
        let dispatched = self.dispatch(ctx, msg, options.mode);
        let deadline = ctx.now().saturating_add(options.timeout);
        self.outstanding.insert(
            seq,
            OutstandingQuery {
                sent_at: ctx.now(),
                deadline,
                options,
                payload: saved_payload,
                attempt: 0,
                hits: HashMap::new(),
                responses_received: 0,
                responders_seen: Vec::new(),
                dispatched,
                first_response_at: None,
                busy_nacks: 0,
            },
        );
        let delay = if retrying {
            // First backoff checkpoint; the chain walks to the deadline.
            let rng = self.retry_rng.get_or_insert_with(|| ctx.derive_rng("core.client.retry"));
            self.cfg.retry.backoff(0, rng).min(deadline - ctx.now())
        } else {
            deadline - ctx.now()
        };
        ctx.set_timer(delay, tags::tagged(tags::QUERY_TIMEOUT_BASE, seq));
        seq
    }

    /// Sends a query message according to `mode`, falling back to LAN
    /// multicast when unattached (if configured). Returns whether the
    /// message went anywhere.
    fn dispatch(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        msg: DiscoveryMessage,
        mode: QueryMode,
    ) -> bool {
        match mode {
            QueryMode::Unicast => match self.attach.home() {
                Some(home) => {
                    send_msg(ctx, self.cfg.codec, Destination::Unicast(home), msg);
                    true
                }
                None if self.cfg.fallback_query => {
                    // Decentralized LAN fallback.
                    let lan = ctx.lan();
                    send_msg(ctx, self.cfg.codec, Destination::Multicast(lan), msg);
                    true
                }
                None => false,
            },
            QueryMode::MulticastLan => {
                let lan = ctx.lan();
                send_msg(ctx, self.cfg.codec, Destination::Multicast(lan), msg);
                true
            }
        }
    }

    /// Re-sends an outstanding query under a fresh wire id (registries
    /// drop duplicate query ids, so the original id would be ignored).
    /// Charges one retry attempt. Returns whether anything was sent.
    ///
    /// A re-send aimed at a registry travels as `QueryRetry` carrying the
    /// root attempt's seq, so the registry can dedup against the admitted
    /// root instead of evaluating (and re-federating) the same query twice
    /// when the original response is merely slow or queued. The multicast
    /// fallback path keeps the plain `Query` shape — decentralized fallback
    /// responders answer statelessly and only understand that op.
    ///
    /// Under a sustained `Busy` streak from the home registry the retry
    /// hedges to the best alternate candidate instead (when
    /// `hedge_after_busy` is enabled and an alternate is known).
    fn redispatch(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, root: u64) -> bool {
        let Some(o) = self.outstanding.get_mut(&root) else {
            return false;
        };
        let Some(payload) = o.payload.clone() else {
            return false;
        };
        o.attempt += 1;
        let mode = o.options.mode;
        let max_responses = o.options.max_responses;
        let ttl = o.options.ttl;
        let wire = self.next_seq;
        self.next_seq += 1;
        self.alias.insert(wire, root);
        let query = QueryMessage {
            id: QueryId { origin: ctx.node(), seq: wire },
            payload,
            max_responses,
            ttl,
            reply_to: None,
        };
        let sent = match (mode, self.attach.home()) {
            (QueryMode::Unicast, Some(home)) => {
                let hedge = self.cfg.hedge_after_busy > 0
                    && self.busy_streak >= u32::from(self.cfg.hedge_after_busy);
                let target = if hedge {
                    self.attach.best_candidate_excluding(home).unwrap_or(home)
                } else {
                    home
                };
                send_msg(
                    ctx,
                    self.cfg.codec,
                    Destination::Unicast(target),
                    DiscoveryMessage::querying(QueryOp::QueryRetry { query, root_seq: root }),
                );
                true
            }
            _ => self.dispatch(ctx, DiscoveryMessage::querying(QueryOp::Query(query)), mode),
        };
        if sent {
            if let Some(o) = self.outstanding.get_mut(&root) {
                o.dispatched = true;
            }
        }
        sent
    }

    /// A query checkpoint fired: either the final deadline (finalize), or a
    /// backoff checkpoint — re-send if the query is still unanswered and
    /// schedule the next checkpoint, clamped to the deadline.
    fn on_query_checkpoint(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, seq: u64) {
        let Some(o) = self.outstanding.get(&seq) else {
            return;
        };
        let now = ctx.now();
        if now >= o.deadline {
            self.finalize(ctx, seq);
            return;
        }
        let deadline = o.deadline;
        let policy = self.cfg.retry;
        let next_delay = if o.responses_received == 0 && o.attempt < policy.max_retries {
            self.redispatch(ctx, seq);
            let attempt = self.outstanding[&seq].attempt;
            let rng = self.retry_rng.get_or_insert_with(|| ctx.derive_rng("core.client.retry"));
            policy.backoff(attempt, rng).min(deadline - now)
        } else {
            // Answered, or retries exhausted: just wait out the deadline.
            deadline - now
        };
        ctx.set_timer(next_delay, tags::tagged(tags::QUERY_TIMEOUT_BASE, seq));
    }

    /// Reacts to attachment changes. After a failover re-attach, an
    /// outstanding query that nobody has answered is re-dispatched to the
    /// new home registry instead of being abandoned until its deadline.
    fn on_attach_event(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, ev: AttachEvent) {
        let AttachEvent::Attached(_) = ev else {
            return;
        };
        // A fresh home starts with a clean overload slate.
        self.busy_streak = 0;
        if !self.cfg.retry.enabled() {
            return;
        }
        let now = ctx.now();
        let max = self.cfg.retry.max_retries;
        let mut unanswered: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| {
                o.responses_received == 0
                    && o.attempt < max
                    && now < o.deadline
                    && o.options.mode == QueryMode::Unicast
            })
            .map(|(&seq, _)| seq)
            .collect();
        unanswered.sort_unstable();
        for seq in unanswered {
            self.redispatch(ctx, seq);
        }
    }

    /// Registers a standing query with the home registry: matching
    /// advertisements published later arrive as [`Notification`]s. Returns
    /// the subscription id, or `None` when unattached. The registry leases
    /// the subscription for `lease_ms` (0 = registry default).
    pub fn subscribe(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        payload: QueryPayload,
        lease_ms: u64,
    ) -> Option<QueryId> {
        let home = self.attach.home()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = QueryId { origin: ctx.node(), seq };
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(home),
            DiscoveryMessage::querying(QueryOp::Subscribe { id, payload, lease_ms }),
        );
        Some(id)
    }

    /// Asks the home registry to plan a service chain for a request no
    /// single service can satisfy (paper §4.3). The result arrives in
    /// [`ClientNode::compositions`]. Returns the request id, or `None` when
    /// unattached.
    pub fn request_composition(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        request: sds_semantic::ServiceRequest,
        max_depth: u8,
    ) -> Option<QueryId> {
        let home = self.attach.home()?;
        let seq = self.next_seq;
        self.next_seq += 1;
        let id = QueryId { origin: ctx.node(), seq };
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(home),
            DiscoveryMessage::querying(QueryOp::ComposeRequest { id, request, max_depth }),
        );
        Some(id)
    }

    /// Cancels a standing query.
    pub fn unsubscribe(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, id: QueryId) {
        if let Some(home) = self.attach.home() {
            send_msg(
                ctx,
                self.cfg.codec,
                Destination::Unicast(home),
                DiscoveryMessage::querying(QueryOp::Unsubscribe { id }),
            );
        }
        self.active_subscriptions.retain(|&s| s != id);
    }

    /// Requests an artifact (ontology, schema…) from the home registry.
    /// Returns `false` when unattached.
    pub fn fetch_artifact(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, name: &str) -> bool {
        let Some(home) = self.attach.home() else {
            return false;
        };
        send_msg(
            ctx,
            self.cfg.codec,
            Destination::Unicast(home),
            DiscoveryMessage::maintenance(MaintenanceOp::ArtifactRequest { name: name.into() }),
        );
        true
    }

    /// A `Busy` nack arrived: the registry shed one of our requests instead
    /// of answering. The nack is per-sender backpressure (it names no query
    /// id on the wire), so it is attributed to every outstanding unanswered
    /// unicast query. With a retry policy enabled, each such query gets an
    /// extra checkpoint at the hinted retry-after (jittered by the client's
    /// own stream, clamped defensively); the normal checkpoint machinery
    /// re-sends — and hedges — from there. Without a retry policy the nack
    /// is only recorded and the deadline stands.
    fn on_busy(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, retry_after_ms: u64) {
        self.busy_streak = self.busy_streak.saturating_add(1);
        self.busy_nacks_total += 1;
        let now = ctx.now();
        let mut affected: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| {
                o.responses_received == 0
                    && o.options.mode == QueryMode::Unicast
                    && now < o.deadline
            })
            .map(|(&seq, _)| seq)
            .collect();
        affected.sort_unstable();
        for &seq in &affected {
            if let Some(o) = self.outstanding.get_mut(&seq) {
                o.busy_nacks += 1;
            }
        }
        if !self.cfg.retry.enabled() || affected.is_empty() {
            return;
        }
        let hint = retry_after_ms.clamp(1, 30_000);
        let jitter = self.cfg.retry.jitter;
        let rng = self.retry_rng.get_or_insert_with(|| ctx.derive_rng("core.client.retry"));
        for seq in affected {
            let extra = if jitter > 0 { rng.gen_range(0..=jitter) } else { 0 };
            ctx.set_timer(hint + extra, tags::tagged(tags::QUERY_TIMEOUT_BASE, seq));
        }
    }

    fn finalize(&mut self, ctx: &Ctx<'_, DiscoveryMessage>, seq: u64) {
        let Some(o) = self.outstanding.remove(&seq) else {
            return;
        };
        self.alias.retain(|_, &mut root| root != seq);
        let mut hits: Vec<ResponseHit> = o.hits.into_values().collect();
        sds_registry::rank_hits(&mut hits);
        if let Some(k) = o.options.max_responses {
            hits.truncate(k as usize);
        }
        self.completed.push(CompletedQuery {
            seq,
            sent_at: o.sent_at,
            finished_at: ctx.now(),
            hits,
            responses_received: o.responses_received,
            dispatched: o.dispatched,
            first_response_at: o.first_response_at,
            busy_nacks: o.busy_nacks,
            retries: o.attempt,
        });
    }
}

impl NodeHandler<DiscoveryMessage> for ClientNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        self.attach.start(ctx);
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, from: NodeId, msg: DiscoveryMessage) {
        match msg.op {
            Operation::Maintenance(op) => {
                if let MaintenanceOp::ArtifactResponse { name, found, size } = &op {
                    self.artifacts.push(FetchedArtifact {
                        name: name.clone(),
                        found: *found,
                        size: *size,
                        at: ctx.now(),
                    });
                }
                if let MaintenanceOp::Busy { retry_after_ms } = &op {
                    self.on_busy(ctx, *retry_after_ms);
                }
                if let Some(ev) = self.attach.on_maintenance(ctx, from, &op) {
                    self.on_attach_event(ctx, ev);
                }
            }
            Operation::Querying(QueryOp::SubscribeAck { id, .. })
                if id.origin == ctx.node() && !self.active_subscriptions.contains(&id) => {
                    self.active_subscriptions.push(id);
                }
            Operation::Querying(QueryOp::ComposeResponse { id, found, chain })
                if id.origin == ctx.node() => {
                    self.compositions.push(CompositionResult { id, found, chain, at: ctx.now() });
                }
            Operation::Querying(QueryOp::Notify { subscription, hit })
                if subscription.origin == ctx.node() => {
                    self.notifications.push(Notification { subscription, hit, at: ctx.now() });
                }
            Operation::Querying(QueryOp::QueryResponse { query_id, hits, responder }) => {
                if query_id.origin != ctx.node() {
                    return;
                }
                let root = self.alias.get(&query_id.seq).copied().unwrap_or(query_id.seq);
                if let Some(o) = self.outstanding.get_mut(&root) {
                    if o.responders_seen.contains(&responder) {
                        // Each responder answers a query once; a second copy
                        // is a network-level duplicate.
                        return;
                    }
                    o.responders_seen.push(responder);
                    o.responses_received += 1;
                    o.first_response_at.get_or_insert(ctx.now());
                    // A counted answer breaks the Busy streak.
                    self.busy_streak = 0;
                    for h in hits {
                        match o.hits.get(&h.advert.id) {
                            Some(existing)
                                if (existing.degree, std::cmp::Reverse(existing.distance))
                                    >= (h.degree, std::cmp::Reverse(h.distance)) => {}
                            _ => {
                                o.hits.insert(h.advert.id, h);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, _timer: TimerId, tag: u64) {
        match tag {
            tags::PROBE => {
                if let Some(ev) = self.attach.on_probe_timer(ctx) {
                    self.on_attach_event(ctx, ev);
                }
            }
            tags::PROBE_DECIDE => {
                if let Some(ev) = self.attach.on_probe_decide(ctx) {
                    self.on_attach_event(ctx, ev);
                }
            }
            tags::PING => {
                if let Some(ev) = self.attach.on_ping_timer(ctx) {
                    self.on_attach_event(ctx, ev);
                }
            }
            t => {
                if let Some(seq) = tags::seq_of(t, tags::QUERY_TIMEOUT_BASE) {
                    self.on_query_checkpoint(ctx, seq);
                }
            }
        }
    }
}
