//! Registry discovery and failover from the client/service side.
//!
//! Implements the paper's registry-discovery machinery: active probing over
//! LAN multicast, passive beacon listening, manual endpoint configuration,
//! candidate collection through registry signaling ("once connected to a
//! registry node … it is possible to use registry signalling to provide the
//! client node with alternative registry nodes' addresses. These addresses
//! may be used in the event of failure"), and liveness-based failover.
//!
//! [`RegistryAttachment`] is embedded in both client and service node
//! handlers; the host forwards maintenance messages and the `PROBE`/`PING`
//! timers to it and reacts to the returned [`AttachEvent`]s.

use std::collections::BTreeMap;

use sds_protocol::{Codec, DiscoveryMessage, MaintenanceOp};
use sds_simnet::{Ctx, Destination, NodeId, Rng, SimTime};

use crate::config::{AttachConfig, Bootstrap};
use crate::util::{send_msg, tags};

/// State change the host must react to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AttachEvent {
    /// A home registry was selected (first attach or failover target);
    /// services should (re)publish to it.
    Attached(NodeId),
    /// The home registry stopped answering and no candidate is available;
    /// the node is registry-less until discovery succeeds again.
    Detached,
}

/// Client-side registry discovery, candidate tracking, and failover.
#[derive(Debug)]
pub struct RegistryAttachment {
    cfg: AttachConfig,
    codec: Codec,
    home: Option<NodeId>,
    /// Known registries with the time they were last heard from.
    candidates: BTreeMap<NodeId, SimTime>,
    /// Last time any registry signal was heard on this LAN (gates the
    /// decentralized fallback).
    last_lan_registry_signal: Option<SimTime>,
    /// Pings sent to the home registry without a pong.
    unanswered_pings: u8,
    /// Ping rounds since the failover candidate list was last refreshed.
    pings_since_list_refresh: u8,
    /// Probe replies collected during the current decision window:
    /// (registry, advertised load).
    probe_replies: Vec<(NodeId, u32)>,
    /// Whether a probe-decision timer is outstanding.
    deciding: bool,
    /// Consecutive discovery rounds without hearing a registry; drives the
    /// opt-in re-attach backoff (`AttachConfig::retry`).
    probe_failures: u8,
    /// Lazily derived jitter stream for the re-attach backoff; never
    /// created (and hence never drawn from) while the policy is passive.
    retry_rng: Option<Rng>,
}

impl RegistryAttachment {
    pub fn new(cfg: AttachConfig, codec: Codec) -> Self {
        Self {
            cfg,
            codec,
            home: None,
            candidates: BTreeMap::new(),
            last_lan_registry_signal: None,
            unanswered_pings: 0,
            // Start near the refresh threshold: the list fetched at attach
            // time often predates federation formation, so refresh early.
            pings_since_list_refresh: 2,
            probe_replies: Vec::new(),
            deciding: false,
            probe_failures: 0,
            retry_rng: None,
        }
    }

    /// Delay until the next discovery attempt. Fixed `probe_retry` cadence
    /// by default; capped exponential backoff with jitter when the opt-in
    /// retry policy is enabled.
    fn next_probe_delay(&mut self, ctx: &Ctx<'_, DiscoveryMessage>) -> SimTime {
        if self.cfg.retry.enabled() {
            let rng = self.retry_rng.get_or_insert_with(|| ctx.derive_rng("core.attach.retry"));
            let d = self.cfg.retry.backoff(self.probe_failures, rng);
            self.probe_failures = self.probe_failures.saturating_add(1);
            d
        } else {
            self.cfg.probe_retry
        }
    }

    /// The currently attached registry, if any.
    pub fn home(&self) -> Option<NodeId> {
        self.home
    }

    /// Known alternative registries (for diagnostics/tests).
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// True when some registry was recently heard on the local LAN — used to
    /// decide whether the decentralized fallback should kick in.
    pub fn lan_has_registry(&self, now: SimTime) -> bool {
        self.home.is_some()
            || self
                .last_lan_registry_signal
                .is_some_and(|t| now.saturating_sub(t) < self.cfg.beacon_timeout)
    }

    /// Starts (or restarts, after a crash) discovery. Returns an event when
    /// a static endpoint attaches immediately.
    pub fn start(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) -> Option<AttachEvent> {
        self.home = None;
        self.candidates.clear();
        self.last_lan_registry_signal = None;
        self.unanswered_pings = 0;
        self.probe_replies.clear();
        self.deciding = false;
        self.probe_failures = 0;
        if self.cfg.ping_interval > 0 {
            ctx.set_timer(self.cfg.ping_interval, tags::PING);
        }
        match self.cfg.bootstrap {
            Bootstrap::Multicast => {
                self.send_probe(ctx);
                ctx.set_timer(self.cfg.probe_retry, tags::PROBE);
                None
            }
            Bootstrap::PassiveOnly => None,
            Bootstrap::Static(r) => Some(self.attach(ctx, r)),
        }
    }

    fn send_probe(&self, ctx: &mut Ctx<'_, DiscoveryMessage>) {
        let lan = ctx.lan();
        send_msg(
            ctx,
            self.codec,
            Destination::Multicast(lan),
            DiscoveryMessage::maintenance(MaintenanceOp::RegistryProbe),
        );
    }

    fn attach(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>, registry: NodeId) -> AttachEvent {
        self.home = Some(registry);
        self.unanswered_pings = 0;
        self.pings_since_list_refresh = 2;
        // Gather failover candidates through registry signaling.
        send_msg(
            ctx,
            self.codec,
            Destination::Unicast(registry),
            DiscoveryMessage::maintenance(MaintenanceOp::RegistryListRequest { from_registry: false }),
        );
        AttachEvent::Attached(registry)
    }

    /// Feeds a maintenance message through the attachment logic. Returns an
    /// event when attachment state changed.
    pub fn on_maintenance(
        &mut self,
        ctx: &mut Ctx<'_, DiscoveryMessage>,
        from: NodeId,
        op: &MaintenanceOp,
    ) -> Option<AttachEvent> {
        match op {
            MaintenanceOp::RegistryProbeReply { load, .. } => {
                self.candidates.insert(from, ctx.now());
                self.last_lan_registry_signal = Some(ctx.now());
                self.probe_failures = 0;
                if self.home.is_none() {
                    if self.cfg.probe_decision_window == 0 {
                        return Some(self.attach(ctx, from));
                    }
                    // Load-balanced selection: collect replies for a short
                    // window, then pick the least-loaded registry. One entry
                    // per registry: duplicated deliveries must not inflate
                    // the candidate set.
                    if !self.probe_replies.iter().any(|&(id, _)| id == from) {
                        self.probe_replies.push((from, *load));
                    }
                    if !self.deciding {
                        self.deciding = true;
                        ctx.set_timer(self.cfg.probe_decision_window, tags::PROBE_DECIDE);
                    }
                }
                None
            }
            MaintenanceOp::RegistryBeacon { .. } => {
                self.candidates.insert(from, ctx.now());
                self.last_lan_registry_signal = Some(ctx.now());
                self.probe_failures = 0;
                // Passive discovery attaches directly (beacons arrive one at
                // a time anyway), but never preempts an open probe window.
                if self.home.is_none() && !self.deciding {
                    return Some(self.attach(ctx, from));
                }
                None
            }
            MaintenanceOp::RegistryList { registries } => {
                for &r in registries {
                    if r != ctx.node() {
                        self.candidates.entry(r).or_insert(ctx.now());
                    }
                }
                None
            }
            MaintenanceOp::Pong => {
                if Some(from) == self.home {
                    self.unanswered_pings = 0;
                    self.probe_failures = 0;
                    self.candidates.insert(from, ctx.now());
                }
                None
            }
            _ => None,
        }
    }

    /// `PROBE_DECIDE` timer: the reply-collection window closed; attach to
    /// the least-loaded replying registry (ties by lowest id).
    pub fn on_probe_decide(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) -> Option<AttachEvent> {
        self.deciding = false;
        if self.home.is_some() {
            self.probe_replies.clear();
            return None;
        }
        let best = self
            .probe_replies
            .iter()
            .min_by_key(|&&(id, load)| (load, id))
            .map(|&(id, _)| id);
        self.probe_replies.clear();
        best.map(|r| self.attach(ctx, r))
    }

    /// `PROBE` timer: retry discovery while unattached. With the opt-in
    /// retry policy, a `Bootstrap::Static` node re-attaches to its
    /// configured endpoint here (optimistically — the next ping round
    /// detaches again if the endpoint is still silent, with growing
    /// backoff, so a dead endpoint costs a bounded trickle of traffic and
    /// a revived one is re-adopted without operator help).
    pub fn on_probe_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) -> Option<AttachEvent> {
        if self.home.is_some() {
            return None;
        }
        match self.cfg.bootstrap {
            Bootstrap::Multicast => {
                self.send_probe(ctx);
                let delay = self.next_probe_delay(ctx);
                ctx.set_timer(delay, tags::PROBE);
                None
            }
            Bootstrap::Static(r) if self.cfg.retry.enabled() => Some(self.attach(ctx, r)),
            _ => None,
        }
    }

    /// `PING` timer: check home-registry liveness; fail over when it stops
    /// answering. Always reschedules itself.
    pub fn on_ping_timer(&mut self, ctx: &mut Ctx<'_, DiscoveryMessage>) -> Option<AttachEvent> {
        if self.cfg.ping_interval == 0 {
            return None;
        }
        ctx.set_timer(self.cfg.ping_interval, tags::PING);
        let home = self.home?;
        if self.unanswered_pings >= self.cfg.ping_tolerance {
            // Home registry presumed dead: drop it and fail over.
            self.candidates.remove(&home);
            self.home = None;
            self.unanswered_pings = 0;
            return match self.best_candidate() {
                Some(next) => Some(self.attach(ctx, next)),
                None => {
                    // Resume active discovery.
                    match self.cfg.bootstrap {
                        Bootstrap::Multicast => {
                            self.send_probe(ctx);
                            let delay = self.next_probe_delay(ctx);
                            ctx.set_timer(delay, tags::PROBE);
                        }
                        Bootstrap::Static(_) if self.cfg.retry.enabled() => {
                            // Schedule a backed-off re-attach attempt
                            // instead of staying detached forever.
                            let delay = self.next_probe_delay(ctx);
                            ctx.set_timer(delay, tags::PROBE);
                        }
                        _ => {}
                    }
                    Some(AttachEvent::Detached)
                }
            };
        }
        self.unanswered_pings += 1;
        send_msg(
            ctx,
            self.codec,
            Destination::Unicast(home),
            DiscoveryMessage::maintenance(MaintenanceOp::Ping),
        );
        // Registry signaling keeps the failover candidates fresh: "forward
        // information about other registries to its clients in case of
        // failure". Refresh every few ping rounds.
        self.pings_since_list_refresh += 1;
        if self.pings_since_list_refresh >= 3 {
            self.pings_since_list_refresh = 0;
            send_msg(
                ctx,
                self.codec,
                Destination::Unicast(home),
                DiscoveryMessage::maintenance(MaintenanceOp::RegistryListRequest { from_registry: false }),
            );
        }
        None
    }

    /// Most recently heard-from candidate.
    fn best_candidate(&self) -> Option<NodeId> {
        self.candidates
            .iter()
            .max_by_key(|&(id, &t)| (t, std::cmp::Reverse(*id)))
            .map(|(&id, _)| id)
    }

    /// Most recently heard-from candidate other than `excluded` — the hedge
    /// target under sustained home-registry overload (the overloaded home
    /// must not be its own alternate).
    pub fn best_candidate_excluding(&self, excluded: NodeId) -> Option<NodeId> {
        self.candidates
            .iter()
            .filter(|&(&id, _)| id != excluded)
            .max_by_key(|&(id, &t)| (t, std::cmp::Reverse(*id)))
            .map(|(&id, _)| id)
    }
}
