//! Configuration for the discovery architecture.
//!
//! "There are lots of different design choices, e.g. to push or pull
//! advertisements between registries, active or passive registry discovery,
//! how many registry nodes on each LAN and so on. Actually, these could even
//! be made configurable on an individual deployment basis. Other configurable
//! parameters could be the interval between registry beacons, the number of
//! registry nodes to traverse for a query, and the advertisement lease
//! period." — everything quoted there is a field below.

use sds_protocol::{Codec, ModelId};
use sds_simnet::{secs, NodeId, SimTime};

/// How queries travel between federated registries (paper §4.9: "increasing
/// the reach of a query gradually in several rounds, random walks, or
/// broadcasting in the registry network").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardStrategy {
    /// Broadcast in the registry network with a hop budget.
    Flood { ttl: u8 },
    /// Gradually increase reach: issue one flood round per TTL entry, and
    /// stop as soon as a round produced hits.
    ExpandingRing { ttls: Vec<u8> },
    /// `walkers` independent random walks of `ttl` hops each.
    RandomWalk { walkers: u8, ttl: u8 },
    /// Never forward (an isolated/autonomous registry).
    None,
}

impl Default for ForwardStrategy {
    fn default() -> Self {
        ForwardStrategy::Flood { ttl: 4 }
    }
}

/// How a node finds its first registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bootstrap {
    /// Active discovery: multicast a registry probe, pick from replies; also
    /// listen for beacons (passive discovery happens implicitly).
    Multicast,
    /// Passive-only discovery: never probe, wait for a periodic beacon.
    PassiveOnly,
    /// Manual configuration of a registry endpoint (the paper's fallback
    /// for environments without multicast, and its strawman for the
    /// configuration burden).
    Static(NodeId),
}

/// Client/service-side parameters.
#[derive(Clone, Debug)]
pub struct AttachConfig {
    pub bootstrap: Bootstrap,
    /// Re-probe interval while unattached.
    pub probe_retry: SimTime,
    /// Home-registry liveness checking interval (0 disables pinging).
    pub ping_interval: SimTime,
    /// Missed pongs before declaring the home registry dead and failing
    /// over.
    pub ping_tolerance: u8,
    /// Without a beacon for this long, a LAN is considered registry-less
    /// (gates the decentralized fallback).
    pub beacon_timeout: SimTime,
    /// After an active probe, wait this long collecting replies and attach
    /// to the least-loaded registry ("by assigning clients to registries in
    /// an even distribution, load balancing could be obtained"). 0 attaches
    /// to the first reply.
    pub probe_decision_window: SimTime,
}

impl Default for AttachConfig {
    fn default() -> Self {
        Self {
            bootstrap: Bootstrap::Multicast,
            probe_retry: secs(2),
            ping_interval: secs(5),
            ping_tolerance: 2,
            beacon_timeout: secs(12),
            probe_decision_window: 300,
        }
    }
}

/// Registry-node parameters.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Beacon period (passive registry discovery); 0 disables beacons.
    pub beacon_interval: SimTime,
    /// How often expired adverts are purged.
    pub purge_interval: SimTime,
    /// WAN federation seed registries ("manual configuration, or seeding, is
    /// necessary at some point in time").
    pub seeds: Vec<NodeId>,
    /// Peer liveness ping period.
    pub peer_ping_interval: SimTime,
    /// Missed pongs before a federation peer is dropped.
    pub peer_ping_tolerance: u8,
    /// Periodic peer-list gossip period (registry signaling); 0 disables.
    pub signaling_interval: SimTime,
    /// Forwarding strategy for federated queries.
    pub strategy: ForwardStrategy,
    /// How long an adopting registry waits for federation responses before
    /// answering its client.
    pub response_window: SimTime,
    /// Retention for the query-id loop-avoidance cache.
    pub seen_retention: SimTime,
    /// Coordinate with co-located registries so only one forwards to the
    /// WAN (paper §4.7).
    pub gateway_election: bool,
    /// Learn peers transitively from FederationAck peer lists and gossiped
    /// RegistryLists (default). Disabling pins the overlay to the explicit
    /// seeding graph — used to study forwarding strategies on chains/rings.
    pub transitive_peering: bool,
    /// Push locally published advertisements to federation peers at this
    /// interval (0 disables). This is the paper's replication-style registry
    /// cooperation strategy ("to push or pull advertisements between
    /// registries"): queries then hit locally at every registry, trading
    /// publish traffic for query traffic.
    pub advert_push_interval: SimTime,
    /// Pull peers' locally published advertisements at this interval (0
    /// disables) — the pull half of "push or pull advertisements between
    /// registries". Pulling happens during the signaling round, one random
    /// peer at a time.
    pub advert_pull_interval: SimTime,
    /// Which description models this registry can evaluate.
    pub models: Vec<ModelId>,
    /// Requested advertisement lease period granted to publishers is decided
    /// by the registry's [`sds_registry::LeasePolicy`]; this is it.
    pub lease_policy: sds_registry::LeasePolicy,
    /// Wire-size codec (compression on/off).
    pub codec: Codec,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            beacon_interval: secs(5),
            purge_interval: secs(1),
            seeds: Vec::new(),
            peer_ping_interval: secs(5),
            peer_ping_tolerance: 2,
            signaling_interval: secs(15),
            strategy: ForwardStrategy::default(),
            response_window: 500,
            seen_retention: secs(30),
            gateway_election: true,
            transitive_peering: true,
            advert_push_interval: 0,
            advert_pull_interval: 0,
            models: vec![ModelId::Uri, ModelId::Template, ModelId::Semantic],
            lease_policy: sds_registry::LeasePolicy::default(),
            codec: Codec::default(),
        }
    }
}

/// Service-node parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    pub attach: AttachConfig,
    /// Lease duration requested on publish (0 = registry default).
    pub lease_ms: u64,
    /// Renewal period; should be well below the lease duration.
    pub renew_interval: SimTime,
    /// Answer multicast queries directly when the LAN has no registry
    /// (decentralized fallback, paper Fig. 3 right).
    pub fallback_responder: bool,
    pub codec: Codec,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            attach: AttachConfig::default(),
            lease_ms: 30_000,
            renew_interval: secs(10),
            fallback_responder: true,
            codec: Codec::default(),
        }
    }
}

/// How a client sends queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// Unicast to the home registry (normal mode).
    Unicast,
    /// Multicast on the LAN — used as decentralized fallback and to study
    /// response implosion / redundant WAN forwarding.
    MulticastLan,
}

/// Per-query options.
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// Query response control: max hits wanted (None = all).
    pub max_responses: Option<u16>,
    /// Registry-network hop budget.
    pub ttl: u8,
    /// Client-side deadline after which the query completes with whatever
    /// arrived.
    pub timeout: SimTime,
    pub mode: QueryMode,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self { max_responses: None, ttl: 4, timeout: secs(3), mode: QueryMode::Unicast }
    }
}

/// Client-node parameters.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    pub attach: AttachConfig,
    /// Fall back to LAN multicast queries when no registry is reachable.
    pub fallback_query: bool,
    pub codec: Codec,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self { attach: AttachConfig::default(), fallback_query: true, codec: Codec::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let r = RegistryConfig::default();
        assert!(r.gateway_election);
        assert!(r.response_window > 0);
        let s = ServiceConfig::default();
        assert!(
            s.renew_interval < s.lease_ms,
            "renewal must happen before lease expiry"
        );
        let q = QueryOptions::default();
        assert!(q.timeout > r.response_window, "client must outwait aggregation");
    }
}
