//! Configuration for the discovery architecture.
//!
//! "There are lots of different design choices, e.g. to push or pull
//! advertisements between registries, active or passive registry discovery,
//! how many registry nodes on each LAN and so on. Actually, these could even
//! be made configurable on an individual deployment basis. Other configurable
//! parameters could be the interval between registry beacons, the number of
//! registry nodes to traverse for a query, and the advertisement lease
//! period." — everything quoted there is a field below.

use sds_protocol::{Codec, ModelId};
use sds_simnet::{secs, NodeId, Rng, SimTime};

/// Seeded jittered exponential backoff, shared by the self-healing layer:
/// client query re-issue, provider publish/renew ack-retry, registry peer
/// probation, and (opt-in) attachment re-probing.
///
/// The default is **passive** (`max_retries == 0`): no role retries
/// anything, which preserves the pre-self-healing behaviour bit-for-bit.
/// [`RetryPolicy::standard`] is the recommended enabled setting. Jitter is
/// always drawn from a dedicated derived RNG stream
/// ([`sds_simnet::Ctx::derive_rng`]), and every retry trigger is a *missed*
/// response — so enabling a policy leaves fault-free runs byte-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retry attempts after the initial try. 0 disables the machinery.
    pub max_retries: u8,
    /// Delay before the first retry; doubles each further attempt.
    pub base_backoff: SimTime,
    /// Cap on the exponential delay (before jitter).
    pub max_backoff: SimTime,
    /// Uniform extra jitter in `[0, jitter]` added to every delay.
    pub jitter: SimTime,
}

impl RetryPolicy {
    /// No retries at all (the pre-self-healing behaviour).
    pub fn passive() -> Self {
        Self { max_retries: 0, base_backoff: 0, max_backoff: 0, jitter: 0 }
    }

    /// Recommended enabled policy: up to 4 retries, 500 ms doubling to an
    /// 8 s cap, ±250 ms jitter.
    pub fn standard() -> Self {
        Self { max_retries: 4, base_backoff: 500, max_backoff: secs(8), jitter: 250 }
    }

    /// Whether the policy retries at all.
    pub fn enabled(&self) -> bool {
        self.max_retries > 0
    }

    /// The delay before retry number `attempt` (0-based), jittered from the
    /// caller's dedicated stream.
    pub fn backoff(&self, attempt: u8, rng: &mut Rng) -> SimTime {
        let exp = self
            .base_backoff
            .checked_shl(u32::from(attempt.min(32)))
            .unwrap_or(SimTime::MAX)
            .min(self.max_backoff.max(self.base_backoff));
        exp + if self.jitter > 0 { rng.gen_range(0..=self.jitter) } else { 0 }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::passive()
    }
}

/// Registry overload control: admission, backpressure, and graceful
/// degradation. All thresholds compare against a **utilization EWMA** in
/// integer percent: each `tick`, the registry folds the number of operations
/// it handled into the average relative to `ops_budget` (the modeled number
/// of operations one tick window can absorb). As utilization climbs the
/// registry degrades answer *quality* before answer *availability*:
///
/// 1. `degrade_pct` — cap query responses at `degraded_max_responses` hits;
/// 2. `stale_pct` — additionally serve slightly-stale query-cache entries
///    (within `stale_slack` of lapse) and stop forwarding to the federation;
/// 3. `busy_pct` — shed fresh queries with an explicit
///    [`sds_protocol::MaintenanceOp::Busy`] nack carrying a jittered
///    `retry_after_ms` hint (never a silent drop);
/// 4. `busy_renewal_pct` — only above this (deliberately higher) watermark
///    are lease renewals and publishes nacked too: liveness traffic is the
///    last thing shed.
///
/// The default is **disabled** (`tick == 0`): no timer runs, no counters are
/// consulted, and runs are byte-identical to the pre-overload behaviour.
/// Retry-after jitter comes from a dedicated derived RNG stream, so enabling
/// the policy never perturbs other streams.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverloadPolicy {
    /// EWMA/shedding evaluation period. 0 disables the whole machinery.
    pub tick: SimTime,
    /// Modeled operations one tick window can absorb at 100% utilization.
    pub ops_budget: u32,
    /// EWMA weight of the newest sample, in percent (1..=100).
    pub ewma_alpha_pct: u8,
    /// Utilization % at which responses are capped at
    /// `degraded_max_responses`.
    pub degrade_pct: u16,
    /// Utilization % at which stale cache service starts and federation
    /// forwarding stops.
    pub stale_pct: u16,
    /// Utilization % at which fresh queries are nacked with `Busy`.
    pub busy_pct: u16,
    /// Utilization % at which even renewals/publishes are nacked. Keep this
    /// well above `busy_pct` so liveness traffic survives ordinary storms.
    pub busy_renewal_pct: u16,
    /// Base retry hint carried by `Busy` nacks.
    pub retry_after: SimTime,
    /// Uniform extra jitter in `[0, retry_jitter]` added to every hint, so a
    /// shed flash crowd does not re-arrive in phase.
    pub retry_jitter: SimTime,
    /// Response cap applied in the degraded band.
    pub degraded_max_responses: u16,
    /// How far past lapse a query-cache entry may still be served while in
    /// the stale band.
    pub stale_slack: SimTime,
}

impl OverloadPolicy {
    /// Overload control off: the pre-overload behaviour, byte-for-byte.
    pub fn disabled() -> Self {
        Self {
            tick: 0,
            ops_budget: 0,
            ewma_alpha_pct: 30,
            degrade_pct: 70,
            stale_pct: 85,
            busy_pct: 95,
            busy_renewal_pct: 130,
            retry_after: 400,
            retry_jitter: 200,
            degraded_max_responses: 4,
            stale_slack: secs(2),
        }
    }

    /// Recommended enabled policy for a registry that can absorb
    /// `ops_budget` operations per 200 ms window.
    pub fn standard(ops_budget: u32) -> Self {
        Self { tick: 200, ops_budget, ..Self::disabled() }
    }

    /// Whether the overload machinery runs at all.
    pub fn enabled(&self) -> bool {
        self.tick > 0 && self.ops_budget > 0
    }
}

impl Default for OverloadPolicy {
    fn default() -> Self {
        Self::disabled()
    }
}

/// How queries travel between federated registries (paper §4.9: "increasing
/// the reach of a query gradually in several rounds, random walks, or
/// broadcasting in the registry network").
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ForwardStrategy {
    /// Broadcast in the registry network with a hop budget.
    Flood { ttl: u8 },
    /// Gradually increase reach: issue one flood round per TTL entry, and
    /// stop as soon as a round produced hits.
    ExpandingRing { ttls: Vec<u8> },
    /// `walkers` independent random walks of `ttl` hops each.
    RandomWalk { walkers: u8, ttl: u8 },
    /// Never forward (an isolated/autonomous registry).
    None,
}

impl Default for ForwardStrategy {
    fn default() -> Self {
        ForwardStrategy::Flood { ttl: 4 }
    }
}

/// How federated registries keep their replicated advert sets consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum SyncMode {
    /// Digest-based anti-entropy (default): a periodic `SyncDigest` round
    /// per peer, delta replies for mismatched buckets only, and a single
    /// digest round on probation reinstatement. Converges through loss and
    /// partitions at O(divergence) wire cost.
    #[default]
    AntiEntropy,
    /// The pre-anti-entropy behaviour, byte-for-byte: fire-and-forget
    /// `ForwardAdverts` rounds on `advert_push_interval` /
    /// `advert_pull_interval`, and a full advert push on reinstatement.
    /// Selecting this reproduces the historical golden digests exactly.
    Legacy,
}

/// How a node finds its first registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Bootstrap {
    /// Active discovery: multicast a registry probe, pick from replies; also
    /// listen for beacons (passive discovery happens implicitly).
    Multicast,
    /// Passive-only discovery: never probe, wait for a periodic beacon.
    PassiveOnly,
    /// Manual configuration of a registry endpoint (the paper's fallback
    /// for environments without multicast, and its strawman for the
    /// configuration burden).
    Static(NodeId),
}

/// Client/service-side parameters.
#[derive(Clone, Debug)]
pub struct AttachConfig {
    pub bootstrap: Bootstrap,
    /// Re-probe interval while unattached.
    pub probe_retry: SimTime,
    /// Home-registry liveness checking interval (0 disables pinging).
    pub ping_interval: SimTime,
    /// Missed pongs before declaring the home registry dead and failing
    /// over.
    pub ping_tolerance: u8,
    /// Without a beacon for this long, a LAN is considered registry-less
    /// (gates the decentralized fallback).
    pub beacon_timeout: SimTime,
    /// After an active probe, wait this long collecting replies and attach
    /// to the least-loaded registry ("by assigning clients to registries in
    /// an even distribution, load balancing could be obtained"). 0 attaches
    /// to the first reply.
    pub probe_decision_window: SimTime,
    /// Opt-in re-attach backoff. When enabled, a detached node re-probes
    /// under this policy instead of the fixed `probe_retry` cadence, and a
    /// `Bootstrap::Static` node keeps retrying its configured endpoint
    /// after a failover instead of staying detached forever. Off by
    /// default: backoff would change probe timing on registry-less LANs
    /// even in fault-free runs.
    pub retry: RetryPolicy,
}

impl Default for AttachConfig {
    fn default() -> Self {
        Self {
            bootstrap: Bootstrap::Multicast,
            probe_retry: secs(2),
            ping_interval: secs(5),
            ping_tolerance: 2,
            beacon_timeout: secs(12),
            probe_decision_window: 300,
            retry: RetryPolicy::passive(),
        }
    }
}

/// Registry-node parameters.
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Beacon period (passive registry discovery); 0 disables beacons.
    pub beacon_interval: SimTime,
    /// How often expired adverts are purged.
    pub purge_interval: SimTime,
    /// WAN federation seed registries ("manual configuration, or seeding, is
    /// necessary at some point in time").
    pub seeds: Vec<NodeId>,
    /// Peer liveness ping period.
    pub peer_ping_interval: SimTime,
    /// Missed pongs before a federation peer is dropped (or, with
    /// `probation` enabled, suspected).
    pub peer_ping_tolerance: u8,
    /// Peer probation policy. When enabled, a peer that exhausts
    /// `peer_ping_tolerance` is *suspected* rather than evicted: it leaves
    /// the forwarding set but is re-pinged under this backoff policy, and
    /// only evicted after `max_retries` further silent attempts. A
    /// probationer that answers is reinstated and gets the registry's state
    /// re-announced to it.
    pub probation: RetryPolicy,
    /// Periodic peer-list gossip period (registry signaling); 0 disables.
    pub signaling_interval: SimTime,
    /// Forwarding strategy for federated queries.
    pub strategy: ForwardStrategy,
    /// How long an adopting registry waits for federation responses before
    /// answering its client.
    pub response_window: SimTime,
    /// Retention for the query-id loop-avoidance cache.
    pub seen_retention: SimTime,
    /// Coordinate with co-located registries so only one forwards to the
    /// WAN (paper §4.7).
    pub gateway_election: bool,
    /// Learn peers transitively from FederationAck peer lists and gossiped
    /// RegistryLists (default). Disabling pins the overlay to the explicit
    /// seeding graph — used to study forwarding strategies on chains/rings.
    pub transitive_peering: bool,
    /// Push locally published advertisements to federation peers at this
    /// interval (0 disables). This is the paper's replication-style registry
    /// cooperation strategy ("to push or pull advertisements between
    /// registries"): queries then hit locally at every registry, trading
    /// publish traffic for query traffic.
    pub advert_push_interval: SimTime,
    /// Pull peers' locally published advertisements at this interval (0
    /// disables) — the pull half of "push or pull advertisements between
    /// registries". Pulling happens during the signaling round, one random
    /// peer at a time.
    pub advert_pull_interval: SimTime,
    /// Federation replication machinery: digest-based anti-entropy
    /// (default) or the legacy push/pull rounds. Push/pull timers only run
    /// in [`SyncMode::Legacy`]; the anti-entropy sync timer only in
    /// [`SyncMode::AntiEntropy`].
    pub sync_mode: SyncMode,
    /// Anti-entropy round period per peer (0 disables the rounds even in
    /// [`SyncMode::AntiEntropy`]).
    pub sync_interval: SimTime,
    /// Number of digest buckets per sync round. More buckets mean finer
    /// mismatch localization (smaller deltas) at a linear digest cost.
    pub sync_buckets: u16,
    /// Cap on peer endpoints carried by `FederationJoin`/`FederationAck`
    /// gossip, so peer-list payloads stay bounded on large federations.
    pub gossip_peer_cap: usize,
    /// Worker shards in the registry data plane. Adverts are partitioned
    /// across shards by semantic taxonomy component (exact-match hashing for
    /// URI/template models) and queries route to the one shard that can hold
    /// their matches; results are observably identical at any shard count.
    /// 1 keeps everything in a single shard.
    pub shard_count: usize,
    /// Worker threads the registry data plane fans read work across: a
    /// broadcast query's per-shard scans and a batch's per-shard queues run
    /// share-nothing on scoped threads, merged through the total ranking
    /// order. Results are byte-identical at any count — 1 (the default)
    /// keeps evaluation on the node's thread, bit-for-bit the historical
    /// path. Only pays off when `shard_count > 1` spreads the work.
    pub data_plane_workers: usize,
    /// Capacity of the registry-edge query result cache (entries). Repeated
    /// identical queries are answered from the cache while every returned
    /// lease is still running, with publish/renew/remove invalidation keeping
    /// served bytes identical to a fresh evaluation. 0 disables caching.
    pub query_cache_capacity: usize,
    /// How often the query cache sweeps out entries whose validity lapsed
    /// (0 disables the sweep; lapsed entries then die lazily on lookup).
    pub cache_sweep_interval: SimTime,
    /// Overload control: admission, backpressure, and graceful degradation.
    /// Disabled by default; see [`OverloadPolicy`].
    pub overload: OverloadPolicy,
    /// Which description models this registry can evaluate.
    pub models: Vec<ModelId>,
    /// Requested advertisement lease period granted to publishers is decided
    /// by the registry's [`sds_registry::LeasePolicy`]; this is it.
    pub lease_policy: sds_registry::LeasePolicy,
    /// Wire-size codec (compression on/off).
    pub codec: Codec,
}

impl Default for RegistryConfig {
    fn default() -> Self {
        Self {
            beacon_interval: secs(5),
            purge_interval: secs(1),
            seeds: Vec::new(),
            peer_ping_interval: secs(5),
            peer_ping_tolerance: 2,
            probation: RetryPolicy::passive(),
            signaling_interval: secs(15),
            strategy: ForwardStrategy::default(),
            response_window: 500,
            seen_retention: secs(30),
            gateway_election: true,
            transitive_peering: true,
            advert_push_interval: 0,
            advert_pull_interval: 0,
            sync_mode: SyncMode::default(),
            sync_interval: secs(10),
            sync_buckets: 16,
            gossip_peer_cap: 64,
            shard_count: 1,
            data_plane_workers: 1,
            query_cache_capacity: 128,
            cache_sweep_interval: secs(5),
            overload: OverloadPolicy::disabled(),
            models: vec![ModelId::Uri, ModelId::Template, ModelId::Semantic],
            lease_policy: sds_registry::LeasePolicy::default(),
            codec: Codec::default(),
        }
    }
}

/// Service-node parameters.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    pub attach: AttachConfig,
    /// Lease duration requested on publish (0 = registry default).
    pub lease_ms: u64,
    /// Renewal period; should be well below the lease duration.
    pub renew_interval: SimTime,
    /// Answer multicast queries directly when the LAN has no registry
    /// (decentralized fallback, paper Fig. 3 right).
    pub fallback_responder: bool,
    /// Publish/renew ack-retry policy. When enabled, a publish or renewal
    /// whose ack never arrives is re-sent under this backoff until acked
    /// (or retries exhaust); fault-free acks always arrive, so this changes
    /// nothing in fault-free runs.
    pub retry: RetryPolicy,
    pub codec: Codec,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            attach: AttachConfig::default(),
            lease_ms: 30_000,
            renew_interval: secs(10),
            fallback_responder: true,
            retry: RetryPolicy::passive(),
            codec: Codec::default(),
        }
    }
}

/// How a client sends queries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryMode {
    /// Unicast to the home registry (normal mode).
    Unicast,
    /// Multicast on the LAN — used as decentralized fallback and to study
    /// response implosion / redundant WAN forwarding.
    MulticastLan,
}

/// Per-query options.
#[derive(Clone, Debug)]
pub struct QueryOptions {
    /// Query response control: max hits wanted (None = all).
    pub max_responses: Option<u16>,
    /// Registry-network hop budget.
    pub ttl: u8,
    /// Client-side deadline after which the query completes with whatever
    /// arrived.
    pub timeout: SimTime,
    pub mode: QueryMode,
}

impl Default for QueryOptions {
    fn default() -> Self {
        Self { max_responses: None, ttl: 4, timeout: secs(3), mode: QueryMode::Unicast }
    }
}

/// Client-node parameters.
#[derive(Clone, Debug)]
pub struct ClientConfig {
    pub attach: AttachConfig,
    /// Fall back to LAN multicast queries when no registry is reachable.
    pub fallback_query: bool,
    /// Query re-issue policy. When enabled, a query that has produced no
    /// response by its next backoff checkpoint is re-sent (with a fresh
    /// wire id, so registries don't dedup it) inside the unchanged total
    /// `QueryOptions::timeout` budget, and an outstanding unanswered query
    /// is re-dispatched to the new home registry after a failover re-attach
    /// instead of being abandoned.
    pub retry: RetryPolicy,
    /// After this many consecutive `Busy` nacks from the home registry, a
    /// retried query is *hedged*: dispatched to the best known alternate
    /// registry instead of the overloaded home. 0 disables hedging (the
    /// client keeps backing off against its home forever).
    pub hedge_after_busy: u8,
    pub codec: Codec,
}

impl Default for ClientConfig {
    fn default() -> Self {
        Self {
            attach: AttachConfig::default(),
            fallback_query: true,
            retry: RetryPolicy::passive(),
            hedge_after_busy: 0,
            codec: Codec::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_consistent() {
        let r = RegistryConfig::default();
        assert!(r.gateway_election);
        assert!(r.response_window > 0);
        let s = ServiceConfig::default();
        assert!(
            s.renew_interval < s.lease_ms,
            "renewal must happen before lease expiry"
        );
        let q = QueryOptions::default();
        assert!(q.timeout > r.response_window, "client must outwait aggregation");
        // Anti-entropy on by default, with sane digest geometry.
        assert_eq!(r.sync_mode, SyncMode::AntiEntropy);
        assert!(r.sync_interval > 0 && r.sync_buckets > 0);
        // The parallel data plane defaults to the sequential path: one
        // shard, one worker — bit-for-bit the historical engine.
        assert_eq!(r.shard_count, 1);
        assert_eq!(r.data_plane_workers, 1);
        assert!(r.gossip_peer_cap > 0, "a zero cap would break federation joins");
        // Self-healing defaults off: the pre-PR behaviour is the default.
        assert!(!ClientConfig::default().retry.enabled());
        assert!(!ServiceConfig::default().retry.enabled());
        assert!(!RegistryConfig::default().probation.enabled());
        assert!(!AttachConfig::default().retry.enabled());
        // Overload control defaults off, and its thresholds form a ladder:
        // degrade before stale, stale before busy, renewals shed last.
        let o = RegistryConfig::default().overload;
        assert!(!o.enabled());
        assert!(o.degrade_pct < o.stale_pct);
        assert!(o.stale_pct < o.busy_pct);
        assert!(o.busy_pct < o.busy_renewal_pct, "liveness traffic must shed last");
        assert!((1..=100).contains(&o.ewma_alpha_pct));
        let std = OverloadPolicy::standard(500);
        assert!(std.enabled());
        assert_eq!(ClientConfig::default().hedge_after_busy, 0);
    }

    #[test]
    fn backoff_doubles_caps_and_jitters_within_bounds() {
        use sds_simnet::Seed;
        let p = RetryPolicy { max_retries: 6, base_backoff: 500, max_backoff: secs(4), jitter: 0 };
        let mut rng = Seed(1).rng();
        assert_eq!(p.backoff(0, &mut rng), 500);
        assert_eq!(p.backoff(1, &mut rng), 1_000);
        assert_eq!(p.backoff(2, &mut rng), 2_000);
        assert_eq!(p.backoff(3, &mut rng), 4_000);
        assert_eq!(p.backoff(4, &mut rng), 4_000, "capped at max_backoff");
        assert_eq!(p.backoff(200, &mut rng), 4_000, "huge attempts saturate, no overflow");
        let j = RetryPolicy { jitter: 300, ..p };
        for attempt in 0..6 {
            let d = j.backoff(attempt, &mut rng);
            let base = p.backoff(attempt, &mut rng);
            assert!((base..=base + 300).contains(&d), "jitter out of range: {d} vs {base}");
        }
    }
}
