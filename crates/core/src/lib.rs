//! # sds-core — the conceptual service discovery architecture
//!
//! This crate is the reproduction of the paper's contribution: "a conceptual
//! multi-registry service discovery architecture that supports discovery of
//! Semantic Web Service descriptions in dynamic environments". It implements
//! the three roles of the SOA triangle as simulated node behaviours and all
//! of the architecture's mechanisms:
//!
//! * [`RegistryNode`] — an autonomous, federable super-peer registry: LAN
//!   beacons and probe replies, leases and purging, local evaluation plus
//!   federation forwarding (flood / expanding ring / random walk) with query
//!   response aggregation and control, registry signaling (peer lists,
//!   summaries, pings), seeded WAN bootstrap, gateway election among
//!   co-located registries;
//! * [`ServiceNode`] — publishes its descriptions, renews leases, republishes
//!   on updates and after registry restarts, fails over to alternative
//!   registries, and self-answers multicast queries when the LAN has no
//!   registry (decentralized fallback, paper Fig. 3);
//! * [`ClientNode`] — discovers registries actively (multicast probe) or
//!   passively (beacons), queries with per-query response control and TTL,
//!   deduplicates and ranks responses, falls back to LAN multicast, and
//!   fetches hosted artifacts (ontologies) in-band;
//! * [`RegistryAttachment`] — the shared client-side discovery/failover state
//!   machine.
//!
//! Everything is configuration-driven ([`RegistryConfig`], [`ServiceConfig`],
//! [`ClientConfig`], [`QueryOptions`]), which is how the experiments realize
//! the paper's centralized / decentralized / distributed topologies from one
//! codebase.

mod attach;
mod client_node;
mod config;
mod registry_node;
mod service_node;
mod util;

pub use attach::{AttachEvent, RegistryAttachment};
pub use client_node::{ClientNode, CompletedQuery, CompositionResult, FetchedArtifact, Notification};
pub use config::{
    AttachConfig, Bootstrap, ClientConfig, ForwardStrategy, OverloadPolicy, QueryMode,
    QueryOptions, RegistryConfig, RetryPolicy, ServiceConfig, SyncMode,
};
pub use registry_node::{RegistryNode, RegistryNodeStats};
pub use service_node::{ServiceNode, ServiceNodeStats};
