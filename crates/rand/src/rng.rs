//! The generator: xoshiro256++ (Blackman & Vigna) seeded via SplitMix64.
//!
//! xoshiro256++ is the reference general-purpose choice of its family: 256
//! bits of state, period 2^256 − 1, passes BigCrush, and is a handful of
//! shifts and adds per draw. SplitMix64 expands a 64-bit seed into the four
//! state words, which guarantees a non-zero state and decorrelates nearby
//! seeds (consecutive integers are the common case for experiment sweeps).

/// The SplitMix64 finalizer: a bijective avalanche over `u64`.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256++ pseudo-random generator.
///
/// Not cryptographically secure — it exists to make simulation runs
/// reproducible, not to resist prediction.
///
/// ```
/// use sds_rand::Rng;
///
/// let mut a = Rng::seed_from_u64(42);
/// let mut b = Rng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let die = a.gen_range(1..=6u32);
/// assert!((1..=6).contains(&die));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Builds a generator whose entire stream is a function of `seed`.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
    }

    /// The core draw: the next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits (upper half of a 64-bit draw).
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed `u128` (two 64-bit draws).
    #[inline]
    pub fn gen_u128(&mut self) -> u128 {
        (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64())
    }

    /// Fills `dest` with uniformly distributed bytes (little-endian draws).
    pub fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen_f64() < p
    }

    /// Uniform draw in `[0, n)` without modulo bias (Lemire's method).
    /// Panics when `n == 0`.
    pub fn gen_below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        if (m as u64) < n {
            // Rejection zone: n.wrapping_neg() % n == (2^64 - n) mod n.
            let zone = n.wrapping_neg() % n;
            while (m as u64) < zone {
                m = u128::from(self.next_u64()) * u128::from(n);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from a half-open or inclusive integer range, e.g.
    /// `rng.gen_range(0..peers.len())` or `rng.gen_range(0..=jitter)`.
    /// Panics on an empty range.
    pub fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Value {
        range.sample(self)
    }

    /// Uniform index into a collection of length `len`; panics when empty.
    #[inline]
    pub fn gen_index(&mut self, len: usize) -> usize {
        self.gen_below(len as u64) as usize
    }

    /// A uniformly chosen element, or `None` for an empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.gen_index(slice.len())])
        }
    }

    /// In-place Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            slice.swap(i, self.gen_index(i + 1));
        }
    }

    /// An `Exp(1/mean)` sample by inverse CDF: inter-arrival times of a
    /// Poisson process with the given mean gap (the memoryless churn model).
    pub fn exp(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        // 1 - gen_f64() lies in (0, 1], avoiding ln(0).
        -mean * (1.0 - self.gen_f64()).ln()
    }

    /// A `Geometric(p)` sample: number of failures before the first success
    /// of a Bernoulli(`p`) process (support `0, 1, 2, …`).
    pub fn geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "geometric p {p} outside (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        // Inverse CDF: floor(ln(U) / ln(1-p)) with U in (0, 1].
        let u = 1.0 - self.gen_f64();
        (u.ln() / (1.0 - p).ln()) as u64
    }
}

/// Integer ranges [`Rng::gen_range`] can sample from uniformly.
pub trait UniformRange {
    type Value;
    fn sample(self, rng: &mut Rng) -> Self::Value;
}

macro_rules! impl_uniform_range {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Value = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.gen_below(width) as i128) as $t
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(self, rng: &mut Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let width = (end as i128 - start as i128) as u128 + 1;
                if width > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (start as i128 + rng.gen_below(width as u64) as i128) as $t
            }
        }
    )*};
}

impl_uniform_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_xoshiro256plusplus_reference_vectors() {
        // State {1, 2, 3, 4} → first outputs of the reference C
        // implementation (xoshiro256plusplus.c, Blackman & Vigna).
        let mut rng = Rng { s: [1, 2, 3, 4] };
        let expected = [
            41943041u64,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
            14011001112246962877,
            12406186145184390807,
        ];
        for e in expected {
            assert_eq!(rng.next_u64(), e);
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(Rng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds_and_covers() {
        let mut rng = Rng::seed_from_u64(1);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            let v = rng.gen_range(0..6usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..6 drawn: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&v));
        }
        // Degenerate inclusive range.
        assert_eq!(rng.gen_range(5..=5u64), 5);
    }

    #[test]
    fn gen_below_is_roughly_uniform() {
        let mut rng = Rng::seed_from_u64(2);
        let n = 10u64;
        let draws = 100_000;
        let mut counts = [0u32; 10];
        for _ in 0..draws {
            counts[rng.gen_below(n) as usize] += 1;
        }
        let expected = draws as f64 / n as f64;
        for (v, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expected).abs() / expected;
            assert!(dev < 0.05, "bucket {v}: count {c} deviates {dev:.3} from uniform");
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        Rng::seed_from_u64(0).gen_range(3..3u32);
    }

    #[test]
    fn gen_bool_edge_cases_and_rate() {
        let mut rng = Rng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_200..2_800).contains(&hits), "~25% hit rate, got {hits}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = Rng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0), "13 zero bytes is absurdly unlikely");
        // Prefix-stability: the first 8 bytes equal the first draw.
        let mut rng2 = Rng::seed_from_u64(4);
        assert_eq!(buf[..8], rng2.next_u64().to_le_bytes());
    }

    #[test]
    fn shuffle_permutes_and_choose_selects() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..20).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>(), "a permutation");
        assert_ne!(v, sorted, "seed 5 does not produce the identity permutation");
        assert!(rng.choose(&v).is_some());
        assert_eq!(rng.choose::<u32>(&[]), None);
        rng.shuffle::<u32>(&mut []); // empty and singleton are fine
        rng.shuffle(&mut [1u32]);
    }

    #[test]
    fn exponential_mean_is_close() {
        let mut rng = Rng::seed_from_u64(6);
        let n = 50_000;
        let mean = 40.0;
        let sum: f64 = (0..n).map(|_| rng.exp(mean)).sum();
        let got = sum / f64::from(n);
        assert!((got - mean).abs() / mean < 0.05, "sample mean {got} vs {mean}");
    }

    #[test]
    fn geometric_mean_is_close() {
        let mut rng = Rng::seed_from_u64(7);
        let p = 0.2;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| rng.geometric(p)).sum();
        let got = sum as f64 / f64::from(n);
        let want = (1.0 - p) / p; // mean of the failures-counting variant
        assert!((got - want).abs() / want < 0.08, "sample mean {got} vs {want}");
        assert_eq!(rng.geometric(1.0), 0);
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(8);
        for _ in 0..10_000 {
            let x = rng.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
