//! Hierarchical seed derivation.
//!
//! An experiment owns ONE root seed; every component that needs randomness
//! derives a private stream from it by label — `seed.derive("simnet.link")`,
//! `seed.derive("simnet.node.42")`, `seed.derive("workload.churn")`. Streams
//! with different labels are statistically independent, and adding a new
//! consumer never shifts an existing consumer's stream (unlike sharing one
//! generator, where any new draw perturbs everything downstream of it).

use crate::rng::{splitmix64, Rng};

/// A derivable 64-bit seed.
///
/// ```
/// use sds_rand::Seed;
///
/// let root = Seed(42);
/// let a = root.derive("simnet.node.1");
/// let b = root.derive("simnet.node.2");
/// assert_ne!(a, b);
/// assert_eq!(a, root.derive("simnet.node.1"), "derivation is pure");
/// let mut rng = a.rng();
/// let _roll = rng.gen_range(0..6u32);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Seed(pub u64);

impl Seed {
    /// Derives the child seed for `label`.
    ///
    /// FNV-1a over the label bytes, keyed by the parent seed, then finished
    /// with two SplitMix64 avalanche rounds so that near-identical labels
    /// ("node.1"/"node.2") and near-identical parents (seed 1/seed 2) land
    /// in unrelated parts of the seed space.
    pub fn derive(self, label: &str) -> Seed {
        const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
        const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = FNV_OFFSET ^ self.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for &b in label.as_bytes() {
            h = (h ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
        // Mix in the length so "ab" under parent x and "a" under a colliding
        // parent state cannot alias, then avalanche.
        let mut state = h ^ (label.len() as u64).rotate_left(32);
        let a = splitmix64(&mut state);
        let b = splitmix64(&mut state);
        Seed(a ^ b.rotate_left(31))
    }

    /// Convenience for numbered children (`derive_idx("node", 3)` ==
    /// `derive("node.3")`).
    pub fn derive_idx(self, label: &str, idx: u64) -> Seed {
        self.derive(&format!("{label}.{idx}"))
    }

    /// A generator over this seed's stream.
    pub fn rng(self) -> Rng {
        Rng::seed_from_u64(self.0)
    }

    /// Draws a fresh child seed from an existing generator (for harnesses
    /// that need per-case seeds without labeling each one).
    pub fn fresh(rng: &mut Rng) -> Seed {
        Seed(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derivation_is_pure_and_label_sensitive() {
        let root = Seed(1);
        assert_eq!(root.derive("a"), root.derive("a"));
        assert_ne!(root.derive("a"), root.derive("b"));
        assert_ne!(root.derive("a"), Seed(2).derive("a"));
        assert_ne!(root.derive("ab"), root.derive("a").derive("b"));
        assert_eq!(root.derive_idx("node", 3), root.derive("node.3"));
    }

    #[test]
    fn sibling_labels_produce_distinct_seeds() {
        let root = Seed(0xDEAD_BEEF);
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(root.derive_idx("node", i).0), "collision at {i}");
        }
    }

    #[test]
    fn sibling_streams_are_uncorrelated() {
        // Bit-agreement between sibling streams should hover around 50%:
        // strong correlation in either direction means the derivation leaks
        // structure from the label into the stream.
        let root = Seed(7);
        let mut a = root.derive("simnet.node.1").rng();
        let mut b = root.derive("simnet.node.2").rng();
        let draws = 4_000;
        let mut agreeing_bits = 0u64;
        for _ in 0..draws {
            agreeing_bits += u64::from((a.next_u64() ^ b.next_u64()).count_zeros());
        }
        let frac = agreeing_bits as f64 / (draws as f64 * 64.0);
        assert!((0.49..0.51).contains(&frac), "bit agreement {frac} not ~0.5");
    }

    #[test]
    fn nearby_parents_produce_unrelated_children() {
        let a = Seed(1).derive("x");
        let b = Seed(2).derive("x");
        let differing = (a.0 ^ b.0).count_ones();
        assert!((16..=48).contains(&differing), "avalanche: {differing} bits differ");
    }
}
