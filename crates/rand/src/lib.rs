//! # sds-rand — deterministic randomness for reproducible experiments
//!
//! The whole evaluation rests on every random choice being a pure function
//! of an experiment seed: two runs with the same seed must be byte-identical
//! so that discovery mechanisms can be compared on identical workloads and
//! failure schedules. This crate owns that guarantee in-workspace, with zero
//! external dependencies:
//!
//! * [`Rng`] — a xoshiro256++ generator seeded through SplitMix64, with the
//!   helpers the codebase uses (`gen_range`, `gen_bool`, `fill_bytes`,
//!   `shuffle`/`choose`, exponential/geometric sampling);
//! * [`Seed`] — hierarchical seed derivation (`Seed::derive("simnet.node.42")`)
//!   so each component gets an independent, reproducible stream and adding a
//!   consumer in one place never perturbs the stream of another;
//! * [`check`] — a minimal seeded property-test harness: N seeded cases,
//!   failing-case seed reporting, explicit regression-case registration.

mod rng;
mod seed;

pub mod check;

pub use rng::{Rng, UniformRange};
pub use seed::Seed;
