//! A minimal seeded property-test harness.
//!
//! Replaces `proptest` for this workspace's needs: run a property closure
//! over N deterministically seeded cases, report the failing case seed on
//! panic, and re-run explicitly registered regression seeds first. Cases
//! are seeds, so a failure reproduces exactly by pinning its seed with
//! [`Checker::regression`] and debugging under it.
//!
//! Shrinking is semi-automatic and cheap: on a failing case the harness
//! re-runs the *same* seed with progressively smaller size budgets for the
//! [`gen`] helpers (halving the spans of `vec_of`/`ident`) and reports the
//! smallest budget that still fails — usually a structurally much smaller
//! counterexample, reachable again via `SDS_CHECK_SIZE_FACTOR`.
//!
//! ```
//! use sds_rand::check::Checker;
//!
//! Checker::new("addition_commutes").cases(64).run(|rng| {
//!     let a = rng.gen_range(0..1000u64);
//!     let b = rng.gen_range(0..1000u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Environment overrides (all optional):
//! * `SDS_CHECK_CASES` — case count for every checker (stress runs);
//! * `SDS_CHECK_SEED` — replaces the per-property base seed (exploration);
//! * `SDS_CHECK_SIZE_FACTOR` — scales every [`gen`] size budget in
//!   `0.0..=1.0` (debugging a shrunk counterexample at its reported size).

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::{Rng, Seed};

thread_local! {
    static SIZE_FACTOR: Cell<f64> = const { Cell::new(1.0) };
}

/// The size budgets the shrinker tries, largest first. Descent stops at the
/// first budget where the property passes (assuming failures are monotone in
/// input size — the cheap, usually-right heuristic).
const SHRINK_FACTORS: &[f64] = &[0.5, 0.25, 0.125, 0.0];

/// The thread-local size-budget factor in `0.0..=1.0` that the [`gen`]
/// helpers apply to their spans. `1.0` is the configured budget; the
/// shrinker lowers it while hunting a smaller failing case, and
/// `SDS_CHECK_SIZE_FACTOR` pins it for a whole run.
pub fn size_factor() -> f64 {
    SIZE_FACTOR.with(Cell::get)
}

fn set_size_factor(f: f64) {
    SIZE_FACTOR.with(|c| c.set(f));
}

fn env_size_factor() -> Option<f64> {
    std::env::var("SDS_CHECK_SIZE_FACTOR")
        .ok()?
        .parse::<f64>()
        .ok()
        .filter(|f| (0.0..=1.0).contains(f))
}

/// Re-runs `case_seed` under each [`SHRINK_FACTORS`] budget below `base` and
/// returns the smallest budget that still fails (`None` when every reduced
/// budget passes, i.e. the failure needs full-size inputs). Restores `base`
/// before returning.
fn shrink_size_budget<F: FnMut(&mut Rng)>(
    case_seed: u64,
    base: f64,
    property: &mut F,
) -> Option<f64> {
    let mut smallest = None;
    for &factor in SHRINK_FACTORS {
        if factor >= base {
            continue;
        }
        set_size_factor(factor);
        let failed = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::seed_from_u64(case_seed);
            property(&mut rng);
        }))
        .is_err();
        if failed {
            smallest = Some(factor);
        } else {
            break;
        }
    }
    set_size_factor(base);
    smallest
}

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 128;

/// A property runner: a name (which fixes the default seed), a case count,
/// and any pinned regression seeds.
pub struct Checker {
    name: String,
    cases: u32,
    base: Seed,
    regressions: Vec<u64>,
}

impl Checker {
    /// A checker whose base seed derives from `name`, so distinct properties
    /// explore independent case streams by default.
    pub fn new(name: &str) -> Self {
        let base = match std::env::var("SDS_CHECK_SEED").ok().and_then(|s| parse_seed(&s)) {
            Some(s) => Seed(s).derive(name),
            None => Seed(0).derive(name),
        };
        let cases = std::env::var("SDS_CHECK_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Self { name: name.to_string(), cases, base, regressions: Vec::new() }
    }

    /// Overrides the number of generated cases (env `SDS_CHECK_CASES` wins).
    pub fn cases(mut self, n: u32) -> Self {
        if std::env::var_os("SDS_CHECK_CASES").is_none() {
            self.cases = n;
        }
        self
    }

    /// Pins a previously failing case seed: it re-runs before any generated
    /// case, the moral equivalent of a `proptest-regressions` entry — but
    /// named, in code, and reviewable.
    pub fn regression(mut self, case_seed: u64) -> Self {
        self.regressions.push(case_seed);
        self
    }

    /// Runs the property: every pinned regression seed first, then `cases`
    /// generated cases. On failure, shrinks the size budget (same seed,
    /// smaller [`gen`] spans), prints the case seed and smallest
    /// still-failing budget, and re-raises the original panic.
    pub fn run<F: FnMut(&mut Rng)>(self, mut property: F) {
        set_size_factor(env_size_factor().unwrap_or(1.0));
        for i in 0..self.regressions.len() {
            self.run_case(self.regressions[i], "regression", &mut property);
        }
        for i in 0..self.cases {
            let case_seed = self.base.derive_idx("case", u64::from(i)).0;
            self.run_case(case_seed, "generated", &mut property);
        }
    }

    fn run_case<F: FnMut(&mut Rng)>(&self, case_seed: u64, kind: &str, property: &mut F) {
        let mut rng = Rng::seed_from_u64(case_seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!(
                "property '{}' failed on {} case seed {:#018x}; pin it with \
                 `.regression({:#018x})` to debug",
                self.name, kind, case_seed, case_seed
            );
            match shrink_size_budget(case_seed, size_factor(), property) {
                Some(f) => eprintln!(
                    "  shrink: same seed still fails at size budget {f}; re-run with \
                     SDS_CHECK_SIZE_FACTOR={f} for the smaller counterexample"
                ),
                None => eprintln!(
                    "  shrink: every reduced size budget passes; the failure needs \
                     full-size inputs"
                ),
            }
            resume_unwind(panic);
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Generator helpers shared by property tests: structured values from a
/// case's [`Rng`]. Size spans scale with the harness's current
/// [`size_factor`], which is how the shrinker makes the same seed produce
/// structurally smaller values.
pub mod gen {
    use crate::Rng;

    /// `span` scaled by the current size factor; at 1.0 this is the
    /// identity, so normal runs draw exactly as before.
    fn scaled(span: usize) -> usize {
        let f = super::size_factor();
        if f >= 1.0 {
            span
        } else {
            (span as f64 * f).ceil() as usize
        }
    }

    /// A vector of `len` in `min..max` elements produced by `f`.
    pub fn vec_of<T>(rng: &mut Rng, min: usize, max: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let span = scaled(max.saturating_sub(min));
        let len = if span == 0 { min } else { rng.gen_range(min..min + span) };
        (0..len).map(|_| f(rng)).collect()
    }

    /// `Some(f(rng))` half the time.
    pub fn option_of<T>(rng: &mut Rng, f: impl FnOnce(&mut Rng) -> T) -> Option<T> {
        if rng.gen_bool(0.5) {
            Some(f(rng))
        } else {
            None
        }
    }

    /// A lowercase ASCII identifier of `len` in `min..=max` characters.
    pub fn ident(rng: &mut Rng, min: usize, max: usize) -> String {
        let len = rng.gen_range(min..=min + scaled(max.saturating_sub(min)));
        (0..len)
            .map(|_| {
                // [a-z0-9-], weighted toward letters.
                match rng.gen_range(0..10u32) {
                    0 => '-',
                    1 | 2 => char::from(b'0' + rng.gen_range(0..10u8)),
                    _ => char::from(b'a' + rng.gen_range(0..26u8)),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case() {
        let mut count = 0;
        Checker::new("counting").cases(17).run(|rng| {
            let _ = rng.next_u64();
            count += 1;
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn case_streams_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            Checker::new("det").cases(5).run(|rng| seen.push(rng.next_u64()));
            seen
        };
        let a = collect();
        assert_eq!(a.len(), 5);
        assert_eq!(a, collect());
        // Distinct cases explore distinct streams.
        assert!(a.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn regressions_run_first() {
        let mut order = Vec::new();
        Checker::new("reg")
            .cases(1)
            .regression(99)
            .run(|rng| order.push(rng.next_u64()));
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], Rng::seed_from_u64(99).next_u64());
    }

    #[test]
    fn failing_case_panics_through() {
        let result = catch_unwind(|| {
            Checker::new("fails").cases(3).run(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn gen_helpers_respect_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let v = gen::vec_of(&mut rng, 1, 5, |r| r.gen_range(0..3u32));
            assert!((1..5).contains(&v.len()));
            let s = gen::ident(&mut rng, 0, 8);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
        let mut somes = 0;
        for _ in 0..1000 {
            if gen::option_of(&mut rng, |r| r.next_u64()).is_some() {
                somes += 1;
            }
        }
        assert!((400..600).contains(&somes));
    }

    #[test]
    fn size_factor_scales_gen_budgets() {
        set_size_factor(0.0);
        let mut rng = Rng::seed_from_u64(5);
        for _ in 0..50 {
            assert_eq!(gen::vec_of(&mut rng, 2, 10, |r| r.next_u64()).len(), 2);
            assert_eq!(gen::ident(&mut rng, 1, 12).len(), 1);
        }
        set_size_factor(0.125);
        for _ in 0..50 {
            // span 8 scaled to 1 → len in 2..3.
            assert_eq!(gen::vec_of(&mut rng, 2, 10, |r| r.next_u64()).len(), 2);
        }
        set_size_factor(1.0);
    }

    #[test]
    fn shrink_finds_smallest_still_failing_budget() {
        // Fails at every budget above an eighth: the shrinker descends
        // 0.5 → 0.25 → 0.125 (all failing), sees 0.0 pass, and reports 0.125.
        let mut prop = |_: &mut Rng| assert!(size_factor() < 0.1, "too big");
        assert_eq!(shrink_size_budget(7, 1.0, &mut prop), Some(0.125));
        assert_eq!(size_factor(), 1.0, "base budget restored");
    }

    #[test]
    fn shrink_reports_none_when_failure_needs_full_size() {
        let mut prop = |_: &mut Rng| assert!(size_factor() < 0.9, "full size only");
        assert_eq!(shrink_size_budget(7, 1.0, &mut prop), None);
        assert_eq!(size_factor(), 1.0);
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
