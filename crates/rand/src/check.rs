//! A minimal seeded property-test harness.
//!
//! Replaces `proptest` for this workspace's needs: run a property closure
//! over N deterministically seeded cases, report the failing case seed on
//! panic, and re-run explicitly registered regression seeds first. There is
//! no shrinking — cases are seeds, so a failure reproduces exactly by
//! pinning its seed with [`Checker::regression`] and debugging under it.
//!
//! ```
//! use sds_rand::check::Checker;
//!
//! Checker::new("addition_commutes").cases(64).run(|rng| {
//!     let a = rng.gen_range(0..1000u64);
//!     let b = rng.gen_range(0..1000u64);
//!     assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! Environment overrides (both optional):
//! * `SDS_CHECK_CASES` — case count for every checker (stress runs);
//! * `SDS_CHECK_SEED` — replaces the per-property base seed (exploration).

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use crate::{Rng, Seed};

/// Default number of generated cases per property.
pub const DEFAULT_CASES: u32 = 128;

/// A property runner: a name (which fixes the default seed), a case count,
/// and any pinned regression seeds.
pub struct Checker {
    name: String,
    cases: u32,
    base: Seed,
    regressions: Vec<u64>,
}

impl Checker {
    /// A checker whose base seed derives from `name`, so distinct properties
    /// explore independent case streams by default.
    pub fn new(name: &str) -> Self {
        let base = match std::env::var("SDS_CHECK_SEED").ok().and_then(|s| parse_seed(&s)) {
            Some(s) => Seed(s).derive(name),
            None => Seed(0).derive(name),
        };
        let cases = std::env::var("SDS_CHECK_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        Self { name: name.to_string(), cases, base, regressions: Vec::new() }
    }

    /// Overrides the number of generated cases (env `SDS_CHECK_CASES` wins).
    pub fn cases(mut self, n: u32) -> Self {
        if std::env::var_os("SDS_CHECK_CASES").is_none() {
            self.cases = n;
        }
        self
    }

    /// Pins a previously failing case seed: it re-runs before any generated
    /// case, the moral equivalent of a `proptest-regressions` entry — but
    /// named, in code, and reviewable.
    pub fn regression(mut self, case_seed: u64) -> Self {
        self.regressions.push(case_seed);
        self
    }

    /// Runs the property: every pinned regression seed first, then `cases`
    /// generated cases. On failure, prints the case seed (for
    /// [`Checker::regression`]) and re-raises the panic.
    pub fn run<F: FnMut(&mut Rng)>(self, mut property: F) {
        for i in 0..self.regressions.len() {
            self.run_case(self.regressions[i], "regression", &mut property);
        }
        for i in 0..self.cases {
            let case_seed = self.base.derive_idx("case", u64::from(i)).0;
            self.run_case(case_seed, "generated", &mut property);
        }
    }

    fn run_case<F: FnMut(&mut Rng)>(&self, case_seed: u64, kind: &str, property: &mut F) {
        let mut rng = Rng::seed_from_u64(case_seed);
        if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut rng))) {
            eprintln!(
                "property '{}' failed on {} case seed {:#018x}; pin it with \
                 `.regression({:#018x})` to debug",
                self.name, kind, case_seed, case_seed
            );
            resume_unwind(panic);
        }
    }
}

fn parse_seed(s: &str) -> Option<u64> {
    match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => s.parse().ok(),
    }
}

/// Generator helpers shared by property tests: structured values from a
/// case's [`Rng`].
pub mod gen {
    use crate::Rng;

    /// A vector of `len` in `min..max` elements produced by `f`.
    pub fn vec_of<T>(rng: &mut Rng, min: usize, max: usize, mut f: impl FnMut(&mut Rng) -> T) -> Vec<T> {
        let len = if min == max { min } else { rng.gen_range(min..max) };
        (0..len).map(|_| f(rng)).collect()
    }

    /// `Some(f(rng))` half the time.
    pub fn option_of<T>(rng: &mut Rng, f: impl FnOnce(&mut Rng) -> T) -> Option<T> {
        if rng.gen_bool(0.5) {
            Some(f(rng))
        } else {
            None
        }
    }

    /// A lowercase ASCII identifier of `len` in `min..=max` characters.
    pub fn ident(rng: &mut Rng, min: usize, max: usize) -> String {
        let len = rng.gen_range(min..=max);
        (0..len)
            .map(|_| {
                // [a-z0-9-], weighted toward letters.
                match rng.gen_range(0..10u32) {
                    0 => '-',
                    1 | 2 => char::from(b'0' + rng.gen_range(0..10u8)),
                    _ => char::from(b'a' + rng.gen_range(0..26u8)),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_every_case() {
        let mut count = 0;
        Checker::new("counting").cases(17).run(|rng| {
            let _ = rng.next_u64();
            count += 1;
        });
        assert_eq!(count, 17);
    }

    #[test]
    fn case_streams_are_deterministic() {
        let collect = || {
            let mut seen = Vec::new();
            Checker::new("det").cases(5).run(|rng| seen.push(rng.next_u64()));
            seen
        };
        let a = collect();
        assert_eq!(a.len(), 5);
        assert_eq!(a, collect());
        // Distinct cases explore distinct streams.
        assert!(a.windows(2).all(|w| w[0] != w[1]));
    }

    #[test]
    fn regressions_run_first() {
        let mut order = Vec::new();
        Checker::new("reg")
            .cases(1)
            .regression(99)
            .run(|rng| order.push(rng.next_u64()));
        assert_eq!(order.len(), 2);
        assert_eq!(order[0], Rng::seed_from_u64(99).next_u64());
    }

    #[test]
    fn failing_case_panics_through() {
        let result = catch_unwind(|| {
            Checker::new("fails").cases(3).run(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn gen_helpers_respect_bounds() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..200 {
            let v = gen::vec_of(&mut rng, 1, 5, |r| r.gen_range(0..3u32));
            assert!((1..5).contains(&v.len()));
            let s = gen::ident(&mut rng, 0, 8);
            assert!(s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
        let mut somes = 0;
        for _ in 0..1000 {
            if gen::option_of(&mut rng, |r| r.next_u64()).is_some() {
                somes += 1;
            }
        }
        assert!((400..600).contains(&somes));
    }

    #[test]
    fn parse_seed_accepts_hex_and_decimal() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
