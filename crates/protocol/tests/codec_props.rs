//! Property-based tests: every representable message round-trips through
//! the codec, and decoding never panics on arbitrary bytes.

use proptest::prelude::*;

use sds_protocol::{
    codec, Advertisement, Description, DescriptionTemplate, DiscoveryMessage, MaintenanceOp,
    ModelId, PublishOp, QueryId, QueryMessage, QueryOp, QueryPayload, ResponseHit,
    Uuid, WireSize,
};
use sds_semantic::{
    ClassId, Degree, QosConstraint, QosKey, QosValue, ServiceProfile, ServiceRequest,
};
use sds_simnet::NodeId;

fn arb_qos_key() -> impl Strategy<Value = QosKey> {
    prop_oneof![
        Just(QosKey::LatencyMs),
        Just(QosKey::UpdatePeriodS),
        Just(QosKey::CoverageM),
        Just(QosKey::Accuracy),
    ]
}

fn arb_class() -> impl Strategy<Value = ClassId> {
    (0u32..1000).prop_map(ClassId)
}

fn arb_profile() -> impl Strategy<Value = ServiceProfile> {
    (
        "[a-z0-9-]{0,12}",
        arb_class(),
        prop::collection::vec(arb_class(), 0..4),
        prop::collection::vec(arb_class(), 0..4),
        prop::collection::vec((arb_qos_key(), -1e6f64..1e6), 0..3),
    )
        .prop_map(|(name, category, inputs, outputs, qos)| ServiceProfile {
            name,
            category,
            inputs,
            outputs,
            qos: qos.into_iter().map(|(key, value)| QosValue { key, value }).collect(),
        })
}

fn arb_request() -> impl Strategy<Value = ServiceRequest> {
    (
        prop::option::of(arb_class()),
        prop::collection::vec(arb_class(), 0..4),
        prop::collection::vec(arb_class(), 0..4),
        prop::collection::vec((arb_qos_key(), -1e6f64..1e6), 0..3),
    )
        .prop_map(|(category, outputs, provided_inputs, qos)| ServiceRequest {
            category,
            outputs,
            provided_inputs,
            qos: qos.into_iter().map(|(key, bound)| QosConstraint { key, bound }).collect(),
        })
}

fn arb_template() -> impl Strategy<Value = DescriptionTemplate> {
    (
        prop::option::of("[a-z ]{0,10}"),
        prop::option::of("urn:[a-z:]{0,16}"),
        prop::collection::vec(("[a-z]{1,6}", "[a-z0-9]{0,8}"), 0..4),
    )
        .prop_map(|(name, type_uri, attrs)| DescriptionTemplate { name, type_uri, attrs })
}

fn arb_description() -> impl Strategy<Value = Description> {
    prop_oneof![
        "urn:[a-z:0-9]{0,24}".prop_map(Description::Uri),
        arb_template().prop_map(Description::Template),
        arb_profile().prop_map(Description::Semantic),
    ]
}

fn arb_payload() -> impl Strategy<Value = QueryPayload> {
    prop_oneof![
        "urn:[a-z:0-9]{0,24}".prop_map(QueryPayload::Uri),
        arb_template().prop_map(QueryPayload::Template),
        arb_request().prop_map(QueryPayload::Semantic),
    ]
}

fn arb_advert() -> impl Strategy<Value = Advertisement> {
    (any::<u128>(), 0u32..10_000, any::<u32>(), arb_description()).prop_map(
        |(id, provider, version, description)| Advertisement {
            id: Uuid(id),
            provider: NodeId(provider),
            description,
            version,
        },
    )
}

fn arb_query() -> impl Strategy<Value = QueryMessage> {
    (
        0u32..10_000,
        any::<u64>(),
        arb_payload(),
        prop::option::of(any::<u16>()),
        any::<u8>(),
        prop::option::of(0u32..10_000),
    )
        .prop_map(|(origin, seq, payload, max_responses, ttl, reply_to)| QueryMessage {
            id: QueryId { origin: NodeId(origin), seq },
            payload,
            max_responses,
            ttl,
            reply_to: reply_to.map(NodeId),
        })
}

fn arb_degree() -> impl Strategy<Value = Degree> {
    prop_oneof![
        Just(Degree::Fail),
        Just(Degree::Subsumes),
        Just(Degree::PlugIn),
        Just(Degree::Exact)
    ]
}

fn arb_nodes() -> impl Strategy<Value = Vec<NodeId>> {
    prop::collection::vec((0u32..10_000).prop_map(NodeId), 0..6)
}

fn arb_maintenance() -> impl Strategy<Value = MaintenanceOp> {
    prop_oneof![
        Just(MaintenanceOp::RegistryProbe),
        (any::<u32>(), any::<u32>())
            .prop_map(|(advert_count, load)| MaintenanceOp::RegistryProbeReply { advert_count, load }),
        any::<u32>().prop_map(|advert_count| MaintenanceOp::RegistryBeacon { advert_count }),
        Just(MaintenanceOp::Ping),
        Just(MaintenanceOp::Pong),
        any::<bool>().prop_map(|from_registry| MaintenanceOp::RegistryListRequest { from_registry }),
        arb_nodes().prop_map(|registries| MaintenanceOp::RegistryList { registries }),
        arb_nodes().prop_map(|known_peers| MaintenanceOp::FederationJoin { known_peers }),
        arb_nodes().prop_map(|peers| MaintenanceOp::FederationAck { peers }),
        (any::<u32>(), prop::collection::vec(
            prop_oneof![Just(ModelId::Uri), Just(ModelId::Template), Just(ModelId::Semantic)], 0..3
        )).prop_map(|(advert_count, models)| MaintenanceOp::SummaryAdvert { advert_count, models }),
        Just(MaintenanceOp::AdvertPullRequest),
        "[a-z-]{0,12}".prop_map(|name| MaintenanceOp::ArtifactRequest { name }),
        ("[a-z-]{0,12}", any::<bool>(), any::<u32>())
            .prop_map(|(name, found, size)| MaintenanceOp::ArtifactResponse { name, found, size }),
    ]
}

fn arb_publish() -> impl Strategy<Value = PublishOp> {
    prop_oneof![
        (arb_advert(), any::<u64>())
            .prop_map(|(advert, lease_ms)| PublishOp::Publish { advert, lease_ms }),
        (any::<u128>(), any::<u64>())
            .prop_map(|(id, lease_until)| PublishOp::PublishAck { id: Uuid(id), lease_until }),
        any::<u128>().prop_map(|id| PublishOp::RenewLease { id: Uuid(id) }),
        (any::<u128>(), any::<u64>(), any::<bool>()).prop_map(|(id, lease_until, known)| {
            PublishOp::RenewAck { id: Uuid(id), lease_until, known }
        }),
        any::<u128>().prop_map(|id| PublishOp::Remove { id: Uuid(id) }),
        (arb_advert(), any::<u64>())
            .prop_map(|(advert, lease_ms)| PublishOp::Update { advert, lease_ms }),
        prop::collection::vec(arb_advert(), 0..4)
            .prop_map(|adverts| PublishOp::ForwardAdverts { adverts }),
    ]
}

fn arb_queryop() -> impl Strategy<Value = QueryOp> {
    prop_oneof![
        arb_query().prop_map(QueryOp::Query),
        (0u32..10_000, any::<u64>(), arb_payload(), any::<u64>()).prop_map(
            |(origin, seq, payload, lease_ms)| QueryOp::Subscribe {
                id: QueryId { origin: NodeId(origin), seq },
                payload,
                lease_ms,
            }
        ),
        (0u32..10_000, any::<u64>(), any::<u64>()).prop_map(|(origin, seq, lease_until)| {
            QueryOp::SubscribeAck { id: QueryId { origin: NodeId(origin), seq }, lease_until }
        }),
        (0u32..10_000, any::<u64>()).prop_map(|(origin, seq)| QueryOp::Unsubscribe {
            id: QueryId { origin: NodeId(origin), seq },
        }),
        (0u32..10_000, any::<u64>(), arb_advert(), arb_degree(), any::<u32>()).prop_map(
            |(origin, seq, advert, degree, distance)| QueryOp::Notify {
                subscription: QueryId { origin: NodeId(origin), seq },
                hit: ResponseHit { advert, degree, distance },
            }
        ),
        (0u32..10_000, any::<u64>(), arb_request(), any::<u8>()).prop_map(
            |(origin, seq, request, max_depth)| QueryOp::ComposeRequest {
                id: QueryId { origin: NodeId(origin), seq },
                request,
                max_depth,
            }
        ),
        (0u32..10_000, any::<u64>(), any::<bool>(), prop::collection::vec(arb_advert(), 0..4))
            .prop_map(|(origin, seq, found, chain)| QueryOp::ComposeResponse {
                id: QueryId { origin: NodeId(origin), seq },
                found,
                chain,
            }),
        (
            0u32..10_000,
            any::<u64>(),
            0u32..10_000,
            prop::collection::vec((arb_advert(), arb_degree(), any::<u32>()), 0..4)
        )
            .prop_map(|(origin, seq, responder, hits)| QueryOp::QueryResponse {
                query_id: QueryId { origin: NodeId(origin), seq },
                hits: hits
                    .into_iter()
                    .map(|(advert, degree, distance)| ResponseHit { advert, degree, distance })
                    .collect(),
                responder: NodeId(responder),
            }),
    ]
}

fn arb_message() -> impl Strategy<Value = DiscoveryMessage> {
    prop_oneof![
        arb_maintenance().prop_map(DiscoveryMessage::maintenance),
        arb_publish().prop_map(DiscoveryMessage::publishing),
        arb_queryop().prop_map(DiscoveryMessage::querying),
    ]
}

proptest! {
    #[test]
    fn every_message_round_trips(msg in arb_message()) {
        let bytes = codec::encode(&msg);
        let back = codec::decode(&bytes).expect("decode what we encoded");
        prop_assert_eq!(back, msg);
    }

    #[test]
    fn decoding_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = codec::decode(&bytes); // must return Err, not panic
    }

    #[test]
    fn truncation_always_fails_cleanly(msg in arb_message(), cut in any::<prop::sample::Index>()) {
        let bytes = codec::encode(&msg);
        if bytes.len() > 1 {
            let cut = 1 + cut.index(bytes.len() - 1);
            if cut < bytes.len() {
                prop_assert!(codec::decode(&bytes[..cut]).is_err());
            }
        }
    }

    #[test]
    fn wire_size_is_positive_and_stable(msg in arb_message()) {
        let a = msg.body_size();
        let b = msg.body_size();
        prop_assert_eq!(a, b, "size model is a pure function");
        // Every message costs at least its operation framing.
        prop_assert!(a >= 8, "size {} too small", a);
    }
}
