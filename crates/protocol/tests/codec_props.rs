//! Property-based tests: every representable message round-trips through
//! the codec, and decoding never panics on arbitrary bytes. Run under the
//! in-workspace seeded harness (`sds_rand::check`).

use sds_rand::check::{gen, Checker};
use sds_rand::Rng;

use sds_protocol::{
    codec, Advertisement, Description, DescriptionTemplate, DiscoveryMessage, MaintenanceOp,
    ModelId, PublishOp, QueryId, QueryMessage, QueryOp, QueryPayload, ResponseHit,
    SyncEntry, Uuid, WireSize,
};
use sds_semantic::{
    ClassId, Degree, QosConstraint, QosKey, QosValue, ServiceProfile, ServiceRequest,
};
use sds_simnet::NodeId;

fn arb_qos_key(rng: &mut Rng) -> QosKey {
    match rng.gen_range(0..4u32) {
        0 => QosKey::LatencyMs,
        1 => QosKey::UpdatePeriodS,
        2 => QosKey::CoverageM,
        _ => QosKey::Accuracy,
    }
}

fn arb_qos_bound(rng: &mut Rng) -> f64 {
    // Uniform in [-1e6, 1e6), matching the old strategy's range.
    (rng.gen_f64() - 0.5) * 2e6
}

fn arb_class(rng: &mut Rng) -> ClassId {
    ClassId(rng.gen_range(0..1000u32))
}

fn arb_profile(rng: &mut Rng) -> ServiceProfile {
    ServiceProfile {
        name: gen::ident(rng, 0, 12),
        category: arb_class(rng),
        inputs: gen::vec_of(rng, 0, 4, arb_class),
        outputs: gen::vec_of(rng, 0, 4, arb_class),
        qos: gen::vec_of(rng, 0, 3, |r| QosValue { key: arb_qos_key(r), value: arb_qos_bound(r) }),
    }
}

fn arb_request(rng: &mut Rng) -> ServiceRequest {
    ServiceRequest {
        category: gen::option_of(rng, arb_class),
        outputs: gen::vec_of(rng, 0, 4, arb_class),
        provided_inputs: gen::vec_of(rng, 0, 4, arb_class),
        qos: gen::vec_of(rng, 0, 3, |r| QosConstraint { key: arb_qos_key(r), bound: arb_qos_bound(r) }),
    }
}

fn arb_template(rng: &mut Rng) -> DescriptionTemplate {
    DescriptionTemplate {
        name: gen::option_of(rng, |r| gen::ident(r, 0, 10)),
        type_uri: gen::option_of(rng, |r| format!("urn:{}", gen::ident(r, 0, 12))),
        attrs: gen::vec_of(rng, 0, 4, |r| (gen::ident(r, 1, 6), gen::ident(r, 0, 8))),
    }
}

fn arb_description(rng: &mut Rng) -> Description {
    match rng.gen_range(0..3u32) {
        0 => Description::Uri(format!("urn:{}", gen::ident(rng, 0, 20))),
        1 => Description::Template(arb_template(rng)),
        _ => Description::Semantic(arb_profile(rng)),
    }
}

fn arb_payload(rng: &mut Rng) -> QueryPayload {
    match rng.gen_range(0..3u32) {
        0 => QueryPayload::Uri(format!("urn:{}", gen::ident(rng, 0, 20))),
        1 => QueryPayload::Template(arb_template(rng)),
        _ => QueryPayload::Semantic(arb_request(rng)),
    }
}

fn arb_advert(rng: &mut Rng) -> Advertisement {
    Advertisement {
        id: Uuid(rng.gen_u128()),
        provider: NodeId(rng.gen_range(0..10_000u32)),
        description: arb_description(rng),
        version: rng.next_u32(),
    }
}

fn arb_query_id(rng: &mut Rng) -> QueryId {
    QueryId { origin: NodeId(rng.gen_range(0..10_000u32)), seq: rng.next_u64() }
}

fn arb_query(rng: &mut Rng) -> QueryMessage {
    QueryMessage {
        id: arb_query_id(rng),
        payload: arb_payload(rng),
        max_responses: gen::option_of(rng, |r| r.next_u64() as u16),
        ttl: rng.gen_range(0..=255u8),
        reply_to: gen::option_of(rng, |r| NodeId(r.gen_range(0..10_000u32))),
    }
}

fn arb_degree(rng: &mut Rng) -> Degree {
    match rng.gen_range(0..4u32) {
        0 => Degree::Fail,
        1 => Degree::Subsumes,
        2 => Degree::PlugIn,
        _ => Degree::Exact,
    }
}

fn arb_nodes(rng: &mut Rng) -> Vec<NodeId> {
    gen::vec_of(rng, 0, 6, |r| NodeId(r.gen_range(0..10_000u32)))
}

fn arb_model_id(rng: &mut Rng) -> ModelId {
    match rng.gen_range(0..3u32) {
        0 => ModelId::Uri,
        1 => ModelId::Template,
        _ => ModelId::Semantic,
    }
}

fn arb_sync_entry(rng: &mut Rng) -> SyncEntry {
    if rng.gen_bool(0.5) {
        SyncEntry::Full { advert: arb_advert(rng), lease_until: rng.next_u64() }
    } else {
        // Version deliberately spans the full u32 range so skewed deltas
        // (versions the receiver can never have acked) are generated too.
        SyncEntry::Delta {
            id: Uuid(rng.gen_u128()),
            version: rng.next_u32(),
            lease_until: rng.next_u64(),
        }
    }
}

fn arb_maintenance(rng: &mut Rng) -> MaintenanceOp {
    match rng.gen_range(0..16u32) {
        0 => MaintenanceOp::RegistryProbe,
        1 => MaintenanceOp::RegistryProbeReply { advert_count: rng.next_u32(), load: rng.next_u32() },
        2 => MaintenanceOp::RegistryBeacon { advert_count: rng.next_u32() },
        3 => MaintenanceOp::Ping,
        4 => MaintenanceOp::Pong,
        5 => MaintenanceOp::RegistryListRequest { from_registry: rng.gen_bool(0.5) },
        6 => MaintenanceOp::RegistryList { registries: arb_nodes(rng) },
        7 => MaintenanceOp::FederationJoin { known_peers: arb_nodes(rng) },
        8 => MaintenanceOp::FederationAck { peers: arb_nodes(rng) },
        9 => MaintenanceOp::SummaryAdvert {
            advert_count: rng.next_u32(),
            models: gen::vec_of(rng, 0, 3, arb_model_id),
        },
        10 => MaintenanceOp::AdvertPullRequest,
        11 => MaintenanceOp::ArtifactRequest { name: gen::ident(rng, 0, 12) },
        12 => MaintenanceOp::ArtifactResponse {
            name: gen::ident(rng, 0, 12),
            found: rng.gen_bool(0.5),
            size: rng.next_u32(),
        },
        13 => MaintenanceOp::SyncDigest {
            // `count` independent of buckets.len(): skewed digests (claimed
            // bucket count disagreeing with the payload) must decode too.
            count: rng.gen_range(0..64u32),
            buckets: gen::vec_of(rng, 0, 32, |r| r.next_u64()),
        },
        14 => MaintenanceOp::SyncDelta {
            buckets: gen::vec_of(rng, 0, 8, |r| r.next_u64() as u16),
            entries: gen::vec_of(rng, 0, 4, arb_sync_entry),
        },
        _ => MaintenanceOp::SyncAck { missing: gen::vec_of(rng, 0, 6, |r| Uuid(r.gen_u128())) },
    }
}

fn arb_publish(rng: &mut Rng) -> PublishOp {
    match rng.gen_range(0..8u32) {
        0 => PublishOp::Publish { advert: arb_advert(rng), lease_ms: rng.next_u64() },
        1 => PublishOp::PublishAck { id: Uuid(rng.gen_u128()), lease_until: rng.next_u64() },
        2 => PublishOp::RenewLease { id: Uuid(rng.gen_u128()) },
        3 => PublishOp::RenewAck {
            id: Uuid(rng.gen_u128()),
            lease_until: rng.next_u64(),
            known: rng.gen_bool(0.5),
        },
        4 => PublishOp::Remove { id: Uuid(rng.gen_u128()) },
        5 => PublishOp::Update { advert: arb_advert(rng), lease_ms: rng.next_u64() },
        6 => PublishOp::PublishNack {
            id: Uuid(rng.gen_u128()),
            unknown: gen::vec_of(rng, 0, 4, arb_class),
        },
        _ => PublishOp::ForwardAdverts { adverts: gen::vec_of(rng, 0, 4, arb_advert) },
    }
}

fn arb_queryop(rng: &mut Rng) -> QueryOp {
    match rng.gen_range(0..7u32) {
        0 => QueryOp::Query(arb_query(rng)),
        1 => QueryOp::Subscribe {
            id: arb_query_id(rng),
            payload: arb_payload(rng),
            lease_ms: rng.next_u64(),
        },
        2 => QueryOp::SubscribeAck { id: arb_query_id(rng), lease_until: rng.next_u64() },
        3 => QueryOp::Unsubscribe { id: arb_query_id(rng) },
        4 => QueryOp::Notify {
            subscription: arb_query_id(rng),
            hit: ResponseHit {
                advert: arb_advert(rng),
                degree: arb_degree(rng),
                distance: rng.next_u32(),
            },
        },
        5 => QueryOp::ComposeRequest {
            id: arb_query_id(rng),
            request: arb_request(rng),
            max_depth: rng.gen_range(0..=255u8),
        },
        _ => match rng.gen_bool(0.5) {
            true => QueryOp::ComposeResponse {
                id: arb_query_id(rng),
                found: rng.gen_bool(0.5),
                chain: gen::vec_of(rng, 0, 4, arb_advert),
            },
            false => QueryOp::QueryResponse {
                query_id: arb_query_id(rng),
                hits: gen::vec_of(rng, 0, 4, |r| ResponseHit {
                    advert: arb_advert(r),
                    degree: arb_degree(r),
                    distance: r.next_u32(),
                }),
                responder: NodeId(rng.gen_range(0..10_000u32)),
            },
        },
    }
}

fn arb_message(rng: &mut Rng) -> DiscoveryMessage {
    match rng.gen_range(0..3u32) {
        0 => DiscoveryMessage::maintenance(arb_maintenance(rng)),
        1 => DiscoveryMessage::publishing(arb_publish(rng)),
        _ => DiscoveryMessage::querying(arb_queryop(rng)),
    }
}

#[test]
fn every_message_round_trips() {
    Checker::new("every_message_round_trips").cases(256).run(|rng| {
        let msg = arb_message(rng);
        let bytes = codec::encode(&msg);
        let back = codec::decode(&bytes).expect("decode what we encoded");
        assert_eq!(back, msg);
    });
}

#[test]
fn decoding_arbitrary_bytes_never_panics() {
    Checker::new("decoding_arbitrary_bytes_never_panics").cases(256).run(|rng| {
        let bytes = gen::vec_of(rng, 0, 256, |r| r.gen_range(0..=255u8));
        let _ = codec::decode(&bytes); // must return Err, not panic
    });
}

#[test]
fn truncation_always_fails_cleanly() {
    Checker::new("truncation_always_fails_cleanly").cases(256).run(|rng| {
        let msg = arb_message(rng);
        let bytes = codec::encode(&msg);
        if bytes.len() > 1 {
            let cut = rng.gen_range(1..bytes.len());
            assert!(codec::decode(&bytes[..cut]).is_err());
        }
    });
}

#[test]
fn mutated_frames_never_panic_the_decoder() {
    // The chaos corruption hook feeds exactly this pipeline into handlers:
    // encode → mutate_frame → decode. Decode must stay total over it —
    // erroring cleanly or yielding a message that itself round-trips.
    Checker::new("mutated_frames_never_panic_the_decoder").cases(2048).run(|rng| {
        let msg = arb_message(rng);
        let mut bytes = codec::encode(&msg);
        // Stack up to 3 mutations so frames drift far from the valid image.
        for _ in 0..rng.gen_range(1..=3u32) {
            bytes = codec::mutate_frame(rng, &bytes);
        }
        if let Ok(decoded) = codec::decode(&bytes) {
            // A surviving frame is a real message: it must re-encode and
            // decode back to itself (no half-valid states escape).
            let re = codec::encode(&decoded);
            assert_eq!(codec::decode(&re).expect("re-decode"), decoded);
        }
    });
}

#[test]
fn payload_fuzz_preserves_the_envelope() {
    // The field-aware corruptor must keep the first ENVELOPE_LEN bytes
    // intact — that is its contract: mutants reach the field decoders
    // instead of dying at the version/tag checks. The decoder must stay
    // total over these mutants too.
    Checker::new("payload_fuzz_preserves_the_envelope").cases(2048).run(|rng| {
        let msg = arb_message(rng);
        let bytes = codec::encode(&msg);
        let fuzzed = codec::fuzz_payload(rng, &bytes);
        assert_eq!(fuzzed.len(), bytes.len(), "payload fuzz never resizes");
        assert_eq!(
            &fuzzed[..codec::ENVELOPE_LEN.min(fuzzed.len())],
            &bytes[..codec::ENVELOPE_LEN.min(bytes.len())],
            "envelope bytes must survive the field-aware corruptor"
        );
        if let Ok(decoded) = codec::decode(&fuzzed) {
            let re = codec::encode(&decoded);
            assert_eq!(codec::decode(&re).expect("re-decode"), decoded);
        }
    });
}

#[test]
fn wire_size_is_positive_and_stable() {
    Checker::new("wire_size_is_positive_and_stable").cases(256).run(|rng| {
        let msg = arb_message(rng);
        let a = msg.body_size();
        let b = msg.body_size();
        assert_eq!(a, b, "size model is a pure function");
        // Every message costs at least its operation framing.
        assert!(a >= 8, "size {a} too small");
    });
}
