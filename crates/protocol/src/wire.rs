//! The wire-size model.
//!
//! The paper worries repeatedly about description size: "semantic service
//! advertisements can become quite large, compared to for example URI
//! strings", and suggests "compression or binary XML versions to reduce the
//! burden on the network". Simulated packets therefore carry a *modeled*
//! XML/SOAP byte count, not the in-memory struct size. Constants approximate
//! observed sizes of SOAP 1.2 + WS-A headers, UDDI/WS-Discovery bodies, and
//! OWL-S profile fragments; what matters for the experiments is the *ratio*
//! between models, which is robust to the exact constants.

use crate::message::{
    Advertisement, Description, DescriptionTemplate, DiscoveryMessage, MaintenanceOp, Operation,
    PublishOp, QueryMessage, QueryOp, QueryPayload, ResponseHit, SyncEntry,
};

/// SOAP envelope + WS-Addressing headers common to every message.
pub const SOAP_ENVELOPE_BYTES: u32 = 280;

/// Fixed XML framing of a URI-style description (`<TypeRef>…</TypeRef>`).
const URI_DESC_BASE: u32 = 30;
/// Fixed framing of a template description.
const TEMPLATE_BASE: u32 = 24;
/// Per-field XML framing inside a template (`<Name>…</Name>` etc.).
const TEMPLATE_FIELD: u32 = 24;
/// OWL-S-style profile framing: profile element, service reference,
/// ontology imports.
const PROFILE_BASE: u32 = 220;
/// One concept IRI reference inside a profile or request.
const CONCEPT_REF: u32 = 90;
/// One QoS attribute (property IRI + typed literal).
const QOS_ATTR: u32 = 110;
/// Request framing (smaller than a profile: no grounding/service refs).
const REQUEST_BASE: u32 = 150;
/// Advertisement framing: UUID key, provider endpoint reference, version.
const ADVERT_OVERHEAD: u32 = 96;
/// Per-hit framing in a response (match degree annotation).
const HIT_OVERHEAD: u32 = 30;
/// One registry endpoint reference in signaling lists.
const ENDPOINT_REF: u32 = 40;

/// Types that know their modeled on-the-wire body size (excluding the SOAP
/// envelope, which [`Codec::message_size`] adds once per message).
pub trait WireSize {
    fn body_size(&self) -> u32;
}

impl WireSize for DescriptionTemplate {
    fn body_size(&self) -> u32 {
        let mut n = TEMPLATE_BASE;
        if let Some(s) = &self.name {
            n += TEMPLATE_FIELD + s.len() as u32;
        }
        if let Some(s) = &self.type_uri {
            n += TEMPLATE_FIELD + s.len() as u32;
        }
        for (k, v) in &self.attrs {
            n += TEMPLATE_FIELD + (k.len() + v.len()) as u32;
        }
        n
    }
}

impl WireSize for Description {
    fn body_size(&self) -> u32 {
        match self {
            Description::Uri(u) => URI_DESC_BASE + u.len() as u32,
            Description::Template(t) => t.body_size(),
            Description::Semantic(p) => {
                PROFILE_BASE
                    + (p.name.len() as u32)
                    + CONCEPT_REF * (1 + p.inputs.len() + p.outputs.len()) as u32
                    + QOS_ATTR * p.qos.len() as u32
            }
        }
    }
}

impl WireSize for QueryPayload {
    fn body_size(&self) -> u32 {
        match self {
            QueryPayload::Uri(u) => URI_DESC_BASE + u.len() as u32,
            QueryPayload::Template(t) => t.body_size(),
            QueryPayload::Semantic(r) => {
                REQUEST_BASE
                    + CONCEPT_REF
                        * (usize::from(r.category.is_some())
                            + r.outputs.len()
                            + r.provided_inputs.len()) as u32
                    + QOS_ATTR * r.qos.len() as u32
            }
        }
    }
}

impl WireSize for Advertisement {
    fn body_size(&self) -> u32 {
        ADVERT_OVERHEAD + self.description.body_size()
    }
}

impl WireSize for ResponseHit {
    fn body_size(&self) -> u32 {
        HIT_OVERHEAD + self.advert.body_size()
    }
}

impl WireSize for QueryMessage {
    fn body_size(&self) -> u32 {
        // Query id, ttl, response-control and reply-to headers.
        60 + self.payload.body_size()
    }
}

impl WireSize for MaintenanceOp {
    fn body_size(&self) -> u32 {
        match self {
            MaintenanceOp::RegistryProbe => 40,
            MaintenanceOp::RegistryProbeReply { .. } => 52,
            MaintenanceOp::RegistryBeacon { .. } => 48,
            MaintenanceOp::Ping | MaintenanceOp::Pong => 24,
            MaintenanceOp::RegistryListRequest { .. } => 32,
            MaintenanceOp::RegistryList { registries } => {
                24 + ENDPOINT_REF * registries.len() as u32
            }
            MaintenanceOp::FederationJoin { known_peers } => {
                40 + ENDPOINT_REF * known_peers.len() as u32
            }
            MaintenanceOp::FederationAck { peers } => 40 + ENDPOINT_REF * peers.len() as u32,
            MaintenanceOp::SummaryAdvert { models, .. } => 48 + 8 * models.len() as u32,
            MaintenanceOp::AdvertPullRequest => 32,
            MaintenanceOp::ArtifactRequest { name } => 40 + name.len() as u32,
            MaintenanceOp::ArtifactResponse { name, found, size } => {
                48 + name.len() as u32 + if *found { *size } else { 0 }
            }
            // Digest framing plus one 64-bit hash (hex-encoded, element
            // framing) per bucket — a fixed, state-independent cost.
            MaintenanceOp::SyncDigest { buckets, .. } => 40 + 12 * buckets.len() as u32,
            MaintenanceOp::SyncDelta { buckets, entries } => {
                32 + 4 * buckets.len() as u32
                    + entries.iter().map(WireSize::body_size).sum::<u32>()
            }
            MaintenanceOp::SyncAck { missing } => 32 + 40 * missing.len() as u32,
            // A deliberately tiny nack: envelope plus one retry-after hint.
            MaintenanceOp::Busy { .. } => 32,
        }
    }
}

impl WireSize for SyncEntry {
    fn body_size(&self) -> u32 {
        match self {
            // Entry framing plus the whole advert body; pays the full
            // semantic-description cost the delta path exists to avoid.
            SyncEntry::Full { advert, .. } => 16 + advert.body_size(),
            // UUID key, version echo, lease deadline: a lease renewal on
            // the wire, independent of how large the description is.
            SyncEntry::Delta { .. } => 56,
        }
    }
}

impl WireSize for PublishOp {
    fn body_size(&self) -> u32 {
        match self {
            PublishOp::Publish { advert, .. } => 32 + advert.body_size(),
            PublishOp::PublishAck { .. } => 56,
            // Nack framing plus one concept IRI per offending reference.
            PublishOp::PublishNack { unknown, .. } => 56 + CONCEPT_REF * unknown.len() as u32,
            PublishOp::RenewLease { .. } => 48,
            PublishOp::RenewAck { .. } => 60,
            PublishOp::Remove { .. } => 48,
            PublishOp::Update { advert, .. } => 32 + advert.body_size(),
            PublishOp::ForwardAdverts { adverts } => {
                24 + adverts.iter().map(WireSize::body_size).sum::<u32>()
            }
        }
    }
}

impl WireSize for QueryOp {
    fn body_size(&self) -> u32 {
        match self {
            QueryOp::Query(q) => q.body_size(),
            // The original query body plus the root-attempt correlation id.
            QueryOp::QueryRetry { query, .. } => 12 + query.body_size(),
            QueryOp::QueryResponse { hits, .. } => {
                40 + hits.iter().map(WireSize::body_size).sum::<u32>()
            }
            QueryOp::Subscribe { payload, .. } => 72 + payload.body_size(),
            QueryOp::SubscribeAck { .. } => 56,
            QueryOp::Unsubscribe { .. } => 48,
            QueryOp::Notify { hit, .. } => 48 + hit.body_size(),
            QueryOp::ComposeRequest { request, .. } => {
                72 + QueryPayload::Semantic(request.clone()).body_size()
            }
            QueryOp::ComposeResponse { chain, .. } => {
                56 + chain.iter().map(WireSize::body_size).sum::<u32>()
            }
        }
    }
}

impl WireSize for Operation {
    fn body_size(&self) -> u32 {
        match self {
            Operation::Maintenance(m) => m.body_size(),
            Operation::Publishing(p) => p.body_size(),
            Operation::Querying(q) => q.body_size(),
        }
    }
}

impl WireSize for DiscoveryMessage {
    fn body_size(&self) -> u32 {
        self.op.body_size()
    }
}

/// How message bytes are reduced before hitting the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Compression {
    /// Plain XML over SOAP.
    #[default]
    None,
    /// An EXI/binary-XML-class encoding: fixed dictionary overhead plus a
    /// 4:1 reduction of the XML stream. Real EXI on WS payloads measures
    /// 70–90% reduction; 75% is the conservative middle.
    BinaryXml,
}

impl Compression {
    /// Final on-the-wire size of `xml_bytes` of uncompressed message.
    pub fn apply(self, xml_bytes: u32) -> u32 {
        match self {
            Compression::None => xml_bytes,
            Compression::BinaryXml => 60 + xml_bytes / 4,
        }
    }
}

/// Computes the modeled transmission size of whole messages; the single
/// place where envelope overhead and compression are applied.
#[derive(Clone, Copy, Debug, Default)]
pub struct Codec {
    pub compression: Compression,
}

impl Codec {
    pub fn new(compression: Compression) -> Self {
        Self { compression }
    }

    /// On-the-wire size of one message.
    pub fn message_size(&self, msg: &DiscoveryMessage) -> u32 {
        self.compression.apply(SOAP_ENVELOPE_BYTES + msg.body_size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::QueryId;
    use crate::uuid::Uuid;
    use sds_semantic::{ClassId, ServiceProfile};
    use sds_simnet::NodeId;

    fn semantic_advert(n_outputs: usize) -> Advertisement {
        let mut p = ServiceProfile::new("svc", ClassId(0));
        p.outputs = (0..n_outputs as u32).map(ClassId).collect();
        Advertisement {
            id: Uuid(1),
            provider: NodeId(0),
            description: Description::Semantic(p),
            version: 1,
        }
    }

    #[test]
    fn semantic_descriptions_dwarf_uri_strings() {
        let uri = Description::Uri("urn:svc:tracking".into());
        let sem = semantic_advert(3).description.body_size();
        assert!(
            sem > 5 * uri.body_size(),
            "paper: semantic adverts are much larger than URI strings ({sem} vs {})",
            uri.body_size()
        );
    }

    #[test]
    fn size_grows_with_profile_complexity() {
        assert!(semantic_advert(5).body_size() > semantic_advert(1).body_size());
    }

    #[test]
    fn template_size_counts_fields() {
        let empty = DescriptionTemplate::default();
        let full = DescriptionTemplate {
            name: Some("n".into()),
            type_uri: Some("t".into()),
            attrs: vec![("a".into(), "b".into())],
        };
        assert!(full.body_size() > empty.body_size());
    }

    #[test]
    fn compression_shrinks_large_messages() {
        let advert = semantic_advert(4);
        let msg = DiscoveryMessage::publishing(PublishOp::Publish { advert, lease_ms: 10_000 });
        let plain = Codec::new(Compression::None).message_size(&msg);
        let packed = Codec::new(Compression::BinaryXml).message_size(&msg);
        assert!(packed < plain / 2, "binary XML should at least halve ({packed} vs {plain})");
    }

    #[test]
    fn envelope_applied_once() {
        let msg = DiscoveryMessage::maintenance(MaintenanceOp::Ping);
        assert_eq!(
            Codec::default().message_size(&msg),
            SOAP_ENVELOPE_BYTES + MaintenanceOp::Ping.body_size()
        );
    }

    #[test]
    fn artifact_response_carries_body_only_when_found() {
        let found = MaintenanceOp::ArtifactResponse { name: "ont".into(), found: true, size: 5_000 };
        let missing = MaintenanceOp::ArtifactResponse { name: "ont".into(), found: false, size: 5_000 };
        assert_eq!(found.body_size() - missing.body_size(), 5_000);
    }

    #[test]
    fn query_response_size_scales_with_hits() {
        let hit = ResponseHit {
            advert: semantic_advert(2),
            degree: sds_semantic::Degree::Exact,
            distance: 0,
        };
        let one = QueryOp::QueryResponse {
            query_id: QueryId { origin: NodeId(0), seq: 1 },
            hits: vec![hit.clone()],
            responder: NodeId(1),
        };
        let three = QueryOp::QueryResponse {
            query_id: QueryId { origin: NodeId(0), seq: 1 },
            hits: vec![hit.clone(), hit.clone(), hit],
            responder: NodeId(1),
        };
        assert!(three.body_size() > 2 * one.body_size());
    }
}
