//! Universally unique identifiers.
//!
//! "A unique identification convention, e.g. based on Universally Unique
//! Identifiers (UUIDs) like in UDDI 3.0, would be needed in order to
//! reference published advertisements." Generated from the caller's RNG so
//! simulation runs stay deterministic.

use std::fmt;

use sds_rand::Rng;

/// A 128-bit random identifier (UUIDv4-like; version bits are not encoded
/// since nothing interoperates with real UUID parsers here).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Uuid(pub u128);

impl Uuid {
    /// Draws a fresh identifier from `rng`. Built from `fill_bytes` so the
    /// identifier matches what a wire-level implementation reading 16 raw
    /// octets would produce.
    pub fn generate(rng: &mut Rng) -> Self {
        let mut bytes = [0u8; 16];
        rng.fill_bytes(&mut bytes);
        Self(u128::from_le_bytes(bytes))
    }

    /// The nil UUID, never produced by [`Uuid::generate`] in practice.
    pub const NIL: Uuid = Uuid(0);
}

impl fmt::Debug for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Uuid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:08x}-{:04x}-{:04x}-{:04x}-{:012x}",
            (b >> 96) as u32,
            (b >> 80) as u16,
            (b >> 64) as u16,
            (b >> 48) as u16,
            b & 0xffff_ffff_ffff
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seeded_rng() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(1);
        assert_eq!(Uuid::generate(&mut a), Uuid::generate(&mut b));
    }

    #[test]
    fn distinct_in_sequence() {
        let mut rng = Rng::seed_from_u64(2);
        let x = Uuid::generate(&mut rng);
        let y = Uuid::generate(&mut rng);
        assert_ne!(x, y);
    }

    #[test]
    fn display_format() {
        let u = Uuid(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef);
        assert_eq!(u.to_string(), "01234567-89ab-cdef-0123-456789abcdef");
        assert_eq!(u.to_string().len(), 36);
    }
}
