//! Protocol profiles.
//!
//! "Some kind of protocol profiling could be desirable, since registries
//! typically would have to support more such operations than service and
//! client nodes." A [`ProtocolProfile`] names the subset of operations a
//! node class implements; [`ProtocolProfile::handles`] is the conformance
//! check ("nodes quickly filter and silently discard messages they cannot
//! understand anyway") and [`minimum_profile`] classifies any message by
//! the smallest profile that must understand it.

use crate::message::{DiscoveryMessage, MaintenanceOp, Operation, PublishOp, QueryOp};

/// Conformance classes, ordered by capability.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ProtocolProfile {
    /// A pure consumer: queries, responses, subscriptions, artifact and
    /// composition requests, registry discovery.
    Client,
    /// A provider: everything a client handles plus the publishing surface
    /// (publish/renew/remove and their acks).
    Service,
    /// A registry super-peer: the full operation set, including federation
    /// maintenance and replication.
    Registry,
}

/// The least capable profile that must understand `msg`.
pub fn minimum_profile(msg: &DiscoveryMessage) -> ProtocolProfile {
    match &msg.op {
        Operation::Maintenance(m) => match m {
            // Registry discovery and aliveness concern everyone.
            MaintenanceOp::RegistryProbe
            | MaintenanceOp::RegistryProbeReply { .. }
            | MaintenanceOp::RegistryBeacon { .. }
            | MaintenanceOp::Ping
            | MaintenanceOp::Pong
            | MaintenanceOp::RegistryListRequest { .. }
            | MaintenanceOp::RegistryList { .. }
            | MaintenanceOp::ArtifactRequest { .. }
            | MaintenanceOp::ArtifactResponse { .. }
            // Overload backpressure lands on whoever sent the shed request —
            // clients and services included — so everyone must understand it.
            | MaintenanceOp::Busy { .. } => ProtocolProfile::Client,
            // Federation machinery is registry-only.
            MaintenanceOp::FederationJoin { .. }
            | MaintenanceOp::FederationAck { .. }
            | MaintenanceOp::SummaryAdvert { .. }
            | MaintenanceOp::AdvertPullRequest
            | MaintenanceOp::SyncDigest { .. }
            | MaintenanceOp::SyncDelta { .. }
            | MaintenanceOp::SyncAck { .. } => ProtocolProfile::Registry,
        },
        Operation::Publishing(p) => match p {
            PublishOp::Publish { .. }
            | PublishOp::PublishAck { .. }
            | PublishOp::PublishNack { .. }
            | PublishOp::RenewLease { .. }
            | PublishOp::RenewAck { .. }
            | PublishOp::Remove { .. }
            | PublishOp::Update { .. } => ProtocolProfile::Service,
            PublishOp::ForwardAdverts { .. } => ProtocolProfile::Registry,
        },
        Operation::Querying(q) => match q {
            QueryOp::Query(_)
            | QueryOp::QueryRetry { .. }
            | QueryOp::QueryResponse { .. }
            | QueryOp::Subscribe { .. }
            | QueryOp::SubscribeAck { .. }
            | QueryOp::Unsubscribe { .. }
            | QueryOp::Notify { .. }
            | QueryOp::ComposeRequest { .. }
            | QueryOp::ComposeResponse { .. } => ProtocolProfile::Client,
        },
    }
}

impl ProtocolProfile {
    /// Whether a node of this profile is required to understand `msg`.
    /// Messages above the profile may be silently discarded.
    pub fn handles(self, msg: &DiscoveryMessage) -> bool {
        self >= minimum_profile(msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{Advertisement, Description, QueryId, QueryMessage, QueryPayload};
    use crate::uuid::Uuid;
    use sds_simnet::NodeId;

    fn advert() -> Advertisement {
        Advertisement {
            id: Uuid(1),
            provider: NodeId(0),
            description: Description::Uri("urn:x".into()),
            version: 1,
        }
    }

    #[test]
    fn ordering_is_client_service_registry() {
        assert!(ProtocolProfile::Client < ProtocolProfile::Service);
        assert!(ProtocolProfile::Service < ProtocolProfile::Registry);
    }

    #[test]
    fn clients_handle_queries_but_not_publishing() {
        let q = DiscoveryMessage::querying(QueryOp::Query(QueryMessage {
            id: QueryId { origin: NodeId(0), seq: 0 },
            payload: QueryPayload::Uri("urn:x".into()),
            max_responses: None,
            ttl: 0,
            reply_to: None,
        }));
        assert!(ProtocolProfile::Client.handles(&q));
        let p = DiscoveryMessage::publishing(PublishOp::Publish { advert: advert(), lease_ms: 0 });
        assert!(!ProtocolProfile::Client.handles(&p));
        assert!(ProtocolProfile::Service.handles(&p));
    }

    #[test]
    fn only_registries_handle_federation_and_replication() {
        let join = DiscoveryMessage::maintenance(MaintenanceOp::FederationJoin {
            known_peers: vec![],
        });
        let fwd = DiscoveryMessage::publishing(PublishOp::ForwardAdverts { adverts: vec![] });
        for msg in [join, fwd] {
            assert!(!ProtocolProfile::Client.handles(&msg));
            assert!(!ProtocolProfile::Service.handles(&msg));
            assert!(ProtocolProfile::Registry.handles(&msg));
        }
    }

    #[test]
    fn discovery_signals_concern_everyone() {
        for op in [
            MaintenanceOp::RegistryProbe,
            MaintenanceOp::RegistryBeacon { advert_count: 0 },
            MaintenanceOp::Ping,
        ] {
            let msg = DiscoveryMessage::maintenance(op);
            assert!(ProtocolProfile::Client.handles(&msg));
        }
    }

    #[test]
    fn registry_handles_everything() {
        // Spot-check one message of each category.
        let msgs = [
            DiscoveryMessage::maintenance(MaintenanceOp::AdvertPullRequest),
            DiscoveryMessage::publishing(PublishOp::RenewLease { id: Uuid(2) }),
            DiscoveryMessage::querying(QueryOp::Unsubscribe {
                id: QueryId { origin: NodeId(1), seq: 9 },
            }),
        ];
        for m in msgs {
            assert!(ProtocolProfile::Registry.handles(&m));
        }
    }
}
